//! Rank-failure resilience, end to end: crashed ranks must not abort the
//! run, surviving ranks' provenance must land in full, and the
//! [`RunReport`] must state exactly what was lost.

use prov_io::hpcfs::FsError;
use prov_io::prelude::*;
use provio_simrt::DetRng;
use std::collections::HashSet;
use std::sync::Arc;

/// The named supersteps of the synthetic workflow.
const PHASES: [&str; 4] = ["ingest", "transform", "reduce", "publish"];

fn data_path(rank: u32, phase: usize) -> String {
    format!("/data_r{rank}_p{phase}.h5")
}

/// Run a `world_size`-rank workflow over the four phases. Ranks listed in
/// `crashes` as `(rank, phase)` panic at the start of that phase and are
/// skipped afterwards (a dead rank stays dead); when `ghost_crashed` is
/// set, ranks in the crash set never run at all (the no-fault baseline
/// restricted to survivors).
///
/// Returns the cluster and the per-phase outcome report.
fn run_world(
    world_size: u32,
    crashes: &[(u32, usize)],
    ghost_crashed: bool,
) -> (Cluster, RunReport) {
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::default().shared();
    let world = MpiWorld::new(world_size);
    let mut report = RunReport::new(world_size);

    for (pi, phase) in PHASES.iter().enumerate() {
        let outcomes = world.superstep_named(phase, |ctx| {
            let rank = ctx.rank;
            if let Some(&(_, crash_phase)) = crashes.iter().find(|(r, _)| *r == rank) {
                if ghost_crashed || pi > crash_phase {
                    return; // dead (or never-started) ranks are skipped
                }
                if pi == crash_phase {
                    panic!("ESIMCRASH: injected rank fault at {phase}");
                }
            }
            let pid = 100 + rank;
            let (_s, h5) =
                cluster.process(pid, "alice", "resilient", ctx.clock().clone(), Some(&cfg));
            let f = h5.create_file(&data_path(rank, pi)).unwrap();
            h5.close_file(f).unwrap();
        });
        report.record_outcomes(&outcomes);
    }

    // Crashed ranks' processes died: their trackers vanish without a flush
    // (forgetting the Arc models a killed process — no Drop salvage).
    for &(rank, _) in crashes {
        if let Some(t) = cluster.registry.unregister(100 + rank) {
            std::mem::forget(t);
        }
    }
    cluster.registry.finish_all();
    (cluster, report)
}

#[test]
fn sixty_four_ranks_survive_four_crashes_with_exact_accounting() {
    // One crash in each distinct phase.
    let crashes = [(5u32, 0usize), (17, 1), (33, 2), (60, 3)];
    let (cluster, mut report) = run_world(64, &crashes, false);

    // The run completed; the report lists exactly the crashed ranks, each
    // at its actual crash phase.
    let listed: Vec<(u32, &str)> = report
        .crashed
        .iter()
        .map(|c| (c.rank, c.phase.as_str()))
        .collect();
    assert_eq!(
        listed,
        vec![
            (5, "ingest"),
            (17, "transform"),
            (33, "reduce"),
            (60, "publish")
        ]
    );
    for c in &report.crashed {
        assert!(c.cause.contains("ESIMCRASH"), "cause recorded: {}", c.cause);
    }
    assert_eq!(report.surviving_ranks().len(), 60);

    // Merge and join: all 60 survivor sub-graphs recovered, none corrupt.
    let (graph, mrep) = merge_directory(&cluster.fs, "/provio");
    report.attach_merge(report.surviving_ranks().len(), &mrep);
    assert_eq!(report.recovered_subgraphs, 60, "one sub-graph per survivor");
    assert_eq!(report.completeness(), 1.0);
    assert_eq!(report.corrupt_files, 0);
    assert!(!report.is_complete(), "crashes keep the run marked incomplete");
    assert!(report.to_string().contains("60/64 ranks survived"));

    // The merged graph contains every triple the no-fault baseline
    // (restricted to survivors) produces — nothing a survivor recorded was
    // lost to someone else's crash. Timing properties are excluded from the
    // comparison: virtual I/O costs depend on global filesystem load, and
    // the crashed ranks' pre-crash work shifts survivor timings slightly.
    let timing = |iri: &str| iri.ends_with("#timestamp") || iri.ends_with("#elapsed");
    let (baseline_cluster, _) = run_world(64, &crashes, true);
    let (baseline, _) = merge_directory(&baseline_cluster.fs, "/provio");
    assert!(!baseline.is_empty());
    let mut compared = 0usize;
    for t in baseline.iter() {
        if timing(t.predicate.as_str()) {
            continue;
        }
        compared += 1;
        assert!(
            graph.contains(&t),
            "survivor triple lost from merged graph: {t}"
        );
    }
    assert!(compared > 60 * 4, "comparison covered the structural triples");

    // And the survivor graph is structurally consistent.
    let dr = doctor(&graph);
    assert!(dr.is_clean(), "doctor findings on survivor graph: {dr:?}");
}

#[test]
fn crashed_ranks_partial_phases_do_not_pollute_the_report() {
    // A rank that crashes in phase 2 completed phases 0 and 1; its earlier
    // work exists as workflow data but its provenance is gone with it.
    let crashes = [(3u32, 2usize)];
    let (cluster, report) = run_world(8, &crashes, false);
    assert_eq!(report.crashed.len(), 1);
    assert_eq!(report.crashed[0].phase, "reduce");
    // The workflow data from the pre-crash phases is on disk…
    assert!(cluster.fs.exists(&data_path(3, 0)));
    assert!(cluster.fs.exists(&data_path(3, 1)));
    // …but the merged graph only speaks for survivors.
    let (graph, _) = merge_directory(&cluster.fs, "/provio");
    let engine = ProvQueryEngine::new(graph);
    assert!(engine.entity_by_label(&data_path(3, 0)).is_none());
    for rank in report.surviving_ranks() {
        for pi in 0..PHASES.len() {
            assert!(
                engine.entity_by_label(&data_path(rank, pi)).is_some(),
                "survivor rank {rank} phase {pi} provenance present"
            );
        }
    }
}

/// Seeded crash sweep, parameterized by environment for the CI matrix:
/// `PROVIO_SWEEP_WORLD` (ranks), `PROVIO_SWEEP_CRASH_PROB` (per-rank crash
/// probability), `PROVIO_SWEEP_SEED` (crash-site selection).
#[test]
fn seeded_crash_sweep_accounts_for_every_rank() {
    let env_u64 = |k: &str, d: u64| {
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d)
    };
    let world: u32 = env_u64("PROVIO_SWEEP_WORLD", 16) as u32;
    let prob: f64 = std::env::var("PROVIO_SWEEP_CRASH_PROB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let seed = env_u64("PROVIO_SWEEP_SEED", 7);

    let mut rng = DetRng::new(seed);
    let mut crashes: Vec<(u32, usize)> = Vec::new();
    for r in 0..world {
        if rng.chance(prob) {
            crashes.push((r, rng.below(PHASES.len() as u64) as usize));
        }
    }

    let (cluster, mut report) = run_world(world, &crashes, false);
    let crashed_ranks: HashSet<u32> = report.crashed.iter().map(|c| c.rank).collect();
    let expected: HashSet<u32> = crashes.iter().map(|(r, _)| *r).collect();
    assert_eq!(crashed_ranks, expected, "exactly the seeded ranks crashed");
    assert_eq!(
        report.surviving_ranks().len(),
        world as usize - crashes.len()
    );

    let (graph, mrep) = merge_directory(&cluster.fs, "/provio");
    report.attach_merge(report.surviving_ranks().len(), &mrep);
    assert_eq!(report.completeness(), 1.0, "all survivor sub-graphs merged");
    assert!(doctor(&graph).is_clean());
}

#[test]
fn transient_flush_failures_trip_the_breaker_without_losing_triples() {
    // Rank 0's store hits persistent write failures mid-run: the breaker
    // trips (no retry storm), intermediate flushes are skipped, and finish
    // — which bypasses the open breaker — still lands every triple.
    let cluster = Cluster::new();
    let plan = FaultPlan::new(91);
    plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_path("prov_p300."));
    cluster.fs.install_faults(Arc::clone(&plan));

    let cfg = ProvIoConfig::default()
        .with_policy(SerializationPolicy::EveryRecords(1))
        .synchronous()
        .with_retry(RetryPolicy {
            max_attempts: 1,
            backoff_ns: 0,
        })
        .with_breaker(2, 10_000_000_000) // trip after 2 failures, 10s backoff
        .shared();

    let world = MpiWorld::new(4);
    let outcomes = world.superstep_named("write", |ctx| {
        let pid = 300 + ctx.rank;
        let (_s, h5) =
            cluster.process(pid, "alice", "pusher", ctx.clock().clone(), Some(&cfg));
        for i in 0..6 {
            let f = h5.create_file(&format!("/burst_r{}_{i}.h5", ctx.rank)).unwrap();
            h5.close_file(f).unwrap();
        }
    });
    assert!(outcomes.iter().all(|o| o.is_completed()));

    // Stop injecting before finish: the failure was transient after all.
    cluster.fs.clear_faults();
    let summaries = cluster.registry.finish_all();
    let s300 = &summaries.iter().find(|(p, _)| *p == 300).unwrap().1;
    assert!(s300.breaker_trips >= 1, "breaker tripped: {s300:?}");
    assert!(
        s300.breaker_skipped >= 1,
        "open breaker skipped flushes instead of hammering the store"
    );
    assert_eq!(
        s300.breaker_state, "closed",
        "successful finish closed the breaker"
    );
    assert!(plan.injected() >= 2, "failures actually happened");

    // No triple lost: every file every rank created is in the merged graph.
    let (graph, mrep) = merge_directory(&cluster.fs, "/provio");
    assert!(mrep.corrupt.is_empty());
    let engine = ProvQueryEngine::new(graph);
    for rank in 0..4u32 {
        for i in 0..6 {
            assert!(
                engine
                    .entity_by_label(&format!("/burst_r{rank}_{i}.h5"))
                    .is_some(),
                "rank {rank} file {i} survived the breaker episode"
            );
        }
    }
}
