//! Rank-failure resilience, end to end: crashed ranks must not abort the
//! run, surviving ranks' provenance must land in full, and the
//! [`RunReport`] must state exactly what was lost.

use prov_io::hpcfs::FsError;
use prov_io::prelude::*;
use provio_simrt::DetRng;
use std::collections::HashSet;
use std::sync::Arc;

/// The named supersteps of the synthetic workflow.
const PHASES: [&str; 4] = ["ingest", "transform", "reduce", "publish"];

fn data_path(rank: u32, phase: usize) -> String {
    format!("/data_r{rank}_p{phase}.h5")
}

/// What ranks listed in the crash set do during a run.
#[derive(Clone, Copy, PartialEq)]
enum WorldMode {
    /// Crashing ranks panic at the start of their crash phase and stay
    /// dead afterwards; their trackers vanish without a flush.
    Faulted,
    /// Crashing ranks never run at all: the no-fault baseline restricted
    /// to survivors.
    Ghost,
    /// Crashing ranks run only their pre-crash phases, then stop cleanly
    /// and finish like everyone else: exactly the work a crashed rank did
    /// before dying, but committed. The loss-measurement baseline.
    Truncated,
}

/// Run a `world_size`-rank workflow over the four phases under `mode`,
/// with every tracker built from `cfg`. When `faults` is given, the plan
/// is installed on the cluster filesystem before any phase runs.
///
/// Returns the cluster and the per-phase outcome report.
fn run_world(
    world_size: u32,
    crashes: &[(u32, usize)],
    mode: WorldMode,
    cfg: &Arc<ProvIoConfig>,
    faults: Option<Arc<FaultPlan>>,
) -> (Cluster, RunReport) {
    let cluster = Cluster::new();
    if let Some(plan) = faults {
        cluster.fs.install_faults(plan);
    }
    let world = MpiWorld::new(world_size);
    let mut report = RunReport::new(world_size);

    for (pi, phase) in PHASES.iter().enumerate() {
        let outcomes = world.superstep_named(phase, |ctx| {
            let rank = ctx.rank;
            if let Some(&(_, crash_phase)) = crashes.iter().find(|(r, _)| *r == rank) {
                match mode {
                    WorldMode::Ghost => return,
                    WorldMode::Truncated if pi >= crash_phase => return,
                    WorldMode::Faulted if pi > crash_phase => return, // dead ranks stay dead
                    WorldMode::Faulted if pi == crash_phase => {
                        panic!("ESIMCRASH: injected rank fault at {phase}");
                    }
                    _ => {}
                }
            }
            let pid = 100 + rank;
            let (_s, h5) =
                cluster.process(pid, "alice", "resilient", ctx.clock().clone(), Some(cfg));
            let f = h5.create_file(&data_path(rank, pi)).unwrap();
            h5.close_file(f).unwrap();
        });
        report.record_outcomes(&outcomes);
    }

    // Crashed ranks' processes died: their trackers vanish without a flush
    // (forgetting the Arc models a killed process — no Drop salvage).
    if mode == WorldMode::Faulted {
        for &(rank, _) in crashes {
            if let Some(t) = cluster.registry.unregister(100 + rank) {
                std::mem::forget(t);
            }
        }
    }
    cluster.registry.finish_all();
    (cluster, report)
}

#[test]
fn sixty_four_ranks_survive_four_crashes_with_exact_accounting() {
    // One crash in each distinct phase.
    let crashes = [(5u32, 0usize), (17, 1), (33, 2), (60, 3)];
    let cfg = ProvIoConfig::default().shared();
    let (cluster, mut report) = run_world(64, &crashes, WorldMode::Faulted, &cfg, None);

    // The run completed; the report lists exactly the crashed ranks, each
    // at its actual crash phase.
    let listed: Vec<(u32, &str)> = report
        .crashed
        .iter()
        .map(|c| (c.rank, c.phase.as_str()))
        .collect();
    assert_eq!(
        listed,
        vec![
            (5, "ingest"),
            (17, "transform"),
            (33, "reduce"),
            (60, "publish")
        ]
    );
    for c in &report.crashed {
        assert!(c.cause.contains("ESIMCRASH"), "cause recorded: {}", c.cause);
    }
    assert_eq!(report.surviving_ranks().len(), 60);

    // Merge and join: all 60 survivor sub-graphs recovered, none corrupt.
    let (graph, mrep) = merge_directory(&cluster.fs, "/provio");
    report.attach_merge(report.surviving_ranks().len(), &mrep);
    assert_eq!(report.recovered_subgraphs, 60, "one sub-graph per survivor");
    assert_eq!(report.completeness(), 1.0);
    assert_eq!(report.corrupt_files, 0);
    assert!(!report.is_complete(), "crashes keep the run marked incomplete");
    assert!(report.to_string().contains("60/64 ranks survived"));

    // The merged graph contains every triple the no-fault baseline
    // (restricted to survivors) produces — nothing a survivor recorded was
    // lost to someone else's crash. Timing properties are excluded from the
    // comparison: virtual I/O costs depend on global filesystem load, and
    // the crashed ranks' pre-crash work shifts survivor timings slightly.
    let timing = |iri: &str| iri.ends_with("#timestamp") || iri.ends_with("#elapsed");
    let (baseline_cluster, _) = run_world(64, &crashes, WorldMode::Ghost, &cfg, None);
    let (baseline, _) = merge_directory(&baseline_cluster.fs, "/provio");
    assert!(!baseline.is_empty());
    let mut compared = 0usize;
    for t in baseline.iter() {
        if timing(t.predicate.as_str()) {
            continue;
        }
        compared += 1;
        assert!(
            graph.contains(&t),
            "survivor triple lost from merged graph: {t}"
        );
    }
    assert!(compared > 60 * 4, "comparison covered the structural triples");

    // And the survivor graph is structurally consistent.
    let dr = doctor(&graph);
    assert!(dr.is_clean(), "doctor findings on survivor graph: {dr:?}");
}

#[test]
fn crashed_ranks_partial_phases_do_not_pollute_the_report() {
    // A rank that crashes in phase 2 completed phases 0 and 1; its earlier
    // work exists as workflow data but its provenance is gone with it.
    let crashes = [(3u32, 2usize)];
    let cfg = ProvIoConfig::default().shared();
    let (cluster, report) = run_world(8, &crashes, WorldMode::Faulted, &cfg, None);
    assert_eq!(report.crashed.len(), 1);
    assert_eq!(report.crashed[0].phase, "reduce");
    // The workflow data from the pre-crash phases is on disk…
    assert!(cluster.fs.exists(&data_path(3, 0)));
    assert!(cluster.fs.exists(&data_path(3, 1)));
    // …but the merged graph only speaks for survivors.
    let (graph, _) = merge_directory(&cluster.fs, "/provio");
    let engine = ProvQueryEngine::new(graph);
    assert!(engine.entity_by_label(&data_path(3, 0)).is_none());
    for rank in report.surviving_ranks() {
        for pi in 0..PHASES.len() {
            assert!(
                engine.entity_by_label(&data_path(rank, pi)).is_some(),
                "survivor rank {rank} phase {pi} provenance present"
            );
        }
    }
}

/// Seeded crash sweep, parameterized by environment for the CI matrix:
/// `PROVIO_SWEEP_WORLD` (ranks), `PROVIO_SWEEP_CRASH_PROB` (per-rank crash
/// probability), `PROVIO_SWEEP_SEED` (crash-site selection).
fn sweep_env<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Seeded crash-site selection shared by the sweep tests: every rank
/// crashes with probability `prob`, at a uniformly chosen phase.
fn seeded_crashes(world: u32, prob: f64, seed: u64) -> Vec<(u32, usize)> {
    let mut rng = DetRng::new(seed);
    let mut crashes = Vec::new();
    for r in 0..world {
        if rng.chance(prob) {
            crashes.push((r, rng.below(PHASES.len() as u64) as usize));
        }
    }
    crashes
}

#[test]
fn seeded_crash_sweep_accounts_for_every_rank() {
    let world: u32 = sweep_env("PROVIO_SWEEP_WORLD", 16u32);
    let prob: f64 = sweep_env("PROVIO_SWEEP_CRASH_PROB", 0.25f64);
    let seed: u64 = sweep_env("PROVIO_SWEEP_SEED", 7u64);
    let crashes = seeded_crashes(world, prob, seed);

    let cfg = ProvIoConfig::default().shared();
    let (cluster, mut report) = run_world(world, &crashes, WorldMode::Faulted, &cfg, None);
    let crashed_ranks: HashSet<u32> = report.crashed.iter().map(|c| c.rank).collect();
    let expected: HashSet<u32> = crashes.iter().map(|(r, _)| *r).collect();
    assert_eq!(crashed_ranks, expected, "exactly the seeded ranks crashed");
    assert_eq!(
        report.surviving_ranks().len(),
        world as usize - crashes.len()
    );

    let (graph, mrep) = merge_directory(&cluster.fs, "/provio");
    report.attach_merge(report.surviving_ranks().len(), &mrep);
    assert_eq!(report.completeness(), 1.0, "all survivor sub-graphs merged");
    assert!(doctor(&graph).is_clean());
}

/// WAL ablation over the env-seeded crash sweep (`PROVIO_SWEEP_WORLD`,
/// `PROVIO_SWEEP_CRASH_PROB`, `PROVIO_SWEEP_SEED`, `PROVIO_SWEEP_WAL_GROUP`).
///
/// Crashing ranks additionally sit on a failing storage target: every
/// snapshot/segment commit of their store is dropped, so nothing they
/// record ever reaches a committed file. With `wal = false` that loss is
/// exact — the merged graph is the ghost baseline, and every structural
/// triple the crashed ranks produced pre-crash is gone. With `wal = true`
/// the journal (whose appends bypass the commit fault, as on a real
/// system where the WAL lives on a separate healthy device) is replayed
/// at merge time, and residual loss per crashed rank is bounded by the
/// group-commit size: at most `wal_group` records were still riding in
/// the unflushed buffer.
#[test]
fn wal_ablation_bounds_crashed_rank_loss_to_the_group_commit_size() {
    let world: u32 = sweep_env("PROVIO_SWEEP_WORLD", 16u32);
    let prob: f64 = sweep_env("PROVIO_SWEEP_CRASH_PROB", 0.25f64);
    let seed: u64 = sweep_env("PROVIO_SWEEP_SEED", 7u64);
    let wal_group: u32 = sweep_env("PROVIO_SWEEP_WAL_GROUP", 8u32);
    let mut crashes = seeded_crashes(world, prob, seed);
    if crashes.is_empty() {
        crashes.push((world / 2, 2)); // always have a loss to measure
    }

    let cfg_for = |wal: bool| {
        ProvIoConfig::default()
            .with_policy(SerializationPolicy::EveryRecords(1))
            .synchronous()
            .with_retry(RetryPolicy {
                max_attempts: 1,
                backoff_ns: 0,
                ..RetryPolicy::default()
            })
            .with_wal(wal, wal_group)
            .shared()
    };
    // Drop every store commit (snapshot tmp + delta-segment tmp) of the
    // crashing ranks; journal generations (`.ttl.wNNNNNN.nt`) match
    // neither substring and stay writable.
    let plan_for = || {
        let plan = FaultPlan::new(seed ^ 0xF1);
        for &(r, _) in &crashes {
            let pid = 100 + r;
            plan.add_rule(
                FaultRule::fail(FaultOp::WriteAt, FsError::Io)
                    .on_path(format!("prov_p{pid}.ttl.tmp")),
            );
            plan.add_rule(
                FaultRule::fail(FaultOp::WriteAt, FsError::Io)
                    .on_path(format!("prov_p{pid}.ttl.d")),
            );
        }
        plan
    };
    let timing = |iri: &str| iri.ends_with("#timestamp") || iri.ends_with("#elapsed");
    let structural_missing = |from: &prov_io::rdf::Graph, merged: &prov_io::rdf::Graph| {
        from.iter()
            .filter(|t| !timing(t.predicate.as_str()) && !merged.contains(t))
            .count()
    };

    // Loss-measurement baseline: the crashed ranks' exact pre-crash work,
    // committed cleanly (no faults, no crash).
    let (base_cluster, _) = run_world(world, &crashes, WorldMode::Truncated, &cfg_for(false), None);
    let (baseline, _) = merge_directory(&base_cluster.fs, "/provio");
    // Ghost baseline: survivors only.
    let (ghost_cluster, _) = run_world(world, &crashes, WorldMode::Ghost, &cfg_for(false), None);
    let (ghost, _) = merge_directory(&ghost_cluster.fs, "/provio");
    let crashed_work = structural_missing(&baseline, &ghost);
    assert!(crashed_work > 0, "crashed ranks did measurable pre-crash work");

    // wal = false: exact loss — everything the crashed ranks recorded.
    let (c_off, _) = run_world(world, &crashes, WorldMode::Faulted, &cfg_for(false), Some(plan_for()));
    let (g_off, m_off) = merge_directory(&c_off.fs, "/provio");
    assert_eq!(m_off.replayed_triples, 0, "no journal, nothing to replay");
    assert_eq!(
        structural_missing(&baseline, &g_off),
        crashed_work,
        "without the journal, loss is exact: the crashed ranks' entire output"
    );
    assert_eq!(
        structural_missing(&ghost, &g_off),
        0,
        "survivor provenance is never collateral damage"
    );

    // wal = true: replay recovers the journaled records; residual loss is
    // bounded by the group-commit size per crashed rank.
    let (c_on, _) = run_world(world, &crashes, WorldMode::Faulted, &cfg_for(true), Some(plan_for()));
    let (g_on, m_on) = merge_directory(&c_on.fs, "/provio");
    assert!(m_on.replayed_triples > 0, "journal replay recovered records");
    let residual = structural_missing(&baseline, &g_on);
    assert!(
        residual <= crashes.len() * wal_group as usize,
        "bounded loss: {residual} missing > {} crashed ranks x wal_group {wal_group}",
        crashes.len()
    );
    assert_eq!(structural_missing(&ghost, &g_on), 0);
    assert!(doctor(&g_on).is_clean());
}

#[test]
fn transient_flush_failures_trip_the_breaker_without_losing_triples() {
    // Rank 0's store hits persistent write failures mid-run: the breaker
    // trips (no retry storm), intermediate flushes are skipped, and finish
    // — which bypasses the open breaker — still lands every triple.
    let cluster = Cluster::new();
    let plan = FaultPlan::new(91);
    plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_path("prov_p300."));
    cluster.fs.install_faults(Arc::clone(&plan));

    let cfg = ProvIoConfig::default()
        .with_policy(SerializationPolicy::EveryRecords(1))
        .synchronous()
        .with_retry(RetryPolicy {
            max_attempts: 1,
            backoff_ns: 0,
            ..RetryPolicy::default()
        })
        .with_breaker(2, 10_000_000_000) // trip after 2 failures, 10s backoff
        .shared();

    let world = MpiWorld::new(4);
    let outcomes = world.superstep_named("write", |ctx| {
        let pid = 300 + ctx.rank;
        let (_s, h5) =
            cluster.process(pid, "alice", "pusher", ctx.clock().clone(), Some(&cfg));
        for i in 0..6 {
            let f = h5.create_file(&format!("/burst_r{}_{i}.h5", ctx.rank)).unwrap();
            h5.close_file(f).unwrap();
        }
    });
    assert!(outcomes.iter().all(|o| o.is_completed()));

    // Stop injecting before finish: the failure was transient after all.
    cluster.fs.clear_faults();
    let summaries = cluster.registry.finish_all();
    let s300 = &summaries.iter().find(|(p, _)| *p == 300).unwrap().1;
    assert!(s300.breaker_trips >= 1, "breaker tripped: {s300:?}");
    assert!(
        s300.breaker_skipped >= 1,
        "open breaker skipped flushes instead of hammering the store"
    );
    assert_eq!(
        s300.breaker_state, "closed",
        "successful finish closed the breaker"
    );
    assert!(plan.injected() >= 2, "failures actually happened");

    // No triple lost: every file every rank created is in the merged graph.
    let (graph, mrep) = merge_directory(&cluster.fs, "/provio");
    assert!(mrep.corrupt.is_empty());
    let engine = ProvQueryEngine::new(graph);
    for rank in 0..4u32 {
        for i in 0..6 {
            assert!(
                engine
                    .entity_by_label(&format!("/burst_r{rank}_{i}.h5"))
                    .is_some(),
                "rank {rank} file {i} survived the breaker episode"
            );
        }
    }
}
