//! End-to-end integration: capture → store → merge → query for each of the
//! three evaluation workflows, spanning every workspace crate.

use prov_io::prelude::*;
use prov_io::workflows::{dassa, h5bench, topreco};

#[test]
fn topreco_capture_to_query() {
    let cluster = Cluster::new();
    let out = topreco::run(
        &cluster,
        &topreco::TopRecoParams {
            epochs: 8,
            n_configs: 6,
            n_events: 5_000,
            epoch_compute: SimDuration::from_secs(10),
            seed: 4,
            mode: ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::topreco()),
            ),
            run_id: 0,
        },
    );
    assert!(out.metrics.prov_bytes > 0);

    let (graph, report) = merge_directory(&cluster.fs, &out.prov_dir);
    assert_eq!(report.files, 1);
    assert!(report.corrupt.is_empty());

    let engine = ProvQueryEngine::new(graph);
    // The Table 5 Top Reco query: version ↔ accuracy mapping.
    let sols = engine
        .sparql(
            "SELECT ?configuration ?version ?accuracy WHERE { \
               ?configuration provio:version ?version ; provio:hasAccuracy ?accuracy . }",
        )
        .unwrap();
    assert_eq!(sols.len(), 6, "one row per tracked configuration");
    // The recorded accuracy equals the workflow's final accuracy.
    let acc = sols.rows[0]["accuracy"]
        .as_literal()
        .unwrap()
        .as_f64()
        .unwrap();
    assert!((acc - out.final_accuracy).abs() < 1e-9);
}

#[test]
fn dassa_capture_to_lineage_and_viz() {
    let cluster = Cluster::new();
    let out = dassa::run(
        &cluster,
        &dassa::DassaParams {
            n_files: 6,
            nodes: 3,
            file_mib: 16,
            channels: 6,
            datasets: 2,
            seed: 2,
            mode: ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::dassa_dataset_lineage()),
            ),
        },
    );
    // 3 phases × 3 nodes of tracked processes.
    assert_eq!(out.metrics.prov_files, 9);

    let (graph, report) = merge_directory(&cluster.fs, &out.prov_dir);
    assert_eq!(report.files, 9);
    let mut engine = ProvQueryEngine::new(graph);
    engine.derive_lineage();

    // Every decimate product has a lineage that reaches a raw input.
    for i in 0..6 {
        let label = format!("/dassa/products/decimate_{i:04}.h5");
        let product = engine.entity_by_label(&label).unwrap_or_else(|| {
            panic!("{label} missing from provenance");
        });
        let lineage = engine.backward_lineage(&product);
        assert!(
            lineage
                .iter()
                .filter_map(|g| engine.label_of(g))
                .any(|l| l.ends_with(".tdms")),
            "{label} lineage does not reach raw input"
        );
    }

    // The visualization renders and highlights.
    let product = engine
        .entity_by_label("/dassa/products/decimate_0000.h5")
        .unwrap();
    let lineage = engine.backward_lineage(&product);
    let dot = prov_io::core::engine::viz::to_dot_lineage(engine.graph(), &product, &lineage);
    assert!(dot.contains("#1f5fd0"), "lineage highlighted in blue");
}

#[test]
fn h5bench_capture_to_stats() {
    let cluster = Cluster::new();
    let out = h5bench::run(
        &cluster,
        &h5bench::H5benchParams {
            ranks: 8,
            pattern: h5bench::IoPattern::WriteOverwriteRead,
            steps: 2,
            particles_per_rank: 1 << 12,
            blocks: 2,
            compute_per_step: SimDuration::from_secs(25),
            seed: 1,
            mode: ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::h5bench_scenario2()),
            ),
        },
    );
    assert_eq!(out.metrics.prov_files, 8, "one sub-graph per rank");

    let (graph, _) = merge_directory(&cluster.fs, &out.prov_dir);
    let stats = IoStats::from_graph(&graph, 1_000_000_000);
    // Two write passes + one read pass per step → writes outnumber reads.
    let w = &stats.by_class["Write"];
    let r = &stats.by_class["Read"];
    assert!(w.count > r.count, "writes {} vs reads {}", w.count, r.count);
    // Scenario 2 recorded durations.
    assert!(w.total_duration_ns > 0);
    assert!(stats.bottleneck().is_some());
    // Total ops match the tracker's event count.
    assert_eq!(stats.total_ops(), out.metrics.tracked_events);
}

#[test]
fn baseline_and_tracked_produce_identical_science() {
    // Provenance must never change workflow results (transparency).
    let base = topreco::run(
        &Cluster::new(),
        &topreco::TopRecoParams {
            epochs: 6,
            n_configs: 4,
            n_events: 2_000,
            epoch_compute: SimDuration::from_secs(5),
            seed: 9,
            mode: ProvMode::Off,
            run_id: 0,
        },
    );
    let tracked = topreco::run(
        &Cluster::new(),
        &topreco::TopRecoParams {
            epochs: 6,
            n_configs: 4,
            n_events: 2_000,
            epoch_compute: SimDuration::from_secs(5),
            seed: 9,
            mode: ProvMode::provio(ProvIoConfig::default()),
            run_id: 0,
        },
    );
    assert_eq!(base.accuracy_curve, tracked.accuracy_curve);
    assert_eq!(base.final_accuracy, tracked.final_accuracy);
}

#[test]
fn multi_run_provenance_merges_without_duplication() {
    // The paper's future-work scenario (§8): integrate provenance across
    // executions. Content-addressed GUIDs make the merge safe.
    let cluster = Cluster::new();
    for run_id in [1u32, 2] {
        topreco::run(
            &cluster,
            &topreco::TopRecoParams {
                epochs: 4,
                n_configs: 4,
                n_events: 2_000,
                epoch_compute: SimDuration::from_secs(5),
                seed: 5, // same seed → same configurations
                mode: ProvMode::provio(
                    ProvIoConfig::default().with_selector(ClassSelector::topreco()),
                ),
                run_id,
            },
        );
    }
    let mut graph = prov_io::rdf::Graph::new();
    for run_id in [1u32, 2] {
        let (g, _) = merge_directory(&cluster.fs, &format!("/topreco/run{run_id}/provio"));
        graph.merge(&g);
    }
    let engine = ProvQueryEngine::new(graph);
    // Identical configurations from the two runs merged into single nodes.
    let sols = engine
        .sparql("SELECT DISTINCT ?c WHERE { ?c a provio:Configuration . }")
        .unwrap();
    assert_eq!(sols.len(), 4, "same configs across runs share GUIDs");
    // But per-run records stayed distinct: one Metrics node per epoch per
    // run (their GUIDs embed the minting process).
    let metrics = engine
        .sparql("SELECT DISTINCT ?m WHERE { ?m a provio:Metrics . }")
        .unwrap();
    assert_eq!(metrics.len(), 2 * 4);
}
