//! End-to-end self-healing: a multi-rank workflow writes parity-protected
//! checksummed stores and seals a signed manifest; a single artifact per
//! parity group is then lost or corrupted at rest, and the scrub pass must
//! restore the run to *zero data loss* — every repaired file byte-identical
//! to what was sealed, the manifest verifying again, and the final
//! [`RunReport`] complete. Beyond tolerance, the PR 4/5 loss accounting
//! (salvage, quarantine, honest incompleteness) must stand untouched.
//!
//! The sweep is environment-parameterized so CI can matrix it:
//! `PROVIO_SCRUB_SEED` (damage placement), `PROVIO_SCRUB_DAMAGE`
//! (`corrupt` | `delete` | `tamper` | `parity` | `parity-destroy`),
//! `PROVIO_SCRUB_GROUP` (parity group width).

use prov_io::prelude::*;
use prov_io::rdf::ntriples;
use prov_io::simrt::{DetRng, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

const KEY: &str = "scrub-campaign-key";

fn env_u64(k: &str, default: u64) -> u64 {
    std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_str(k: &str, default: &str) -> String {
    std::env::var(k).unwrap_or_else(|_| default.to_string())
}

/// A 4-rank parity-protected run. Ranks in `killed` are forgotten instead
/// of finished: their stores survive as snapshot + delta segments (and,
/// when the flush cadence leaves a journaled tail, a live WAL generation)
/// — never compacted, so their mid-run parity groups (width `group`) are
/// what protects them. Survivors compact at finish and get a forced
/// single-member seal over the final snapshot. `finish_all` seals the
/// signed manifest over whatever is on disk.
fn run_world(
    killed: &[u32],
    group: u32,
    flush_every: u32,
    files_per_rank: u32,
    plan: Option<std::sync::Arc<FaultPlan>>,
) -> Cluster {
    let cluster = Cluster::new();
    if let Some(plan) = plan {
        cluster.fs.install_faults(plan);
    }
    let cfg = ProvIoConfig::from_ini(&format!(
        "[provio]\n\
         format = ntriples\n\
         policy = every:{flush_every}\n\
         async = false\n\
         [store]\n\
         checksum_format = true\n\
         delta_segments = true\n\
         compact_every = 0\n\
         wal = true\n\
         wal_group = 2\n\
         parity = true\n\
         parity_group = {group}\n\
         manifest = true\n\
         manifest_key = {KEY}\n"
    ))
    .unwrap()
    .shared();
    let world = MpiWorld::new(4);
    let outcomes = world.superstep_named("produce", |ctx| {
        let pid = 700 + ctx.rank;
        let (_s, h5) = cluster.process(pid, "alice", "scrubwf", ctx.clock().clone(), Some(&cfg));
        for i in 0..files_per_rank {
            let f = h5
                .create_file(&format!("/data_r{}_{i}.h5", ctx.rank))
                .unwrap();
            h5.close_file(f).unwrap();
        }
    });
    assert!(outcomes.iter().all(|o| o.is_completed()));
    for &rank in killed {
        if let Some(t) = cluster.registry.unregister(700 + rank) {
            std::mem::forget(t); // killed process: no Drop, no final flush
        }
    }
    cluster.registry.finish_all();
    cluster
}

fn read(fs: &Arc<FileSystem>, path: &str) -> Vec<u8> {
    let ino = fs.lookup(path).unwrap();
    let md = fs.stat(path).unwrap();
    fs.read_at(ino, 0, md.size).unwrap().to_vec()
}

/// Byte image of every file under /provio — the ground truth a repair must
/// restore exactly.
fn disk_image(fs: &Arc<FileSystem>) -> BTreeMap<String, Vec<u8>> {
    fs.walk_files("/provio")
        .unwrap()
        .into_iter()
        .map(|p| {
            let bytes = read(fs, &p);
            (p, bytes)
        })
        .collect()
}

fn lines(g: &prov_io::rdf::Graph) -> BTreeSet<String> {
    ntriples::serialize(g).lines().map(str::to_string).collect()
}

fn is_parity(p: &str) -> bool {
    p.ends_with(".par")
}

/// The seeded sweep: one covered artifact (or its parity file) is damaged,
/// and the run must come back with zero data loss.
#[test]
fn single_damage_within_tolerance_repairs_to_zero_loss() {
    let seed = env_u64("PROVIO_SCRUB_SEED", 17);
    let damage = env_str("PROVIO_SCRUB_DAMAGE", "corrupt");
    let group = env_u64("PROVIO_SCRUB_GROUP", 2) as u32;

    // Rank 2 is killed: its store survives uncompacted with mid-run parity
    // groups over its snapshot and delta segments.
    let cluster = run_world(&[2], group, 2, 8, None);
    let fs = &cluster.fs;

    // Ground truth before any damage.
    let sealed_image = disk_image(fs);
    let (baseline, rb) = merge_directory(fs, "/provio");
    assert!(rb.corrupt.is_empty() && rb.quarantined.is_empty());
    let baseline_lines = lines(&baseline);
    assert!(verify_directory(fs, "/provio", KEY).is_trusted());
    assert!(scrub_directory(fs, "/provio").is_clean(), "clean run scrubs clean");

    // Target pool: what the sealed parity actually covers. Members for the
    // member-damage kinds, parity files for the parity kinds.
    let covered = repairable_paths(fs, "/provio");
    let mut members: Vec<String> = covered.iter().filter(|p| !is_parity(p)).cloned().collect();
    members.sort();
    let mut parities: Vec<String> = covered.iter().filter(|p| is_parity(p)).cloned().collect();
    parities.sort();
    assert!(!members.is_empty() && !parities.is_empty(), "parity coverage exists");
    // Tampering forges a framed store file; journal generations are
    // framed per chunk, so restrict that kind to snapshot/segment files.
    let tamperable: Vec<String> = members
        .iter()
        .filter(|p| !prov_io::core::frame::is_wal_path(p))
        .cloned()
        .collect();

    let mut rng = DetRng::new(seed);
    let target = match damage.as_str() {
        "tamper" => tamperable[rng.below(tamperable.len() as u64) as usize].clone(),
        "parity" | "parity-destroy" => parities[rng.below(parities.len() as u64) as usize].clone(),
        _ => members[rng.below(members.len() as u64) as usize].clone(),
    };
    match damage.as_str() {
        "corrupt" => {
            fs.corrupt_at_rest(&target, &CorruptKind::BitFlips { count: 3 }, seed).unwrap();
        }
        "delete" => fs.unlink(&target).unwrap(),
        "tamper" => {
            fs.tamper_at_rest(&target, &TamperKind::CrcPatchedRewrite, seed).unwrap();
        }
        "parity" => {
            // Hit the data block itself (base64 XOR for multi-member
            // groups, an escaped raw replica for single-member ones): the
            // member records survive, so the parity file must regenerate
            // byte-identical.
            let text = String::from_utf8(read(fs, &target)).unwrap();
            let header_at = text.find(" b64=").unwrap_or_else(|| {
                let raw = text.find("enc=raw").expect("parity data line");
                raw + text[raw..].find('\n').expect("replica follows header")
            }) as u64;
            let span = (text.len() as u64 - header_at) / 2;
            let mut off = header_at + 5 + rng.below(span.max(1));
            // Rot a content byte, not a line break: severing a replica
            // line would change the frame's line counts, which models a
            // different (structural) failure than bit rot in the block.
            while text.as_bytes()[off as usize] == b'\n' {
                off += 1;
            }
            let ino = fs.lookup(&target).unwrap();
            fs.write_at(ino, off, b"\x00", SimTime::ZERO).unwrap();
        }
        "parity-destroy" => {
            // Obliterate the whole parity file: redundancy is honestly
            // lost, but no data is — completeness must survive.
            fs.corrupt_at_rest(&target, &CorruptKind::ZeroFill, seed).unwrap();
        }
        other => panic!("unknown PROVIO_SCRUB_DAMAGE {other}"),
    }
    assert_ne!(
        disk_image(fs).get(&target),
        sealed_image.get(&target),
        "the damage actually landed on {target}"
    );

    let scrubbed = scrub_directory(fs, "/provio");
    match damage.as_str() {
        "parity" => {
            assert_eq!(scrubbed.repaired_parity, vec![target.clone()], "{scrubbed}");
            assert!(scrubbed.fully_repaired(), "{scrubbed}");
        }
        "parity-destroy" => {
            assert_eq!(scrubbed.unusable_parity, vec![target.clone()], "{scrubbed}");
            assert!(scrubbed.unrecoverable.is_empty(), "{scrubbed}");
        }
        _ => {
            assert_eq!(scrubbed.repaired_files, vec![target.clone()], "{scrubbed}");
            assert!(scrubbed.fully_repaired(), "{scrubbed}");
        }
    }

    // Zero data loss, literally: every file byte-identical to the sealed
    // image (the destroyed-parity case loses only the parity file itself).
    let healed = disk_image(fs);
    for (path, bytes) in &sealed_image {
        if damage == "parity-destroy" && path == &target {
            continue;
        }
        assert_eq!(
            healed.get(path).map(Vec::len),
            Some(bytes.len()),
            "file size restored: {path}"
        );
        assert!(healed.get(path) == Some(bytes), "byte-identical after scrub: {path}");
    }

    // The sealed manifest verifies again after repair. A destroyed parity
    // file is the one honest exception: unframed bytes where a framed
    // artifact was sealed are indistinguishable from replacement, so that
    // file — and only that file — fails verification, while every data
    // artifact still verifies.
    let verified = verify_directory(fs, "/provio", KEY);
    if damage == "parity-destroy" {
        assert_eq!(verified.count(FileVerdict::Tampered), 1, "{verified}");
        assert!(!verified.is_trusted());
    } else {
        assert!(verified.is_trusted(), "{verified}");
        assert_eq!(verified.count(FileVerdict::Damaged), 0, "{verified}");
        assert_eq!(verified.count(FileVerdict::Missing), 0, "{verified}");
    }

    // And the merged graph is exactly the fault-free one.
    let (merged, mrep) = merge_directory(fs, "/provio");
    assert_eq!(lines(&merged), baseline_lines, "merge sees no damage at all");
    assert!(mrep.corrupt.is_empty() && mrep.quarantined.is_empty(), "{mrep}");
    assert_eq!(mrep.chain_breaks, 0);

    let mut report = RunReport::new(4);
    report.record_outcomes::<()>(&[]);
    report.attach_merge(rb.files, &mrep);
    report.attach_scrub(&scrubbed);
    report.attach_verify(&verified);
    assert!(report.is_complete(), "zero data loss: {report}");
    if damage != "parity-destroy" {
        assert!(report.is_trusted(), "{report}");
    }
    if damage != "parity" && damage != "parity-destroy" {
        assert_eq!(report.scrub_repaired_files, 1);
        assert!(report.to_string().contains("scrub: 1 files repaired"), "{report}");
    }
}

/// The crashed rank's journal tail — the bytes its WAL held that no
/// snapshot or segment ever covered — is itself parity-protected: rot it
/// (or delete the whole generation) and scrub must bring the replayed
/// triples back bit-for-bit.
#[test]
fn crashed_rank_journal_tail_survives_damage() {
    let seed = env_u64("PROVIO_SCRUB_SEED", 17);
    // Rank 1's store commits are all dropped by fault injection (snapshot
    // tmp and delta-segment writes fail), so its records live *only* in
    // its journal — the crashed-rank tail. Width 1 seals parity per
    // journal chunk, so the whole generation is covered as it commits.
    let plan = FaultPlan::new(seed ^ 0x5C);
    plan.add_rule(FaultRule::fail(FaultOp::WriteAt, prov_io::hpcfs::FsError::Io).on_path("prov_p701.nt.tmp"));
    plan.add_rule(FaultRule::fail(FaultOp::WriteAt, prov_io::hpcfs::FsError::Io).on_path("prov_p701.nt.d"));
    let cluster = run_world(&[1], 1, 4, 8, Some(plan));
    let fs = &cluster.fs;

    let gens: Vec<String> = fs
        .walk_files("/provio")
        .unwrap()
        .into_iter()
        .filter(|p| p.contains("prov_p701") && prov_io::core::frame::is_wal_path(p))
        .collect();
    assert!(!gens.is_empty(), "the killed rank left a live journal generation");

    let sealed_image = disk_image(fs);
    let (baseline, rb) = merge_directory(fs, "/provio");
    assert!(
        !baseline.is_empty() && rb.replayed_triples > 0,
        "the crashed rank's tail only exists in its journal: {rb}"
    );
    let baseline_lines = lines(&baseline);

    let mut rng = DetRng::new(seed);
    let target = gens[rng.below(gens.len() as u64) as usize].clone();
    if rng.chance(0.5) {
        fs.corrupt_at_rest(&target, &CorruptKind::BitFlips { count: 2 }, seed).unwrap();
    } else {
        fs.unlink(&target).unwrap();
    }

    let scrubbed = scrub_directory(fs, "/provio");
    assert!(scrubbed.repaired_files.contains(&target), "{scrubbed}");
    assert!(scrubbed.fully_repaired(), "{scrubbed}");
    let healed = disk_image(fs);
    for (path, bytes) in &sealed_image {
        assert!(healed.get(path) == Some(bytes), "byte-identical after scrub: {path}");
    }

    let (merged, mrep) = merge_directory(fs, "/provio");
    assert_eq!(lines(&merged), baseline_lines);
    assert_eq!(mrep.replayed_triples, rb.replayed_triples, "the tail replays in full");
    assert_eq!(mrep.wal_tails_truncated, 0, "{mrep}");
    assert!(verify_directory(fs, "/provio", KEY).is_trusted());
}

/// Two members lost in one group: over tolerance. Scrub must refuse to
/// guess, report the loss, and leave the PR 4/5 accounting (salvage,
/// quarantine, honest incompleteness) exactly as it was.
#[test]
fn beyond_tolerance_falls_back_to_loss_accounting() {
    let cluster = run_world(&[2], 2, 2, 8, None);
    let fs = &cluster.fs;

    // The killed rank's first commit-plane group covers its snapshot and
    // first delta segment (commit order, width 2).
    let snap = "/provio/prov_p702.nt";
    let seg = "/provio/prov_p702.nt.d000000.nt";
    assert!(fs.exists(snap) && fs.exists(seg));
    let (_, rb) = merge_directory(fs, "/provio");
    fs.unlink(snap).unwrap();
    fs.unlink(seg).unwrap();

    let before = disk_image(fs);
    let scrubbed = scrub_directory(fs, "/provio");
    let mut lost = scrubbed.unrecoverable.clone();
    lost.sort();
    assert_eq!(lost, vec![snap.to_string(), seg.to_string()], "{scrubbed}");
    assert!(scrubbed.repaired_files.is_empty(), "no partial guesses");
    // Scrub touched nothing it could not prove.
    assert_eq!(disk_image(fs), before, "over-tolerance scrub is read-only");

    // Loss accounting stands: fewer sub-graphs, missing files on verify,
    // and the run is honestly incomplete.
    let (_, mrep) = merge_directory(fs, "/provio");
    assert!(mrep.files < rb.files);
    let verified = verify_directory(fs, "/provio", KEY);
    assert!(verified.count(FileVerdict::Missing) >= 2, "{verified}");
    assert!(!verified.is_trusted());
    let mut report = RunReport::new(4);
    report.attach_merge(rb.files, &mrep);
    report.attach_scrub(&scrubbed);
    report.attach_verify(&verified);
    assert!(!report.is_complete(), "{report}");
    assert_eq!(report.scrub_unrecoverable, 2);
}
