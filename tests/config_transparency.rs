//! The transparency claim (paper Table 4): users control provenance
//! through a configuration *file*, without modifying workflow source.

use prov_io::prelude::*;
use provio_simrt::SimTime;
use std::sync::Arc;

/// The same untouched "workflow function" runs under different provenance
/// configurations loaded from a file on the (simulated) file system.
fn the_workflow(session: &FsSession, h5: &H5) {
    session.mkdir("/wf").unwrap();
    session.write_file("/wf/input.dat", b"raw bytes").unwrap();
    let f = h5.create_file("/wf/out.h5").unwrap();
    let g = h5.create_group(f, "g").unwrap();
    let d = h5
        .write_dataset_full(g, "x", Datatype::Int32, &[8], &Data::synthetic(32))
        .unwrap();
    h5.create_attr(d, "origin", Datatype::VarString, b"/wf/input.dat")
        .unwrap();
    h5.close_dataset(d).unwrap();
    h5.close_group(g).unwrap();
    h5.close_file(f).unwrap();
}

/// Drop `ini` at /etc/provio.ini, launch the workflow under it, and return
/// (cluster, tracked events, store dir).
fn run_with_config(ini: &str) -> (Cluster, u64, String) {
    let cluster = Cluster::new();
    cluster.fs.mkdir_all("/etc", "admin", SimTime::ZERO).unwrap();
    let boot = FsSession::new(
        Arc::clone(&cluster.fs),
        1,
        "admin",
        "launcher",
        VirtualClock::new(),
        prov_io::hpcfs::Dispatcher::new(),
    );
    boot.write_file("/etc/provio.ini", ini.as_bytes()).unwrap();

    // Process start: read the config file, attach, run unmodified code.
    let text = String::from_utf8(boot.read_file("/etc/provio.ini").unwrap()).unwrap();
    let cfg = ProvIoConfig::from_ini(&text).expect("valid config").shared();
    let store_dir = cfg.store_dir.clone();
    let (session, h5) = cluster.process(10, "alice", "sci_app", VirtualClock::new(), Some(&cfg));
    the_workflow(&session, &h5);
    let events = cluster
        .registry
        .finish_all()
        .iter()
        .map(|(_, s)| s.events)
        .sum();
    (cluster, events, store_dir)
}

#[test]
fn full_tracking_from_config_file() {
    let (cluster, events, store_dir) =
        run_with_config("[provio]\npreset = all\nstore_dir = /prov_all\n");
    assert!(events >= 6, "POSIX + HDF5 events captured: {events}");
    assert_eq!(store_dir, "/prov_all");
    let (graph, _) = merge_directory(&cluster.fs, &store_dir);
    let engine = ProvQueryEngine::new(graph);
    assert!(engine.entity_by_label("/wf/out.h5").is_some());
    assert!(engine.entity_by_label("/wf/input.dat").is_some());
}

#[test]
fn granularity_flips_without_source_changes() {
    let mut counts = Vec::new();
    for preset in ["dassa_file", "dassa_dataset", "dassa_attribute"] {
        let ini = format!(
            "[provio]\npreset = {preset}\nstore_dir = /prov_{preset}\nformat = ntriples\n"
        );
        let (_, events, _) = run_with_config(&ini);
        counts.push(events);
    }
    assert!(
        counts[0] < counts[1] && counts[1] < counts[2],
        "granularity controls captured events: {counts:?}"
    );
}

#[test]
fn tracking_disabled_by_config() {
    let (cluster, events, store_dir) =
        run_with_config("[provio]\npreset = none\nstore_dir = /prov_off\n");
    assert_eq!(events, 0);
    let (bytes, _) = cluster.prov_usage(&store_dir);
    // Only the (empty-ish) store file at most; no event records.
    let (graph, _) = merge_directory(&cluster.fs, &store_dir);
    let engine = ProvQueryEngine::new(graph);
    assert!(engine.entity_by_label("/wf/out.h5").is_none());
    let _ = bytes;
}

#[test]
fn ntriples_format_selected_by_config() {
    let (cluster, _, store_dir) = run_with_config(
        "[provio]\npreset = all\nstore_dir = /prov_nt\nformat = ntriples\n",
    );
    let files = cluster.fs.walk_files(&store_dir).unwrap();
    assert!(files.iter().all(|f| f.ends_with(".nt")), "{files:?}");
}

#[test]
fn bad_config_rejected_before_workflow_start() {
    assert!(ProvIoConfig::from_ini("preset = everything_and_more").is_err());
    assert!(ProvIoConfig::from_ini("policy = every:not_a_number").is_err());
}

#[test]
fn parity_misconfiguration_rejected_before_workflow_start() {
    // A zero-width group would seal a parity file per commit member with
    // nothing to XOR against — reject it like `wal_group = 0`.
    let err = ProvIoConfig::from_ini("[store]\nparity_group = 0\n").unwrap_err();
    assert!(err.contains("parity_group"), "{err}");
    // Parity reconstruction verifies against recorded CRCs; without the
    // checksummed frame format there is nothing to verify repairs against.
    let err = ProvIoConfig::from_ini("[store]\nparity = true\n").unwrap_err();
    assert!(err.contains("checksum_format"), "{err}");
    // Key order in the file must not matter (cross-key check runs after
    // the whole file parses).
    assert!(
        ProvIoConfig::from_ini("[store]\nparity = true\nchecksum_format = false\n").is_err()
    );
    assert!(
        ProvIoConfig::from_ini("[store]\nchecksum_format = true\nparity = true\n").is_ok()
    );
}

#[test]
fn parity_enabled_by_config_file_alone() {
    // Transparency extends to redundancy: parity files appear (and protect
    // the store) with zero workflow-source changes.
    let (cluster, _, store_dir) = run_with_config(
        "[provio]\npreset = all\nstore_dir = /prov_par\nformat = ntriples\npolicy = every:1\n\
         [store]\nchecksum_format = true\ndelta_segments = true\nparity = true\nparity_group = 2\n",
    );
    let files = cluster.fs.walk_files(&store_dir).unwrap();
    assert!(
        files.iter().any(|f| f.ends_with(".par")),
        "parity files sealed from config alone: {files:?}"
    );
    let report = scrub_directory(&cluster.fs, &store_dir);
    assert!(report.is_clean(), "fresh run scrubs clean: {report}");
    assert!(report.groups > 0);
}
