//! Concurrency integration: many ranks on one shared file, per-process
//! sub-graphs, duplication-free merge, and scheduling-independent virtual
//! time.

use prov_io::prelude::*;
use prov_io::model::ontology::nodes_of_class;

/// N ranks concurrently write disjoint slabs of one shared dataset, each
/// tracked as its own process.
fn run_shared_file(ranks: u32) -> (Cluster, u64) {
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::default().shared();

    // Boot rank creates the file + dataset.
    let (_s0, h5_boot) = cluster.process(500, "alice", "writer", VirtualClock::new(), Some(&cfg));
    let f = h5_boot.create_file("/shared.h5").unwrap();
    let d = h5_boot
        .create_dataset(
            f,
            "x",
            Datatype::Float64,
            Dataspace::fixed(&[ranks as u64 * 1024]),
        )
        .unwrap();
    h5_boot.close_dataset(d).unwrap();
    h5_boot.close_file(f).unwrap();

    let world = MpiWorld::new(ranks);
    world.superstep(|ctx| {
        let (_s, h5) = cluster.process(
            1000 + ctx.rank,
            "alice",
            "writer",
            ctx.clock().clone(),
            Some(&cfg),
        );
        let f = h5.open_file("/shared.h5", true).unwrap();
        let d = h5.open_dataset(f, "x").unwrap();
        h5.write(
            d,
            &Hyperslab::new(&[ctx.rank as u64 * 1024], &[1024]),
            &Data::synthetic(8 * 1024),
        )
        .unwrap();
        h5.close_dataset(d).unwrap();
        h5.close_file(f).unwrap();
    });

    let events = cluster
        .registry
        .finish_all()
        .iter()
        .map(|(_, s)| s.events)
        .sum();
    (cluster, events)
}

#[test]
fn parallel_ranks_merge_complete_and_duplicate_free() {
    let ranks = 16;
    let (cluster, events) = run_shared_file(ranks);
    // boot: create file + create dataset; per rank: open file + open
    // dataset + write.
    assert_eq!(events, 2 + ranks as u64 * 3);

    let (graph, report) = merge_directory(&cluster.fs, "/provio");
    assert_eq!(report.files, ranks as usize + 1);
    assert!(report.corrupt.is_empty());

    // Exactly ONE node for the shared file and ONE for the dataset,
    // regardless of how many processes touched them.
    assert_eq!(nodes_of_class(&graph, EntityClass::File.into()).len(), 1);
    assert_eq!(nodes_of_class(&graph, EntityClass::Dataset.into()).len(), 1);
    // But one Write activity per rank.
    assert_eq!(
        nodes_of_class(&graph, ActivityClass::Write.into()).len(),
        ranks as usize
    );
    // One shared program agent; one thread agent per process.
    assert_eq!(nodes_of_class(&graph, AgentClass::Program.into()).len(), 1);
    assert_eq!(
        nodes_of_class(&graph, AgentClass::Thread.into()).len(),
        ranks as usize + 1
    );
}

#[test]
fn merge_is_independent_of_scheduling() {
    // Two runs with identical parameters produce identical merged graphs
    // even though thread interleavings differ.
    let (c1, _) = run_shared_file(8);
    let (c2, _) = run_shared_file(8);
    let (g1, _) = merge_directory(&c1.fs, "/provio");
    let (g2, _) = merge_directory(&c2.fs, "/provio");
    // Same size and same triple set modulo activity counters, which are
    // per-process deterministic — so the full serializations must match.
    let s1 = prov_io::rdf::turtle::serialize(&g1, &prov_io::rdf::Namespaces::standard());
    let s2 = prov_io::rdf::turtle::serialize(&g2, &prov_io::rdf::Namespaces::standard());
    // Timestamps/durations may differ (real tracking time is measured), so
    // compare graph shapes: node counts per class and triple count of
    // non-literal triples.
    assert_eq!(g1.len(), g2.len());
    assert_eq!(s1.lines().count(), s2.lines().count());
}

#[test]
fn virtual_time_is_scheduling_independent() {
    // The same workload must produce the same virtual completion time on
    // every run (real tracking time varies, so run untracked).
    let run = || {
        let cluster = Cluster::new();
        let world = MpiWorld::new(32);
        // Boot.
        let (_s, h5) = cluster.process(1, "u", "p", VirtualClock::new(), None);
        let f = h5.create_file("/t.h5").unwrap();
        let d = h5
            .create_dataset(f, "x", Datatype::Int64, Dataspace::fixed(&[32 * 512]))
            .unwrap();
        h5.close_dataset(d).unwrap();
        h5.close_file(f).unwrap();
        world.superstep(|ctx| {
            let (_s, h5) = cluster.process(100 + ctx.rank, "u", "p", ctx.clock().clone(), None);
            let f = h5.open_file("/t.h5", true).unwrap();
            let d = h5.open_dataset(f, "x").unwrap();
            h5.write(
                d,
                &Hyperslab::new(&[ctx.rank as u64 * 512], &[512]),
                &Data::synthetic(8 * 512),
            )
            .unwrap();
            h5.close_dataset(d).unwrap();
            h5.close_file(f).unwrap();
        });
        world.elapsed().as_nanos()
    };
    assert_eq!(run(), run());
}

#[test]
fn concurrent_tracked_processes_do_not_interfere() {
    // Two different users' programs run concurrently; each sub-graph
    // attributes work to the right agent.
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::default().shared();
    std::thread::scope(|s| {
        for (pid, user, program, file) in [
            (21u32, "alice", "sim_a", "/a.h5"),
            (22, "bob", "sim_b", "/b.h5"),
        ] {
            let cluster = &cluster;
            let cfg = cfg.clone();
            s.spawn(move || {
                let (_s, h5) =
                    cluster.process(pid, user, program, VirtualClock::new(), Some(&cfg));
                let f = h5.create_file(file).unwrap();
                h5.close_file(f).unwrap();
            });
        }
    });
    cluster.registry.finish_all();
    let (graph, _) = merge_directory(&cluster.fs, "/provio");
    let engine = ProvQueryEngine::new(graph);
    let a = engine.entity_by_label("/a.h5").unwrap();
    let b = engine.entity_by_label("/b.h5").unwrap();
    let pa = engine.programs_of(&a);
    let pb = engine.programs_of(&b);
    assert_eq!(engine.label_of(&pa[0]).unwrap(), "sim_a");
    assert_eq!(engine.label_of(&pb[0]).unwrap(), "sim_b");
}

#[test]
fn thousand_virtual_ranks_on_one_file() {
    // Scale check: 1024 virtual ranks, untracked, shared dataset.
    let cluster = Cluster::new();
    let ranks = 1024u32;
    let (_s, h5) = cluster.process(1, "u", "p", VirtualClock::new(), None);
    let f = h5.create_file("/big.h5").unwrap();
    let d = h5
        .create_dataset(
            f,
            "x",
            Datatype::Float64,
            Dataspace::fixed(&[ranks as u64 * 128]),
        )
        .unwrap();
    h5.close_dataset(d).unwrap();
    h5.close_file(f).unwrap();
    let world = MpiWorld::new(ranks);
    world.superstep(|ctx| {
        let (_s, h5) = cluster.process(2000 + ctx.rank, "u", "p", ctx.clock().clone(), None);
        let f = h5.open_file("/big.h5", true).unwrap();
        let d = h5.open_dataset(f, "x").unwrap();
        h5.write(
            d,
            &Hyperslab::new(&[ctx.rank as u64 * 128], &[128]),
            &Data::synthetic(8 * 128),
        )
        .unwrap();
        h5.close_dataset(d).unwrap();
        h5.close_file(f).unwrap();
    });
    // All slabs written: dataset is fully sized.
    let (_s2, h5v) = cluster.process(9999, "u", "verify", VirtualClock::new(), None);
    let f = h5v.open_file("/big.h5", false).unwrap();
    let d = h5v.open_dataset(f, "x").unwrap();
    let got = h5v
        .read(d, &Hyperslab::new(&[0], &[ranks as u64 * 128]))
        .unwrap();
    assert_eq!(got.len(), ranks as u64 * 128 * 8);
}
