//! End-to-end trust: a multi-rank workflow finishes under `manifest =
//! true`, so `finish_all` seals the run — a signed `MANIFEST.provio` plus
//! a `CAMPAIGN.provio` ledger entry. An adversary then mutates the
//! committed bytes with format-aware tampering (CRC-patched rewrites,
//! batch substitution, manifest edits, ledger truncation), and
//! [`verify_directory`] must report every applied mutation with file-level
//! blast radius, zero false positives on the untouched run, and the same
//! verdict on re-verify. Legacy (pre-manifest) directories keep merging
//! and come back `Unsigned`, never an error.

use prov_io::prelude::*;
use prov_io::rdf::ntriples;
use prov_io::simrt::DetRng;
use std::collections::BTreeSet;
use std::sync::Arc;

const KEY: &str = "trust-suite-key";
const MANIFEST: &str = "/provio/MANIFEST.provio";
const LEDGER: &str = "/provio/CAMPAIGN.provio";

/// Run a `world_size`-rank workflow writing checksummed N-Triples stores.
/// With `manifest`, `finish_all` also seals the run. Ranks in `killed`
/// crash before their final flush — their files still end up in the
/// manifest, because the sealer walks the directory, not the registry.
fn run_world(world_size: u32, killed: &[u32], manifest: bool) -> Cluster {
    let cluster = Cluster::new();
    let trust_knobs = if manifest {
        format!("manifest = true\nmanifest_key = {KEY}\n")
    } else {
        String::new()
    };
    let cfg = ProvIoConfig::from_ini(&format!(
        "[provio]\n\
         format = ntriples\n\
         policy = every:2\n\
         async = false\n\
         [store]\n\
         checksum_format = true\n\
         {trust_knobs}"
    ))
    .unwrap()
    .shared();
    let world = MpiWorld::new(world_size);
    let outcomes = world.superstep_named("produce", |ctx| {
        let pid = 500 + ctx.rank;
        let (_s, h5) = cluster.process(pid, "alice", "trust", ctx.clock().clone(), Some(&cfg));
        for i in 0..6 {
            let f = h5
                .create_file(&format!("/data_r{}_{i}.h5", ctx.rank))
                .unwrap();
            h5.close_file(f).unwrap();
        }
    });
    assert!(outcomes.iter().all(|o| o.is_completed()));
    for &rank in killed {
        if let Some(t) = cluster.registry.unregister(500 + rank) {
            std::mem::forget(t); // killed process: no Drop, no final flush
        }
    }
    cluster.registry.finish_all();
    cluster
}

fn lines(g: &prov_io::rdf::Graph) -> BTreeSet<String> {
    ntriples::serialize(g).lines().map(str::to_string).collect()
}

/// Store files on disk — what the manifest signs: no trust artifacts, no
/// tmp droppings, no quarantine copies.
fn store_files(fs: &Arc<FileSystem>) -> Vec<String> {
    let mut files: Vec<String> = fs
        .walk_files("/provio")
        .unwrap()
        .into_iter()
        .filter(|p| {
            !p.ends_with(".tmp")
                && !p.ends_with(".quarantine")
                && !p.ends_with("MANIFEST.provio")
                && !p.ends_with("CAMPAIGN.provio")
        })
        .collect();
    files.sort();
    files
}

#[test]
fn sealed_run_is_trusted_files_of_crashed_ranks_included() {
    // Rank 2 crashes before its final flush; its surviving segments must
    // still be signed — the manifest covers the directory, not the ranks
    // that happened to exit cleanly.
    let cluster = run_world(4, &[2], true);
    let fs = &cluster.fs;

    assert!(fs.exists(MANIFEST), "finish_all sealed the run");
    assert!(fs.exists(LEDGER), "finish_all appended the campaign ledger");

    let report = verify_directory(fs, "/provio", KEY);
    assert!(report.is_trusted(), "clean sealed run: {report}");
    assert!(report.manifest_present && report.manifest_ok && report.ledger_ok);
    let files = store_files(fs);
    assert_eq!(
        report.count(FileVerdict::Verified),
        files.len(),
        "every store file verifies, including the crashed rank's: {report}"
    );
    assert_eq!(report.checks.len(), files.len(), "no spurious rows");
    assert!(
        files.iter().any(|f| f.contains("prov_p502.nt.d")),
        "crashed rank left segments and they are signed: {files:?}"
    );

    // Re-verify is idempotent — verifying changes nothing on disk.
    let again = verify_directory(fs, "/provio", KEY);
    assert_eq!(report.to_string(), again.to_string());

    // The merge is oblivious to the trust artifacts: same triples, no
    // complaints, manifest and ledger never enter the graph.
    let (graph, mrep) = merge_directory(fs, "/provio");
    assert!(mrep.corrupt.is_empty() && mrep.quarantined.is_empty());
    assert_eq!(mrep.files, files.len());
    assert!(
        !lines(&graph).iter().any(|l| l.contains("MANIFEST")),
        "trust artifacts stay out of the merged graph"
    );

    // Trust joins the run report next to completeness.
    let mut run = RunReport::new(4);
    run.attach_merge(mrep.files, &mrep);
    run.attach_verify(&report);
    assert!(run.is_trusted());
    assert!(run.to_string().contains("trust: TRUSTED"), "{run}");
}

/// Seeded adversarial sweep, parameterized by environment for the CI
/// matrix: `PROVIO_TAMPER_SEED`, `PROVIO_TAMPER_KIND`
/// (`crc` | `substitute` | `manifest` | `ledger` | `all`),
/// `PROVIO_TAMPER_MANIFEST` (`on` | `off` — `off` is the unsigned
/// ablation). Every applied mutation must flip the run to NOT TRUSTED
/// with blast radius confined to the mutated file; a mutation that found
/// no target (`affected == 0`) must leave the verdict untouched.
#[test]
fn seeded_tamper_sweep_every_mutation_is_detected() {
    let seed: u64 = std::env::var("PROVIO_TAMPER_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let kind_sel = std::env::var("PROVIO_TAMPER_KIND").unwrap_or_else(|_| "all".into());
    let signed = std::env::var("PROVIO_TAMPER_MANIFEST").as_deref() != Ok("off");

    let kinds: Vec<(&str, TamperKind)> = [
        ("crc", TamperKind::CrcPatchedRewrite),
        ("substitute", TamperKind::FileSubstitution),
        ("manifest", TamperKind::ManifestEdit),
        ("ledger", TamperKind::LedgerTruncate),
    ]
    .into_iter()
    .filter(|(name, _)| kind_sel == "all" || kind_sel == *name)
    // The unsigned ablation has no manifest or ledger to attack.
    .filter(|(name, _)| signed || (*name != "manifest" && *name != "ledger"))
    .collect();
    assert!(!kinds.is_empty(), "unknown PROVIO_TAMPER_KIND: {kind_sel}");

    for (name, kind) in kinds {
        let cluster = run_world(3, &[], signed);
        let fs = &cluster.fs;
        let files = store_files(fs);
        let mut rng = DetRng::new(seed);
        let target = match kind {
            TamperKind::ManifestEdit => MANIFEST.to_string(),
            TamperKind::LedgerTruncate => LEDGER.to_string(),
            _ => files[rng.below(files.len() as u64) as usize].clone(),
        };
        let affected = fs.tamper_at_rest(&target, &kind, seed).unwrap();
        let report = verify_directory(fs, "/provio", KEY);

        if !signed {
            // Ablation: without a manifest there is nothing to judge —
            // the CRC-patched forgery merges silently. That asymmetry is
            // the tentpole's whole argument.
            assert!(!report.manifest_present);
            assert!(report.ledger_ok, "no ledger to break");
            assert_eq!(report.count(FileVerdict::Tampered), 0);
            assert_eq!(report.count(FileVerdict::Unsigned), report.checks.len());
            let (_, mrep) = merge_directory(fs, "/provio");
            assert!(
                !mrep.corrupt.contains(&target) && !mrep.quarantined.contains(&target),
                "tamper={name} seed={seed}: a patched rewrite passes every CRC"
            );
            continue;
        }

        if affected == 0 {
            // Provably harmless: the mutation found no valid target and
            // changed nothing, so trust must be intact.
            assert!(report.is_trusted(), "tamper={name} seed={seed}: {report}");
            continue;
        }
        assert!(
            !report.is_trusted(),
            "tamper={name} seed={seed} went undetected: {report}"
        );

        match kind {
            TamperKind::CrcPatchedRewrite | TamperKind::FileSubstitution => {
                // Blast radius: exactly the mutated file, and it is
                // Tampered, not Damaged — every CRC still passes.
                assert_eq!(report.count(FileVerdict::Tampered), 1, "{report}");
                assert_eq!(report.count(FileVerdict::Damaged), 0, "{report}");
                assert_eq!(report.count(FileVerdict::Verified), files.len() - 1);
                let hit: Vec<&str> = report
                    .checks
                    .iter()
                    .filter(|c| c.verdict == FileVerdict::Tampered)
                    .map(|c| c.path.as_str())
                    .collect();
                assert_eq!(hit, vec![target.as_str()], "misattributed blast radius");
                assert!(report.manifest_ok && report.ledger_ok);

                // The gap verify closes: the merge accepts the forgery —
                // its CRCs, chain, and ordinals are all internally
                // consistent. Only the signed root tells the truth.
                let (graph, mrep) = merge_directory(fs, "/provio");
                assert!(
                    !mrep.corrupt.contains(&target) && !mrep.quarantined.contains(&target),
                    "tamper={name} seed={seed}: the rewrite should pass the CRC tier"
                );
                if matches!(kind, TamperKind::FileSubstitution) {
                    assert!(
                        lines(&graph).iter().any(|l| l.contains("urn:forged")),
                        "the forged triples really merged — that is the threat"
                    );
                }

                // Quarantine on verify's verdict; the next merge excludes
                // the forgery and the verdict stays sticky.
                let renamed = quarantine_tampered(fs, &report);
                assert_eq!(renamed, vec![target.clone()]);
                assert!(fs.exists(&format!("{target}.quarantine")));
                let (clean, _) = merge_directory(fs, "/provio");
                assert!(
                    !lines(&clean).iter().any(|l| l.contains("urn:forged")),
                    "quarantined forgery must not merge"
                );
                let again = verify_directory(fs, "/provio", KEY);
                assert_eq!(again.count(FileVerdict::Tampered), 1, "sticky verdict");
                assert!(!again.is_trusted());
                assert!(
                    quarantine_tampered(fs, &again).is_empty(),
                    "re-quarantine is a no-op"
                );
            }
            TamperKind::ManifestEdit => {
                // An edited manifest fails its own signature; the files
                // can no longer be judged at all.
                assert!(!report.manifest_ok);
                let bad: Vec<&FileCheck> = report
                    .checks
                    .iter()
                    .filter(|c| c.verdict == FileVerdict::Tampered)
                    .collect();
                assert_eq!(bad.len(), 1);
                assert_eq!(bad[0].path, MANIFEST);
                assert_eq!(report.count(FileVerdict::Unsigned), files.len());
            }
            TamperKind::LedgerTruncate => {
                // The files and manifest still verify — only the campaign
                // seal is gone, and that alone breaks trust.
                assert!(report.manifest_ok && !report.ledger_ok);
                assert_eq!(report.count(FileVerdict::Verified), files.len());
                let bad: Vec<&FileCheck> = report
                    .checks
                    .iter()
                    .filter(|c| c.verdict == FileVerdict::Tampered)
                    .collect();
                assert_eq!(bad.len(), 1);
                assert_eq!(bad[0].path, LEDGER);
            }
        }
    }
}

#[test]
fn legacy_directory_stays_unsigned_and_keeps_merging() {
    let cluster = run_world(3, &[], false);
    let fs = &cluster.fs;
    assert!(!fs.exists(MANIFEST) && !fs.exists(LEDGER));

    let report = verify_directory(fs, "/provio", KEY);
    assert!(!report.is_trusted(), "unsigned is not trusted");
    assert!(!report.manifest_present);
    assert!(report.ledger_ok, "nothing sealed, nothing broken");
    assert_eq!(report.count(FileVerdict::Unsigned), report.checks.len());
    assert_eq!(report.count(FileVerdict::Tampered), 0, "no false positives");
    assert!(report.to_string().contains("no manifest"));

    // Merging is exactly the pre-manifest behavior.
    let (graph, mrep) = merge_directory(fs, "/provio");
    assert!(mrep.corrupt.is_empty() && mrep.quarantined.is_empty());
    assert!(!lines(&graph).is_empty());

    // The run report says "unverified" until someone runs verify, and
    // NOT TRUSTED once they do — unsigned completeness is still honest
    // completeness.
    let mut run = RunReport::new(3);
    run.attach_merge(mrep.files, &mrep);
    assert!(run.to_string().contains("trust: unverified"), "{run}");
    run.attach_verify(&report);
    assert!(!run.is_trusted());
    assert!(run.is_complete(), "trust and completeness are orthogonal");
    assert!(run.to_string().contains("NOT TRUSTED"), "{run}");
}

/// Deleting the manifest after sealing is itself evidence: the ledger
/// remembers the run, so the absence reads as tampering, not legacy.
#[test]
fn deleting_the_manifest_is_visible_through_the_ledger() {
    let cluster = run_world(3, &[], true);
    let fs = &cluster.fs;
    fs.unlink(MANIFEST).unwrap();

    let report = verify_directory(fs, "/provio", KEY);
    assert!(!report.is_trusted());
    assert!(!report.manifest_present && !report.ledger_ok);
    assert!(report
        .checks
        .iter()
        .any(|c| c.path == MANIFEST && c.verdict == FileVerdict::Missing));
}
