//! Delta-segment store protocol: equivalence with the legacy full-rewrite
//! path, and crash consistency of segment appends and compaction.

use prov_io::core::{
    merge_directory, merge_directory_sequential, ProvenanceStore, RdfFormat, RetryPolicy,
};
use prov_io::hpcfs::{FaultOp, FaultPlan, FaultRule, FileSystem, FsError, LustreConfig};
use prov_io::rdf::{ntriples, Iri, Subject, Term, Triple};
use std::sync::Arc;

fn triples(range: std::ops::Range<usize>) -> Vec<Triple> {
    range
        .map(|i| {
            Triple::new(
                Subject::iri(format!("urn:s{i}")),
                Iri::new("urn:p"),
                Term::iri(format!("urn:o{}", i % 5)),
            )
        })
        .collect()
}

fn fs_read(fs: &Arc<FileSystem>, path: &str) -> Vec<u8> {
    let ino = fs.lookup(path).unwrap();
    let size = fs.stat(path).unwrap().size;
    fs.read_at(ino, 0, size).unwrap().to_vec()
}

#[test]
fn delta_and_legacy_stores_merge_byte_identically() {
    let fs = FileSystem::new(LustreConfig::default());
    // compact_every=3: compaction fires once mid-run (flush 4) and a later
    // segment still survives to the mid-run check below.
    let delta = ProvenanceStore::new(Arc::clone(&fs), "/a/prov.ttl", RdfFormat::Turtle, false)
        .with_delta(true, 3);
    let legacy = ProvenanceStore::new(Arc::clone(&fs), "/b/prov.ttl", RdfFormat::Turtle, false)
        .with_delta(false, 0);
    // Same stream, same flush points; ranges overlap so dedup is exercised.
    for r in 0..5 {
        let batch = triples(r * 7..r * 7 + 10);
        delta.push(batch.clone(), None);
        legacy.push(batch, None);
        delta.flush(None);
        legacy.flush(None);
    }
    // Mid-run (no finish): the delta store's directory holds a snapshot
    // plus segments, the legacy one a single rewritten file — but they
    // merge to the same graph, byte for byte in canonical form.
    let (ga, ra) = merge_directory(&fs, "/a");
    let (gb, rb) = merge_directory(&fs, "/b");
    assert!(ra.corrupt.is_empty() && rb.corrupt.is_empty());
    assert!(ra.files > rb.files, "delta store left segments behind");
    assert_eq!(
        ntriples::serialize(&ga),
        ntriples::serialize(&gb),
        "snapshot+deltas merge == legacy full-rewrite merge"
    );
    // After finish both compact to one snapshot of the same graph: the
    // committed files themselves are byte-identical.
    let a = delta.finish(None);
    let b = legacy.finish(None);
    assert!(a > 0 && a == b);
    assert_eq!(delta.segment_count(), 0, "finish folded all segments");
    assert_eq!(
        fs_read(&fs, "/a/prov.ttl"),
        fs_read(&fs, "/b/prov.ttl"),
        "compacted snapshot == legacy committed file"
    );
    // The parallel and sequential merges agree on the mixed directory too.
    let (gs, _) = merge_directory_sequential(&fs, "/a");
    let (gp, _) = merge_directory(&fs, "/a");
    assert_eq!(ntriples::serialize(&gs), ntriples::serialize(&gp));
}

#[test]
fn torn_delta_append_salvages_valid_prefix() {
    let fs = FileSystem::new(LustreConfig::default());
    let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/t.nt", RdfFormat::NTriples, false);
    st.push(triples(0..4), None);
    st.flush(None); // snapshot
    st.push(triples(4..8), None);
    st.flush(None); // segment 0, committed clean
    // Tear the next segment append mid-write: keep two complete lines plus
    // a torn third (lines are ~26 bytes).
    let plan = FaultPlan::new(31);
    plan.add_rule(
        FaultRule::crash(FaultOp::WriteAt)
            .on_path("t.nt.d000001.nt.tmp")
            .torn(60),
    );
    fs.install_faults(plan);
    st.push(triples(8..12), None);
    st.flush(None);
    assert_eq!(st.last_error(), Some(FsError::Crashed));
    fs.clear_faults();

    let (g, report) = merge_directory(&fs, "/prov");
    // Snapshot (4) + segment 0 (4) recovered whole; the torn orphan tmp is
    // adopted and its valid prefix salvaged.
    assert!(report.corrupt.is_empty(), "torn tmp salvages, never corrupts");
    assert_eq!(
        report.recovered,
        vec!["/prov/t.nt.d000001.nt.tmp".to_string()],
        "orphan segment tmp adopted"
    );
    assert!(report.salvaged_triples >= 1, "prefix lines recovered");
    assert!(g.len() >= 9, "everything durable plus the salvaged prefix");
    for t in triples(0..8) {
        assert!(g.contains(&t), "committed triple lost: {t}");
    }
}

#[test]
fn crash_on_compaction_rename_loses_nothing() {
    let fs = FileSystem::new(LustreConfig::default());
    let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/c.nt", RdfFormat::NTriples, false)
        .with_delta(true, 2);
    st.push(triples(0..3), None);
    st.flush(None); // snapshot
    st.push(triples(3..6), None);
    st.flush(None); // segment 0
    // The next flush commits segment 1, then compaction fires and dies at
    // the snapshot rename.
    let plan = FaultPlan::new(32);
    plan.add_rule(FaultRule::crash(FaultOp::Rename).on_path("c.nt.tmp"));
    fs.install_faults(plan);
    st.push(triples(6..9), None);
    st.flush(None);
    assert_eq!(st.last_error(), Some(FsError::Crashed));
    fs.clear_faults();

    // Durable state: old snapshot + both segments + the fully-written
    // compaction tmp (shadowed by the committed snapshot). Nothing lost.
    assert!(fs.exists("/prov/c.nt"));
    assert!(fs.exists("/prov/c.nt.d000000.nt"));
    assert!(fs.exists("/prov/c.nt.d000001.nt"));
    assert!(fs.exists("/prov/c.nt.tmp"), "compaction died before rename");
    let (g, report) = merge_directory(&fs, "/prov");
    assert!(report.corrupt.is_empty());
    assert!(report.recovered.is_empty(), "stale compaction tmp shadowed");
    assert_eq!(g.len(), 9, "every pushed triple recovered");
    for t in triples(0..9) {
        assert!(g.contains(&t));
    }
}

#[test]
fn transient_error_on_delta_append_retries_in_place() {
    let fs = FileSystem::new(LustreConfig::default());
    let plan = FaultPlan::new(33);
    plan.add_rule(
        FaultRule::fail(FaultOp::WriteAt, FsError::Io)
            .on_path("r.nt.d000000.nt.tmp")
            .times(1),
    );
    fs.install_faults(Arc::clone(&plan));
    let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/r.nt", RdfFormat::NTriples, false)
        .with_retry(RetryPolicy {
            max_attempts: 3,
            backoff_ns: 100,
            ..RetryPolicy::default()
        });
    st.push(triples(0..2), None);
    st.flush(None); // snapshot
    st.push(triples(2..5), None);
    st.flush(None); // segment 0: first write attempt fails, retry lands
    assert!(!st.degraded(), "transient EIO absorbed by the retry policy");
    assert_eq!(st.last_error(), Some(FsError::Io), "retry left a trace");
    assert_eq!(plan.injected(), 1);
    assert_eq!(st.segment_count(), 1);
    let (g, report) = merge_directory(&fs, "/prov");
    assert!(report.corrupt.is_empty());
    assert_eq!(report.salvaged_triples, 0);
    assert_eq!(g.len(), 5);
}
