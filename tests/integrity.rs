//! End-to-end integrity: a multi-rank workflow writes checksummed
//! sub-graph stores, bit rot lands on the committed files *after* the run,
//! and the merge must (a) never put a triple into the merged graph that the
//! fault-free run would not have produced, and (b) account for every piece
//! of injected damage — corrupt batches, quarantined files, chain breaks —
//! in the [`RunReport`].

use prov_io::prelude::*;
use prov_io::rdf::ntriples;
use prov_io::simrt::{DetRng, SimTime};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Run a `world_size`-rank workflow whose trackers write checksummed
/// N-Triples stores with periodic flushing. Ranks in `killed` have their
/// tracker forgotten instead of finished — the killed process leaves its
/// snapshot + uncompacted delta segments on disk, which is exactly the
/// state whose chain the merge must verify.
fn run_world(world_size: u32, killed: &[u32], checksums: bool) -> Cluster {
    run_world_with_faults(world_size, killed, checksums, None)
}

fn run_world_with_faults(
    world_size: u32,
    killed: &[u32],
    checksums: bool,
    faults: Option<Arc<FaultPlan>>,
) -> Cluster {
    let cluster = Cluster::new();
    if let Some(plan) = faults {
        cluster.fs.install_faults(plan);
    }
    // Through the config-file interface: integrity is a knob, not code.
    let cfg = ProvIoConfig::from_ini(&format!(
        "[provio]\n\
         format = ntriples\n\
         policy = every:2\n\
         async = false\n\
         [store]\n\
         checksum_format = {checksums}\n"
    ))
    .unwrap()
    .shared();
    let world = MpiWorld::new(world_size);
    let outcomes = world.superstep_named("produce", |ctx| {
        let pid = 500 + ctx.rank;
        let (_s, h5) = cluster.process(pid, "alice", "integrity", ctx.clock().clone(), Some(&cfg));
        for i in 0..6 {
            let f = h5
                .create_file(&format!("/data_r{}_{i}.h5", ctx.rank))
                .unwrap();
            h5.close_file(f).unwrap();
        }
    });
    assert!(outcomes.iter().all(|o| o.is_completed()));
    for &rank in killed {
        if let Some(t) = cluster.registry.unregister(500 + rank) {
            std::mem::forget(t); // killed process: no Drop, no final flush
        }
    }
    cluster.registry.finish_all();
    cluster
}

fn read(fs: &Arc<FileSystem>, path: &str) -> Vec<u8> {
    let ino = fs.lookup(path).unwrap();
    let md = fs.stat(path).unwrap();
    fs.read_at(ino, 0, md.size).unwrap().to_vec()
}

fn lines(g: &prov_io::rdf::Graph) -> BTreeSet<String> {
    ntriples::serialize(g).lines().map(str::to_string).collect()
}

#[test]
fn corrupted_files_are_accounted_exactly_and_never_forge_triples() {
    // Rank 4 is killed mid-run so its store survives as snapshot + delta
    // segments; everyone else finishes (and compacts) normally.
    let cluster = run_world(6, &[4], true);
    let fs = &cluster.fs;

    let files = fs.walk_files("/provio").unwrap();
    assert!(files.len() > 6, "rank 4 contributes more than one file");
    for f in &files {
        let text = String::from_utf8(read(fs, f)).unwrap();
        assert!(
            text.starts_with("# PROVIO1 "),
            "checksum_format=true frames every store file: {f}"
        );
    }
    let segments: Vec<&String> = files
        .iter()
        .filter(|f| f.contains("prov_p504.nt.d"))
        .collect();
    assert!(segments.len() >= 2, "killed rank left segments: {files:?}");

    // Fault-free baseline: same directory, before any rot.
    let (baseline, rb) = merge_directory(fs, "/provio");
    assert!(rb.corrupt.is_empty() && rb.quarantined.is_empty());
    assert_eq!(rb.chain_breaks, 0);
    let baseline_lines = lines(&baseline);
    let clean_files = rb.files;

    // Injected damage, one of each kind:
    // 1. rank 2's snapshot rots to all-zeroes — unrecoverable content;
    let zeroed = "/provio/prov_p502.nt";
    fs.corrupt_at_rest(zeroed, &CorruptKind::ZeroFill, 1).unwrap();
    // 2. a middle delta segment of rank 4's store loses its tail — the
    //    footer is gone, so identity can't verify, and its ordinal leaves a
    //    hole in the store's chain.
    let torn = segments[segments.len() / 2].clone();
    let ino = fs.lookup(&torn).unwrap();
    let size = fs.file_size(ino).unwrap();
    fs.truncate_ino(ino, size / 3, SimTime::ZERO).unwrap();

    let (merged, mrep) = merge_directory(fs, "/provio");
    let merged_lines = lines(&merged);

    // (a) No forgery: everything merged existed in the fault-free run.
    assert!(merged_lines.is_subset(&baseline_lines));
    assert!(
        merged_lines.len() < baseline_lines.len(),
        "the damage actually cost triples"
    );

    // (b) Exact accounting: one corrupt file, one quarantined file, one
    // chain break — nothing more, nothing less.
    assert_eq!(mrep.corrupt, vec![zeroed.to_string()]);
    assert_eq!(mrep.quarantined, vec![torn.clone()]);
    assert_eq!(mrep.chain_breaks, 1, "the quarantined ordinal is a hole");
    assert_eq!(mrep.files, clean_files - 2);
    assert!(fs.exists(&format!("{torn}.quarantine")));

    let mut report = RunReport::new(6);
    report.attach_merge(clean_files, &mrep);
    assert_eq!(report.corrupt_files, 1);
    assert_eq!(report.quarantined_files, 1);
    assert_eq!(report.chain_breaks, 1);
    assert!(!report.is_complete());
    let expected = (clean_files - 2) as f64 / clean_files as f64;
    assert!((report.completeness() - expected).abs() < 1e-9);
    assert!(report.to_string().contains("1 chain breaks"));

    // Idempotent re-merge: the quarantined file stays condemned (not
    // re-reported, not re-renamed), the zeroed file is still honestly
    // corrupt, and the chain hole remains visible.
    let (again, r2) = merge_directory(fs, "/provio");
    assert!(r2.quarantined.is_empty());
    assert_eq!(r2.corrupt, vec![zeroed.to_string()]);
    assert_eq!(r2.chain_breaks, 1, "the hole in history does not heal");
    assert_eq!(lines(&again), merged_lines);
    assert!(!fs.exists(&format!("{torn}.quarantine.quarantine")));

    // What survived is still structurally consistent per-file: the doctor
    // may flag cross-file orphan edges (a zeroed store takes its nodes with
    // it) but must not find duplicate GUIDs or forged classes.
    let dr = doctor(&merged);
    assert!(dr.duplicate_guids.is_empty(), "no forged identities: {dr:?}");
}

/// Corruption can also be *scheduled*, not just applied at rest: a
/// [`FaultPlan`] rule arms silent write-path corruption (a failing
/// controller damaging buffers in flight), so every flush rank 1 commits
/// lands rotten on media while the write reports success. The guarantees
/// are the same — no forged triples, damage attributed to the faulted
/// store — exercised through the scheduler rather than post-hoc mutation.
#[test]
fn scheduled_write_corruption_is_detected_and_attributed() {
    let baseline_cluster = run_world(4, &[], true);
    let (baseline, rb) = merge_directory(&baseline_cluster.fs, "/provio");
    assert!(rb.corrupt.is_empty() && rb.quarantined.is_empty());

    let plan = FaultPlan::new(77).with_rule(
        FaultRule::corrupt(FaultOp::WriteAt, CorruptKind::BitFlips { count: 8 })
            .on_path("prov_p501"),
    );
    let cluster = run_world_with_faults(4, &[], true, Some(Arc::clone(&plan)));
    assert!(plan.injected() > 0, "the schedule actually fired");

    let (merged, report) = merge_directory(&cluster.fs, "/provio");
    // Timing properties are excluded from cross-run comparison: virtual I/O
    // costs depend on global filesystem load, which two separate runs need
    // not reproduce exactly. Everything structural must match.
    let timing = |iri: &str| iri.ends_with("#timestamp") || iri.ends_with("#elapsed");
    let structural = |g: &prov_io::rdf::Graph| -> BTreeSet<String> {
        g.iter()
            .filter(|t| !timing(t.predicate.as_str()))
            .map(|t| t.to_string())
            .collect()
    };
    let baseline_lines = structural(&baseline);
    let merged_lines = structural(&merged);
    assert!(
        merged_lines.is_subset(&baseline_lines),
        "in-flight corruption must never forge a triple"
    );
    let detected =
        !report.corrupt.is_empty() || !report.quarantined.is_empty() || report.chain_breaks > 0;
    assert!(
        detected || merged_lines == baseline_lines,
        "undetected corruption must be harmless"
    );
    // Damage is attributed to the faulted store, never its neighbors.
    for p in report.corrupt.iter().chain(report.quarantined.iter()) {
        assert!(p.contains("prov_p501"), "misattributed damage: {p}");
    }
    // Every committed file is accounted for exactly once.
    assert_eq!(report.files + report.quarantined.len(), rb.files);
}

/// Seeded corruption sweep, parameterized by environment for the CI
/// matrix: `PROVIO_CORRUPT_SEED`, `PROVIO_CORRUPT_FLIPS` (bit flips per
/// affected file), `PROVIO_CORRUPT_FORMAT` (`framed` | `legacy`).
#[test]
fn seeded_corruption_sweep_detects_or_tolerates_every_flip() {
    let env_u64 = |k: &str, d: u64| {
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(d)
    };
    let seed = env_u64("PROVIO_CORRUPT_SEED", 11);
    let flips = env_u64("PROVIO_CORRUPT_FLIPS", 1);
    let framed = std::env::var("PROVIO_CORRUPT_FORMAT").as_deref() != Ok("legacy");

    let cluster = run_world(4, &[3], framed);
    let fs = &cluster.fs;
    let (baseline, rb) = merge_directory(fs, "/provio");
    assert!(rb.corrupt.is_empty() && rb.quarantined.is_empty());
    let baseline_lines = lines(&baseline);

    // Rot hits roughly half the committed files, `flips` bit flips each.
    let mut rng = DetRng::new(seed);
    let mut hit = 0u32;
    for f in fs.walk_files("/provio").unwrap() {
        if rng.chance(0.5) {
            fs.corrupt_at_rest(&f, &CorruptKind::BitFlips { count: flips as u32 }, rng.u64())
                .unwrap();
            hit += 1;
        }
    }
    assert!(hit > 0, "seed {seed} corrupted nothing — widen the sweep");

    let (merged, report) = merge_directory(fs, "/provio");
    if framed {
        // The integrity guarantee: flips are detected or harmless.
        let merged_lines = lines(&merged);
        assert!(
            merged_lines.is_subset(&baseline_lines),
            "forged triple under seed {seed} x{flips}"
        );
        let detected = !report.corrupt.is_empty()
            || !report.quarantined.is_empty()
            || report.chain_breaks > 0;
        if !detected {
            assert_eq!(merged_lines, baseline_lines, "undetected flips must be harmless");
        }
    } else {
        // Legacy ablation: the merge survives and stays honest about what
        // it could not read, but unframed files cannot promise more — a
        // flipped triple can merge silently. (That asymmetry is the point
        // of the checksummed format.)
        assert!(report.quarantined.is_empty(), "legacy files never quarantine");
        assert_eq!(report.chain_breaks, 0, "no chains without frames");
        assert!(report.files + report.corrupt.len() <= rb.files + report.recovered.len());
    }
}
