//! Crashcheck end to end: the enumerated crash-state space of the full
//! commit protocol (checksums + delta segments + WAL + parity + signed
//! manifest/ledger) must satisfy every recovery invariant of
//! DESIGN.md §15 — plus targeted regressions for the protocol bugs the
//! explorer found, a crash-during-recovery (double-crash) exploration,
//! and a property test that recovery is idempotent on arbitrary
//! reconstructed crash states.

use prov_io::core::crashcheck::{
    check_recovered, check_state, crashcheck, record_workload, repro_text, CrashcheckConfig,
    CRASHCHECK_DIR,
};
use prov_io::core::frame::{is_parity_path, is_wal_path};
use prov_io::core::recover::recover_all;
use prov_io::hpcfs::{
    apply_prefix, enumerate_crash_states, reconstruct, CrashState, CrashVariant, FileSystem,
    OpTrace, TraceOp,
};
use prov_io::simrt::SimTime;
use proptest::prelude::*;
use std::sync::Arc;

/// Byte-exact image of every file under `/provio`, for fixpoint checks.
fn snapshot(fs: &Arc<FileSystem>) -> Vec<(String, Vec<u8>)> {
    let Ok(files) = fs.walk_files(CRASHCHECK_DIR) else {
        return Vec::new();
    };
    files
        .into_iter()
        .map(|path| {
            let ino = fs.lookup(&path).unwrap();
            let size = fs.file_size(ino).unwrap();
            (path, fs.read_at(ino, 0, size).unwrap().to_vec())
        })
        .collect()
}

/// The store a WAL generation (`<store>.wNNNNNN.nt`) belongs to.
fn wal_store(path: &str) -> &str {
    &path[..path.rfind(".w").expect("wal generation path")]
}

/// The store a parity file (`<store>.pNNNNNN.par`) belongs to. The
/// `.par` extension is stripped first so its own `.p` cannot match.
fn parity_store(path: &str) -> &str {
    let p = path.strip_suffix(".par").unwrap_or(path);
    &p[..p.rfind(".p").expect("parity path")]
}

// ---------------------------------------------------------------------------
// The tentpole: exhaustive exploration under the full knob set.
// ---------------------------------------------------------------------------

/// Every operation prefix of the all-knobs workload, plus torn-tail and
/// barrier-free reorder variants, recovers within the invariant set.
#[test]
fn full_protocol_exploration_holds_all_invariants() {
    let cfg = CrashcheckConfig::default();
    let (w, report) = crashcheck(&cfg);
    if let Some(min) = report.minimized() {
        panic!("{report}\n{}", repro_text(&w, min));
    }
    // No budget was set: the enumeration covered at least one state per
    // operation prefix, so the whole protocol timeline was explored.
    assert_eq!(report.checked, report.states);
    assert!(report.states > w.ops.len());
}

/// A second knob mix — larger groups than the flush cadence, so flush
/// boundaries force partial WAL groups and short parity groups out.
/// This shape is what exposed the per-rank ack granularity during
/// development; keep it explored.
#[test]
fn off_cadence_groups_hold_all_invariants() {
    let cfg = CrashcheckConfig {
        ranks: 2,
        pushes: 6,
        flush_every: 2,
        wal_group: 3,
        parity_group: 3,
        compact_every: 3,
        ..CrashcheckConfig::default()
    };
    let (w, report) = crashcheck(&cfg);
    if let Some(min) = report.minimized() {
        panic!("{report}\n{}", repro_text(&w, min));
    }
}

/// Without the trust tier (no manifest key) the durability and loss
/// invariants must hold on their own.
#[test]
fn unsigned_runs_hold_all_invariants() {
    let cfg = CrashcheckConfig {
        manifest_key: None,
        pushes: 4,
        ..CrashcheckConfig::default()
    };
    let (w, report) = crashcheck(&cfg);
    if let Some(min) = report.minimized() {
        panic!("{report}\n{}", repro_text(&w, min));
    }
}

// ---------------------------------------------------------------------------
// Regressions for the protocol bugs crashcheck found.
// ---------------------------------------------------------------------------

/// `wal_recycle` must retire journal-plane parity *before* unlinking the
/// WAL generation it covers. Pre-fix the order was reversed, so a crash
/// between the two unlinks left parity over a deleted generation —
/// journal members can never classify as superseded, so scrub read the
/// orphaned group as unrecoverable loss (or, single-member groups,
/// "repaired" the retired generation back into existence).
#[test]
fn wal_recycle_retires_journal_parity_before_the_generation() {
    let w = record_workload(&CrashcheckConfig::default());
    let mut covered_recycles = 0;
    for (i, op) in w.ops.iter().enumerate() {
        let TraceOp::Unlink { path } = op else {
            continue;
        };
        if !is_wal_path(path) || path.ends_with(".tmp") {
            continue;
        }
        let store = wal_store(path);
        // Within the contiguous unlink window after the generation
        // unlink, no parity of the same store may still be pending.
        for later in &w.ops[i + 1..] {
            let TraceOp::Unlink { path: p } = later else {
                break;
            };
            assert!(
                !(is_parity_path(p) && parity_store(p) == store),
                "journal parity {p} unlinked after its generation {path}: \
                 a crash between the two resurrects a retired generation"
            );
        }
        // And the window before it must hold the parity retirement.
        let mut j = i;
        while j > 0 && matches!(&w.ops[j - 1], TraceOp::Unlink { .. }) {
            j -= 1;
            if let TraceOp::Unlink { path: p } = &w.ops[j] {
                if is_parity_path(p) && parity_store(p) == store {
                    covered_recycles += 1;
                }
            }
        }
    }
    assert!(
        covered_recycles > 0,
        "workload never recycled a parity-covered WAL generation — the \
         regression scenario was not exercised"
    );
}

/// A torn orphan tmp (the crash signature of an interrupted commit) is
/// debris, not corruption: the merge must leave it in place unparsed,
/// never quarantine it. Pre-fix it was condemned via the identity
/// quarantine path, which both branded a pure crash as tampering and
/// broke recovery idempotence.
#[test]
fn torn_orphan_tmp_is_crash_debris_not_corruption() {
    let w = record_workload(&CrashcheckConfig::default());
    let (i, path, keep) = w
        .ops
        .iter()
        .enumerate()
        .find_map(|(i, op)| match op {
            TraceOp::WriteAt { path, data, .. }
                if path.ends_with(".tmp") && !is_parity_path(path) && !is_wal_path(path) =>
            {
                Some((i, path.clone(), (data.len() / 2).max(1) as u64))
            }
            _ => None,
        })
        .expect("the workload commits stores through tmp files");
    let state = CrashState {
        prefix: i,
        variant: CrashVariant::TornNext { keep },
    };

    let fs = reconstruct(&w.ops, &state);
    let out = recover_all(&fs, CRASHCHECK_DIR, w.config.manifest_key.as_deref());
    assert!(
        out.merge.quarantined.is_empty(),
        "merge quarantined {:?} for a torn uncommitted tmp",
        out.merge.quarantined
    );
    assert!(fs.exists(&path), "the torn tmp must stay in place, unparsed");
    assert!(!fs.exists(&format!("{path}.quarantine")));

    // And the state passes the full invariant set.
    let violations = check_state(&w, state);
    assert!(violations.is_empty(), "{violations:?}");
}

// ---------------------------------------------------------------------------
// Double crash: crashing *during recovery* is itself recoverable.
// ---------------------------------------------------------------------------

/// Recovery mutates the disk through the same traced, fault-injectable
/// file system with tmp+rename discipline as the write path — so a
/// crash mid-repair is just another crash state. Rot one parity-covered
/// member, trace the repairing recovery, enumerate every crash state of
/// *that* trace, and require a second recovery from each to restore the
/// full invariant set (modulo `no-spurious-mutation`, which does not
/// apply: repairing rot is recovery's job).
#[test]
fn crash_during_repair_is_recoverable_from_every_state() {
    let cfg = CrashcheckConfig {
        ranks: 1,
        pushes: 4,
        ..CrashcheckConfig::default()
    };
    let w = record_workload(&cfg);
    let done = CrashState {
        prefix: w.ops.len(),
        variant: CrashVariant::Clean,
    };

    // The damaged base disk: the completed run with one rotted byte in
    // the committed snapshot. Rebuilt identically for every state.
    let damaged = || {
        let fs = reconstruct(&w.ops, &done);
        let target = format!("{CRASHCHECK_DIR}/rank0.nt");
        let ino = fs.lookup(&target).unwrap();
        let size = fs.file_size(ino).unwrap();
        fs.write_at(ino, size / 2, b"\x00", SimTime::ZERO).unwrap();
        fs
    };

    // Trace the recovery that repairs the rot.
    let fs = damaged();
    let rec_trace = OpTrace::new();
    fs.attach_tracer(Arc::clone(&rec_trace));
    let out = recover_all(&fs, CRASHCHECK_DIR, cfg.manifest_key.as_deref());
    fs.detach_tracer();
    assert!(
        !out.scrub.repaired_files.is_empty(),
        "precondition: the rot must be parity-repairable ({:?})",
        out.scrub
    );
    let rec_ops = rec_trace.snapshot();
    assert!(!rec_ops.is_empty(), "repair must go through the traced fs");

    // Crash the repair at every enumerated point; a fresh recovery from
    // each resulting disk must still satisfy the invariants.
    for state in enumerate_crash_states(&rec_ops, 64) {
        let fs = damaged();
        apply_prefix(&fs, &rec_ops, &state);
        let violations: Vec<_> = check_recovered(&w, done, &fs)
            .into_iter()
            .filter(|v| v.invariant != "no-spurious-mutation")
            .collect();
        assert!(
            violations.is_empty(),
            "crash mid-repair at {state} left an unrecoverable disk: {violations:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Property: recovery is idempotent on arbitrary crash states.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Recovering any reconstructed crash state twice yields a
    /// byte-identical directory, an equal `RunReport`, and a graph of
    /// the same size (invariant I6, sampled over the knob space).
    #[test]
    fn recovery_is_idempotent_on_any_crash_state(
        ranks in 1u32..3,
        pushes in 2usize..5,
        wal_group in 1u32..4,
        parity_group in 1u32..4,
        compact_every in 1u32..4,
        signed in any::<bool>(),
        pick in 0usize..1 << 16,
    ) {
        let cfg = CrashcheckConfig {
            ranks,
            pushes,
            wal_group,
            parity_group,
            compact_every,
            manifest_key: signed.then(|| "prop-key".to_string()),
            ..CrashcheckConfig::default()
        };
        let w = record_workload(&cfg);
        let states = enumerate_crash_states(&w.ops, 16);
        let state = states[pick % states.len()];
        let fs = reconstruct(&w.ops, &state);
        let key = cfg.manifest_key.as_deref();

        let first = recover_all(&fs, CRASHCHECK_DIR, key);
        let after_first = snapshot(&fs);
        let second = recover_all(&fs, CRASHCHECK_DIR, key);
        let after_second = snapshot(&fs);

        prop_assert_eq!(&first.report, &second.report);
        prop_assert_eq!(first.graph.len(), second.graph.len());
        prop_assert_eq!(after_first, after_second);
    }
}
