//! Fault-tolerant streaming collection, end to end: a live aggregator fed
//! over an unreliable interconnect must converge to exactly the graph the
//! post-hoc [`merge_directory`] pass produces, whatever the fabric does —
//! loss, duplication, reordering, partition episodes, even an aggregator
//! crash mid-run (the rank-durable stores are the recovery source).
//!
//! The sweep test is parameterized by environment for the CI matrix:
//! `PROVIO_NET_SEED` (fault schedule), `PROVIO_NET_LOSS` (per-message
//! loss/dup/reorder probability), `PROVIO_NET_PARTITION` (0/1: one
//! all-ranks partition episode), `PROVIO_NET_CRASH` (0/1: crash the
//! aggregator mid-run and resync).

use prov_io::prelude::*;
use prov_io::rdf::ntriples::sorted_graph_lines;
use proptest::prelude::*;
use std::sync::Arc;

/// The named supersteps of the synthetic workflow.
const PHASES: [&str; 4] = ["ingest", "transform", "reduce", "publish"];

/// Files each rank creates per phase.
const FILES_PER_PHASE: u32 = 3;

/// Ack timeout for the streaming client, virtual ns (200 µs).
const TIMEOUT_NS: u64 = 200_000;

fn net_cfg() -> Arc<ProvIoConfig> {
    ProvIoConfig::default()
        .with_policy(SerializationPolicy::EveryRecords(4))
        .synchronous()
        .with_wal(true, 8)
        .with_net(true, TIMEOUT_NS)
        .shared()
}

/// Run a streamed `world_size`-rank workflow over the four phases. When
/// `crash_after_phase` is set, the aggregator crashes right after that
/// phase's barrier, stays down for the next phase (every arrival refused,
/// clients buffer and retry), and resyncs from the rank-durable stores at
/// the barrier after that.
fn run_streamed(
    world_size: u32,
    plan: NetPlan,
    crash_after_phase: Option<usize>,
) -> (Cluster, Arc<Collector>, RunReport, Vec<(u32, TrackSummary)>) {
    let cluster = Cluster::new();
    let collector = Collector::new(Arc::clone(&cluster.fs), "/provio", plan);
    cluster.stream_to(Arc::clone(&collector));
    let cfg = net_cfg();
    let world = MpiWorld::new(world_size);
    let mut report = RunReport::new(world_size);

    for (pi, phase) in PHASES.iter().enumerate() {
        let outcomes = world.superstep_named(phase, |ctx| {
            let pid = 100 + ctx.rank;
            let (_s, h5) =
                cluster.process(pid, "alice", "streamer", ctx.clock().clone(), Some(&cfg));
            for i in 0..FILES_PER_PHASE {
                let f = h5
                    .create_file(&format!("/r{}_p{pi}_{i}.h5", ctx.rank))
                    .unwrap();
                h5.close_file(f).unwrap();
            }
        });
        report.record_outcomes(&outcomes);
        if crash_after_phase == Some(pi) {
            collector.crash();
        }
        // One crashed phase later, recovery: rebuild the live view from
        // the rank-durable stores (flushed segments + WAL replay).
        if crash_after_phase.map(|c| c + 1) == Some(pi) {
            collector.resync();
        }
    }

    let summaries = cluster.registry.finish_all();
    report.attach_summaries(&summaries);
    report.attach_delivery(&collector.report());
    (cluster, collector, report, summaries)
}

/// The convergence oracle: the live streamed graph must be
/// triple-identical to the post-hoc merge of the rank files.
fn assert_converged(cluster: &Cluster, collector: &Collector) -> usize {
    let (ground, mrep) = merge_directory(&cluster.fs, "/provio");
    assert!(mrep.corrupt.is_empty(), "rank files intact: {mrep:?}");
    let live = sorted_graph_lines(&collector.graph());
    let post = sorted_graph_lines(&ground);
    assert_eq!(
        live, post,
        "live streamed graph diverged from the post-hoc merge"
    );
    live.len()
}

/// The ISSUE acceptance schedule: ≥20% loss + duplication + reordering
/// plus one partition episode, seeded. The collector's live graph must be
/// triple-identical to `merge_directory` over the rank files.
#[test]
fn hostile_fabric_with_partition_converges_to_post_hoc_merge() {
    let plan = NetPlan::hostile(42, 0.25)
        .with_partition(PartitionEpisode::all(500_000, 3_000_000));
    let (cluster, collector, report, summaries) = run_streamed(4, plan, None);

    let triples = assert_converged(&cluster, &collector);
    assert!(triples > 0, "the run produced provenance");

    // The fabric actually misbehaved and the pipeline absorbed it.
    assert!(report.net_retries > 0, "loss forced retransmissions");
    assert!(
        report.duplicates_dropped > 0,
        "the (rank, seq) watermark dropped retransmitted/duplicated copies"
    );
    assert_eq!(report.net_unacked, 0, "everything acked after the drain");
    assert!(report.streamed);
    for (_, s) in &summaries {
        assert!(s.net_sent > 0, "every rank streamed");
        assert_eq!(s.net_sent, s.net_acked, "at-least-once acked every batch");
    }
    let text = report.to_string();
    assert!(text.contains("stream:"), "report surfaces delivery: {text}");
}

/// Aggregator crash mid-run: acked records are journal-durable on the
/// ranks (the tracker wal-syncs before every send), so the resync rebuilds
/// them all — zero loss — and the final live graph still converges.
#[test]
fn aggregator_crash_resyncs_with_zero_acked_loss() {
    let plan = NetPlan::ideal(7).with_loss(0.10).with_duplicate(0.10);
    let (cluster, collector, report, _) = run_streamed(4, plan, Some(1));

    assert_converged(&cluster, &collector);
    assert_eq!(report.collector_crashes, 1);
    assert_eq!(report.resyncs, 1);
    assert!(
        report.resync_triples > 0,
        "resync recovered the crashed-away live view from the rank stores"
    );
    // Every gap is accounted: batches refused while down were retried and
    // acked afterwards; nothing is silently missing.
    assert_eq!(report.net_unacked, 0);
    let delivery = collector.report();
    assert!(
        delivery.refused_batches > 0,
        "the crashed window actually refused arrivals"
    );
    let text = report.to_string();
    assert!(text.contains("1 collector crash(es)"), "{text}");
    assert!(text.contains("1 resync(s)"), "{text}");
}

/// A terminal partition (never heals before the drain budget) must not
/// lose records either: the durable store owns the gap, the report counts
/// it, and the post-hoc merge remains the superset.
#[test]
fn terminal_partition_is_accounted_not_lost() {
    // Partition from t=0 far past anything 64 drain rounds can cross.
    let horizon = 1_000 * TIMEOUT_NS * 1_000;
    let plan = NetPlan::ideal(3).with_partition(PartitionEpisode::all(0, horizon));
    let (cluster, collector, report, summaries) = run_streamed(2, plan, None);

    assert_eq!(collector.triples(), 0, "nothing crossed the partition");
    assert!(report.net_unacked > 0, "the gap is visible, not silent");
    assert_eq!(
        report.net_sent,
        report.net_unacked,
        "every batch is accounted as still-buffered"
    );
    for (_, s) in &summaries {
        assert_eq!(s.net_acked, 0);
    }
    // The durable side lost nothing: a resync converges the live view.
    collector.resync();
    let (ground, _) = merge_directory(&cluster.fs, "/provio");
    assert_eq!(
        sorted_graph_lines(&collector.graph()),
        sorted_graph_lines(&ground),
        "resync from the rank stores recovers the partitioned-away records"
    );
}

/// Seeded net-fault sweep, parameterized by environment for the CI
/// matrix: `PROVIO_NET_SEED`, `PROVIO_NET_LOSS`, `PROVIO_NET_PARTITION`,
/// `PROVIO_NET_CRASH`.
fn sweep_env<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn seeded_netfault_sweep_converges() {
    let seed: u64 = sweep_env("PROVIO_NET_SEED", 11u64);
    let loss: f64 = sweep_env("PROVIO_NET_LOSS", 0.25f64);
    let partition: u64 = sweep_env("PROVIO_NET_PARTITION", 1u64);
    let crash: u64 = sweep_env("PROVIO_NET_CRASH", 0u64);

    let mut plan = NetPlan::hostile(seed, loss);
    if partition != 0 {
        plan = plan.with_partition(PartitionEpisode::all(500_000, 3_000_000));
    }
    let crash_after = (crash != 0).then_some(1);
    let (cluster, collector, report, _) = run_streamed(4, plan, crash_after);

    assert_converged(&cluster, &collector);
    assert_eq!(report.net_unacked, 0);
    if loss > 0.0 {
        assert!(report.net_retries > 0);
    }
    if crash != 0 {
        assert_eq!(report.collector_crashes, 1);
        assert_eq!(report.resyncs, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Any bounded partition heals: the live graph converges once the
    /// episode ends, for random seeds, loss rates, and window lengths.
    #[test]
    fn partition_heals_to_converged_graph(
        seed in 0u64..1_000,
        loss in 0.0f64..0.3,
        window_us in 100u64..3_000,
    ) {
        let plan = NetPlan::ideal(seed)
            .with_loss(loss)
            .with_partition(PartitionEpisode::all(0, window_us * 1_000));
        let (cluster, collector, report, _) = run_streamed(2, plan, None);
        assert_converged(&cluster, &collector);
        prop_assert_eq!(report.net_unacked, 0);
    }

    /// Duplication and reordering are idempotent: the streamed graph is
    /// triple-identical to the `merge_directory` ground truth for random
    /// seeds and fault probabilities.
    #[test]
    fn duplication_and_reordering_are_idempotent(
        seed in 0u64..1_000,
        dup in 0.0f64..0.5,
        reorder in 0.0f64..0.5,
        ack_loss in 0.0f64..0.3,
    ) {
        let plan = NetPlan::ideal(seed)
            .with_duplicate(dup)
            .with_reorder(reorder)
            .with_ack_loss(ack_loss);
        let (cluster, collector, report, _) = run_streamed(2, plan, None);
        assert_converged(&cluster, &collector);
        prop_assert_eq!(report.net_unacked, 0);
        prop_assert_eq!(report.net_sent, report.net_acked);
    }
}
