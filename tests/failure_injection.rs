//! Failure injection: the provenance system must degrade gracefully, never
//! corrupt workflow results, and never lose more than the affected
//! process's sub-graph.

use prov_io::prelude::*;
use provio_simrt::SimTime;
use std::sync::Arc;

fn tracked_process(cluster: &Cluster, pid: u32) -> (Arc<FsSession>, H5) {
    let cfg = ProvIoConfig::default().shared();
    cluster.process(pid, "alice", "prog", VirtualClock::new(), Some(&cfg))
}

#[test]
fn corrupt_subgraph_does_not_block_merge() {
    let cluster = Cluster::new();
    let (_s, h5) = tracked_process(&cluster, 1);
    let f = h5.create_file("/good.h5").unwrap();
    h5.close_file(f).unwrap();
    cluster.registry.finish_all();

    // A process that died mid-serialization left garbage behind.
    let ino = cluster
        .fs
        .create_file("/provio/prov_p666.ttl", false, "provio", SimTime::ZERO)
        .unwrap();
    cluster
        .fs
        .write_at(ino, 0, b"@prefix broken <unterminated", SimTime::ZERO)
        .unwrap();
    // And another left a half-written N-Triples file.
    let ino2 = cluster
        .fs
        .create_file("/provio/prov_p667.nt", false, "provio", SimTime::ZERO)
        .unwrap();
    cluster
        .fs
        .write_at(ino2, 0, b"<urn:a> <urn:b> \"unclosed", SimTime::ZERO)
        .unwrap();

    let (graph, report) = merge_directory(&cluster.fs, "/provio");
    assert_eq!(report.corrupt.len(), 2);
    assert_eq!(report.files, 1);
    assert!(!graph.is_empty(), "healthy sub-graphs survive");
    let engine = ProvQueryEngine::new(graph);
    assert!(engine.entity_by_label("/good.h5").is_some());
}

#[test]
fn tracker_dropped_without_finish_still_persists() {
    // A process that never calls finish (crash before MPI_Finalize): the
    // store's Drop path flushes what it had.
    let cluster = Cluster::new();
    let (_s, h5) = tracked_process(&cluster, 2);
    let f = h5.create_file("/orphan.h5").unwrap();
    h5.close_file(f).unwrap();
    // Drop the tracker without finishing.
    let t = cluster.registry.unregister(2).unwrap();
    drop(t);
    let (bytes, files) = cluster.prov_usage("/provio");
    assert_eq!(files, 1);
    assert!(bytes > 0, "Drop flushed the sub-graph");
    let (graph, _) = merge_directory(&cluster.fs, "/provio");
    let engine = ProvQueryEngine::new(graph);
    assert!(engine.entity_by_label("/orphan.h5").is_some());
}

#[test]
fn everything_disabled_tracks_nothing_but_workflow_succeeds() {
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::default()
        .with_selector(ClassSelector::none())
        .shared();
    let (s, h5) = cluster.process(3, "alice", "prog", VirtualClock::new(), Some(&cfg));
    let f = h5.create_file("/silent.h5").unwrap();
    let d = h5
        .write_dataset_full(f, "x", Datatype::Int64, &[4], &Data::synthetic(32))
        .unwrap();
    h5.close_dataset(d).unwrap();
    h5.close_file(f).unwrap();
    s.write_file("/also_silent", b"x").unwrap();

    let summaries = cluster.registry.finish_all();
    assert_eq!(summaries[0].1.events, 0);
    // Workflow data is intact.
    assert!(cluster.fs.exists("/silent.h5"));
    assert!(cluster.fs.exists("/also_silent"));
}

#[test]
fn failed_workflow_io_leaves_no_phantom_provenance() {
    let cluster = Cluster::new();
    let (s, h5) = tracked_process(&cluster, 4);
    // A batch of failing operations.
    assert!(h5.open_file("/missing.h5", false).is_err());
    assert!(s.open("/missing.txt", OpenFlags::rdonly()).is_err());
    assert!(s.rename("/nope", "/nowhere").is_err());
    let summaries = cluster.registry.finish_all();
    assert_eq!(summaries[0].1.events, 0, "failures leave no provenance");
}

#[test]
fn store_on_full_directory_path_conflicts_are_survivable() {
    // Another process created a FILE where the store wants its directory.
    let cluster = Cluster::new();
    cluster
        .fs
        .create_file("/provio", false, "evil", SimTime::ZERO)
        .unwrap();
    let cfg = ProvIoConfig::default().shared();
    let (_s, h5) = cluster.process(5, "alice", "prog", VirtualClock::new(), Some(&cfg));
    // Tracking proceeds; serialization fails silently at finish (the
    // workflow must not crash).
    let f = h5.create_file("/work.h5").unwrap();
    h5.close_file(f).unwrap();
    let summaries = cluster.registry.finish_all();
    assert!(summaries[0].1.events > 0);
    assert_eq!(summaries[0].1.store_bytes, 0, "store could not be written");
    assert!(cluster.fs.exists("/work.h5"), "workflow output unaffected");
}

#[test]
fn partial_subgraph_from_periodic_flush_is_usable() {
    // With the periodic policy, intermediate flushes leave a readable
    // sub-graph even before finish.
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::default()
        .with_policy(SerializationPolicy::EveryRecords(2))
        .synchronous()
        .shared();
    let (_s, h5) = cluster.process(6, "alice", "prog", VirtualClock::new(), Some(&cfg));
    for i in 0..8 {
        let f = h5.create_file(&format!("/f{i}.h5")).unwrap();
        h5.close_file(f).unwrap();
    }
    // Before finish: the store already holds flushed records.
    let (bytes, files) = cluster.prov_usage("/provio");
    assert_eq!(files, 1);
    assert!(bytes > 0, "periodic policy persisted early");
    let (graph, report) = merge_directory(&cluster.fs, "/provio");
    assert!(report.corrupt.is_empty());
    assert!(!graph.is_empty());
    cluster.registry.finish_all();
}
