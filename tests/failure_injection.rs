//! Failure injection: the provenance system must degrade gracefully, never
//! corrupt workflow results, and never lose more than the affected
//! process's sub-graph.

use prov_io::core::RdfFormat;
use prov_io::hpcfs::FsError;
use prov_io::prelude::*;
use provio_simrt::SimTime;
use std::sync::Arc;

fn tracked_process(cluster: &Cluster, pid: u32) -> (Arc<FsSession>, H5) {
    let cfg = ProvIoConfig::default().shared();
    cluster.process(pid, "alice", "prog", VirtualClock::new(), Some(&cfg))
}

#[test]
fn corrupt_subgraph_does_not_block_merge() {
    let cluster = Cluster::new();
    let (_s, h5) = tracked_process(&cluster, 1);
    let f = h5.create_file("/good.h5").unwrap();
    h5.close_file(f).unwrap();
    cluster.registry.finish_all();

    // A process that died mid-serialization left garbage behind.
    let ino = cluster
        .fs
        .create_file("/provio/prov_p666.ttl", false, "provio", SimTime::ZERO)
        .unwrap();
    cluster
        .fs
        .write_at(ino, 0, b"@prefix broken <unterminated", SimTime::ZERO)
        .unwrap();
    // And another left a half-written N-Triples file.
    let ino2 = cluster
        .fs
        .create_file("/provio/prov_p667.nt", false, "provio", SimTime::ZERO)
        .unwrap();
    cluster
        .fs
        .write_at(ino2, 0, b"<urn:a> <urn:b> \"unclosed", SimTime::ZERO)
        .unwrap();

    let (graph, report) = merge_directory(&cluster.fs, "/provio");
    assert_eq!(report.corrupt.len(), 2);
    assert_eq!(report.files, 1);
    assert!(!graph.is_empty(), "healthy sub-graphs survive");
    let engine = ProvQueryEngine::new(graph);
    assert!(engine.entity_by_label("/good.h5").is_some());
}

#[test]
fn tracker_dropped_without_finish_still_persists() {
    // A process that never calls finish (crash before MPI_Finalize): the
    // store's Drop path flushes what it had.
    let cluster = Cluster::new();
    let (_s, h5) = tracked_process(&cluster, 2);
    let f = h5.create_file("/orphan.h5").unwrap();
    h5.close_file(f).unwrap();
    // Drop the tracker without finishing.
    let t = cluster.registry.unregister(2).unwrap();
    drop(t);
    let (bytes, files) = cluster.prov_usage("/provio");
    assert_eq!(files, 1);
    assert!(bytes > 0, "Drop flushed the sub-graph");
    let (graph, _) = merge_directory(&cluster.fs, "/provio");
    let engine = ProvQueryEngine::new(graph);
    assert!(engine.entity_by_label("/orphan.h5").is_some());
}

#[test]
fn everything_disabled_tracks_nothing_but_workflow_succeeds() {
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::default()
        .with_selector(ClassSelector::none())
        .shared();
    let (s, h5) = cluster.process(3, "alice", "prog", VirtualClock::new(), Some(&cfg));
    let f = h5.create_file("/silent.h5").unwrap();
    let d = h5
        .write_dataset_full(f, "x", Datatype::Int64, &[4], &Data::synthetic(32))
        .unwrap();
    h5.close_dataset(d).unwrap();
    h5.close_file(f).unwrap();
    s.write_file("/also_silent", b"x").unwrap();

    let summaries = cluster.registry.finish_all();
    assert_eq!(summaries[0].1.events, 0);
    // Workflow data is intact.
    assert!(cluster.fs.exists("/silent.h5"));
    assert!(cluster.fs.exists("/also_silent"));
}

#[test]
fn failed_workflow_io_leaves_no_phantom_provenance() {
    let cluster = Cluster::new();
    let (s, h5) = tracked_process(&cluster, 4);
    // A batch of failing operations.
    assert!(h5.open_file("/missing.h5", false).is_err());
    assert!(s.open("/missing.txt", OpenFlags::rdonly()).is_err());
    assert!(s.rename("/nope", "/nowhere").is_err());
    let summaries = cluster.registry.finish_all();
    assert_eq!(summaries[0].1.events, 0, "failures leave no provenance");
}

#[test]
fn store_on_full_directory_path_conflicts_are_survivable() {
    // Another process created a FILE where the store wants its directory.
    let cluster = Cluster::new();
    cluster
        .fs
        .create_file("/provio", false, "evil", SimTime::ZERO)
        .unwrap();
    let cfg = ProvIoConfig::default().shared();
    let (_s, h5) = cluster.process(5, "alice", "prog", VirtualClock::new(), Some(&cfg));
    // Tracking proceeds; serialization fails silently at finish (the
    // workflow must not crash).
    let f = h5.create_file("/work.h5").unwrap();
    h5.close_file(f).unwrap();
    let summaries = cluster.registry.finish_all();
    assert!(summaries[0].1.events > 0);
    assert_eq!(summaries[0].1.store_bytes, 0, "store could not be written");
    assert!(cluster.fs.exists("/work.h5"), "workflow output unaffected");
}

#[test]
fn transient_store_failures_are_retried_to_full_provenance() {
    // Acceptance (a): transient write failures are retried and the full
    // provenance graph still lands on disk.
    let cluster = Cluster::new();
    let plan = FaultPlan::new(21);
    plan.add_rule(
        FaultRule::fail(FaultOp::WriteAt, FsError::Io)
            .on_path("prov_p1.ttl.tmp")
            .times(2),
    );
    cluster.fs.install_faults(Arc::clone(&plan));
    let cfg = ProvIoConfig::default()
        .with_retry(RetryPolicy {
            max_attempts: 3,
            backoff_ns: 1_000,
            ..RetryPolicy::default()
        })
        .shared();
    let (_s, h5) = cluster.process(1, "alice", "prog", VirtualClock::new(), Some(&cfg));
    let f = h5.create_file("/retry.h5").unwrap();
    h5.close_file(f).unwrap();
    let summaries = cluster.registry.finish_all();
    assert_eq!(plan.injected(), 2, "both transient failures were hit");
    assert!(summaries[0].1.store_bytes > 0, "third attempt committed");
    assert!(!summaries[0].1.degraded);
    assert_eq!(summaries[0].1.last_error.as_deref(), Some("EIO"));
    let (graph, report) = merge_directory(&cluster.fs, "/provio");
    assert!(report.corrupt.is_empty());
    assert_eq!(report.salvaged_triples, 0, "nothing needed salvaging");
    let engine = ProvQueryEngine::new(graph);
    assert!(engine.entity_by_label("/retry.h5").is_some(), "full provenance");
}

#[test]
fn permanent_store_failure_surfaces_degraded_state() {
    // Acceptance (b): exhausted retries flip the store to degraded with a
    // concrete last_error — a zero byte count is never silent.
    let cluster = Cluster::new();
    let plan = FaultPlan::new(22);
    plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::NoSpace).on_path("prov_p2.ttl.tmp"));
    cluster.fs.install_faults(plan);
    let (_s, h5) = tracked_process(&cluster, 2);
    let f = h5.create_file("/doomed.h5").unwrap();
    h5.close_file(f).unwrap();
    let summaries = cluster.registry.finish_all();
    let s = &summaries[0].1;
    assert_eq!(s.store_bytes, 0);
    assert!(s.degraded, "zero stored bytes comes with the reason attached");
    assert_eq!(s.last_error.as_deref(), Some("ENOSPC"));
    assert!(s.dropped_flushes >= 1);
    assert!(cluster.fs.exists("/doomed.h5"), "workflow output unaffected");
}

#[test]
fn crash_between_tmp_write_and_rename_preserves_previous_commit() {
    // Acceptance (c): a crash after serializing the tmp file but before
    // the atomic rename leaves the previously committed sub-graph intact —
    // the merge never reads a torn committed file.
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::default()
        .with_policy(SerializationPolicy::EveryRecords(1))
        .synchronous()
        .shared();
    let (_s, h5) = cluster.process(3, "alice", "prog", VirtualClock::new(), Some(&cfg));
    let f = h5.create_file("/early.h5").unwrap();
    h5.close_file(f).unwrap();
    assert!(
        cluster.fs.exists("/provio/prov_p3.ttl"),
        "periodic flush committed an early snapshot"
    );
    let plan = FaultPlan::new(23);
    plan.add_rule(FaultRule::crash(FaultOp::Rename).on_path("prov_p3.ttl.tmp"));
    cluster.fs.install_faults(plan);
    let f2 = h5.create_file("/late.h5").unwrap();
    h5.close_file(f2).unwrap();
    let summaries = cluster.registry.finish_all();
    assert!(summaries[0].1.degraded);
    assert_eq!(summaries[0].1.last_error.as_deref(), Some("ESIMCRASH"));

    let (graph, report) = merge_directory(&cluster.fs, "/provio");
    assert!(report.corrupt.is_empty(), "no torn committed file, ever");
    assert_eq!(report.salvaged_triples, 0);
    // The snapshot plus every committed delta segment contributes; the
    // stale tmp of the crashed compaction is shadowed by the commit.
    assert!(report.files >= 1, "commit readable, stale tmp shadowed");
    assert!(report.recovered.is_empty(), "stale tmp never adopted");
    let engine = ProvQueryEngine::new(graph);
    assert!(
        engine.entity_by_label("/early.h5").is_some(),
        "previous commit readable in full"
    );
    assert!(
        engine.entity_by_label("/late.h5").is_some(),
        "records flushed as delta segments survive the crashed compaction"
    );
}

#[test]
fn torn_tmp_prefix_is_salvaged_by_merge() {
    // Acceptance (d): a crash that tears the tmp file mid-write still
    // yields the valid prefix at merge time, accounted in the report.
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::default()
        .with_format(RdfFormat::NTriples)
        .shared();
    let plan = FaultPlan::new(24);
    plan.add_rule(
        FaultRule::crash(FaultOp::WriteAt)
            .on_path("prov_p4.nt.tmp")
            .torn(400),
    );
    cluster.fs.install_faults(plan);
    let (_s, h5) = cluster.process(4, "alice", "prog", VirtualClock::new(), Some(&cfg));
    let f = h5.create_file("/torn.h5").unwrap();
    h5.close_file(f).unwrap();
    let summaries = cluster.registry.finish_all();
    assert_eq!(summaries[0].1.store_bytes, 0);
    assert!(summaries[0].1.degraded);

    let (graph, report) = merge_directory(&cluster.fs, "/provio");
    assert_eq!(
        report.recovered,
        vec!["/provio/prov_p4.nt.tmp".to_string()],
        "orphan tmp adopted"
    );
    assert!(report.salvaged_triples > 0, "valid prefix recovered");
    assert!(!graph.is_empty());
}

#[test]
fn fault_sweep_merge_always_recovers_committed_subgraphs() {
    // FaultPlan sweep across crash points and torn-write lengths: whatever
    // happens to rank 1, the merge recovers every committed sub-graph in
    // full, salvages what it can of the torn one, and never reports a
    // committed file corrupt.
    let ops = [
        FaultOp::CreateFile,
        FaultOp::WriteAt,
        FaultOp::TruncateIno,
        FaultOp::Rename,
    ];
    for (i, &op) in ops.iter().enumerate() {
        for &keep in &[0u64, 1, 80, 400, 4096] {
            let ctx = format!("op={op:?} keep={keep}");
            let cluster = Cluster::new();
            let cfg = ProvIoConfig::default()
                .with_format(RdfFormat::NTriples)
                .shared();
            for pid in [0u32, 1, 2] {
                let (_s, h5) =
                    cluster.process(pid, "alice", "prog", VirtualClock::new(), Some(&cfg));
                let f = h5.create_file(&format!("/rank{pid}.h5")).unwrap();
                h5.close_file(f).unwrap();
            }
            // Rank 1 dies mid-serialization; ranks 0 and 2 commit cleanly.
            let plan = FaultPlan::new(1000 + i as u64);
            plan.add_rule(FaultRule::crash(op).on_path("prov_p1.nt").torn(keep));
            cluster.fs.install_faults(plan);
            let summaries = cluster.registry.finish_all();
            let crashed = &summaries.iter().find(|(p, _)| *p == 1).unwrap().1;
            assert_eq!(crashed.store_bytes, 0, "{ctx}");
            assert!(crashed.degraded, "{ctx}");
            assert_eq!(crashed.last_error.as_deref(), Some("ESIMCRASH"), "{ctx}");
            cluster.fs.clear_faults(); // the merge runs on a healthy reader

            let (graph, report) = merge_directory(&cluster.fs, "/provio");
            let engine = ProvQueryEngine::new(graph);
            for pid in [0u32, 2] {
                assert!(
                    engine.entity_by_label(&format!("/rank{pid}.h5")).is_some(),
                    "{ctx}: committed sub-graph of rank {pid} fully recovered"
                );
            }
            // A torn file can only ever be the crashed rank's tmp; merge
            // must never find a committed file unreadable.
            for c in &report.corrupt {
                assert!(c.ends_with(".tmp"), "{ctx}: committed file torn: {c}");
            }
            if op == FaultOp::WriteAt && keep >= 400 {
                // A mid-file tear salvages a prefix; a tear past the end
                // of the serialization leaves a complete, adoptable tmp.
                assert!(
                    report.salvaged_triples > 0
                        || engine.entity_by_label("/rank1.h5").is_some(),
                    "{ctx}: torn prefix long enough to salvage"
                );
            }
            if op == FaultOp::Rename {
                // tmp was fully serialized; adoption recovers rank 1 whole.
                assert!(
                    engine.entity_by_label("/rank1.h5").is_some(),
                    "{ctx}: complete orphan tmp adopted"
                );
            }
        }
    }
}

#[test]
fn partial_subgraph_from_periodic_flush_is_usable() {
    // With the periodic policy, intermediate flushes leave a readable
    // sub-graph even before finish.
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::default()
        .with_policy(SerializationPolicy::EveryRecords(2))
        .synchronous()
        .shared();
    let (_s, h5) = cluster.process(6, "alice", "prog", VirtualClock::new(), Some(&cfg));
    for i in 0..8 {
        let f = h5.create_file(&format!("/f{i}.h5")).unwrap();
        h5.close_file(f).unwrap();
    }
    // Before finish: the store already holds flushed records — a base
    // snapshot from the first flush plus delta segments from later ones.
    let (bytes, files) = cluster.prov_usage("/provio");
    assert!(files >= 2, "snapshot plus at least one delta segment");
    assert!(bytes > 0, "periodic policy persisted early");
    let (graph, report) = merge_directory(&cluster.fs, "/provio");
    assert!(report.corrupt.is_empty());
    assert!(!graph.is_empty());
    cluster.registry.finish_all();
}
