//! HDF5-level errors.

use provio_hpcfs::FsError;
use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H5Error {
    /// Object or file not found.
    NotFound(String),
    /// Name already exists at this location.
    AlreadyExists(String),
    /// Handle is closed or of the wrong kind.
    BadHandle,
    /// Operation not valid for this object kind (e.g. read on a group).
    WrongKind { expected: &'static str },
    /// Selection exceeds the dataset's current extent.
    SelectionOutOfBounds,
    /// Dataspace rank mismatch between selection and dataset.
    RankMismatch,
    /// Extend beyond maxdims or on a fixed dataspace.
    NotExtendable,
    /// Payload size does not match selection × datatype size.
    SizeMismatch { expected: u64, got: u64 },
    /// Invalid name (empty, or containing '/')
    BadName(String),
    /// Underlying file-system error.
    Fs(FsError),
}

impl fmt::Display for H5Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H5Error::NotFound(p) => write!(f, "H5: not found: {p}"),
            H5Error::AlreadyExists(p) => write!(f, "H5: already exists: {p}"),
            H5Error::BadHandle => write!(f, "H5: bad handle"),
            H5Error::WrongKind { expected } => write!(f, "H5: wrong object kind, expected {expected}"),
            H5Error::SelectionOutOfBounds => write!(f, "H5: selection out of bounds"),
            H5Error::RankMismatch => write!(f, "H5: dataspace rank mismatch"),
            H5Error::NotExtendable => write!(f, "H5: dataspace not extendable"),
            H5Error::SizeMismatch { expected, got } => {
                write!(f, "H5: payload size mismatch: expected {expected}, got {got}")
            }
            H5Error::BadName(n) => write!(f, "H5: bad name: {n:?}"),
            H5Error::Fs(e) => write!(f, "H5: fs error: {e}"),
        }
    }
}

impl std::error::Error for H5Error {}

impl From<FsError> for H5Error {
    fn from(e: FsError) -> Self {
        H5Error::Fs(e)
    }
}

pub type H5Result<T> = Result<T, H5Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(H5Error::NotFound("/g/d".into()).to_string().contains("/g/d"));
        assert!(H5Error::Fs(FsError::NotFound).to_string().contains("ENOENT"));
    }
}
