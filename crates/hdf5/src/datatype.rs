//! HDF5 datatypes.

use std::fmt;

/// The datatype of a dataset or attribute element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Datatype {
    Int32,
    Int64,
    UInt32,
    UInt64,
    Float32,
    Float64,
    /// Fixed-length string of `n` bytes.
    FixedString(u32),
    /// Variable-length string (modeled as a 16-byte heap reference, the
    /// size HDF5 charges in the file for a vlen descriptor).
    VarString,
    /// Compound type: named, ordered members.
    Compound(Vec<(String, Datatype)>),
}

impl Datatype {
    /// On-disk size of one element, in bytes.
    pub fn size(&self) -> u64 {
        match self {
            Datatype::Int32 | Datatype::UInt32 | Datatype::Float32 => 4,
            Datatype::Int64 | Datatype::UInt64 | Datatype::Float64 => 8,
            Datatype::FixedString(n) => *n as u64,
            Datatype::VarString => 16,
            Datatype::Compound(members) => members.iter().map(|(_, t)| t.size()).sum(),
        }
    }

    /// The HDF5-style type-class name (for provenance labels).
    pub fn class_name(&self) -> &'static str {
        match self {
            Datatype::Int32 | Datatype::Int64 => "H5T_INTEGER",
            Datatype::UInt32 | Datatype::UInt64 => "H5T_INTEGER",
            Datatype::Float32 | Datatype::Float64 => "H5T_FLOAT",
            Datatype::FixedString(_) | Datatype::VarString => "H5T_STRING",
            Datatype::Compound(_) => "H5T_COMPOUND",
        }
    }
}

impl fmt::Display for Datatype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datatype::Int32 => write!(f, "int32"),
            Datatype::Int64 => write!(f, "int64"),
            Datatype::UInt32 => write!(f, "uint32"),
            Datatype::UInt64 => write!(f, "uint64"),
            Datatype::Float32 => write!(f, "float32"),
            Datatype::Float64 => write!(f, "float64"),
            Datatype::FixedString(n) => write!(f, "str{n}"),
            Datatype::VarString => write!(f, "vstr"),
            Datatype::Compound(ms) => {
                write!(f, "compound{{")?;
                for (i, (n, t)) in ms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{n}:{t}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Datatype::Int32.size(), 4);
        assert_eq!(Datatype::Float64.size(), 8);
        assert_eq!(Datatype::FixedString(37).size(), 37);
        assert_eq!(Datatype::VarString.size(), 16);
    }

    #[test]
    fn compound_size_is_sum() {
        let c = Datatype::Compound(vec![
            ("x".into(), Datatype::Float32),
            ("y".into(), Datatype::Float32),
            ("id".into(), Datatype::Int64),
        ]);
        assert_eq!(c.size(), 16);
        assert_eq!(c.class_name(), "H5T_COMPOUND");
        assert_eq!(c.to_string(), "compound{x:float32,y:float32,id:int64}");
    }
}
