//! `provio-hdf5` — a simulated HDF5 library with a Virtual Object Layer.
//!
//! PROV-IO's HDF5 support hangs off one structural property of the real
//! library: HDF5's Virtual Object Layer (VOL) intercepts object-level API
//! operations and dispatches them to stackable connectors, each native API
//! having a homomorphic counterpart (paper §2.2, §5). This crate rebuilds
//! that property over the `provio-hpcfs` substrate:
//!
//! * A full object model — files, groups, datasets with extensible
//!   [`Dataspace`]s and [`Datatype`]s, attributes on any object, committed
//!   named datatypes, soft links — addressed by slash paths inside a file.
//! * [`vol::VolConnector`] — the homomorphic dispatch trait. The terminal
//!   connector is [`native::NativeVol`], which executes operations against
//!   shared in-memory file state and performs the corresponding byte I/O
//!   through the calling process's [`provio_hpcfs::FsSession`] (so Lustre
//!   cost and syscall events happen exactly where a real VFD would issue
//!   them). Connectors stack: PROV-IO's provenance connector (in
//!   `provio-core`) wraps any inner connector and forwards every call.
//! * [`vol::VolRegistry`] — runtime connector selection by name, standing in
//!   for `HDF5_VOL_CONNECTOR` dynamic loading.
//! * [`api::H5`] — an HDF5-flavoured convenience facade (`create_file`,
//!   `create_dataset`, `write`, `attr`, …) used by the workflows.
//!
//! Payloads use [`Data`]: small metadata (attributes, headers) is real
//! bytes; bulk scientific data may be `Synthetic`, which flows through the
//! same code paths and cost model without materializing terabytes.

pub mod api;
pub mod data;
pub mod dataspace;
pub mod datatype;
pub mod error;
pub mod native;
pub mod vol;

pub use api::H5;
pub use data::Data;
pub use dataspace::{Dataspace, Hyperslab};
pub use datatype::Datatype;
pub use error::{H5Error, H5Result};
pub use native::NativeVol;
pub use vol::{Handle, ObjectInfo, ObjectKind, VolConnector, VolRegistry};
