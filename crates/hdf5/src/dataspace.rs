//! Dataspaces and hyperslab selections.

use crate::error::{H5Error, H5Result};

/// Maximum-dimension bound: `None` means H5S_UNLIMITED.
pub type MaxDim = Option<u64>;

/// An N-dimensional extent with optional growth bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataspace {
    dims: Vec<u64>,
    maxdims: Vec<MaxDim>,
}

impl Dataspace {
    /// A fixed-extent dataspace (`maxdims == dims`).
    pub fn fixed(dims: &[u64]) -> Self {
        Dataspace {
            dims: dims.to_vec(),
            maxdims: dims.iter().map(|&d| Some(d)).collect(),
        }
    }

    /// A dataspace with explicit maxdims (use `None` for unlimited).
    pub fn with_max(dims: &[u64], maxdims: &[MaxDim]) -> H5Result<Self> {
        if dims.len() != maxdims.len() {
            return Err(H5Error::RankMismatch);
        }
        for (d, m) in dims.iter().zip(maxdims) {
            if let Some(m) = m {
                if m < d {
                    return Err(H5Error::NotExtendable);
                }
            }
        }
        Ok(Dataspace {
            dims: dims.to_vec(),
            maxdims: maxdims.to_vec(),
        })
    }

    /// Scalar dataspace (rank 0, one element).
    pub fn scalar() -> Self {
        Dataspace {
            dims: vec![],
            maxdims: vec![],
        }
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    pub fn maxdims(&self) -> &[MaxDim] {
        &self.maxdims
    }

    /// Total number of elements.
    pub fn npoints(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Is any dimension growable beyond the current extent?
    pub fn extendable(&self) -> bool {
        self.dims
            .iter()
            .zip(&self.maxdims)
            .any(|(d, m)| m.is_none_or(|m| m > *d))
    }

    /// Grow to `new_dims` (H5Dset_extent). Shrinking is allowed by HDF5 and
    /// by us; growth beyond maxdims is not.
    pub fn set_extent(&mut self, new_dims: &[u64]) -> H5Result<()> {
        if new_dims.len() != self.dims.len() {
            return Err(H5Error::RankMismatch);
        }
        for (nd, m) in new_dims.iter().zip(&self.maxdims) {
            if let Some(m) = m {
                if nd > m {
                    return Err(H5Error::NotExtendable);
                }
            }
        }
        self.dims = new_dims.to_vec();
        Ok(())
    }

    /// Validate a hyperslab against the current extent.
    pub fn check_selection(&self, sel: &Hyperslab) -> H5Result<()> {
        if sel.start.len() != self.dims.len() || sel.count.len() != self.dims.len() {
            return Err(H5Error::RankMismatch);
        }
        for ((s, c), d) in sel.start.iter().zip(&sel.count).zip(&self.dims) {
            if s.checked_add(*c).is_none() || s + c > *d {
                return Err(H5Error::SelectionOutOfBounds);
            }
        }
        Ok(())
    }

    /// Byte offset of `coord` in row-major element order.
    pub fn linear_index(&self, coord: &[u64]) -> H5Result<u64> {
        if coord.len() != self.dims.len() {
            return Err(H5Error::RankMismatch);
        }
        let mut idx = 0u64;
        for (c, d) in coord.iter().zip(&self.dims) {
            if c >= d {
                return Err(H5Error::SelectionOutOfBounds);
            }
            idx = idx * d + c;
        }
        Ok(idx)
    }
}

/// A rectangular selection: `start` corner plus `count` elements per dim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hyperslab {
    pub start: Vec<u64>,
    pub count: Vec<u64>,
}

impl Hyperslab {
    pub fn new(start: &[u64], count: &[u64]) -> Self {
        Hyperslab {
            start: start.to_vec(),
            count: count.to_vec(),
        }
    }

    /// Select everything in `space`.
    pub fn all(space: &Dataspace) -> Self {
        Hyperslab {
            start: vec![0; space.rank()],
            count: space.dims().to_vec(),
        }
    }

    pub fn npoints(&self) -> u64 {
        self.count.iter().product()
    }

    /// The contiguous row-major byte runs this selection covers, as
    /// `(element_offset, element_len)` pairs. Runs along the fastest
    /// (last) dimension merge when the selection spans it fully.
    pub fn runs(&self, space: &Dataspace) -> H5Result<Vec<(u64, u64)>> {
        space.check_selection(self)?;
        if space.rank() == 0 {
            return Ok(vec![(0, 1)]);
        }
        let rank = space.rank();
        // Contiguous tail: trailing dims selected in full.
        let mut tail_full = 0;
        for i in (0..rank).rev() {
            if self.start[i] == 0 && self.count[i] == space.dims()[i] {
                tail_full += 1;
            } else {
                break;
            }
        }
        // The last non-full dim also contributes contiguity along itself.
        let run_dims = (rank - tail_full).saturating_sub(1);
        let mut run_len = 1u64;
        for i in run_dims + 1..rank {
            run_len *= self.count[i];
        }
        run_len *= if run_dims < rank { self.count[run_dims] } else { 1 };

        // Iterate the outer coordinates.
        let mut out = Vec::new();
        let mut coord: Vec<u64> = self.start[..run_dims].to_vec();
        loop {
            // Linear offset of (coord…, start[run_dims], 0…0).
            let mut full_coord = coord.clone();
            if run_dims < rank {
                full_coord.push(self.start[run_dims]);
                full_coord.extend(std::iter::repeat_n(0, rank - run_dims - 1));
            }
            let off = space.linear_index(&full_coord)?;
            out.push((off, run_len));
            // Advance odometer over outer dims.
            let mut i = run_dims;
            loop {
                if i == 0 {
                    return Ok(out);
                }
                i -= 1;
                coord[i] += 1;
                if coord[i] < self.start[i] + self.count[i] {
                    break;
                }
                coord[i] = self.start[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn npoints_products() {
        let s = Dataspace::fixed(&[4, 5, 6]);
        assert_eq!(s.npoints(), 120);
        assert_eq!(Dataspace::scalar().npoints(), 1);
    }

    #[test]
    fn with_max_validates() {
        assert!(Dataspace::with_max(&[4], &[Some(2)]).is_err());
        assert!(Dataspace::with_max(&[4], &[Some(4), None]).is_err());
        let s = Dataspace::with_max(&[4], &[None]).unwrap();
        assert!(s.extendable());
        assert!(!Dataspace::fixed(&[4]).extendable());
    }

    #[test]
    fn set_extent_respects_maxdims() {
        let mut s = Dataspace::with_max(&[4, 8], &[None, Some(8)]).unwrap();
        s.set_extent(&[100, 8]).unwrap();
        assert_eq!(s.dims(), &[100, 8]);
        assert_eq!(s.set_extent(&[100, 9]), Err(H5Error::NotExtendable));
        assert_eq!(s.set_extent(&[100]), Err(H5Error::RankMismatch));
        // Shrinking allowed.
        s.set_extent(&[2, 2]).unwrap();
    }

    #[test]
    fn selection_bounds_checked() {
        let s = Dataspace::fixed(&[4, 4]);
        assert!(s.check_selection(&Hyperslab::new(&[0, 0], &[4, 4])).is_ok());
        assert_eq!(
            s.check_selection(&Hyperslab::new(&[2, 0], &[3, 1])),
            Err(H5Error::SelectionOutOfBounds)
        );
        assert_eq!(
            s.check_selection(&Hyperslab::new(&[0], &[4])),
            Err(H5Error::RankMismatch)
        );
    }

    #[test]
    fn linear_index_row_major() {
        let s = Dataspace::fixed(&[3, 4]);
        assert_eq!(s.linear_index(&[0, 0]).unwrap(), 0);
        assert_eq!(s.linear_index(&[0, 3]).unwrap(), 3);
        assert_eq!(s.linear_index(&[1, 0]).unwrap(), 4);
        assert_eq!(s.linear_index(&[2, 3]).unwrap(), 11);
        assert!(s.linear_index(&[3, 0]).is_err());
    }

    #[test]
    fn full_selection_is_one_run() {
        let s = Dataspace::fixed(&[3, 4]);
        let runs = Hyperslab::all(&s).runs(&s).unwrap();
        assert_eq!(runs, vec![(0, 12)]);
    }

    #[test]
    fn row_block_selection_runs() {
        let s = Dataspace::fixed(&[4, 8]);
        // Rows 1..3, all columns → one run of 16 starting at 8.
        let runs = Hyperslab::new(&[1, 0], &[2, 8]).runs(&s).unwrap();
        assert_eq!(runs, vec![(8, 16)]);
    }

    #[test]
    fn column_block_selection_runs() {
        let s = Dataspace::fixed(&[3, 8]);
        // Columns 2..5 of every row → three runs of 3.
        let runs = Hyperslab::new(&[0, 2], &[3, 3]).runs(&s).unwrap();
        assert_eq!(runs, vec![(2, 3), (10, 3), (18, 3)]);
    }

    #[test]
    fn runs_cover_npoints() {
        let s = Dataspace::fixed(&[5, 6, 7]);
        for sel in [
            Hyperslab::new(&[0, 0, 0], &[5, 6, 7]),
            Hyperslab::new(&[1, 2, 3], &[2, 2, 2]),
            Hyperslab::new(&[0, 0, 0], &[1, 1, 7]),
            Hyperslab::new(&[4, 5, 0], &[1, 1, 7]),
        ] {
            let runs = sel.runs(&s).unwrap();
            let total: u64 = runs.iter().map(|(_, l)| l).sum();
            assert_eq!(total, sel.npoints(), "{sel:?}");
        }
    }

    #[test]
    fn scalar_selection() {
        let s = Dataspace::scalar();
        let sel = Hyperslab::all(&s);
        assert_eq!(sel.npoints(), 1);
        assert_eq!(sel.runs(&s).unwrap(), vec![(0, 1)]);
    }

    #[test]
    fn rank1_partial_run() {
        let s = Dataspace::fixed(&[10]);
        let runs = Hyperslab::new(&[3], &[4]).runs(&s).unwrap();
        assert_eq!(runs, vec![(3, 4)]);
    }
}
