//! Data payloads: real bytes or synthetic (sized-only) data.

use bytes::Bytes;

/// A dataset read/write payload.
///
/// `Real` carries bytes (attributes, small datasets, fixtures whose values
/// matter). `Synthetic` carries only a size: it flows through the same VOL
/// and file-system paths, is charged the same modeled transfer time, and is
/// stored sparsely (zeros on read-back). H5bench-scale workloads use
/// `Synthetic` so a 3.9 TB experiment fits in host memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Data {
    Real(Bytes),
    Synthetic(u64),
}

impl Data {
    pub fn real(bytes: impl Into<Bytes>) -> Self {
        Data::Real(bytes.into())
    }

    pub fn synthetic(len: u64) -> Self {
        Data::Synthetic(len)
    }

    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Data::Real(b) => b.len() as u64,
            Data::Synthetic(n) => *n,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_synthetic(&self) -> bool {
        matches!(self, Data::Synthetic(_))
    }

    /// Real bytes, if this payload carries them.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Data::Real(b) => Some(b),
            Data::Synthetic(_) => None,
        }
    }

    /// A sub-range of the payload (used when scattering one payload across
    /// multiple hyperslab runs).
    pub fn slice(&self, offset: u64, len: u64) -> Data {
        match self {
            Data::Real(b) => {
                let start = (offset as usize).min(b.len());
                let end = ((offset + len) as usize).min(b.len());
                Data::Real(b.slice(start..end))
            }
            Data::Synthetic(total) => {
                let avail = total.saturating_sub(offset);
                Data::Synthetic(avail.min(len))
            }
        }
    }

    /// Encode little-endian f64s (convenience for fixtures).
    pub fn from_f64s(values: &[f64]) -> Data {
        let mut out = Vec::with_capacity(values.len() * 8);
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Data::real(out)
    }

    /// Decode little-endian f64s from a real payload.
    pub fn to_f64s(&self) -> Option<Vec<f64>> {
        let b = self.as_bytes()?;
        if b.len() % 8 != 0 {
            return None;
        }
        Some(
            b.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        assert_eq!(Data::real(vec![1, 2, 3]).len(), 3);
        assert_eq!(Data::synthetic(1 << 40).len(), 1 << 40);
        assert!(Data::synthetic(0).is_empty());
    }

    #[test]
    fn slicing_real() {
        let d = Data::real(vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(d.slice(2, 3), Data::real(vec![2, 3, 4]));
        assert_eq!(d.slice(4, 100), Data::real(vec![4, 5]));
    }

    #[test]
    fn slicing_synthetic() {
        let d = Data::synthetic(100);
        assert_eq!(d.slice(90, 20).len(), 10);
        assert!(d.slice(90, 20).is_synthetic());
    }

    #[test]
    fn f64_round_trip() {
        let d = Data::from_f64s(&[1.5, -2.25, 0.0]);
        assert_eq!(d.to_f64s().unwrap(), vec![1.5, -2.25, 0.0]);
        assert!(Data::synthetic(8).to_f64s().is_none());
        assert!(Data::real(vec![1, 2, 3]).to_f64s().is_none());
    }
}
