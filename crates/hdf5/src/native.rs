//! The terminal (native) VOL connector: executes object operations against
//! shared in-memory file state and performs the corresponding byte I/O on
//! the `provio-hpcfs` substrate.
//!
//! Layout model: each `.h5` file is one hpcfs file. Metadata (superblock,
//! object headers, attribute messages) is appended as real bytes at an EOF
//! allocation cursor, sized like the real format's messages; dataset raw
//! data is allocated in per-extent chunks at EOF (a chunked layout), so
//! extendable datasets grow without relocation and unallocated regions read
//! back as the fill value (zeros) — both real HDF5 behaviors.
//!
//! Data I/O goes through [`provio_hpcfs::FileSystem`] directly — *not*
//! through the session's syscall surface — and charges the Lustre cost to
//! the calling session's clock. This keeps the two tracking layers of the
//! paper distinct: HDF5 operations are observed at the VOL, POSIX
//! operations at the syscall wrapper, and nothing is double-counted.

use crate::data::Data;
use crate::dataspace::{Dataspace, Hyperslab};
use crate::datatype::Datatype;
use crate::error::{H5Error, H5Result};
use crate::vol::{Handle, ObjectInfo, ObjectKind, VolConnector};
use parking_lot::RwLock;
use provio_hpcfs::{FileSystem, FsSession};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Modeled metadata footprints (bytes), approximating HDF5's format costs.
const SUPERBLOCK_BYTES: u64 = 96;
const OBJECT_HEADER_BYTES: u64 = 128;
const ATTR_MESSAGE_BYTES: u64 = 64;
const LINK_MESSAGE_BYTES: u64 = 40;

type ObjId = u64;

#[derive(Debug, Clone)]
enum Link {
    Hard(ObjId),
    Soft(String),
}

#[derive(Debug, Clone)]
struct AttrState {
    dtype: Datatype,
    value: Vec<u8>,
}

#[derive(Debug)]
enum ObjState {
    Group {
        links: BTreeMap<String, Link>,
    },
    Dataset {
        dtype: Datatype,
        space: Dataspace,
        /// Allocated chunks: element offset → (element count, file offset).
        chunks: BTreeMap<u64, (u64, u64)>,
    },
    NamedDatatype {
        dtype: Datatype,
    },
}

#[derive(Debug)]
struct H5Object {
    /// Slash path within the file.
    path: String,
    state: ObjState,
    attrs: BTreeMap<String, AttrState>,
}

#[derive(Debug)]
struct H5File {
    /// Path of the backing file on hpcfs.
    fs_path: String,
    /// Backing inode.
    ino: provio_hpcfs::fs::Ino,
    objects: HashMap<ObjId, H5Object>,
    next_obj: ObjId,
    root: ObjId,
    /// EOF allocation cursor in the backing file.
    eof: u64,
    /// Bytes written since the last flush (drives flush cost).
    dirty_bytes: u64,
    open_count: usize,
}

impl H5File {
    fn object(&self, id: ObjId) -> H5Result<&H5Object> {
        self.objects.get(&id).ok_or(H5Error::BadHandle)
    }

    fn object_mut(&mut self, id: ObjId) -> H5Result<&mut H5Object> {
        self.objects.get_mut(&id).ok_or(H5Error::BadHandle)
    }

    /// Resolve a slash path (optionally relative to `base`) to an object id,
    /// following soft links.
    fn resolve(&self, base: ObjId, path: &str, depth: usize) -> H5Result<ObjId> {
        if depth > 16 {
            return Err(H5Error::NotFound(path.to_string()));
        }
        let mut cur = if path.starts_with('/') { self.root } else { base };
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let obj = self.object(cur)?;
            let ObjState::Group { links } = &obj.state else {
                return Err(H5Error::NotFound(path.to_string()));
            };
            match links.get(comp) {
                Some(Link::Hard(id)) => cur = *id,
                Some(Link::Soft(target)) => {
                    cur = self.resolve(cur, &target.clone(), depth + 1)?;
                }
                None => return Err(H5Error::NotFound(format!("{path} ({comp})"))),
            }
        }
        Ok(cur)
    }

    fn alloc(&mut self, bytes: u64) -> u64 {
        let off = self.eof;
        self.eof += bytes;
        self.dirty_bytes += bytes;
        off
    }

    fn child_path(&self, parent: ObjId, name: &str) -> H5Result<String> {
        let p = &self.object(parent)?.path;
        Ok(if p == "/" {
            format!("/{name}")
        } else {
            format!("{p}/{name}")
        })
    }
}

#[derive(Debug, Clone)]
struct HandleEntry {
    file_key: String,
    object: ObjId,
    /// Set for attribute handles.
    attr: Option<String>,
    kind: ObjectKind,
}

#[derive(Default)]
struct VolState {
    /// Canonical per-path file state. Retained across close so the same
    /// process tree can reopen (real HDF5 re-parses the file from disk; our
    /// canonical structure lives with the connector).
    files: HashMap<String, Arc<RwLock<H5File>>>,
    handles: HashMap<u64, HandleEntry>,
    next_handle: u64,
}

/// The native VOL connector.
pub struct NativeVol {
    fs: Arc<FileSystem>,
    state: RwLock<VolState>,
}

impl NativeVol {
    pub fn new(fs: Arc<FileSystem>) -> Self {
        NativeVol {
            fs,
            state: RwLock::new(VolState {
                next_handle: 1,
                ..Default::default()
            }),
        }
    }

    fn charge_meta(&self, s: &FsSession) {
        s.clock().advance(self.fs.config().meta_op());
    }

    fn charge_data(&self, s: &FsSession, bytes: u64) {
        s.clock().advance(self.fs.config().data_op(bytes));
    }

    fn mint(&self, entry: HandleEntry) -> Handle {
        let mut st = self.state.write();
        let id = st.next_handle;
        st.next_handle += 1;
        st.handles.insert(id, entry);
        Handle(id)
    }

    fn entry(&self, h: Handle) -> H5Result<HandleEntry> {
        self.state
            .read()
            .handles
            .get(&h.0)
            .cloned()
            .ok_or(H5Error::BadHandle)
    }

    fn file_of(&self, key: &str) -> H5Result<Arc<RwLock<H5File>>> {
        self.state
            .read()
            .files
            .get(key)
            .cloned()
            .ok_or_else(|| H5Error::NotFound(key.to_string()))
    }

    fn drop_handle(&self, h: Handle) -> H5Result<HandleEntry> {
        self.state
            .write()
            .handles
            .remove(&h.0)
            .ok_or(H5Error::BadHandle)
    }

    /// Write `data` into the backing file on behalf of `s`, charging cost.
    fn backing_write(
        &self,
        s: &FsSession,
        ino: provio_hpcfs::fs::Ino,
        offset: u64,
        data: &Data,
    ) -> H5Result<()> {
        let now = s.clock().now();
        match data {
            Data::Real(b) => self.fs.write_at(ino, offset, b, now)?,
            Data::Synthetic(n) => self.fs.write_synthetic_at(ino, offset, *n, now)?,
        }
        self.charge_data(s, data.len());
        Ok(())
    }

    /// Resolve a location handle to (file, base object), requiring it to be
    /// a file or group handle.
    fn location(&self, loc: Handle) -> H5Result<(Arc<RwLock<H5File>>, ObjId)> {
        let e = self.entry(loc)?;
        match e.kind {
            ObjectKind::File | ObjectKind::Group => {
                Ok((self.file_of(&e.file_key)?, e.object))
            }
            _ => Err(H5Error::WrongKind { expected: "file or group" }),
        }
    }

    fn dataset_entry(&self, h: Handle) -> H5Result<(Arc<RwLock<H5File>>, ObjId)> {
        let e = self.entry(h)?;
        if e.kind != ObjectKind::Dataset {
            return Err(H5Error::WrongKind { expected: "dataset" });
        }
        Ok((self.file_of(&e.file_key)?, e.object))
    }
}

impl VolConnector for NativeVol {
    fn name(&self) -> &str {
        "native"
    }

    fn file_create(&self, s: &FsSession, path: &str, truncate: bool) -> H5Result<Handle> {
        self.charge_meta(s);
        let now = s.clock().now();
        let exists_in_vol = self.state.read().files.contains_key(path);
        if exists_in_vol && !truncate {
            return Err(H5Error::AlreadyExists(path.to_string()));
        }
        let ino = self.fs.create_file(path, false, s.user(), now)?;
        self.fs.truncate_ino(ino, 0, now)?;

        let root = 1;
        let mut objects = HashMap::new();
        objects.insert(
            root,
            H5Object {
                path: "/".to_string(),
                state: ObjState::Group {
                    links: BTreeMap::new(),
                },
                attrs: BTreeMap::new(),
            },
        );
        let mut file = H5File {
            fs_path: path.to_string(),
            ino,
            objects,
            next_obj: 2,
            root,
            eof: 0,
            dirty_bytes: 0,
            open_count: 1,
        };
        let off = file.alloc(SUPERBLOCK_BYTES);
        let file = Arc::new(RwLock::new(file));
        self.state
            .write()
            .files
            .insert(path.to_string(), Arc::clone(&file));
        // Write the superblock.
        self.backing_write(
            s,
            ino,
            off,
            &Data::real(vec![0x89u8; SUPERBLOCK_BYTES as usize]),
        )?;
        Ok(self.mint(HandleEntry {
            file_key: path.to_string(),
            object: root,
            attr: None,
            kind: ObjectKind::File,
        }))
    }

    fn file_open(&self, s: &FsSession, path: &str, _write: bool) -> H5Result<Handle> {
        self.charge_meta(s);
        if !self.fs.exists(path) {
            return Err(H5Error::NotFound(path.to_string()));
        }
        let file = self.file_of(path)?;
        // Read the superblock (what the real library does at open).
        let ino = {
            let mut f = file.write();
            f.open_count += 1;
            f.ino
        };
        let _ = self.fs.read_at(ino, 0, SUPERBLOCK_BYTES)?;
        self.charge_data(s, SUPERBLOCK_BYTES);
        let root = file.read().root;
        Ok(self.mint(HandleEntry {
            file_key: path.to_string(),
            object: root,
            attr: None,
            kind: ObjectKind::File,
        }))
    }

    fn file_flush(&self, s: &FsSession, file: Handle) -> H5Result<()> {
        let e = self.entry(file)?;
        if e.kind != ObjectKind::File {
            return Err(H5Error::WrongKind { expected: "file" });
        }
        let f = self.file_of(&e.file_key)?;
        let dirty = {
            let mut f = f.write();
            std::mem::take(&mut f.dirty_bytes)
        };
        s.clock().advance(self.fs.config().fsync_op(dirty));
        Ok(())
    }

    fn file_close(&self, s: &FsSession, file: Handle) -> H5Result<()> {
        let e = self.drop_handle(file)?;
        if e.kind != ObjectKind::File {
            return Err(H5Error::BadHandle);
        }
        let f = self.file_of(&e.file_key)?;
        {
            let mut g = f.write();
            g.open_count = g.open_count.saturating_sub(1);
        }
        self.charge_meta(s);
        Ok(())
    }

    fn group_create(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle> {
        self.charge_meta(s);
        check_name(name)?;
        let (file, base) = self.location(loc)?;
        let (ino, off, key, id) = {
            let mut f = file.write();
            let parent = f.resolve(base, "", 0)?;
            let path = f.child_path(parent, name)?;
            {
                let ObjState::Group { links } = &f.object(parent)?.state else {
                    return Err(H5Error::WrongKind { expected: "group" });
                };
                if links.contains_key(name) {
                    return Err(H5Error::AlreadyExists(path));
                }
            }
            let id = f.next_obj;
            f.next_obj += 1;
            f.objects.insert(
                id,
                H5Object {
                    path,
                    state: ObjState::Group {
                        links: BTreeMap::new(),
                    },
                    attrs: BTreeMap::new(),
                },
            );
            let ObjState::Group { links } =
                &mut f.object_mut(parent)?.state
            else {
                unreachable!("checked above")
            };
            links.insert(name.to_string(), Link::Hard(id));
            let off = f.alloc(OBJECT_HEADER_BYTES + name.len() as u64);
            (f.ino, off, f.fs_path.clone(), id)
        };
        self.backing_write(
            s,
            ino,
            off,
            &Data::real(vec![0x47u8; (OBJECT_HEADER_BYTES as usize) + name.len()]),
        )?;
        Ok(self.mint(HandleEntry {
            file_key: key,
            object: id,
            attr: None,
            kind: ObjectKind::Group,
        }))
    }

    fn group_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle> {
        self.charge_meta(s);
        let (file, base) = self.location(loc)?;
        let (key, id) = {
            let f = file.read();
            let id = f.resolve(base, name, 0)?;
            if !matches!(f.object(id)?.state, ObjState::Group { .. }) {
                return Err(H5Error::WrongKind { expected: "group" });
            }
            (f.fs_path.clone(), id)
        };
        Ok(self.mint(HandleEntry {
            file_key: key,
            object: id,
            attr: None,
            kind: ObjectKind::Group,
        }))
    }

    fn group_close(&self, s: &FsSession, group: Handle) -> H5Result<()> {
        self.charge_meta(s);
        let e = self.drop_handle(group)?;
        if e.kind != ObjectKind::Group {
            return Err(H5Error::BadHandle);
        }
        Ok(())
    }

    fn dataset_create(
        &self,
        s: &FsSession,
        loc: Handle,
        name: &str,
        dtype: Datatype,
        space: Dataspace,
    ) -> H5Result<Handle> {
        self.charge_meta(s);
        check_name(name)?;
        let (file, base) = self.location(loc)?;
        let (ino, off, key, id) = {
            let mut f = file.write();
            let parent = f.resolve(base, "", 0)?;
            let path = f.child_path(parent, name)?;
            {
                let ObjState::Group { links } = &f.object(parent)?.state else {
                    return Err(H5Error::WrongKind { expected: "group" });
                };
                if links.contains_key(name) {
                    return Err(H5Error::AlreadyExists(path));
                }
            }
            let id = f.next_obj;
            f.next_obj += 1;
            f.objects.insert(
                id,
                H5Object {
                    path,
                    state: ObjState::Dataset {
                        dtype,
                        space,
                        chunks: BTreeMap::new(),
                    },
                    attrs: BTreeMap::new(),
                },
            );
            let ObjState::Group { links } = &mut f.object_mut(parent)?.state else {
                unreachable!("checked above")
            };
            links.insert(name.to_string(), Link::Hard(id));
            let off = f.alloc(OBJECT_HEADER_BYTES + name.len() as u64);
            (f.ino, off, f.fs_path.clone(), id)
        };
        self.backing_write(
            s,
            ino,
            off,
            &Data::real(vec![0x44u8; (OBJECT_HEADER_BYTES as usize) + name.len()]),
        )?;
        Ok(self.mint(HandleEntry {
            file_key: key,
            object: id,
            attr: None,
            kind: ObjectKind::Dataset,
        }))
    }

    fn dataset_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle> {
        self.charge_meta(s);
        let (file, base) = self.location(loc)?;
        let (key, id) = {
            let f = file.read();
            let id = f.resolve(base, name, 0)?;
            if !matches!(f.object(id)?.state, ObjState::Dataset { .. }) {
                return Err(H5Error::WrongKind { expected: "dataset" });
            }
            (f.fs_path.clone(), id)
        };
        Ok(self.mint(HandleEntry {
            file_key: key,
            object: id,
            attr: None,
            kind: ObjectKind::Dataset,
        }))
    }

    fn dataset_extend(&self, s: &FsSession, dset: Handle, new_dims: &[u64]) -> H5Result<()> {
        self.charge_meta(s);
        let (file, id) = self.dataset_entry(dset)?;
        let mut f = file.write();
        let obj = f.object_mut(id)?;
        let ObjState::Dataset { space, .. } = &mut obj.state else {
            return Err(H5Error::WrongKind { expected: "dataset" });
        };
        space.set_extent(new_dims)
    }

    fn dataset_write(
        &self,
        s: &FsSession,
        dset: Handle,
        sel: &Hyperslab,
        data: &Data,
    ) -> H5Result<()> {
        let (file, id) = self.dataset_entry(dset)?;
        // Plan: validate, compute runs, allocate missing chunks.
        let mut writes: Vec<(u64, Data)> = Vec::new(); // (file offset, payload)
        let ino;
        {
            let mut f = file.write();
            let elem_size;
            let runs;
            {
                let obj = f.object(id)?;
                let ObjState::Dataset { dtype, space, .. } = &obj.state else {
                    return Err(H5Error::WrongKind { expected: "dataset" });
                };
                elem_size = dtype.size();
                let expected = sel.npoints() * elem_size;
                if data.len() != expected {
                    return Err(H5Error::SizeMismatch {
                        expected,
                        got: data.len(),
                    });
                }
                runs = sel.runs(space)?;
            }
            // Walk each run against existing chunk coverage: covered spans
            // write in place; gaps get fresh chunks up to the next chunk
            // start, so chunks never overlap (no lost updates when a large
            // write spans an earlier small one).
            let mut payload_cursor = 0u64;
            for (elem_off, elem_len) in runs {
                let mut cur = elem_off;
                let end = elem_off + elem_len;
                while cur < end {
                    let covering = {
                        let obj = f.object(id)?;
                        let ObjState::Dataset { chunks, .. } = &obj.state else {
                            unreachable!()
                        };
                        chunks
                            .range(..=cur)
                            .next_back()
                            .filter(|(&start, &(count, _))| cur < start + count)
                            .map(|(&start, &(count, foff))| (start, count, foff))
                    };
                    let (file_off, take) = match covering {
                        Some((start, count, foff)) => {
                            let take = (start + count).min(end) - cur;
                            (foff + (cur - start) * elem_size, take)
                        }
                        None => {
                            let next_start = {
                                let obj = f.object(id)?;
                                let ObjState::Dataset { chunks, .. } = &obj.state else {
                                    unreachable!()
                                };
                                chunks
                                    .range(cur + 1..)
                                    .next()
                                    .map(|(&st, _)| st)
                                    .unwrap_or(end)
                                    .min(end)
                            };
                            let take = next_start - cur;
                            let foff = f.alloc(take * elem_size);
                            let obj = f.object_mut(id)?;
                            let ObjState::Dataset { chunks, .. } = &mut obj.state else {
                                unreachable!()
                            };
                            chunks.insert(cur, (take, foff));
                            (foff, take)
                        }
                    };
                    writes.push((file_off, data.slice(payload_cursor, take * elem_size)));
                    payload_cursor += take * elem_size;
                    cur += take;
                }
            }
            f.dirty_bytes += data.len();
            ino = f.ino;
        }
        for (off, payload) in writes {
            self.backing_write(s, ino, off, &payload)?;
        }
        Ok(())
    }

    fn dataset_read(&self, s: &FsSession, dset: Handle, sel: &Hyperslab) -> H5Result<Data> {
        let (file, id) = self.dataset_entry(dset)?;
        let mut reads: Vec<(Option<u64>, u64)> = Vec::new(); // (file offset or fill, byte len)
        let (ino, total_bytes, any_real);
        {
            let f = file.read();
            let obj = f.object(id)?;
            let ObjState::Dataset { dtype, space, chunks } = &obj.state else {
                return Err(H5Error::WrongKind { expected: "dataset" });
            };
            let elem_size = dtype.size();
            let runs = sel.runs(space)?;
            for (elem_off, elem_len) in runs {
                // Walk the run, consuming chunk coverage.
                let mut cur = elem_off;
                let end = elem_off + elem_len;
                while cur < end {
                    let covering = chunks
                        .range(..=cur)
                        .next_back()
                        .filter(|(&start, &(count, _))| cur < start + count)
                        .map(|(&start, &(count, foff))| (start, count, foff));
                    match covering {
                        Some((start, count, foff)) => {
                            let take = (start + count).min(end) - cur;
                            reads.push((Some(foff + (cur - start) * elem_size), take * elem_size));
                            cur += take;
                        }
                        None => {
                            // Unallocated → fill value; extends to next chunk
                            // start or run end.
                            let next_start = chunks
                                .range(cur + 1..)
                                .next()
                                .map(|(&st, _)| st)
                                .unwrap_or(end)
                                .min(end);
                            reads.push((None, (next_start - cur) * elem_size));
                            cur = next_start;
                        }
                    }
                }
            }
            total_bytes = sel.npoints() * elem_size;
            ino = f.ino;
            // Only materialize if some covered region holds real bytes —
            // synthetic payloads round-trip as synthetic with zero copies.
            any_real = reads.iter().any(|(o, l)| {
                o.is_some_and(|off| self.fs.materialized(ino, off, *l).unwrap_or(false))
            });
        }

        self.charge_data(s, total_bytes);
        if !any_real {
            return Ok(Data::synthetic(total_bytes));
        }
        // Materialize: mixes of fill + stored bytes.
        let mut out = Vec::with_capacity(total_bytes.min(1 << 26) as usize);
        let mut synthetic_only = true;
        for (src, len) in &reads {
            match src {
                Some(off) => {
                    let b = self.fs.read_at(ino, *off, *len)?;
                    // read_at may return short if file sparse-extended; pad.
                    synthetic_only = false;
                    out.extend_from_slice(&b);
                    out.resize(out.len() + (*len as usize - b.len()), 0);
                }
                None => out.resize(out.len() + *len as usize, 0),
            }
        }
        if synthetic_only {
            Ok(Data::synthetic(total_bytes))
        } else {
            Ok(Data::real(out))
        }
    }

    fn dataset_close(&self, s: &FsSession, dset: Handle) -> H5Result<()> {
        self.charge_meta(s);
        let e = self.drop_handle(dset)?;
        if e.kind != ObjectKind::Dataset {
            return Err(H5Error::BadHandle);
        }
        Ok(())
    }

    fn attr_create(
        &self,
        s: &FsSession,
        loc: Handle,
        name: &str,
        dtype: Datatype,
        value: &[u8],
    ) -> H5Result<Handle> {
        self.charge_meta(s);
        check_name(name)?;
        let e = self.entry(loc)?;
        if e.kind == ObjectKind::Attribute {
            return Err(H5Error::WrongKind { expected: "non-attribute" });
        }
        let file = self.file_of(&e.file_key)?;
        let (ino, off) = {
            let mut f = file.write();
            let obj = f.object(e.object)?;
            if obj.attrs.contains_key(name) {
                return Err(H5Error::AlreadyExists(format!("{}#{}", obj.path, name)));
            }
            let off = f.alloc(ATTR_MESSAGE_BYTES + name.len() as u64 + value.len() as u64);
            let obj = f.object_mut(e.object)?;
            obj.attrs.insert(
                name.to_string(),
                AttrState {
                    dtype,
                    value: value.to_vec(),
                },
            );
            (f.ino, off)
        };
        let mut blob = vec![0x41u8; ATTR_MESSAGE_BYTES as usize + name.len()];
        blob.extend_from_slice(value);
        self.backing_write(s, ino, off, &Data::real(blob))?;
        Ok(self.mint(HandleEntry {
            file_key: e.file_key,
            object: e.object,
            attr: Some(name.to_string()),
            kind: ObjectKind::Attribute,
        }))
    }

    fn attr_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle> {
        self.charge_meta(s);
        let e = self.entry(loc)?;
        let file = self.file_of(&e.file_key)?;
        {
            let f = file.read();
            let obj = f.object(e.object)?;
            if !obj.attrs.contains_key(name) {
                return Err(H5Error::NotFound(format!("{}#{}", obj.path, name)));
            }
        }
        Ok(self.mint(HandleEntry {
            file_key: e.file_key,
            object: e.object,
            attr: Some(name.to_string()),
            kind: ObjectKind::Attribute,
        }))
    }

    fn attr_read(&self, s: &FsSession, attr: Handle) -> H5Result<Vec<u8>> {
        let e = self.entry(attr)?;
        let Some(name) = e.attr else {
            return Err(H5Error::WrongKind { expected: "attribute" });
        };
        let file = self.file_of(&e.file_key)?;
        let f = file.read();
        let obj = f.object(e.object)?;
        let a = obj
            .attrs
            .get(&name)
            .ok_or_else(|| H5Error::NotFound(name.clone()))?;
        self.charge_data(s, a.value.len() as u64);
        Ok(a.value.clone())
    }

    fn attr_write(&self, s: &FsSession, attr: Handle, value: &[u8]) -> H5Result<()> {
        let e = self.entry(attr)?;
        let Some(name) = e.attr else {
            return Err(H5Error::WrongKind { expected: "attribute" });
        };
        let file = self.file_of(&e.file_key)?;
        let (ino, off) = {
            let mut f = file.write();
            let off = f.alloc(value.len() as u64);
            let obj = f.object_mut(e.object)?;
            let a = obj
                .attrs
                .get_mut(&name)
                .ok_or_else(|| H5Error::NotFound(name.clone()))?;
            a.value = value.to_vec();
            (f.ino, off)
        };
        self.backing_write(s, ino, off, &Data::real(value.to_vec()))?;
        Ok(())
    }

    fn attr_close(&self, s: &FsSession, attr: Handle) -> H5Result<()> {
        self.charge_meta(s);
        let e = self.drop_handle(attr)?;
        if e.kind != ObjectKind::Attribute {
            return Err(H5Error::BadHandle);
        }
        Ok(())
    }

    fn attr_list(&self, s: &FsSession, loc: Handle) -> H5Result<Vec<String>> {
        self.charge_meta(s);
        let e = self.entry(loc)?;
        let file = self.file_of(&e.file_key)?;
        let f = file.read();
        Ok(f.object(e.object)?.attrs.keys().cloned().collect())
    }

    fn datatype_commit(
        &self,
        s: &FsSession,
        loc: Handle,
        name: &str,
        dtype: Datatype,
    ) -> H5Result<Handle> {
        self.charge_meta(s);
        check_name(name)?;
        let (file, base) = self.location(loc)?;
        let (ino, off, key, id) = {
            let mut f = file.write();
            let parent = f.resolve(base, "", 0)?;
            let path = f.child_path(parent, name)?;
            {
                let ObjState::Group { links } = &f.object(parent)?.state else {
                    return Err(H5Error::WrongKind { expected: "group" });
                };
                if links.contains_key(name) {
                    return Err(H5Error::AlreadyExists(path));
                }
            }
            let id = f.next_obj;
            f.next_obj += 1;
            f.objects.insert(
                id,
                H5Object {
                    path,
                    state: ObjState::NamedDatatype { dtype },
                    attrs: BTreeMap::new(),
                },
            );
            let ObjState::Group { links } = &mut f.object_mut(parent)?.state else {
                unreachable!("checked above")
            };
            links.insert(name.to_string(), Link::Hard(id));
            let off = f.alloc(OBJECT_HEADER_BYTES + name.len() as u64);
            (f.ino, off, f.fs_path.clone(), id)
        };
        self.backing_write(
            s,
            ino,
            off,
            &Data::real(vec![0x54u8; OBJECT_HEADER_BYTES as usize + name.len()]),
        )?;
        Ok(self.mint(HandleEntry {
            file_key: key,
            object: id,
            attr: None,
            kind: ObjectKind::NamedDatatype,
        }))
    }

    fn datatype_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle> {
        self.charge_meta(s);
        let (file, base) = self.location(loc)?;
        let (key, id) = {
            let f = file.read();
            let id = f.resolve(base, name, 0)?;
            if !matches!(f.object(id)?.state, ObjState::NamedDatatype { .. }) {
                return Err(H5Error::WrongKind { expected: "datatype" });
            }
            (f.fs_path.clone(), id)
        };
        Ok(self.mint(HandleEntry {
            file_key: key,
            object: id,
            attr: None,
            kind: ObjectKind::NamedDatatype,
        }))
    }

    fn datatype_close(&self, s: &FsSession, dtype: Handle) -> H5Result<()> {
        self.charge_meta(s);
        let e = self.drop_handle(dtype)?;
        if e.kind != ObjectKind::NamedDatatype {
            return Err(H5Error::BadHandle);
        }
        Ok(())
    }

    fn link_create_soft(
        &self,
        s: &FsSession,
        loc: Handle,
        target: &str,
        name: &str,
    ) -> H5Result<()> {
        self.charge_meta(s);
        check_name(name)?;
        let (file, base) = self.location(loc)?;
        let (ino, off) = {
            let mut f = file.write();
            let parent = f.resolve(base, "", 0)?;
            {
                let ObjState::Group { links } = &f.object(parent)?.state else {
                    return Err(H5Error::WrongKind { expected: "group" });
                };
                if links.contains_key(name) {
                    return Err(H5Error::AlreadyExists(name.to_string()));
                }
            }
            let off = f.alloc(LINK_MESSAGE_BYTES + name.len() as u64 + target.len() as u64);
            let ObjState::Group { links } = &mut f.object_mut(parent)?.state else {
                unreachable!("checked above")
            };
            links.insert(name.to_string(), Link::Soft(target.to_string()));
            (f.ino, off)
        };
        self.backing_write(
            s,
            ino,
            off,
            &Data::real(vec![0x4Cu8; LINK_MESSAGE_BYTES as usize + name.len() + target.len()]),
        )?;
        Ok(())
    }

    fn link_delete(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<()> {
        self.charge_meta(s);
        let (file, base) = self.location(loc)?;
        let mut f = file.write();
        let parent = f.resolve(base, "", 0)?;
        let ObjState::Group { links } = &mut f.object_mut(parent)?.state else {
            return Err(H5Error::WrongKind { expected: "group" });
        };
        links
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| H5Error::NotFound(name.to_string()))
    }

    fn link_exists(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<bool> {
        self.charge_meta(s);
        let (file, base) = self.location(loc)?;
        let f = file.read();
        let base_id = f.resolve(base, "", 0)?;
        Ok(f.resolve(base_id, name, 0).is_ok())
    }

    fn link_list(&self, s: &FsSession, loc: Handle) -> H5Result<Vec<String>> {
        self.charge_meta(s);
        let (file, base) = self.location(loc)?;
        let f = file.read();
        let ObjState::Group { links } = &f.object(base)?.state else {
            return Err(H5Error::WrongKind { expected: "group" });
        };
        Ok(links.keys().cloned().collect())
    }

    fn object_info(&self, handle: Handle) -> H5Result<ObjectInfo> {
        let e = self.entry(handle)?;
        let file = self.file_of(&e.file_key)?;
        let f = file.read();
        let obj = f.object(e.object)?;
        let (object_path, dims, datatype) = match (&e.attr, &obj.state) {
            (Some(attr), _) => {
                let a = obj
                    .attrs
                    .get(attr)
                    .ok_or_else(|| H5Error::NotFound(attr.clone()))?;
                (
                    format!("{}#{}", obj.path, attr),
                    None,
                    Some(a.dtype.clone()),
                )
            }
            (None, ObjState::Dataset { dtype, space, .. }) => (
                obj.path.clone(),
                Some(space.dims().to_vec()),
                Some(dtype.clone()),
            ),
            (None, ObjState::NamedDatatype { dtype }) => {
                (obj.path.clone(), None, Some(dtype.clone()))
            }
            (None, ObjState::Group { .. }) => (obj.path.clone(), None, None),
        };
        Ok(ObjectInfo {
            file_path: f.fs_path.clone(),
            object_path,
            kind: e.kind,
            dims,
            datatype,
        })
    }
}

fn check_name(name: &str) -> H5Result<()> {
    if name.is_empty() || name.contains('/') {
        return Err(H5Error::BadName(name.to_string()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_hpcfs::{Dispatcher, LustreConfig};
    use provio_simrt::VirtualClock;

    fn setup() -> (Arc<NativeVol>, FsSession) {
        let fs = FileSystem::new(LustreConfig::default());
        let vol = Arc::new(NativeVol::new(Arc::clone(&fs)));
        let s = FsSession::new(
            fs,
            1,
            "alice",
            "vpicio_uni_h5",
            VirtualClock::new(),
            Dispatcher::new(),
        );
        (vol, s)
    }

    #[test]
    fn file_create_open_close() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/out.h5", true).unwrap();
        vol.file_close(&s, f).unwrap();
        let f2 = vol.file_open(&s, "/out.h5", false).unwrap();
        let info = vol.object_info(f2).unwrap();
        assert_eq!(info.file_path, "/out.h5");
        assert_eq!(info.object_path, "/");
        assert_eq!(info.kind, ObjectKind::File);
        vol.file_close(&s, f2).unwrap();
        assert!(vol.file_open(&s, "/nope.h5", false).is_err());
    }

    #[test]
    fn group_hierarchy_and_paths() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/x.h5", true).unwrap();
        let g = vol.group_create(&s, f, "Timestep_0").unwrap();
        let sub = vol.group_create(&s, g, "fields").unwrap();
        assert_eq!(vol.object_info(sub).unwrap().object_path, "/Timestep_0/fields");
        // Open by multi-component path from the file root.
        let again = vol.group_open(&s, f, "Timestep_0/fields").unwrap();
        assert_eq!(vol.object_info(again).unwrap().object_path, "/Timestep_0/fields");
        assert_eq!(
            vol.group_create(&s, f, "Timestep_0").unwrap_err(),
            H5Error::AlreadyExists("/Timestep_0".into())
        );
    }

    #[test]
    fn dataset_write_read_round_trip() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/d.h5", true).unwrap();
        let d = vol
            .dataset_create(&s, f, "x", Datatype::Float64, Dataspace::fixed(&[4]))
            .unwrap();
        vol.dataset_write(
            &s,
            d,
            &Hyperslab::new(&[0], &[4]),
            &Data::from_f64s(&[1.0, 2.0, 3.0, 4.0]),
        )
        .unwrap();
        let got = vol
            .dataset_read(&s, d, &Hyperslab::new(&[1], &[2]))
            .unwrap();
        assert_eq!(got.to_f64s().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn unallocated_reads_are_fill_value() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/d.h5", true).unwrap();
        let d = vol
            .dataset_create(&s, f, "x", Datatype::Int32, Dataspace::fixed(&[8]))
            .unwrap();
        let got = vol.dataset_read(&s, d, &Hyperslab::new(&[0], &[8])).unwrap();
        assert_eq!(got.len(), 32);
        assert!(got.is_synthetic(), "all-fill read stays synthetic");
    }

    #[test]
    fn partial_allocation_mixes_fill_and_data() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/d.h5", true).unwrap();
        let d = vol
            .dataset_create(&s, f, "x", Datatype::Float64, Dataspace::fixed(&[4]))
            .unwrap();
        vol.dataset_write(
            &s,
            d,
            &Hyperslab::new(&[2], &[2]),
            &Data::from_f64s(&[7.0, 8.0]),
        )
        .unwrap();
        let got = vol.dataset_read(&s, d, &Hyperslab::new(&[0], &[4])).unwrap();
        assert_eq!(got.to_f64s().unwrap(), vec![0.0, 0.0, 7.0, 8.0]);
    }

    #[test]
    fn size_mismatch_rejected() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/d.h5", true).unwrap();
        let d = vol
            .dataset_create(&s, f, "x", Datatype::Float64, Dataspace::fixed(&[4]))
            .unwrap();
        let err = vol
            .dataset_write(&s, d, &Hyperslab::new(&[0], &[4]), &Data::synthetic(31))
            .unwrap_err();
        assert_eq!(err, H5Error::SizeMismatch { expected: 32, got: 31 });
    }

    #[test]
    fn extend_and_append_pattern() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/a.h5", true).unwrap();
        let space = Dataspace::with_max(&[0], &[None]).unwrap();
        let d = vol
            .dataset_create(&s, f, "log", Datatype::Int64, space)
            .unwrap();
        for step in 0..4u64 {
            vol.dataset_extend(&s, d, &[(step + 1) * 10]).unwrap();
            vol.dataset_write(
                &s,
                d,
                &Hyperslab::new(&[step * 10], &[10]),
                &Data::synthetic(80),
            )
            .unwrap();
        }
        let info = vol.object_info(d).unwrap();
        assert_eq!(info.dims, Some(vec![40]));
        let got = vol.dataset_read(&s, d, &Hyperslab::new(&[0], &[40])).unwrap();
        assert_eq!(got.len(), 320);
    }

    #[test]
    fn synthetic_payloads_not_resident() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/big.h5", true).unwrap();
        let d = vol
            .dataset_create(
                &s,
                f,
                "field",
                Datatype::Float64,
                Dataspace::fixed(&[1 << 27]), // 1 GiB of f64
            )
            .unwrap();
        vol.dataset_write(
            &s,
            d,
            &Hyperslab::new(&[0], &[1 << 27]),
            &Data::synthetic(8 << 27),
        )
        .unwrap();
        // Backing fs holds only metadata bytes.
        assert!(s.fs().total_resident_bytes() < 4096);
        assert!(s.fs().stat("/big.h5").unwrap().size >= 8 << 27);
    }

    #[test]
    fn attributes_lifecycle() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/a.h5", true).unwrap();
        let d = vol
            .dataset_create(&s, f, "x", Datatype::Float64, Dataspace::fixed(&[2]))
            .unwrap();
        let a = vol
            .attr_create(&s, d, "units", Datatype::FixedString(8), b"m/s")
            .unwrap();
        assert_eq!(vol.attr_read(&s, a).unwrap(), b"m/s");
        vol.attr_write(&s, a, b"km/h").unwrap();
        assert_eq!(vol.attr_read(&s, a).unwrap(), b"km/h");
        let info = vol.object_info(a).unwrap();
        assert_eq!(info.object_path, "/x#units");
        assert_eq!(info.kind, ObjectKind::Attribute);
        vol.attr_close(&s, a).unwrap();
        assert_eq!(vol.attr_list(&s, d).unwrap(), vec!["units"]);
        let a2 = vol.attr_open(&s, d, "units").unwrap();
        assert_eq!(vol.attr_read(&s, a2).unwrap(), b"km/h");
        assert!(vol.attr_open(&s, d, "missing").is_err());
        assert!(vol
            .attr_create(&s, d, "units", Datatype::VarString, b"x")
            .is_err());
    }

    #[test]
    fn named_datatypes() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/t.h5", true).unwrap();
        let c = Datatype::Compound(vec![
            ("e".into(), Datatype::Float32),
            ("t".into(), Datatype::Int64),
        ]);
        let t = vol.datatype_commit(&s, f, "particle", c.clone()).unwrap();
        assert_eq!(vol.object_info(t).unwrap().datatype, Some(c.clone()));
        vol.datatype_close(&s, t).unwrap();
        let t2 = vol.datatype_open(&s, f, "particle").unwrap();
        assert_eq!(vol.object_info(t2).unwrap().datatype, Some(c));
    }

    #[test]
    fn soft_links_resolve() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/l.h5", true).unwrap();
        let g = vol.group_create(&s, f, "data").unwrap();
        vol.dataset_create(&s, g, "x", Datatype::Int32, Dataspace::fixed(&[1]))
            .unwrap();
        vol.link_create_soft(&s, f, "/data/x", "latest").unwrap();
        let d = vol.dataset_open(&s, f, "latest").unwrap();
        assert_eq!(vol.object_info(d).unwrap().object_path, "/data/x");
        assert!(vol.link_exists(&s, f, "latest").unwrap());
        vol.link_delete(&s, f, "latest").unwrap();
        assert!(!vol.link_exists(&s, f, "latest").unwrap());
        assert_eq!(vol.link_list(&s, f).unwrap(), vec!["data"]);
    }

    #[test]
    fn io_charges_virtual_time() {
        let (vol, s) = setup();
        let t0 = s.clock().now();
        let f = vol.file_create(&s, "/c.h5", true).unwrap();
        let d = vol
            .dataset_create(&s, f, "x", Datatype::Float64, Dataspace::fixed(&[1 << 20]))
            .unwrap();
        let t1 = s.clock().now();
        assert!(t1 > t0);
        vol.dataset_write(
            &s,
            d,
            &Hyperslab::new(&[0], &[1 << 20]),
            &Data::synthetic(8 << 20),
        )
        .unwrap();
        let t2 = s.clock().now();
        assert!(t2.elapsed_since(t1) > t1.elapsed_since(t0), "bulk write dominates");
    }

    #[test]
    fn concurrent_ranks_share_file() {
        let fs = FileSystem::new(LustreConfig::default());
        let vol = Arc::new(NativeVol::new(Arc::clone(&fs)));
        let boot = FsSession::new(
            Arc::clone(&fs),
            0,
            "alice",
            "launcher",
            VirtualClock::new(),
            Dispatcher::new(),
        );
        let f = vol.file_create(&boot, "/shared.h5", true).unwrap();
        let space = Dataspace::fixed(&[64 * 1024]);
        let d = vol
            .dataset_create(&boot, f, "x", Datatype::Float64, space)
            .unwrap();
        let _ = d;
        std::thread::scope(|sc| {
            for rank in 0..8u64 {
                let vol = Arc::clone(&vol);
                let fs = Arc::clone(&fs);
                sc.spawn(move || {
                    let s = FsSession::new(
                        fs,
                        100 + rank as u32,
                        "alice",
                        "vpicio",
                        VirtualClock::new(),
                        Dispatcher::new(),
                    );
                    let f = vol.file_open(&s, "/shared.h5", true).unwrap();
                    let d = vol.dataset_open(&s, f, "x").unwrap();
                    vol.dataset_write(
                        &s,
                        d,
                        &Hyperslab::new(&[rank * 1024], &[1024]),
                        &Data::synthetic(8 * 1024),
                    )
                    .unwrap();
                    vol.dataset_close(&s, d).unwrap();
                    vol.file_close(&s, f).unwrap();
                });
            }
        });
        let s = boot;
        let d2 = vol.dataset_open(&s, f, "x").unwrap();
        let got = vol
            .dataset_read(&s, d2, &Hyperslab::new(&[0], &[8 * 1024]))
            .unwrap();
        assert_eq!(got.len(), 64 * 1024);
    }

    #[test]
    fn bad_names_rejected() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/n.h5", true).unwrap();
        assert!(matches!(
            vol.group_create(&s, f, "a/b"),
            Err(H5Error::BadName(_))
        ));
        assert!(matches!(
            vol.group_create(&s, f, ""),
            Err(H5Error::BadName(_))
        ));
    }

    #[test]
    fn closed_handle_rejected() {
        let (vol, s) = setup();
        let f = vol.file_create(&s, "/h.h5", true).unwrap();
        let g = vol.group_create(&s, f, "g").unwrap();
        vol.group_close(&s, g).unwrap();
        assert_eq!(vol.object_info(g).unwrap_err(), H5Error::BadHandle);
        assert!(vol.group_open(&s, g, "x").is_err());
    }
}
