//! The Virtual Object Layer: homomorphic dispatch and connector stacking.
//!
//! Every object-level API the library exposes has a counterpart method on
//! [`VolConnector`] (the "homomorphic design" of the VOL-provenance
//! connector the paper builds on, §5). A connector either terminates the
//! stack (the native connector executes against storage) or wraps another
//! connector, observing and forwarding. [`VolRegistry`] provides runtime
//! selection by name, standing in for the `HDF5_VOL_CONNECTOR` environment
//! variable mechanism that loads third-party connectors dynamically.

use crate::data::Data;
use crate::dataspace::{Dataspace, Hyperslab};
use crate::datatype::Datatype;
use crate::error::H5Result;
use parking_lot::RwLock;
use provio_hpcfs::FsSession;
use std::collections::HashMap;
use std::sync::Arc;

/// An opaque handle to an open file/group/dataset/attribute/datatype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(pub u64);

/// What an open handle refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    File,
    Group,
    Dataset,
    Attribute,
    NamedDatatype,
}

impl ObjectKind {
    pub fn name(self) -> &'static str {
        match self {
            ObjectKind::File => "file",
            ObjectKind::Group => "group",
            ObjectKind::Dataset => "dataset",
            ObjectKind::Attribute => "attribute",
            ObjectKind::NamedDatatype => "datatype",
        }
    }
}

/// Introspection record for an open handle — what a stacked connector needs
/// to name the object in provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectInfo {
    /// Path of the containing file on the file system.
    pub file_path: String,
    /// Slash path of the object within the file ("/" for the file itself;
    /// attributes use `parent_path#attr_name`).
    pub object_path: String,
    pub kind: ObjectKind,
    /// Current dims for datasets.
    pub dims: Option<Vec<u64>>,
    /// Element datatype for datasets/attributes/named datatypes.
    pub datatype: Option<Datatype>,
}

/// The homomorphic VOL dispatch trait.
///
/// All methods take the calling process's [`FsSession`] so the terminal
/// connector performs its byte I/O — and charges its modeled cost — on
/// behalf of the right process, and so stacked connectors can charge their
/// own (real, measured) overhead to the same process.
pub trait VolConnector: Send + Sync {
    /// Connector name (what the registry binds).
    fn name(&self) -> &str;

    // -- file --
    fn file_create(&self, s: &FsSession, path: &str, truncate: bool) -> H5Result<Handle>;
    fn file_open(&self, s: &FsSession, path: &str, write: bool) -> H5Result<Handle>;
    fn file_flush(&self, s: &FsSession, file: Handle) -> H5Result<()>;
    fn file_close(&self, s: &FsSession, file: Handle) -> H5Result<()>;

    // -- group --
    fn group_create(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle>;
    fn group_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle>;
    fn group_close(&self, s: &FsSession, group: Handle) -> H5Result<()>;

    // -- dataset --
    fn dataset_create(
        &self,
        s: &FsSession,
        loc: Handle,
        name: &str,
        dtype: Datatype,
        space: Dataspace,
    ) -> H5Result<Handle>;
    fn dataset_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle>;
    fn dataset_extend(&self, s: &FsSession, dset: Handle, new_dims: &[u64]) -> H5Result<()>;
    fn dataset_write(
        &self,
        s: &FsSession,
        dset: Handle,
        sel: &Hyperslab,
        data: &Data,
    ) -> H5Result<()>;
    fn dataset_read(&self, s: &FsSession, dset: Handle, sel: &Hyperslab) -> H5Result<Data>;
    fn dataset_close(&self, s: &FsSession, dset: Handle) -> H5Result<()>;

    // -- attribute --
    fn attr_create(
        &self,
        s: &FsSession,
        loc: Handle,
        name: &str,
        dtype: Datatype,
        value: &[u8],
    ) -> H5Result<Handle>;
    fn attr_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle>;
    fn attr_read(&self, s: &FsSession, attr: Handle) -> H5Result<Vec<u8>>;
    fn attr_write(&self, s: &FsSession, attr: Handle, value: &[u8]) -> H5Result<()>;
    fn attr_close(&self, s: &FsSession, attr: Handle) -> H5Result<()>;
    fn attr_list(&self, s: &FsSession, loc: Handle) -> H5Result<Vec<String>>;

    // -- named datatype --
    fn datatype_commit(
        &self,
        s: &FsSession,
        loc: Handle,
        name: &str,
        dtype: Datatype,
    ) -> H5Result<Handle>;
    fn datatype_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle>;
    fn datatype_close(&self, s: &FsSession, dtype: Handle) -> H5Result<()>;

    // -- links --
    fn link_create_soft(
        &self,
        s: &FsSession,
        loc: Handle,
        target: &str,
        name: &str,
    ) -> H5Result<()>;
    fn link_delete(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<()>;
    fn link_exists(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<bool>;
    fn link_list(&self, s: &FsSession, loc: Handle) -> H5Result<Vec<String>>;

    // -- introspection --
    fn object_info(&self, handle: Handle) -> H5Result<ObjectInfo>;
}

/// Named connector registry — the `HDF5_VOL_CONNECTOR` stand-in.
#[derive(Default)]
pub struct VolRegistry {
    connectors: RwLock<HashMap<String, Arc<dyn VolConnector>>>,
}

impl VolRegistry {
    pub fn new() -> Self {
        VolRegistry::default()
    }

    /// Register (or replace) a connector under its `name()`.
    pub fn register(&self, connector: Arc<dyn VolConnector>) {
        self.connectors
            .write()
            .insert(connector.name().to_string(), connector);
    }

    /// Resolve a connector by name, as HDF5 does at library init.
    pub fn resolve(&self, name: &str) -> Option<Arc<dyn VolConnector>> {
        self.connectors.read().get(name).cloned()
    }

    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.connectors.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeVol;
    use provio_hpcfs::{Dispatcher, FileSystem, LustreConfig};
    use provio_simrt::VirtualClock;

    #[test]
    fn registry_resolves_by_name() {
        let fs = FileSystem::new(LustreConfig::default());
        let reg = VolRegistry::new();
        reg.register(Arc::new(NativeVol::new(Arc::clone(&fs))));
        assert!(reg.resolve("native").is_some());
        assert!(reg.resolve("provio").is_none());
        assert_eq!(reg.names(), vec!["native"]);
    }

    #[test]
    fn registry_replace_same_name() {
        let fs = FileSystem::new(LustreConfig::default());
        let reg = VolRegistry::new();
        reg.register(Arc::new(NativeVol::new(Arc::clone(&fs))));
        reg.register(Arc::new(NativeVol::new(Arc::clone(&fs))));
        // Still exactly one binding.
        assert_eq!(reg.names(), vec!["native"]);
    }

    #[test]
    fn object_kind_names() {
        assert_eq!(ObjectKind::Dataset.name(), "dataset");
        assert_eq!(ObjectKind::NamedDatatype.name(), "datatype");
    }

    // Silence unused-import warnings for items used only via trait objects.
    #[allow(dead_code)]
    fn _uses(_: &Dispatcher, _: &VirtualClock) {}
}
