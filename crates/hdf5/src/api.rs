//! An HDF5-flavoured facade over the VOL.
//!
//! Workflow code holds an [`H5`] bound to one process session and one
//! connector stack, and calls methods named after the C API families
//! (`H5Fcreate` → [`H5::create_file`], `H5Dwrite` → [`H5::write`], …). All
//! calls dispatch through the connector, so a stacked provenance connector
//! observes everything without the workflow changing — the transparency
//! property the paper's evaluation relies on.

use crate::data::Data;
use crate::dataspace::{Dataspace, Hyperslab};
use crate::datatype::Datatype;
use crate::error::H5Result;
use crate::vol::{Handle, ObjectInfo, VolConnector};
use provio_hpcfs::FsSession;
use std::sync::Arc;

/// A per-process HDF5 library instance.
pub struct H5 {
    vol: Arc<dyn VolConnector>,
    session: Arc<FsSession>,
}

impl H5 {
    /// Bind `session` to a connector stack.
    pub fn new(session: Arc<FsSession>, vol: Arc<dyn VolConnector>) -> Self {
        H5 { vol, session }
    }

    pub fn session(&self) -> &Arc<FsSession> {
        &self.session
    }

    pub fn vol(&self) -> &Arc<dyn VolConnector> {
        &self.vol
    }

    // -- H5F --

    /// H5Fcreate(H5F_ACC_TRUNC).
    pub fn create_file(&self, path: &str) -> H5Result<Handle> {
        self.vol.file_create(&self.session, path, true)
    }

    /// H5Fopen.
    pub fn open_file(&self, path: &str, write: bool) -> H5Result<Handle> {
        self.vol.file_open(&self.session, path, write)
    }

    /// H5Fflush.
    pub fn flush(&self, file: Handle) -> H5Result<()> {
        self.vol.file_flush(&self.session, file)
    }

    /// H5Fclose.
    pub fn close_file(&self, file: Handle) -> H5Result<()> {
        self.vol.file_close(&self.session, file)
    }

    // -- H5G --

    /// H5Gcreate2.
    pub fn create_group(&self, loc: Handle, name: &str) -> H5Result<Handle> {
        self.vol.group_create(&self.session, loc, name)
    }

    /// H5Gopen2.
    pub fn open_group(&self, loc: Handle, name: &str) -> H5Result<Handle> {
        self.vol.group_open(&self.session, loc, name)
    }

    /// H5Gclose.
    pub fn close_group(&self, group: Handle) -> H5Result<()> {
        self.vol.group_close(&self.session, group)
    }

    // -- H5D --

    /// H5Dcreate2.
    pub fn create_dataset(
        &self,
        loc: Handle,
        name: &str,
        dtype: Datatype,
        space: Dataspace,
    ) -> H5Result<Handle> {
        self.vol.dataset_create(&self.session, loc, name, dtype, space)
    }

    /// H5Dopen2.
    pub fn open_dataset(&self, loc: Handle, name: &str) -> H5Result<Handle> {
        self.vol.dataset_open(&self.session, loc, name)
    }

    /// H5Dset_extent.
    pub fn extend_dataset(&self, dset: Handle, new_dims: &[u64]) -> H5Result<()> {
        self.vol.dataset_extend(&self.session, dset, new_dims)
    }

    /// H5Dwrite over a hyperslab selection.
    pub fn write(&self, dset: Handle, sel: &Hyperslab, data: &Data) -> H5Result<()> {
        self.vol.dataset_write(&self.session, dset, sel, data)
    }

    /// H5Dread over a hyperslab selection.
    pub fn read(&self, dset: Handle, sel: &Hyperslab) -> H5Result<Data> {
        self.vol.dataset_read(&self.session, dset, sel)
    }

    /// H5Dclose.
    pub fn close_dataset(&self, dset: Handle) -> H5Result<()> {
        self.vol.dataset_close(&self.session, dset)
    }

    // -- H5A --

    /// H5Acreate2 + H5Awrite in one step (the common pattern).
    pub fn create_attr(
        &self,
        loc: Handle,
        name: &str,
        dtype: Datatype,
        value: &[u8],
    ) -> H5Result<Handle> {
        self.vol.attr_create(&self.session, loc, name, dtype, value)
    }

    /// H5Aopen.
    pub fn open_attr(&self, loc: Handle, name: &str) -> H5Result<Handle> {
        self.vol.attr_open(&self.session, loc, name)
    }

    /// H5Aread.
    pub fn read_attr(&self, attr: Handle) -> H5Result<Vec<u8>> {
        self.vol.attr_read(&self.session, attr)
    }

    /// H5Awrite.
    pub fn write_attr(&self, attr: Handle, value: &[u8]) -> H5Result<()> {
        self.vol.attr_write(&self.session, attr, value)
    }

    /// H5Aclose.
    pub fn close_attr(&self, attr: Handle) -> H5Result<()> {
        self.vol.attr_close(&self.session, attr)
    }

    /// Attribute names on an object.
    pub fn list_attrs(&self, loc: Handle) -> H5Result<Vec<String>> {
        self.vol.attr_list(&self.session, loc)
    }

    /// Convenience: read a whole attribute by name (open → read → close).
    pub fn attr_value(&self, loc: Handle, name: &str) -> H5Result<Vec<u8>> {
        let a = self.open_attr(loc, name)?;
        let v = self.read_attr(a)?;
        self.close_attr(a)?;
        Ok(v)
    }

    // -- H5T --

    /// H5Tcommit2.
    pub fn commit_datatype(&self, loc: Handle, name: &str, dtype: Datatype) -> H5Result<Handle> {
        self.vol.datatype_commit(&self.session, loc, name, dtype)
    }

    /// H5Topen2.
    pub fn open_datatype(&self, loc: Handle, name: &str) -> H5Result<Handle> {
        self.vol.datatype_open(&self.session, loc, name)
    }

    /// H5Tclose.
    pub fn close_datatype(&self, dtype: Handle) -> H5Result<()> {
        self.vol.datatype_close(&self.session, dtype)
    }

    // -- H5L --

    /// H5Lcreate_soft.
    pub fn create_soft_link(&self, loc: Handle, target: &str, name: &str) -> H5Result<()> {
        self.vol.link_create_soft(&self.session, loc, target, name)
    }

    /// H5Ldelete.
    pub fn delete_link(&self, loc: Handle, name: &str) -> H5Result<()> {
        self.vol.link_delete(&self.session, loc, name)
    }

    /// H5Lexists.
    pub fn link_exists(&self, loc: Handle, name: &str) -> H5Result<bool> {
        self.vol.link_exists(&self.session, loc, name)
    }

    /// Names linked under a group.
    pub fn list_links(&self, loc: Handle) -> H5Result<Vec<String>> {
        self.vol.link_list(&self.session, loc)
    }

    // -- H5O --

    /// H5Oget_info-style introspection.
    pub fn object_info(&self, handle: Handle) -> H5Result<ObjectInfo> {
        self.vol.object_info(handle)
    }

    /// Convenience: write a full (small) dataset in one call.
    pub fn write_dataset_full(
        &self,
        loc: Handle,
        name: &str,
        dtype: Datatype,
        dims: &[u64],
        data: &Data,
    ) -> H5Result<Handle> {
        let space = Dataspace::fixed(dims);
        let sel = Hyperslab::all(&space);
        let d = self.create_dataset(loc, name, dtype, space)?;
        self.write(d, &sel, data)?;
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeVol;
    use provio_hpcfs::{Dispatcher, FileSystem, LustreConfig};
    use provio_simrt::VirtualClock;

    fn h5() -> H5 {
        let fs = FileSystem::new(LustreConfig::default());
        let vol = Arc::new(NativeVol::new(Arc::clone(&fs)));
        let s = Arc::new(FsSession::new(
            fs,
            1,
            "bob",
            "quickcheck",
            VirtualClock::new(),
            Dispatcher::new(),
        ));
        H5::new(s, vol)
    }

    #[test]
    fn facade_full_round_trip() {
        let h = h5();
        let f = h.create_file("/t.h5").unwrap();
        let g = h.create_group(f, "Timestep_0").unwrap();
        let d = h
            .write_dataset_full(
                g,
                "x",
                Datatype::Float64,
                &[3],
                &Data::from_f64s(&[1.0, 2.0, 3.0]),
            )
            .unwrap();
        h.create_attr(d, "units", Datatype::FixedString(8), b"cm")
            .unwrap();
        h.flush(f).unwrap();
        h.close_dataset(d).unwrap();
        h.close_group(g).unwrap();
        h.close_file(f).unwrap();

        let f = h.open_file("/t.h5", false).unwrap();
        let d = h.open_dataset(f, "Timestep_0/x").unwrap();
        let space = Dataspace::fixed(&[3]);
        let got = h.read(d, &Hyperslab::all(&space)).unwrap();
        assert_eq!(got.to_f64s().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(h.attr_value(d, "units").unwrap(), b"cm");
        assert_eq!(h.list_attrs(d).unwrap(), vec!["units"]);
    }

    #[test]
    fn facade_links_and_types() {
        let h = h5();
        let f = h.create_file("/t.h5").unwrap();
        let c = Datatype::Compound(vec![("a".into(), Datatype::Int32)]);
        h.commit_datatype(f, "rec", c).unwrap();
        h.create_soft_link(f, "/rec", "rec_alias").unwrap();
        assert!(h.link_exists(f, "rec_alias").unwrap());
        assert_eq!(h.list_links(f).unwrap(), vec!["rec", "rec_alias"]);
        let t = h.open_datatype(f, "rec_alias").unwrap();
        h.close_datatype(t).unwrap();
        h.delete_link(f, "rec_alias").unwrap();
        assert!(!h.link_exists(f, "rec_alias").unwrap());
    }
}
