//! Property tests: dataset hyperslab writes/reads against a reference
//! in-memory array model, and extendable-dataset semantics.

use proptest::prelude::*;
use provio_hdf5::{Data, Dataspace, Datatype, Hyperslab, NativeVol, VolConnector};
use provio_hpcfs::{Dispatcher, FileSystem, FsSession, LustreConfig};
use provio_simrt::VirtualClock;
use std::sync::Arc;

fn rig() -> (Arc<NativeVol>, FsSession) {
    let fs = FileSystem::new(LustreConfig::default());
    let vol = Arc::new(NativeVol::new(Arc::clone(&fs)));
    let s = FsSession::new(fs, 1, "p", "p", VirtualClock::new(), Dispatcher::new());
    (vol, s)
}

#[derive(Debug, Clone)]
struct Slab {
    start: u64,
    count: u64,
    fill: u8,
}

fn arb_slabs(dim: u64) -> impl Strategy<Value = Vec<Slab>> {
    proptest::collection::vec(
        (0..dim, 1..=dim, any::<u8>()).prop_map(move |(start, count, fill)| Slab {
            start,
            count: count.min(dim - start).max(1),
            fill,
        }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rank-1 writes/reads agree with a byte-array reference model.
    #[test]
    fn rank1_matches_reference(dim in 4u64..64, slabs in arb_slabs(64)) {
        let slabs: Vec<Slab> = slabs
            .into_iter()
            .map(|s| Slab { start: s.start.min(dim - 1), count: s.count.min(dim - s.start.min(dim - 1)).max(1), fill: s.fill })
            .collect();
        let (vol, s) = rig();
        let f = vol.file_create(&s, "/p.h5", true).unwrap();
        let d = vol
            .dataset_create(&s, f, "x", Datatype::Int64, Dataspace::fixed(&[dim]))
            .unwrap();
        let mut model = vec![0u8; (dim * 8) as usize];
        for slab in &slabs {
            let bytes = vec![slab.fill; (slab.count * 8) as usize];
            vol.dataset_write(
                &s,
                d,
                &Hyperslab::new(&[slab.start], &[slab.count]),
                &Data::real(bytes.clone()),
            )
            .unwrap();
            model[(slab.start * 8) as usize..((slab.start + slab.count) * 8) as usize]
                .copy_from_slice(&bytes);
        }
        let got = vol
            .dataset_read(&s, d, &Hyperslab::new(&[0], &[dim]))
            .unwrap();
        match got {
            Data::Real(b) => prop_assert_eq!(&b[..], &model[..]),
            Data::Synthetic(n) => {
                prop_assert_eq!(n, dim * 8);
                prop_assert!(model.iter().all(|&x| x == 0));
            }
        }
    }

    /// Rank-2 row-block round trip.
    #[test]
    fn rank2_row_blocks(rows in 2u64..16, cols in 2u64..16, row in 0u64..16, fill in any::<u8>()) {
        let row = row.min(rows - 1);
        let (vol, s) = rig();
        let f = vol.file_create(&s, "/q.h5", true).unwrap();
        let d = vol
            .dataset_create(&s, f, "m", Datatype::Int32, Dataspace::fixed(&[rows, cols]))
            .unwrap();
        let bytes = vec![fill; (cols * 4) as usize];
        vol.dataset_write(
            &s,
            d,
            &Hyperslab::new(&[row, 0], &[1, cols]),
            &Data::real(bytes.clone()),
        )
        .unwrap();
        // Read just that row back.
        let got = vol
            .dataset_read(&s, d, &Hyperslab::new(&[row, 0], &[1, cols]))
            .unwrap();
        if fill == 0 {
            prop_assert_eq!(got.len(), cols as u64 * 4);
        } else {
            prop_assert_eq!(got.as_bytes().unwrap().as_ref(), &bytes[..]);
        }
        // Other rows stay zero.
        let other = (row + 1) % rows;
        if other != row {
            let z = vol
                .dataset_read(&s, d, &Hyperslab::new(&[other, 0], &[1, cols]))
                .unwrap();
            match z {
                Data::Real(b) => prop_assert!(b.iter().all(|&x| x == 0)),
                Data::Synthetic(n) => prop_assert_eq!(n, cols as u64 * 4),
            }
        }
    }

    /// Extending never loses previously written data.
    #[test]
    fn extend_preserves_prefix(chunks in 1u64..6, chunk in 2u64..16, fill in 1u8..255) {
        let (vol, s) = rig();
        let f = vol.file_create(&s, "/e.h5", true).unwrap();
        let space = Dataspace::with_max(&[0], &[None]).unwrap();
        let d = vol
            .dataset_create(&s, f, "log", Datatype::Int64, space)
            .unwrap();
        for c in 0..chunks {
            vol.dataset_extend(&s, d, &[(c + 1) * chunk]).unwrap();
            vol.dataset_write(
                &s,
                d,
                &Hyperslab::new(&[c * chunk], &[chunk]),
                &Data::real(vec![fill.wrapping_add(c as u8); (chunk * 8) as usize]),
            )
            .unwrap();
        }
        // Every chunk reads back with its own fill byte.
        for c in 0..chunks {
            let got = vol
                .dataset_read(&s, d, &Hyperslab::new(&[c * chunk], &[chunk]))
                .unwrap();
            let expect = fill.wrapping_add(c as u8);
            prop_assert!(
                got.as_bytes().unwrap().iter().all(|&b| b == expect),
                "chunk {} corrupted", c
            );
        }
    }

    /// Out-of-bounds selections always fail and never corrupt state.
    #[test]
    fn oob_selection_rejected(dim in 2u64..32, over in 1u64..8) {
        let (vol, s) = rig();
        let f = vol.file_create(&s, "/o.h5", true).unwrap();
        let d = vol
            .dataset_create(&s, f, "x", Datatype::Float32, Dataspace::fixed(&[dim]))
            .unwrap();
        let bad = Hyperslab::new(&[dim - 1], &[over + 1]);
        prop_assert!(vol
            .dataset_write(&s, d, &bad, &Data::synthetic((over + 1) * 4))
            .is_err());
        prop_assert!(vol.dataset_read(&s, d, &bad).is_err());
        // Valid ops still work afterwards.
        vol.dataset_write(
            &s,
            d,
            &Hyperslab::new(&[0], &[dim]),
            &Data::synthetic(dim * 4),
        )
        .unwrap();
    }
}
