//! Communication cost model for collectives.

use provio_simrt::{LatencyBandwidth, SimDuration};

/// Interconnect parameters for collective operations.
///
/// Collectives are modeled as binomial trees: `ceil(log2(P))` rounds, each
/// paying the link latency plus the payload's transfer time. Defaults
/// approximate a Cray Aries-class fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    /// One network hop.
    pub link: LatencyBandwidth,
    /// Fixed software overhead per collective call, per rank.
    pub call_overhead_ns: u64,
}

impl Default for CommModel {
    fn default() -> Self {
        CommModel {
            link: LatencyBandwidth::new(1_500, 10_000_000_000), // 1.5 us, 10 GB/s
            call_overhead_ns: 500,
        }
    }
}

impl CommModel {
    fn rounds(ranks: u32) -> u32 {
        if ranks <= 1 {
            0
        } else {
            32 - (ranks - 1).leading_zeros()
        }
    }

    /// Cost of a barrier across `ranks`.
    pub fn barrier(&self, ranks: u32) -> SimDuration {
        let mut d = SimDuration::from_nanos(self.call_overhead_ns);
        for _ in 0..Self::rounds(ranks) {
            d = d.saturating_add(self.link.meta_cost());
        }
        d
    }

    /// Cost of an allreduce of `bytes` across `ranks`.
    pub fn allreduce(&self, ranks: u32, bytes: u64) -> SimDuration {
        let mut d = SimDuration::from_nanos(self.call_overhead_ns);
        for _ in 0..Self::rounds(ranks) {
            d = d.saturating_add(self.link.cost(bytes));
        }
        d
    }

    /// Cost of a broadcast of `bytes` across `ranks`.
    pub fn broadcast(&self, ranks: u32, bytes: u64) -> SimDuration {
        // Same tree shape as allreduce.
        self.allreduce(ranks, bytes)
    }

    /// Sender-side cost of one point-to-point message of `bytes`: the
    /// per-call software overhead plus a single hop's latency and
    /// transfer time — no tree, unlike the collectives. The streaming
    /// collection layer charges this per send attempt, so every retry
    /// over a lossy fabric costs virtual time.
    pub fn send(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(self.call_overhead_ns).saturating_add(self.link.cost(bytes))
    }

    /// Receiver-side cost of matching a point-to-point message: the same
    /// software overhead plus the metadata hop for the ack/completion
    /// handshake. The payload's wire time is charged to the sender by
    /// [`Self::send`], not double-charged here.
    pub fn recv(&self) -> SimDuration {
        SimDuration::from_nanos(self.call_overhead_ns).saturating_add(self.link.meta_cost())
    }

    /// Cost of gathering `bytes_per_rank` to the root.
    pub fn gather(&self, ranks: u32, bytes_per_rank: u64) -> SimDuration {
        let mut d = SimDuration::from_nanos(self.call_overhead_ns);
        let mut inflight = bytes_per_rank;
        for _ in 0..Self::rounds(ranks) {
            d = d.saturating_add(self.link.cost(inflight));
            inflight = inflight.saturating_mul(2);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_are_log2_ceil() {
        assert_eq!(CommModel::rounds(1), 0);
        assert_eq!(CommModel::rounds(2), 1);
        assert_eq!(CommModel::rounds(3), 2);
        assert_eq!(CommModel::rounds(4), 2);
        assert_eq!(CommModel::rounds(4096), 12);
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let m = CommModel::default();
        let b2 = m.barrier(2);
        let b4096 = m.barrier(4096);
        assert!(b4096 > b2);
        // 12 rounds vs 1 round.
        assert_eq!(
            b4096.as_nanos() - m.call_overhead_ns,
            12 * (b2.as_nanos() - m.call_overhead_ns)
        );
    }

    #[test]
    fn allreduce_grows_with_bytes() {
        let m = CommModel::default();
        assert!(m.allreduce(64, 1 << 20) > m.allreduce(64, 8));
    }

    #[test]
    fn gather_doubles_inflight() {
        let m = CommModel::default();
        assert!(m.gather(1024, 1024) > m.allreduce(1024, 1024));
    }

    #[test]
    fn single_rank_collectives_are_overheads_only() {
        let m = CommModel::default();
        assert_eq!(m.barrier(1).as_nanos(), m.call_overhead_ns);
        assert_eq!(m.allreduce(1, 1 << 20).as_nanos(), m.call_overhead_ns);
    }

    #[test]
    fn send_is_one_hop_plus_overhead() {
        let m = CommModel::default();
        assert_eq!(
            m.send(1 << 20).as_nanos(),
            m.call_overhead_ns + m.link.cost(1 << 20).as_nanos()
        );
        assert!(m.send(1 << 20) > m.send(8));
    }

    #[test]
    fn recv_charges_the_ack_hop_not_the_payload() {
        let m = CommModel::default();
        assert_eq!(
            m.recv().as_nanos(),
            m.call_overhead_ns + m.link.meta_cost().as_nanos()
        );
        assert!(m.recv() < m.send(1 << 20));
    }
}
