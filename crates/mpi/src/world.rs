//! The rank executor.

use crate::collectives::CommModel;
use provio_simrt::{SimDuration, SimTime, VirtualClock};
use rayon::prelude::*;

/// Per-rank context handed to superstep closures.
pub struct RankCtx<'a> {
    pub rank: u32,
    pub size: u32,
    clock: &'a VirtualClock,
}

impl RankCtx<'_> {
    /// This rank's virtual clock (hand it to the rank's `FsSession`).
    pub fn clock(&self) -> &VirtualClock {
        self.clock
    }

    /// Charge local compute time.
    pub fn compute(&self, d: SimDuration) {
        self.clock.advance(d);
    }
}

/// A world of `size` virtual ranks, each with a private virtual clock.
pub struct MpiWorld {
    clocks: Vec<VirtualClock>,
    comm: CommModel,
}

impl MpiWorld {
    pub fn new(size: u32) -> Self {
        Self::with_comm(size, CommModel::default())
    }

    pub fn with_comm(size: u32, comm: CommModel) -> Self {
        assert!(size >= 1, "world needs at least one rank");
        MpiWorld {
            clocks: (0..size).map(|_| VirtualClock::new()).collect(),
            comm,
        }
    }

    pub fn size(&self) -> u32 {
        self.clocks.len() as u32
    }

    pub fn clock(&self, rank: u32) -> &VirtualClock {
        &self.clocks[rank as usize]
    }

    /// Run `f` once per rank, in parallel, then barrier. Results are
    /// returned indexed by rank.
    ///
    /// Ranks are multiplexed over the host's cores by rayon; each rank's
    /// modeled time accrues on its own clock, so any number of virtual ranks
    /// (the paper uses up to 4096) runs on a laptop.
    pub fn superstep<T: Send>(&self, f: impl Fn(RankCtx<'_>) -> T + Sync) -> Vec<T> {
        let size = self.size();
        let out: Vec<T> = self
            .clocks
            .par_iter()
            .enumerate()
            .map(|(rank, clock)| {
                f(RankCtx {
                    rank: rank as u32,
                    size,
                    clock,
                })
            })
            .collect();
        self.barrier();
        out
    }

    /// Like [`superstep`](Self::superstep) but without the trailing barrier
    /// (for workloads whose phases end asynchronously).
    pub fn superstep_nobarrier<T: Send>(&self, f: impl Fn(RankCtx<'_>) -> T + Sync) -> Vec<T> {
        let size = self.size();
        self.clocks
            .par_iter()
            .enumerate()
            .map(|(rank, clock)| {
                f(RankCtx {
                    rank: rank as u32,
                    size,
                    clock,
                })
            })
            .collect()
    }

    /// MPI_Barrier: every clock advances to the slowest rank plus the
    /// collective's modeled cost. Returns the synchronized time.
    pub fn barrier(&self) -> SimTime {
        let cost = self.comm.barrier(self.size());
        let max = self
            .clocks
            .iter()
            .map(VirtualClock::now)
            .max()
            .unwrap_or(SimTime::ZERO);
        let target = max + cost;
        for c in &self.clocks {
            c.sync_to(target);
        }
        target
    }

    /// MPI_Allreduce(MAX) over one f64 per rank.
    pub fn allreduce_max(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.clocks.len());
        self.charge_collective(self.comm.allreduce(self.size(), 8));
        values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// MPI_Allreduce(SUM) over one f64 per rank.
    pub fn allreduce_sum(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.clocks.len());
        self.charge_collective(self.comm.allreduce(self.size(), 8));
        values.iter().sum()
    }

    /// MPI_Bcast of `bytes` from the root.
    pub fn broadcast(&self, bytes: u64) {
        self.charge_collective(self.comm.broadcast(self.size(), bytes));
    }

    /// MPI_Gather of `bytes_per_rank` to the root.
    pub fn gather(&self, bytes_per_rank: u64) {
        self.charge_collective(self.comm.gather(self.size(), bytes_per_rank));
    }

    fn charge_collective(&self, cost: SimDuration) {
        let max = self
            .clocks
            .iter()
            .map(VirtualClock::now)
            .max()
            .unwrap_or(SimTime::ZERO);
        let target = max + cost;
        for c in &self.clocks {
            c.sync_to(target);
        }
    }

    /// Completion time of the world so far = the slowest rank's clock.
    pub fn elapsed(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.clocks
                .iter()
                .map(|c| c.now().as_nanos())
                .max()
                .unwrap_or(0),
        )
    }

    /// Reset all clocks (between experiment repetitions).
    pub fn reset(&self) {
        for c in &self.clocks {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superstep_runs_every_rank() {
        let w = MpiWorld::new(64);
        let out = w.superstep(|ctx| ctx.rank * 2);
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 * 2);
        }
    }

    #[test]
    fn barrier_syncs_to_slowest() {
        let w = MpiWorld::new(4);
        w.superstep_nobarrier(|ctx| {
            ctx.compute(SimDuration::from_secs(ctx.rank as u64));
        });
        w.barrier();
        let t0 = w.clock(0).now();
        for r in 1..4 {
            assert_eq!(w.clock(r).now(), t0, "rank {r} not synced");
        }
        // Slowest rank computed 3 s.
        assert!(t0.as_nanos() >= 3_000_000_000);
    }

    #[test]
    fn superstep_has_implicit_barrier() {
        let w = MpiWorld::new(8);
        w.superstep(|ctx| ctx.compute(SimDuration::from_millis(ctx.rank as u64)));
        let t = w.clock(0).now();
        assert!((0..8).all(|r| w.clock(r).now() == t));
    }

    #[test]
    fn allreduce_combines_and_charges() {
        let w = MpiWorld::new(16);
        let before = w.elapsed();
        let vals: Vec<f64> = (0..16).map(|r| r as f64).collect();
        assert_eq!(w.allreduce_max(&vals), 15.0);
        assert_eq!(w.allreduce_sum(&vals), 120.0);
        assert!(w.elapsed() > before);
    }

    #[test]
    fn elapsed_is_max_clock() {
        let w = MpiWorld::new(3);
        w.clock(1).advance(SimDuration::from_secs(5));
        assert_eq!(w.elapsed().as_nanos(), 5_000_000_000);
    }

    #[test]
    fn thousands_of_virtual_ranks() {
        let w = MpiWorld::new(4096);
        let out = w.superstep(|ctx| {
            ctx.compute(SimDuration::from_micros(1));
            ctx.size
        });
        assert_eq!(out.len(), 4096);
        assert!(out.iter().all(|&s| s == 4096));
    }

    #[test]
    fn reset_zeroes_clocks() {
        let w = MpiWorld::new(2);
        w.superstep(|ctx| ctx.compute(SimDuration::from_secs(1)));
        w.reset();
        assert_eq!(w.elapsed(), SimDuration::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let w = MpiWorld::new(32);
            w.superstep(|ctx| ctx.compute(SimDuration::from_micros(ctx.rank as u64 + 1)));
            w.superstep(|ctx| ctx.compute(SimDuration::from_micros(100 - ctx.rank as u64)));
            w.elapsed().as_nanos()
        };
        assert_eq!(run(), run(), "virtual time must not depend on scheduling");
    }
}
