//! The rank executor.

use crate::collectives::CommModel;
use provio_simrt::{catch_quiet, SimDuration, SimTime, VirtualClock};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// What happened to one rank during a superstep.
///
/// A rank "crashes" when its closure panics — an injected `ESIMCRASH` from
/// the fault plan surfacing through `FsSession`, a poisoned input, a bug.
/// The crash is contained to the rank: the other ranks keep running to the
/// barrier, and the caller gets the full picture indexed by rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankOutcome<T> {
    /// The rank's closure ran to completion and returned a value.
    Completed(T),
    /// The rank died mid-superstep.
    Crashed {
        /// Which rank died.
        rank: u32,
        /// Label of the superstep it died in (from
        /// [`MpiWorld::superstep_named`], or `step-N` for unnamed steps).
        phase: String,
        /// The panic payload, rendered as a string (an `ESIMCRASH` fault
        /// surfaces its errno name here).
        cause: String,
    },
}

impl<T> RankOutcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            RankOutcome::Completed(v) => Some(v),
            RankOutcome::Crashed { .. } => None,
        }
    }

    /// Borrowing variant of [`completed`](Self::completed).
    pub fn as_completed(&self) -> Option<&T> {
        match self {
            RankOutcome::Completed(v) => Some(v),
            RankOutcome::Crashed { .. } => None,
        }
    }

    pub fn is_completed(&self) -> bool {
        matches!(self, RankOutcome::Completed(_))
    }

    pub fn is_crashed(&self) -> bool {
        matches!(self, RankOutcome::Crashed { .. })
    }
}

/// Per-rank context handed to superstep closures.
pub struct RankCtx<'a> {
    pub rank: u32,
    pub size: u32,
    clock: &'a VirtualClock,
}

impl RankCtx<'_> {
    /// This rank's virtual clock (hand it to the rank's `FsSession`).
    pub fn clock(&self) -> &VirtualClock {
        self.clock
    }

    /// Charge local compute time.
    pub fn compute(&self, d: SimDuration) {
        self.clock.advance(d);
    }
}

/// A world of `size` virtual ranks, each with a private virtual clock.
pub struct MpiWorld {
    clocks: Vec<VirtualClock>,
    comm: CommModel,
    steps: AtomicU64,
}

impl MpiWorld {
    pub fn new(size: u32) -> Self {
        Self::with_comm(size, CommModel::default())
    }

    pub fn with_comm(size: u32, comm: CommModel) -> Self {
        assert!(size >= 1, "world needs at least one rank");
        MpiWorld {
            clocks: (0..size).map(|_| VirtualClock::new()).collect(),
            comm,
            steps: AtomicU64::new(0),
        }
    }

    pub fn size(&self) -> u32 {
        self.clocks.len() as u32
    }

    pub fn clock(&self, rank: u32) -> &VirtualClock {
        &self.clocks[rank as usize]
    }

    /// Run `f` once per rank, in parallel, then barrier. Outcomes are
    /// returned indexed by rank.
    ///
    /// Ranks are multiplexed over the host's cores by rayon; each rank's
    /// modeled time accrues on its own clock, so any number of virtual ranks
    /// (the paper uses up to 4096) runs on a laptop.
    ///
    /// A panic inside `f` kills only that rank — it is reported as
    /// [`RankOutcome::Crashed`] while the surviving ranks keep running and
    /// still synchronize at the barrier (real MPI would deadlock or abort
    /// here; we model the fault-tolerant runtime the paper's workflows
    /// assume). The step is auto-labeled `step-N`; use
    /// [`superstep_named`](Self::superstep_named) to label phases.
    pub fn superstep<T: Send>(&self, f: impl Fn(RankCtx<'_>) -> T + Sync) -> Vec<RankOutcome<T>> {
        let n = self.steps.load(Ordering::Relaxed);
        self.superstep_named(&format!("step-{n}"), f)
    }

    /// [`superstep`](Self::superstep) with an explicit phase label, recorded
    /// in any [`RankOutcome::Crashed`] this step produces.
    pub fn superstep_named<T: Send>(
        &self,
        phase: &str,
        f: impl Fn(RankCtx<'_>) -> T + Sync,
    ) -> Vec<RankOutcome<T>> {
        let out = self.run_ranks(phase, f);
        self.barrier();
        out
    }

    /// Like [`superstep`](Self::superstep) but without the trailing barrier
    /// (for workloads whose phases end asynchronously).
    pub fn superstep_nobarrier<T: Send>(
        &self,
        f: impl Fn(RankCtx<'_>) -> T + Sync,
    ) -> Vec<RankOutcome<T>> {
        let n = self.steps.load(Ordering::Relaxed);
        self.run_ranks(&format!("step-{n}"), f)
    }

    fn run_ranks<T: Send>(
        &self,
        phase: &str,
        f: impl Fn(RankCtx<'_>) -> T + Sync,
    ) -> Vec<RankOutcome<T>> {
        self.steps.fetch_add(1, Ordering::Relaxed);
        let size = self.size();
        self.clocks
            .par_iter()
            .enumerate()
            .map(|(rank, clock)| {
                let rank = rank as u32;
                match catch_quiet(|| f(RankCtx { rank, size, clock })) {
                    Ok(v) => RankOutcome::Completed(v),
                    Err(cause) => RankOutcome::Crashed {
                        rank,
                        phase: phase.to_string(),
                        cause,
                    },
                }
            })
            .collect()
    }

    /// MPI_Barrier: every clock advances to the slowest rank plus the
    /// collective's modeled cost. Returns the synchronized time.
    pub fn barrier(&self) -> SimTime {
        let cost = self.comm.barrier(self.size());
        let max = self
            .clocks
            .iter()
            .map(VirtualClock::now)
            .max()
            .unwrap_or(SimTime::ZERO);
        let target = max + cost;
        for c in &self.clocks {
            c.sync_to(target);
        }
        target
    }

    /// MPI_Allreduce(MAX) over one f64 per rank.
    pub fn allreduce_max(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.clocks.len());
        self.charge_collective(self.comm.allreduce(self.size(), 8));
        values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// MPI_Allreduce(SUM) over one f64 per rank.
    pub fn allreduce_sum(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.clocks.len());
        self.charge_collective(self.comm.allreduce(self.size(), 8));
        values.iter().sum()
    }

    /// MPI_Bcast of `bytes` from the root.
    pub fn broadcast(&self, bytes: u64) {
        self.charge_collective(self.comm.broadcast(self.size(), bytes));
    }

    /// MPI_Gather of `bytes_per_rank` to the root.
    pub fn gather(&self, bytes_per_rank: u64) {
        self.charge_collective(self.comm.gather(self.size(), bytes_per_rank));
    }

    fn charge_collective(&self, cost: SimDuration) {
        let max = self
            .clocks
            .iter()
            .map(VirtualClock::now)
            .max()
            .unwrap_or(SimTime::ZERO);
        let target = max + cost;
        for c in &self.clocks {
            c.sync_to(target);
        }
    }

    /// Completion time of the world so far = the slowest rank's clock.
    pub fn elapsed(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.clocks
                .iter()
                .map(|c| c.now().as_nanos())
                .max()
                .unwrap_or(0),
        )
    }

    /// Reset all clocks (between experiment repetitions).
    pub fn reset(&self) {
        for c in &self.clocks {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superstep_runs_every_rank() {
        let w = MpiWorld::new(64);
        let out = w.superstep(|ctx| ctx.rank * 2);
        assert_eq!(out.len(), 64);
        for (i, v) in out.into_iter().enumerate() {
            assert_eq!(v, RankOutcome::Completed(i as u32 * 2));
        }
    }

    #[test]
    fn crashed_rank_does_not_abort_the_world() {
        let w = MpiWorld::new(16);
        let out = w.superstep_named("convert", |ctx| {
            if ctx.rank == 5 {
                panic!("ESIMCRASH: injected crash on rank {}", ctx.rank);
            }
            ctx.compute(SimDuration::from_millis(1));
            ctx.rank
        });
        assert_eq!(out.len(), 16);
        let crashed: Vec<&RankOutcome<u32>> = out.iter().filter(|o| o.is_crashed()).collect();
        assert_eq!(crashed.len(), 1);
        match crashed[0] {
            RankOutcome::Crashed { rank, phase, cause } => {
                assert_eq!(*rank, 5);
                assert_eq!(phase, "convert");
                assert!(cause.contains("ESIMCRASH"), "cause = {cause}");
            }
            RankOutcome::Completed(_) => unreachable!(),
        }
        // Survivors completed with their values, in rank order.
        for (i, o) in out.iter().enumerate() {
            if i != 5 {
                assert_eq!(o.as_completed(), Some(&(i as u32)));
            }
        }
        // The barrier still ran: all clocks (including the dead rank's)
        // are synchronized.
        let t = w.clock(0).now();
        assert!((0..16).all(|r| w.clock(r).now() == t));
    }

    #[test]
    fn unnamed_steps_get_sequential_phase_labels() {
        let w = MpiWorld::new(2);
        let first = w.superstep(|ctx| {
            if ctx.rank == 0 {
                panic!("die");
            }
        });
        let second = w.superstep(|ctx| {
            if ctx.rank == 0 {
                panic!("die");
            }
        });
        let phase_of = |out: &[RankOutcome<()>]| match &out[0] {
            RankOutcome::Crashed { phase, .. } => phase.clone(),
            RankOutcome::Completed(_) => unreachable!(),
        };
        assert_eq!(phase_of(&first), "step-0");
        assert_eq!(phase_of(&second), "step-1");
    }

    #[test]
    fn barrier_syncs_to_slowest() {
        let w = MpiWorld::new(4);
        w.superstep_nobarrier(|ctx| {
            ctx.compute(SimDuration::from_secs(ctx.rank as u64));
        });
        w.barrier();
        let t0 = w.clock(0).now();
        for r in 1..4 {
            assert_eq!(w.clock(r).now(), t0, "rank {r} not synced");
        }
        // Slowest rank computed 3 s.
        assert!(t0.as_nanos() >= 3_000_000_000);
    }

    #[test]
    fn superstep_has_implicit_barrier() {
        let w = MpiWorld::new(8);
        w.superstep(|ctx| ctx.compute(SimDuration::from_millis(ctx.rank as u64)));
        let t = w.clock(0).now();
        assert!((0..8).all(|r| w.clock(r).now() == t));
    }

    #[test]
    fn allreduce_combines_and_charges() {
        let w = MpiWorld::new(16);
        let before = w.elapsed();
        let vals: Vec<f64> = (0..16).map(|r| r as f64).collect();
        assert_eq!(w.allreduce_max(&vals), 15.0);
        assert_eq!(w.allreduce_sum(&vals), 120.0);
        assert!(w.elapsed() > before);
    }

    #[test]
    fn elapsed_is_max_clock() {
        let w = MpiWorld::new(3);
        w.clock(1).advance(SimDuration::from_secs(5));
        assert_eq!(w.elapsed().as_nanos(), 5_000_000_000);
    }

    #[test]
    fn thousands_of_virtual_ranks() {
        let w = MpiWorld::new(4096);
        let out = w.superstep(|ctx| {
            ctx.compute(SimDuration::from_micros(1));
            ctx.size
        });
        assert_eq!(out.len(), 4096);
        assert!(out.iter().all(|o| o.as_completed() == Some(&4096)));
    }

    #[test]
    fn reset_zeroes_clocks() {
        let w = MpiWorld::new(2);
        w.superstep(|ctx| ctx.compute(SimDuration::from_secs(1)));
        w.reset();
        assert_eq!(w.elapsed(), SimDuration::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let w = MpiWorld::new(32);
            w.superstep(|ctx| ctx.compute(SimDuration::from_micros(ctx.rank as u64 + 1)));
            w.superstep(|ctx| ctx.compute(SimDuration::from_micros(100 - ctx.rank as u64)));
            w.elapsed().as_nanos()
        };
        assert_eq!(run(), run(), "virtual time must not depend on scheduling");
    }
}
