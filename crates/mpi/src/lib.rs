//! `provio-mpi` — a BSP-style simulated MPI runtime.
//!
//! The paper's H5bench workloads run on up to 4096 MPI ranks (§6.1). This
//! runtime reproduces the execution structure that matters to the
//! evaluation — data-parallel ranks with their own clocks, synchronized at
//! collectives — while multiplexing any number of *virtual* ranks over the
//! host's cores with rayon:
//!
//! * [`MpiWorld::superstep`] runs a closure once per rank, in parallel, and
//!   ends with an implicit barrier: all rank clocks advance to the slowest
//!   rank's time, exactly how wall-clock behaves at `MPI_Barrier`.
//! * [`MpiWorld::allreduce_max`] / [`MpiWorld::allreduce_sum`] /
//!   [`MpiWorld::broadcast`] combine values
//!   across ranks between supersteps and charge a log₂(P) tree cost.
//! * A panic in one rank's closure (e.g. an injected `ESIMCRASH`) is
//!   contained: that rank reports [`RankOutcome::Crashed`] while the
//!   survivors run to the barrier, so a run can lose ranks without losing
//!   the run.
//!
//! This phased (bulk-synchronous) model is a substitution for full
//! message-passing (DESIGN.md §3): the three evaluated workflows are
//! barrier-synchronized I/O kernels and file-parallel pipelines with no
//! point-to-point dependencies inside a phase.

pub mod collectives;
pub mod world;

pub use collectives::CommModel;
pub use world::{MpiWorld, RankCtx, RankOutcome};
