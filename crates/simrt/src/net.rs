//! Seeded, deterministic simulated interconnect faults.
//!
//! The transport-side sibling of `provio-hpcfs`'s `FaultPlan`: where that
//! plan decides the fate of file-system operations, a [`NetPlan`] decides
//! the fate of messages on the rank ↔ aggregator fabric — loss,
//! duplication, reordering, bounded extra delay, and partition episodes.
//! The plan is pure fate mechanics: it never sees payloads, so the same
//! schedule drives unit tests, property tests, and full streaming runs.
//!
//! Each rank draws its fates from its own [`DetRng`] child stream
//! (derivation is order-independent, like the workload streams), so a
//! run's fault schedule is a function of `(seed, rank, attempt index,
//! virtual time)` alone — never of thread interleaving.

use crate::clock::{SimDuration, SimTime};
use crate::rng::DetRng;

/// `DetRng` stream id for network fault schedules, disjoint from the
/// file-system fault stream (`0xFA17`) and retry jitter (`0x4E77`).
pub const NET_FAULT_STREAM: u64 = 0x4E_F0;

/// A closed interval of virtual time during which some (or all) ranks
/// cannot reach the aggregator. Sends inside the window are black-holed:
/// no delivery, no ack — the sender only learns via timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEpisode {
    /// First virtual instant inside the partition.
    pub start: SimTime,
    /// First virtual instant after the partition heals.
    pub end: SimTime,
    /// Ranks cut off; `None` partitions every rank (the aggregator side
    /// of the fabric is down).
    pub ranks: Option<Vec<u32>>,
}

impl PartitionEpisode {
    /// Partition every rank for `[start, end)` virtual nanoseconds.
    pub fn all(start_ns: u64, end_ns: u64) -> Self {
        PartitionEpisode {
            start: SimTime(start_ns),
            end: SimTime(end_ns),
            ranks: None,
        }
    }

    /// Partition only `ranks` for `[start, end)` virtual nanoseconds.
    pub fn of_ranks(start_ns: u64, end_ns: u64, ranks: Vec<u32>) -> Self {
        PartitionEpisode {
            start: SimTime(start_ns),
            end: SimTime(end_ns),
            ranks: Some(ranks),
        }
    }

    /// Whether `rank` is cut off at virtual instant `now`.
    pub fn covers(&self, rank: u32, now: SimTime) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        match &self.ranks {
            None => true,
            Some(rs) => rs.contains(&rank),
        }
    }
}

/// The fault schedule for one run's interconnect. Probabilities are per
/// send attempt; `delay_ns` bounds the extra one-way latency surcharge
/// drawn uniformly from `[min, max)`.
#[derive(Debug, Clone, PartialEq)]
pub struct NetPlan {
    /// Root seed; each rank derives child stream `rank` from it.
    pub seed: u64,
    /// Probability a request is dropped in flight (no delivery, no ack).
    pub loss: f64,
    /// Probability the *ack* is dropped after a successful delivery, so
    /// the sender retransmits a message the aggregator already holds.
    pub ack_loss: f64,
    /// Probability a delivered request arrives twice.
    pub duplicate: f64,
    /// Probability the fabric holds a message back so its successor
    /// overtakes it.
    pub reorder: f64,
    /// Extra one-way delay drawn uniformly from `[min, max)` nanoseconds.
    pub delay_ns: (u64, u64),
    /// Partition episodes, checked against the sender's virtual clock.
    pub partitions: Vec<PartitionEpisode>,
}

impl NetPlan {
    /// A perfect fabric: every send delivers exactly once, instantly.
    pub fn ideal(seed: u64) -> Self {
        NetPlan {
            seed,
            loss: 0.0,
            ack_loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            delay_ns: (0, 0),
            partitions: Vec::new(),
        }
    }

    /// An actively hostile fabric: `p` loss on both directions plus `p`
    /// duplication and reordering, with up to 50µs of jittered delay.
    pub fn hostile(seed: u64, p: f64) -> Self {
        NetPlan {
            seed,
            loss: p,
            ack_loss: p,
            duplicate: p,
            reorder: p,
            delay_ns: (0, 50_000),
            partitions: Vec::new(),
        }
    }

    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss = p;
        self
    }

    pub fn with_ack_loss(mut self, p: f64) -> Self {
        self.ack_loss = p;
        self
    }

    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    pub fn with_delay(mut self, min_ns: u64, max_ns: u64) -> Self {
        self.delay_ns = (min_ns, max_ns);
        self
    }

    pub fn with_partition(mut self, episode: PartitionEpisode) -> Self {
        self.partitions.push(episode);
        self
    }

    /// `true` when no fault can ever fire.
    pub fn is_ideal(&self) -> bool {
        self.loss == 0.0
            && self.ack_loss == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.delay_ns.1 <= self.delay_ns.0
            && self.partitions.is_empty()
    }

    /// The per-rank view of this fabric. Child-stream derivation makes
    /// one rank's fate sequence independent of every other rank's usage.
    pub fn link(&self, rank: u32) -> NetLink {
        NetLink {
            rank,
            plan: self.clone(),
            rng: DetRng::with_stream(self.seed, NET_FAULT_STREAM).child(rank as u64),
            stats: NetLinkStats::default(),
        }
    }
}

/// The fate of one send attempt, drawn by [`NetLink::fate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// The sender is inside a partition episode: the request vanishes
    /// and only a timeout tells the sender so.
    Partitioned,
    /// The request was dropped in flight: no delivery, no ack.
    LostRequest,
    /// The request arrived.
    Delivered {
        /// How many copies arrive (`> 1` models duplication).
        copies: u32,
        /// Extra one-way latency surcharge for this message.
        delay: SimDuration,
        /// The ack was dropped on the way back: the aggregator holds the
        /// data but the sender must retransmit anyway.
        ack_lost: bool,
        /// The fabric holds this message back so its successor (if one
        /// is queued) overtakes it.
        reorder: bool,
    },
}

/// Counters a link keeps about the fates it dealt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetLinkStats {
    pub attempts: u64,
    pub partitioned: u64,
    pub lost: u64,
    pub duplicated: u64,
    pub acks_lost: u64,
    pub reordered: u64,
}

/// One rank's connection to the fabric: its own child fate stream plus
/// the shared plan. Not `Sync` on purpose — each rank owns its link.
#[derive(Debug, Clone)]
pub struct NetLink {
    rank: u32,
    plan: NetPlan,
    rng: DetRng,
    stats: NetLinkStats,
}

impl NetLink {
    /// Draw the fate of one send attempt issued at virtual instant
    /// `now`. Partition windows preempt the probabilistic faults and do
    /// not consume randomness, so healing never shifts the schedule.
    pub fn fate(&mut self, now: SimTime) -> SendFate {
        self.stats.attempts += 1;
        if self.plan.partitions.iter().any(|p| p.covers(self.rank, now)) {
            self.stats.partitioned += 1;
            return SendFate::Partitioned;
        }
        if self.rng.chance(self.plan.loss) {
            self.stats.lost += 1;
            return SendFate::LostRequest;
        }
        let copies = if self.rng.chance(self.plan.duplicate) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        let (lo, hi) = self.plan.delay_ns;
        let delay = if hi > lo {
            SimDuration::from_nanos(self.rng.range(lo, hi))
        } else {
            SimDuration::from_nanos(lo)
        };
        let ack_lost = self.rng.chance(self.plan.ack_loss);
        if ack_lost {
            self.stats.acks_lost += 1;
        }
        let reorder = self.rng.chance(self.plan.reorder);
        if reorder {
            self.stats.reordered += 1;
        }
        SendFate::Delivered {
            copies,
            delay,
            ack_lost,
            reorder,
        }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn stats(&self) -> NetLinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_plan_delivers_everything_instantly() {
        let mut link = NetPlan::ideal(1).link(0);
        for i in 0..100 {
            assert_eq!(
                link.fate(SimTime(i)),
                SendFate::Delivered {
                    copies: 1,
                    delay: SimDuration::ZERO,
                    ack_lost: false,
                    reorder: false,
                }
            );
        }
        assert_eq!(link.stats().lost, 0);
        assert_eq!(link.stats().attempts, 100);
    }

    #[test]
    fn same_seed_same_fate_sequence() {
        let plan = NetPlan::hostile(42, 0.3);
        let mut a = plan.link(3);
        let mut b = plan.link(3);
        for i in 0..200 {
            assert_eq!(a.fate(SimTime(i)), b.fate(SimTime(i)));
        }
    }

    #[test]
    fn ranks_draw_independent_streams() {
        let plan = NetPlan::hostile(42, 0.3);
        let mut a = plan.link(0);
        let mut b = plan.link(1);
        let fa: Vec<_> = (0..64).map(|i| a.fate(SimTime(i))).collect();
        let fb: Vec<_> = (0..64).map(|i| b.fate(SimTime(i))).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn loss_rate_tracks_the_plan() {
        let mut link = NetPlan::ideal(7).with_loss(0.25).link(0);
        for i in 0..2000 {
            link.fate(SimTime(i));
        }
        let lost = link.stats().lost;
        assert!((350..650).contains(&lost), "p=0.25 loss rate off: {lost}");
    }

    #[test]
    fn partition_window_black_holes_only_inside() {
        let plan = NetPlan::ideal(9).with_partition(PartitionEpisode::all(100, 200));
        let mut link = plan.link(0);
        assert_ne!(link.fate(SimTime(99)), SendFate::Partitioned);
        assert_eq!(link.fate(SimTime(100)), SendFate::Partitioned);
        assert_eq!(link.fate(SimTime(199)), SendFate::Partitioned);
        assert_ne!(link.fate(SimTime(200)), SendFate::Partitioned);
        assert_eq!(link.stats().partitioned, 2);
    }

    #[test]
    fn rank_scoped_partition_spares_other_ranks() {
        let plan = NetPlan::ideal(9).with_partition(PartitionEpisode::of_ranks(0, 100, vec![1]));
        assert_eq!(plan.link(1).fate(SimTime(50)), SendFate::Partitioned);
        assert_ne!(plan.link(0).fate(SimTime(50)), SendFate::Partitioned);
    }

    #[test]
    fn partition_does_not_consume_randomness() {
        // The fate sequence after the window must match a link that
        // never entered it: healing cannot shift the fault schedule.
        let faulty = NetPlan::hostile(11, 0.4).with_partition(PartitionEpisode::all(0, 50));
        let clean = NetPlan::hostile(11, 0.4);
        let mut a = faulty.link(2);
        let mut b = clean.link(2);
        for i in 0..50 {
            assert_eq!(a.fate(SimTime(i)), SendFate::Partitioned);
        }
        for i in 50..150 {
            assert_eq!(a.fate(SimTime(i)), b.fate(SimTime(i)));
        }
    }

    #[test]
    fn delay_stays_in_bounds() {
        let mut link = NetPlan::ideal(13).with_delay(10, 20).link(0);
        for i in 0..500 {
            if let SendFate::Delivered { delay, .. } = link.fate(SimTime(i)) {
                assert!((10..20).contains(&delay.as_nanos()), "{delay:?}");
            }
        }
    }

    #[test]
    fn hostile_plan_exercises_every_fault_kind() {
        let mut link = NetPlan::hostile(17, 0.3).link(0);
        for i in 0..500 {
            link.fate(SimTime(i));
        }
        let s = link.stats();
        assert!(s.lost > 0 && s.duplicated > 0 && s.acks_lost > 0 && s.reordered > 0);
    }

    #[test]
    fn is_ideal_classification() {
        assert!(NetPlan::ideal(1).is_ideal());
        assert!(!NetPlan::ideal(1).with_loss(0.1).is_ideal());
        assert!(!NetPlan::ideal(1)
            .with_partition(PartitionEpisode::all(0, 1))
            .is_ideal());
        assert!(!NetPlan::ideal(1).with_delay(0, 5).is_ideal());
    }
}
