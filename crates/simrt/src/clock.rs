//! Virtual time.
//!
//! Each simulated agent (an MPI rank, a workflow process) owns a
//! [`VirtualClock`]. I/O substrates charge modeled durations to the clock of
//! whichever agent issued the operation; BSP collectives synchronize a set of
//! clocks to their maximum, which is exactly how wall-clock time behaves at a
//! barrier on a real machine.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in virtual time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        SimDuration((s * 1e9) as u64)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a.saturating_add(b))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn elapsed_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

/// A shareable, thread-safe virtual clock.
///
/// Cloning a `VirtualClock` yields a handle to the *same* clock (it is an
/// `Arc` internally): the file system charges I/O time to the clock of the
/// calling process, which is the same clock the workflow driver reads at the
/// end of the run.
#[derive(Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    pub fn new() -> Self {
        VirtualClock {
            nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Current virtual time on this clock.
    pub fn now(&self) -> SimTime {
        SimTime(self.nanos.load(Ordering::Acquire))
    }

    /// Charge `d` of virtual time to this clock.
    pub fn advance(&self, d: SimDuration) {
        if d.0 != 0 {
            self.nanos.fetch_add(d.0, Ordering::AcqRel);
        }
    }

    /// Advance this clock to at least `t` (barrier semantics). Returns the
    /// time the clock ended up at.
    pub fn sync_to(&self, t: SimTime) -> SimTime {
        let mut cur = self.nanos.load(Ordering::Acquire);
        while cur < t.0 {
            match self.nanos.compare_exchange_weak(
                cur,
                t.0,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime(cur)
    }

    /// Reset to zero. Only used between experiment repetitions.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Release);
    }

    /// True if the two handles refer to the same underlying clock.
    pub fn same_clock(&self, other: &VirtualClock) -> bool {
        Arc::ptr_eq(&self.nanos, &other.nanos)
    }
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("VirtualClock").field(&self.now()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        c.advance(SimDuration::from_millis(5));
        c.advance(SimDuration::from_micros(250));
        assert_eq!(c.now().as_nanos(), 5_000_000 + 250_000);
    }

    #[test]
    fn clone_shares_state() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c2.advance(SimDuration::from_secs(1));
        assert_eq!(c.now().as_nanos(), 1_000_000_000);
        assert!(c.same_clock(&c2));
    }

    #[test]
    fn sync_to_only_moves_forward() {
        let c = VirtualClock::new();
        c.advance(SimDuration::from_secs(10));
        let t = c.sync_to(SimTime(5_000_000_000));
        assert_eq!(t.as_nanos(), 10_000_000_000, "must not move backwards");
        c.sync_to(SimTime(20_000_000_000));
        assert_eq!(c.now().as_nanos(), 20_000_000_000);
    }

    #[test]
    fn sync_under_contention() {
        let c = VirtualClock::new();
        std::thread::scope(|s| {
            for i in 1..=8u64 {
                let c = c.clone();
                s.spawn(move || {
                    c.sync_to(SimTime(i * 1000));
                });
            }
        });
        assert_eq!(c.now().as_nanos(), 8000);
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(4).to_string(), "4.000s");
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_millis(500);
        assert_eq!((a + b).as_nanos(), 1_500_000_000);
        assert_eq!((b - a).as_nanos(), 0, "sub saturates");
        let total: SimDuration = vec![a, b, b].into_iter().sum();
        assert_eq!(total.as_nanos(), 2_000_000_000);
    }

    #[test]
    fn time_elapsed_since() {
        let t0 = SimTime(100);
        let t1 = SimTime(350);
        assert_eq!(t1.elapsed_since(t0).as_nanos(), 250);
        assert_eq!(t0.elapsed_since(t1).as_nanos(), 0);
    }

    #[test]
    fn from_secs_f64_rounds_down() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_nanos(), 0);
    }
}
