//! Latency/bandwidth cost primitives.
//!
//! Storage substrates translate operations into virtual durations with a
//! classic `latency + bytes/bandwidth` model. The Lustre-specific striping
//! logic (stripe count/size, OST parallelism) lives in `provio-hpcfs`; this
//! module only provides the per-channel primitive so the constants are kept
//! in one place and are serializable for experiment records.

use crate::clock::SimDuration;

/// A single storage channel: fixed per-operation latency plus streaming
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBandwidth {
    /// Fixed cost per operation, nanoseconds.
    pub latency_ns: u64,
    /// Streaming throughput, bytes per second.
    pub bytes_per_sec: u64,
}

impl LatencyBandwidth {
    pub const fn new(latency_ns: u64, bytes_per_sec: u64) -> Self {
        LatencyBandwidth {
            latency_ns,
            bytes_per_sec,
        }
    }

    /// Cost of moving `bytes` through this channel in one operation.
    pub fn cost(&self, bytes: u64) -> SimDuration {
        let transfer_ns = if self.bytes_per_sec == 0 {
            0
        } else {
            // bytes * 1e9 / bps, computed in u128 to avoid overflow for
            // multi-terabyte transfers.
            ((bytes as u128 * 1_000_000_000u128) / self.bytes_per_sec as u128) as u64
        };
        SimDuration::from_nanos(self.latency_ns.saturating_add(transfer_ns))
    }

    /// Cost of a metadata-only operation (no payload).
    pub fn meta_cost(&self) -> SimDuration {
        SimDuration::from_nanos(self.latency_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_only_for_zero_bytes() {
        let ch = LatencyBandwidth::new(50_000, 1_000_000_000);
        assert_eq!(ch.cost(0).as_nanos(), 50_000);
        assert_eq!(ch.meta_cost().as_nanos(), 50_000);
    }

    #[test]
    fn bandwidth_term_scales_linearly() {
        let ch = LatencyBandwidth::new(0, 1_000_000_000); // 1 GB/s
        assert_eq!(ch.cost(1_000_000_000).as_nanos(), 1_000_000_000);
        assert_eq!(ch.cost(500_000_000).as_nanos(), 500_000_000);
    }

    #[test]
    fn huge_transfers_do_not_overflow() {
        let ch = LatencyBandwidth::new(10, 16_000_000_000); // 16 GB/s
        // 3.9 TB, the largest transfer in the paper's evaluation.
        let d = ch.cost(3_900_000_000_000);
        assert_eq!(d.as_nanos(), 10 + 243_750_000_000);
    }

    #[test]
    fn zero_bandwidth_means_latency_only() {
        let ch = LatencyBandwidth::new(123, 0);
        assert_eq!(ch.cost(1 << 30).as_nanos(), 123);
    }
}
