//! Contained panics for simulated process death.
//!
//! A simulated rank "dies" by panicking (an injected `ESIMCRASH`, an
//! unexpected bug in workflow code, a poisoned input). The surrounding run
//! must contain that death — catch it, label it, keep the other ranks
//! going — without spraying the default panic hook's backtrace over the
//! terminal for a failure the simulation *planned*.
//!
//! [`catch_quiet`] runs a closure under `std::panic::catch_unwind` with a
//! thread-local "expected panic" flag raised. A process-wide hook (installed
//! once, wrapping whatever hook was there before) stays silent while the
//! flag is up and delegates to the previous hook otherwise, so genuine
//! panics elsewhere in the process still report normally.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    static EXPECTED: Cell<bool> = const { Cell::new(false) };
}

static INSTALL_HOOK: Once = Once::new();

/// Turn a panic payload into a human-readable cause string.
pub fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f`, catching any panic it raises. Returns the closure's value, or
/// the panic's payload rendered as a string. The default panic hook is
/// suppressed for panics raised under this call (on this thread only);
/// panics on other threads keep their normal reporting.
pub fn catch_quiet<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    INSTALL_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !EXPECTED.with(Cell::get) {
                prev(info);
            }
        }));
    });
    EXPECTED.with(|e| e.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    EXPECTED.with(|e| e.set(false));
    result.map_err(|payload| payload_to_string(payload.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_passes_through() {
        assert_eq!(catch_quiet(|| 41 + 1), Ok(42));
    }

    #[test]
    fn str_panic_is_caught_with_message() {
        assert_eq!(catch_quiet(|| panic!("boom")), Err::<(), _>("boom".into()));
    }

    #[test]
    fn formatted_panic_keeps_its_message() {
        let r: Result<(), String> = catch_quiet(|| panic!("rank {} died", 7));
        assert_eq!(r, Err("rank 7 died".into()));
    }

    #[test]
    fn flag_resets_after_catch() {
        let _ = catch_quiet(|| panic!("x"));
        // A second quiet catch still works (flag was reset, hook persists).
        assert_eq!(catch_quiet(|| 1), Ok(1));
    }

    #[test]
    fn non_string_payload_is_labeled() {
        let r: Result<(), String> = catch_quiet(|| std::panic::panic_any(7usize));
        assert_eq!(r, Err("non-string panic payload".into()));
    }
}
