//! Simulation runtime primitives shared by the PROV-IO reproduction.
//!
//! The paper evaluates PROV-IO on a Haswell supercomputer with a Lustre
//! backend; this workspace replaces that testbed with simulated substrates.
//! Everything those substrates need to agree on time and randomness lives
//! here:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual nanoseconds.
//! * [`VirtualClock`] — a shareable per-agent clock that workflow I/O and
//!   compute charge *modeled* time to, and that provenance tracking charges
//!   its *real measured* time to (see `DESIGN.md` §3, "Timing model").
//! * [`LatencyBandwidth`] — the latency + bandwidth cost primitive used by
//!   the Lustre model in `provio-hpcfs`.
//! * [`DetRng`] — deterministic, splittable random streams so every
//!   experiment is reproducible run-to-run.
//! * [`NetPlan`] — seeded interconnect faults (loss, duplication,
//!   reordering, delay, partitions) for the streaming collection layer.

pub mod clock;
pub mod cost;
pub mod net;
pub mod panics;
pub mod rng;
pub mod timer;

pub use clock::{SimDuration, SimTime, VirtualClock};
pub use cost::LatencyBandwidth;
pub use net::{NetLink, NetLinkStats, NetPlan, PartitionEpisode, SendFate, NET_FAULT_STREAM};
pub use panics::catch_quiet;
pub use rng::DetRng;
pub use timer::ChargeGuard;
