//! Deterministic, splittable random streams.
//!
//! Experiments must be reproducible run-to-run and independent of thread
//! scheduling, so every parallel agent derives its own stream from a
//! `(seed, stream-id)` pair via SplitMix64 — two agents never share a
//! generator and the derivation is order-independent.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step, used to whiten (seed, stream) pairs into RNG seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
    seed: u64,
    stream: u64,
}

impl DetRng {
    /// Root stream for a run.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0)
    }

    /// Stream `stream` of run `seed`. Distinct streams are statistically
    /// independent regardless of creation order.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut s = seed ^ stream.rotate_left(17).wrapping_mul(0xA24B_AED4_963E_E407);
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut s).to_le_bytes());
        }
        DetRng {
            inner: SmallRng::from_seed(key),
            seed,
            stream,
        }
    }

    /// Derive a child stream; `(seed, stream)` of the child depends only on
    /// this stream's identity and `n`, not on how much this stream was used.
    pub fn child(&self, n: u64) -> DetRng {
        DetRng::with_stream(
            self.seed,
            self.stream
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(n)
                .wrapping_add(1),
        )
    }

    pub fn u64(&mut self) -> u64 {
        self.inner.gen()
    }

    pub fn u32(&mut self) -> u32 {
        self.inner.gen()
    }

    /// Uniform in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.gen_range(0..bound)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Fill `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = DetRng::with_stream(42, 0);
        let mut b = DetRng::with_stream(42, 1);
        let av: Vec<u64> = (0..8).map(|_| a.u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn child_is_usage_independent() {
        let mut a = DetRng::new(7);
        let b = DetRng::new(7);
        // Burn some values on `a`; children must still agree.
        for _ in 0..10 {
            a.u64();
        }
        let mut ca = a.child(3);
        let mut cb = b.child(3);
        for _ in 0..16 {
            assert_eq!(ca.u64(), cb.u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(2);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_edges_and_rough_rate() {
        let mut r = DetRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..1000).filter(|_| r.chance(0.25)).count();
        assert!((150..350).contains(&hits), "p=0.25 hit rate off: {hits}");
    }

    #[test]
    fn fill_is_deterministic() {
        let mut a = DetRng::new(5);
        let mut b = DetRng::new(5);
        let mut ba = [0u8; 64];
        let mut bb = [0u8; 64];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
    }
}
