//! Charging real CPU time to a virtual clock.
//!
//! The provenance tracker is real code doing real work (building RDF terms,
//! inserting triples, serializing Turtle). Its cost on the workflow is
//! therefore *measured*, not modeled: a [`ChargeGuard`] measures the wall
//! time of a tracking section and adds it to the issuing agent's virtual
//! clock, so "completion time with PROV-IO enabled" = modeled workflow time
//! + real tracking time, mirroring how the paper's overhead numbers compose.

use crate::clock::{SimDuration, VirtualClock};
use std::time::Instant;

/// RAII guard: charges the enclosed real elapsed time to `clock` on drop.
pub struct ChargeGuard<'a> {
    clock: &'a VirtualClock,
    start: Instant,
    /// Multiplier applied to the measured time (×1000 fixed-point). Used by
    /// ablation benches to explore "what if tracking were N× slower".
    scale_milli: u64,
}

impl<'a> ChargeGuard<'a> {
    pub fn new(clock: &'a VirtualClock) -> Self {
        ChargeGuard {
            clock,
            start: Instant::now(),
            scale_milli: 1000,
        }
    }

    /// A guard that charges `scale`× the measured time.
    pub fn scaled(clock: &'a VirtualClock, scale: f64) -> Self {
        debug_assert!(scale >= 0.0);
        ChargeGuard {
            clock,
            start: Instant::now(),
            scale_milli: (scale * 1000.0) as u64,
        }
    }
}

impl Drop for ChargeGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        let charged = (elapsed as u128 * self.scale_milli as u128 / 1000) as u64;
        self.clock.advance(SimDuration::from_nanos(charged));
    }
}

/// Measure a closure's real time and charge it to `clock`, returning the
/// closure's result.
pub fn charge_real<T>(clock: &VirtualClock, f: impl FnOnce() -> T) -> T {
    let _g = ChargeGuard::new(clock);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_charges_positive_time() {
        let c = VirtualClock::new();
        {
            let _g = ChargeGuard::new(&c);
            // Do a little real work.
            let mut x = 0u64;
            for i in 0..10_000 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
        }
        assert!(c.now().as_nanos() > 0);
    }

    #[test]
    fn charge_real_returns_value() {
        let c = VirtualClock::new();
        let v = charge_real(&c, || 41 + 1);
        assert_eq!(v, 42);
        assert!(c.now().as_nanos() > 0);
    }

    #[test]
    fn zero_scale_charges_nothing() {
        let c = VirtualClock::new();
        {
            let _g = ChargeGuard::scaled(&c, 0.0);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(c.now().as_nanos(), 0);
    }

    #[test]
    fn scaled_guard_multiplies() {
        let c1 = VirtualClock::new();
        let c2 = VirtualClock::new();
        let work = || {
            let mut x = 0u64;
            for i in 0..100_000u64 {
                x = x.wrapping_mul(31).wrapping_add(i);
            }
            std::hint::black_box(x);
        };
        {
            let _g = ChargeGuard::scaled(&c1, 1.0);
            work();
        }
        {
            let _g = ChargeGuard::scaled(&c2, 10.0);
            work();
        }
        // Not an exact ratio (separate measurements) but 10x scale should
        // clearly dominate.
        assert!(c2.now().as_nanos() > c1.now().as_nanos());
    }
}
