//! `provio-model` — the PROV-IO provenance model (paper §4.1, Table 2).
//!
//! PROV-IO enriches the W3C PROV data model with concrete sub-classes for
//! HPC I/O. This crate is the model itself, independent of capture or
//! storage:
//!
//! * Five super-classes: [`EntityClass`] (*Data Object* sub-classes:
//!   Directory, File, Group, Dataset, Attribute, Datatype, Link),
//!   [`ActivityClass`] (*I/O API* sub-classes: Create, Open, Read, Write,
//!   Fsync, Rename), [`AgentClass`] (User, Thread, Program),
//!   [`ExtensibleClass`] (Type, Configuration, Metrics) and [`Relation`]
//!   (the inherited W3C relations plus `provio:wasCreatedBy`,
//!   `provio:wasReadBy`, `provio:wasWrittenBy`, …).
//! * [`Guid`] — globally unique node identities. Data objects and agents
//!   are *content-addressed* (same file ⇒ same GUID in every process) so
//!   merging per-process sub-graphs never duplicates nodes (paper §5);
//!   activities are unique per invocation.
//! * [`ontology`] — the PROV-O-style mapping of records to RDF triples and
//!   back.
//! * [`ClassSelector`] — the user-engine knob that enables/disables
//!   individual sub-classes, with the paper's Table 3 presets.

pub mod class;
pub mod guid;
pub mod node;
pub mod ontology;
pub mod relation;
pub mod selector;

pub use class::{ActivityClass, AgentClass, EntityClass, ExtensibleClass, NodeClass};
pub use guid::{content_hash, Guid, GuidGen};
pub use node::{ProvNode, ProvRecord, PropKey, PropValue};
pub use ontology::{record_to_triples, Vocabulary};
pub use relation::Relation;
pub use selector::{ClassSelector, TrackItem};
