//! The PROV-O-style RDF mapping: records → triples and triples → nodes.
//!
//! W3C PROV-O maps Entity/Activity/Agent to RDF subjects and objects and
//! Relations to predicates (paper §2.1); PROV-IO keeps that mapping and
//! adds its sub-class and property vocabulary. `record_to_triples` is the
//! serializer used by the tracker's hot path; [`Vocabulary`] centralizes
//! the IRIs used by queries and the merger.

use crate::class::NodeClass;
use crate::guid::Guid;
use crate::node::{PropKey, PropValue, ProvNode, ProvRecord};
use crate::relation::Relation;
use provio_rdf::{ns, Graph, Iri, Literal, Subject, Term, Triple};

/// Frequently used IRIs, built once.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    pub rdf_type: Iri,
    pub rdfs_label: Iri,
    pub prov_entity: Iri,
    pub prov_activity: Iri,
    pub prov_agent: Iri,
}

impl Default for Vocabulary {
    fn default() -> Self {
        Vocabulary {
            rdf_type: Iri::new(ns::RDF_TYPE),
            rdfs_label: Iri::new(ns::RDFS_LABEL),
            prov_entity: Iri::new(format!("{}Entity", ns::PROV)),
            prov_activity: Iri::new(format!("{}Activity", ns::PROV)),
            prov_agent: Iri::new(format!("{}Agent", ns::PROV)),
        }
    }
}

impl Vocabulary {
    pub fn new() -> Self {
        Self::default()
    }
}

fn prop_literal(v: &PropValue) -> Literal {
    match v {
        PropValue::Str(s) => Literal::plain(s.clone()),
        PropValue::Int(i) => Literal::integer(*i),
        PropValue::Float(f) => Literal::double(*f),
        PropValue::Bool(b) => Literal::boolean(*b),
    }
}

/// Emit the triples for one record into `out`.
pub fn record_triples_into(rec: &ProvRecord, out: &mut Vec<Triple>) {
    let subject = rec.node.id.to_subject();
    out.push(Triple::new(
        subject.clone(),
        Iri::new(ns::RDF_TYPE),
        Term::iri(rec.node.class.iri()),
    ));
    out.push(Triple::new(
        subject.clone(),
        Iri::new(ns::RDFS_LABEL),
        Literal::plain(rec.node.label.clone()),
    ));
    for (key, value) in &rec.node.properties {
        out.push(Triple::new(
            subject.clone(),
            Iri::new(key.iri()),
            prop_literal(value),
        ));
    }
    for (rel, target) in &rec.relations {
        out.push(Triple::new(
            subject.clone(),
            Iri::new(rel.iri()),
            Term::Iri(target.to_iri()),
        ));
    }
}

/// Convenience wrapper returning a fresh Vec.
pub fn record_to_triples(rec: &ProvRecord) -> Vec<Triple> {
    let mut out = Vec::with_capacity(rec.triple_count());
    record_triples_into(rec, &mut out);
    out
}

/// Read one node back from a graph: its class, label, and properties.
pub fn node_from_graph(graph: &Graph, id: &Guid) -> Option<ProvNode> {
    let subject = id.to_subject();
    let type_iri = graph
        .objects(&subject, &Iri::new(ns::RDF_TYPE))
        .into_iter()
        .find_map(|t| t.as_iri().cloned())?;
    let class = NodeClass::from_iri(type_iri.as_str())?;
    let label = graph
        .objects(&subject, &Iri::new(ns::RDFS_LABEL))
        .into_iter()
        .find_map(|t| t.as_literal().map(|l| l.lexical().to_string()))
        .unwrap_or_default();
    let mut node = ProvNode::new(id.clone(), class, label);
    for key in PropKey::ALL {
        for obj in graph.objects(&subject, &Iri::new(key.iri())) {
            if let Some(lit) = obj.as_literal() {
                let value = if let Some(i) = lit
                    .datatype()
                    .filter(|d| d.as_str() == ns::XSD_INTEGER)
                    .and_then(|_| lit.as_i64())
                {
                    PropValue::Int(i)
                } else if let Some(f) = lit
                    .datatype()
                    .filter(|d| d.as_str() == ns::XSD_DOUBLE)
                    .and_then(|_| lit.as_f64())
                {
                    PropValue::Float(f)
                } else if lit.datatype().map(|d| d.as_str()) == Some(ns::XSD_BOOLEAN) {
                    PropValue::Bool(lit.lexical() == "true")
                } else {
                    PropValue::Str(lit.lexical().to_string())
                };
                node.properties.push((key, value));
            }
        }
    }
    Some(node)
}

/// All (relation, target) pairs leaving a node.
pub fn relations_from_graph(graph: &Graph, id: &Guid) -> Vec<(Relation, Guid)> {
    let subject = id.to_subject();
    let mut out = Vec::new();
    for rel in Relation::ALL {
        for obj in graph.objects(&subject, &Iri::new(rel.iri())) {
            if let Some(iri) = obj.as_iri() {
                if let Some(g) = Guid::from_iri(iri) {
                    out.push((rel, g));
                }
            }
        }
    }
    out
}

/// All node GUIDs of a given class present in a graph.
pub fn nodes_of_class(graph: &Graph, class: NodeClass) -> Vec<Guid> {
    graph
        .subjects_with(&Iri::new(ns::RDF_TYPE), &Term::iri(class.iri()))
        .into_iter()
        .filter_map(|s| match s {
            Subject::Iri(i) => Guid::from_iri(&i),
            Subject::Blank(_) => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ActivityClass, AgentClass, EntityClass};
    use crate::guid::GuidGen;

    fn sample_record() -> ProvRecord {
        let gen = GuidGen::new(3);
        let ds = GuidGen::data_object("Dataset", "/f.h5", "/Timestep_0/x");
        let act = gen.activity("H5Dcreate2");
        ProvRecord::new(
            ProvNode::new(ds, EntityClass::Dataset, "/Timestep_0/x")
                .with_prop(PropKey::Dims, "[1024]")
                .with_prop(PropKey::Bytes, 8192u64),
        )
        .with_relation(Relation::WasCreatedBy, act)
    }

    #[test]
    fn triples_match_count() {
        let rec = sample_record();
        let triples = record_to_triples(&rec);
        assert_eq!(triples.len(), rec.triple_count());
    }

    #[test]
    fn node_round_trip_through_graph() {
        let rec = sample_record();
        let mut g = Graph::new();
        for t in record_to_triples(&rec) {
            g.insert(&t);
        }
        let back = node_from_graph(&g, &rec.node.id).unwrap();
        assert_eq!(back.class, rec.node.class);
        assert_eq!(back.label, rec.node.label);
        assert_eq!(back.prop(PropKey::Bytes), Some(&PropValue::Int(8192)));
        assert_eq!(
            back.prop(PropKey::Dims),
            Some(&PropValue::Str("[1024]".into()))
        );

        let rels = relations_from_graph(&g, &rec.node.id);
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].0, Relation::WasCreatedBy);
    }

    #[test]
    fn nodes_of_class_filters() {
        let mut g = Graph::new();
        let rec = sample_record();
        for t in record_to_triples(&rec) {
            g.insert(&t);
        }
        let user = GuidGen::agent("User", "Bob");
        let urec = ProvRecord::new(ProvNode::new(user.clone(), AgentClass::User, "Bob"));
        for t in record_to_triples(&urec) {
            g.insert(&t);
        }
        assert_eq!(nodes_of_class(&g, EntityClass::Dataset.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, AgentClass::User.into()), vec![user]);
        assert!(nodes_of_class(&g, ActivityClass::Read.into()).is_empty());
    }

    #[test]
    fn float_and_bool_props_round_trip() {
        let id = GuidGen::extensible("Metrics", "accuracy-epoch-3");
        let rec = ProvRecord::new(
            ProvNode::new(id.clone(), crate::class::ExtensibleClass::Metrics, "acc")
                .with_prop(PropKey::Accuracy, 0.875)
                .with_prop(PropKey::Value, true),
        );
        let mut g = Graph::new();
        for t in record_to_triples(&rec) {
            g.insert(&t);
        }
        let back = node_from_graph(&g, &id).unwrap();
        assert_eq!(back.prop(PropKey::Accuracy), Some(&PropValue::Float(0.875)));
        assert_eq!(back.prop(PropKey::Value), Some(&PropValue::Bool(true)));
    }
}
