//! The PROV-IO class hierarchy (paper Table 2).

use provio_rdf::ns;

/// *Entity* sub-classes: the `<<Data Object>>` kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityClass {
    /// POSIX file system directory.
    Directory,
    /// POSIX file system file.
    File,
    /// I/O library interior group structure (e.g. HDF5 group).
    Group,
    /// I/O library interior dataset structure (e.g. HDF5 dataset).
    Dataset,
    /// POSIX inode extended attribute or I/O library attribute.
    Attribute,
    /// I/O library interior datatype structure.
    Datatype,
    /// POSIX hard/soft link.
    Link,
}

impl EntityClass {
    pub const ALL: [EntityClass; 7] = [
        EntityClass::Directory,
        EntityClass::File,
        EntityClass::Group,
        EntityClass::Dataset,
        EntityClass::Attribute,
        EntityClass::Datatype,
        EntityClass::Link,
    ];

    pub fn local_name(self) -> &'static str {
        match self {
            EntityClass::Directory => "Directory",
            EntityClass::File => "File",
            EntityClass::Group => "Group",
            EntityClass::Dataset => "Dataset",
            EntityClass::Attribute => "Attribute",
            EntityClass::Datatype => "Datatype",
            EntityClass::Link => "Link",
        }
    }
}

/// *Activity* sub-classes: the `<<I/O API>>` kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ActivityClass {
    /// POSIX "open(O_CREAT)" and library Create APIs (e.g. H5Acreate).
    Create,
    /// Library Open APIs (e.g. H5Aopen) and POSIX open.
    Open,
    /// POSIX read-family and library Read APIs.
    Read,
    /// POSIX write-family and library Write APIs.
    Write,
    /// POSIX fsync-family and library Flush APIs.
    Fsync,
    /// POSIX rename-family and library Rename APIs.
    Rename,
}

impl ActivityClass {
    pub const ALL: [ActivityClass; 6] = [
        ActivityClass::Create,
        ActivityClass::Open,
        ActivityClass::Read,
        ActivityClass::Write,
        ActivityClass::Fsync,
        ActivityClass::Rename,
    ];

    pub fn local_name(self) -> &'static str {
        match self {
            ActivityClass::Create => "Create",
            ActivityClass::Open => "Open",
            ActivityClass::Read => "Read",
            ActivityClass::Write => "Write",
            ActivityClass::Fsync => "Fsync",
            ActivityClass::Rename => "Rename",
        }
    }
}

/// *Agent* sub-classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AgentClass {
    /// Workflow user.
    User,
    /// Individual thread / MPI rank.
    Thread,
    /// Program instance.
    Program,
}

impl AgentClass {
    pub const ALL: [AgentClass; 3] = [AgentClass::User, AgentClass::Thread, AgentClass::Program];

    pub fn local_name(self) -> &'static str {
        match self {
            AgentClass::User => "User",
            AgentClass::Thread => "Thread",
            AgentClass::Program => "Program",
        }
    }
}

/// *Extensible Class* sub-classes: workflow-specific information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExtensibleClass {
    /// Type of a program/workflow (e.g. Machine Learning, Acoustic Sensing).
    Type,
    /// Workflow configuration (e.g. an ML hyperparameter).
    Configuration,
    /// Evaluation metrics (e.g. training accuracy).
    Metrics,
}

impl ExtensibleClass {
    pub const ALL: [ExtensibleClass; 3] = [
        ExtensibleClass::Type,
        ExtensibleClass::Configuration,
        ExtensibleClass::Metrics,
    ];

    pub fn local_name(self) -> &'static str {
        match self {
            ExtensibleClass::Type => "Type",
            ExtensibleClass::Configuration => "Configuration",
            ExtensibleClass::Metrics => "Metrics",
        }
    }
}

/// Any node class (the four super-classes' union).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeClass {
    Entity(EntityClass),
    Activity(ActivityClass),
    Agent(AgentClass),
    Extensible(ExtensibleClass),
}

impl NodeClass {
    /// The class IRI in the PROV-IO vocabulary.
    pub fn iri(self) -> String {
        format!("{}{}", ns::PROVIO, self.local_name())
    }

    pub fn local_name(self) -> &'static str {
        match self {
            NodeClass::Entity(c) => c.local_name(),
            NodeClass::Activity(c) => c.local_name(),
            NodeClass::Agent(c) => c.local_name(),
            NodeClass::Extensible(c) => c.local_name(),
        }
    }

    /// The W3C super-class IRI this sub-class specializes.
    pub fn super_class_iri(self) -> String {
        match self {
            NodeClass::Entity(_) | NodeClass::Extensible(_) => format!("{}Entity", ns::PROV),
            NodeClass::Activity(_) => format!("{}Activity", ns::PROV),
            NodeClass::Agent(_) => format!("{}Agent", ns::PROV),
        }
    }

    /// Parse a PROV-IO class IRI back into a class.
    pub fn from_iri(iri: &str) -> Option<NodeClass> {
        let local = iri.strip_prefix(ns::PROVIO)?;
        for c in EntityClass::ALL {
            if c.local_name() == local {
                return Some(NodeClass::Entity(c));
            }
        }
        for c in ActivityClass::ALL {
            if c.local_name() == local {
                return Some(NodeClass::Activity(c));
            }
        }
        for c in AgentClass::ALL {
            if c.local_name() == local {
                return Some(NodeClass::Agent(c));
            }
        }
        for c in ExtensibleClass::ALL {
            if c.local_name() == local {
                return Some(NodeClass::Extensible(c));
            }
        }
        None
    }
}

impl From<EntityClass> for NodeClass {
    fn from(c: EntityClass) -> Self {
        NodeClass::Entity(c)
    }
}

impl From<ActivityClass> for NodeClass {
    fn from(c: ActivityClass) -> Self {
        NodeClass::Activity(c)
    }
}

impl From<AgentClass> for NodeClass {
    fn from(c: AgentClass) -> Self {
        NodeClass::Agent(c)
    }
}

impl From<ExtensibleClass> for NodeClass {
    fn from(c: ExtensibleClass) -> Self {
        NodeClass::Extensible(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_match_table2() {
        assert_eq!(EntityClass::ALL.len(), 7);
        assert_eq!(ActivityClass::ALL.len(), 6);
        assert_eq!(AgentClass::ALL.len(), 3);
        assert_eq!(ExtensibleClass::ALL.len(), 3);
    }

    #[test]
    fn iris_are_in_provio_namespace() {
        let c: NodeClass = EntityClass::Dataset.into();
        assert_eq!(c.iri(), "https://github.com/hpc-io/prov-io#Dataset");
        assert_eq!(c.super_class_iri(), "http://www.w3.org/ns/prov#Entity");
    }

    #[test]
    fn iri_round_trip_all_classes() {
        let mut all: Vec<NodeClass> = Vec::new();
        all.extend(EntityClass::ALL.map(NodeClass::Entity));
        all.extend(ActivityClass::ALL.map(NodeClass::Activity));
        all.extend(AgentClass::ALL.map(NodeClass::Agent));
        all.extend(ExtensibleClass::ALL.map(NodeClass::Extensible));
        assert_eq!(all.len(), 19);
        for c in all {
            assert_eq!(NodeClass::from_iri(&c.iri()), Some(c), "{c:?}");
        }
        assert_eq!(NodeClass::from_iri("https://example.org/Nope"), None);
    }

    #[test]
    fn activity_super_class_is_prov_activity() {
        let c: NodeClass = ActivityClass::Fsync.into();
        assert_eq!(c.super_class_iri(), "http://www.w3.org/ns/prov#Activity");
        let a: NodeClass = AgentClass::Thread.into();
        assert_eq!(a.super_class_iri(), "http://www.w3.org/ns/prov#Agent");
    }
}
