//! The class selector: "the PROV-IO User Engine component allows users to
//! enable/disable individual sub-classes defined in the PROV-IO model,
//! which also enables flexible tradeoffs between completeness and
//! overhead" (paper §4.2). Presets correspond to the rows of Table 3.

use crate::class::{ActivityClass, AgentClass, EntityClass, ExtensibleClass, NodeClass};
use std::collections::BTreeSet;

/// Everything the selector can switch: node sub-classes plus the two
/// property toggles the paper's scenarios use (API duration, byte counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrackItem {
    Entity(EntityClass),
    Activity(ActivityClass),
    Agent(AgentClass),
    Extensible(ExtensibleClass),
    /// Track per-API duration (`provio:elapsed`), H5bench scenario 2.
    Duration,
    /// Track per-API byte counts.
    ByteCounts,
}

impl From<EntityClass> for TrackItem {
    fn from(c: EntityClass) -> Self {
        TrackItem::Entity(c)
    }
}

impl From<ActivityClass> for TrackItem {
    fn from(c: ActivityClass) -> Self {
        TrackItem::Activity(c)
    }
}

impl From<AgentClass> for TrackItem {
    fn from(c: AgentClass) -> Self {
        TrackItem::Agent(c)
    }
}

impl From<ExtensibleClass> for TrackItem {
    fn from(c: ExtensibleClass) -> Self {
        TrackItem::Extensible(c)
    }
}

/// Which sub-classes the tracker records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassSelector {
    enabled: BTreeSet<TrackItem>,
}

impl ClassSelector {
    /// Nothing enabled (tracking effectively off).
    pub fn none() -> Self {
        ClassSelector::default()
    }

    /// Everything enabled.
    pub fn all() -> Self {
        let mut s = ClassSelector::default();
        for c in EntityClass::ALL {
            s.enable(c);
        }
        for c in ActivityClass::ALL {
            s.enable(c);
        }
        for c in AgentClass::ALL {
            s.enable(c);
        }
        for c in ExtensibleClass::ALL {
            s.enable(c);
        }
        s.enable(TrackItem::Duration);
        s.enable(TrackItem::ByteCounts);
        s
    }

    pub fn enable(&mut self, item: impl Into<TrackItem>) -> &mut Self {
        self.enabled.insert(item.into());
        self
    }

    pub fn disable(&mut self, item: impl Into<TrackItem>) -> &mut Self {
        self.enabled.remove(&item.into());
        self
    }

    pub fn is_enabled(&self, item: impl Into<TrackItem>) -> bool {
        self.enabled.contains(&item.into())
    }

    pub fn enabled_count(&self) -> usize {
        self.enabled.len()
    }

    /// Is any `<<Data Object>>` entity sub-class enabled? When none is,
    /// the tracker records I/O API activities for all events regardless of
    /// the touched object (the H5bench scenario-1/2 behavior); when at
    /// least one is, events on objects below the enabled granularity are
    /// skipped entirely (the DASSA file/dataset/attribute lineage
    /// behavior — "which incurs more I/O operations to track", §6.2).
    pub fn any_entity_enabled(&self) -> bool {
        EntityClass::ALL.iter().any(|c| self.is_enabled(*c))
    }

    /// Is a node class enabled?
    pub fn class_enabled(&self, class: NodeClass) -> bool {
        match class {
            NodeClass::Entity(c) => self.is_enabled(c),
            NodeClass::Activity(c) => self.is_enabled(c),
            NodeClass::Agent(c) => self.is_enabled(c),
            NodeClass::Extensible(c) => self.is_enabled(c),
        }
    }

    /// All I/O API tracking enabled (helper for the presets).
    fn with_all_apis(mut self) -> Self {
        for c in ActivityClass::ALL {
            self.enable(c);
        }
        self
    }

    fn with_agents(mut self) -> Self {
        for c in AgentClass::ALL {
            self.enable(c);
        }
        self
    }

    // --- Table 3 presets ---------------------------------------------------

    /// DASSA "file lineage": program, I/O API, file.
    pub fn dassa_file_lineage() -> Self {
        let mut s = ClassSelector::none().with_all_apis();
        s.enable(AgentClass::Program);
        s.enable(EntityClass::File);
        s.enable(EntityClass::Directory);
        s
    }

    /// DASSA "dataset lineage": program, I/O API, dataset (+file context).
    pub fn dassa_dataset_lineage() -> Self {
        let mut s = Self::dassa_file_lineage();
        s.enable(EntityClass::Group);
        s.enable(EntityClass::Dataset);
        s
    }

    /// DASSA "attribute lineage": program, I/O API, attr (+enclosing objects).
    pub fn dassa_attribute_lineage() -> Self {
        let mut s = Self::dassa_dataset_lineage();
        s.enable(EntityClass::Attribute);
        s
    }

    /// H5bench scenario 1: I/O API counts only.
    pub fn h5bench_scenario1() -> Self {
        ClassSelector::none().with_all_apis()
    }

    /// H5bench scenario 2: I/O API + duration.
    pub fn h5bench_scenario2() -> Self {
        let mut s = Self::h5bench_scenario1();
        s.enable(TrackItem::Duration);
        s
    }

    /// H5bench scenario 3: user, thread, program, file.
    pub fn h5bench_scenario3() -> Self {
        let mut s = ClassSelector::none().with_all_apis().with_agents();
        s.enable(EntityClass::File);
        s
    }

    /// Top Reco: extensible-class tracking (configuration, metrics, type).
    pub fn topreco() -> Self {
        let mut s = ClassSelector::none();
        for c in ExtensibleClass::ALL {
            s.enable(c);
        }
        s.enable(AgentClass::User);
        s.enable(AgentClass::Program);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_and_all() {
        assert_eq!(ClassSelector::none().enabled_count(), 0);
        // 7 + 6 + 3 + 3 classes + 2 property toggles
        assert_eq!(ClassSelector::all().enabled_count(), 21);
    }

    #[test]
    fn enable_disable_round_trip() {
        let mut s = ClassSelector::none();
        s.enable(EntityClass::Attribute);
        assert!(s.is_enabled(EntityClass::Attribute));
        s.disable(EntityClass::Attribute);
        assert!(!s.is_enabled(EntityClass::Attribute));
    }

    #[test]
    fn dassa_presets_are_nested() {
        let file = ClassSelector::dassa_file_lineage();
        let dataset = ClassSelector::dassa_dataset_lineage();
        let attr = ClassSelector::dassa_attribute_lineage();
        assert!(file.is_enabled(EntityClass::File));
        assert!(!file.is_enabled(EntityClass::Dataset));
        assert!(dataset.is_enabled(EntityClass::Dataset));
        assert!(!dataset.is_enabled(EntityClass::Attribute));
        assert!(attr.is_enabled(EntityClass::Attribute));
        // Strictly increasing granularity → strictly more enabled items.
        assert!(file.enabled_count() < dataset.enabled_count());
        assert!(dataset.enabled_count() < attr.enabled_count());
    }

    #[test]
    fn h5bench_scenarios_match_table3() {
        let s1 = ClassSelector::h5bench_scenario1();
        assert!(s1.is_enabled(ActivityClass::Write));
        assert!(!s1.is_enabled(TrackItem::Duration));
        assert!(!s1.is_enabled(AgentClass::User));

        let s2 = ClassSelector::h5bench_scenario2();
        assert!(s2.is_enabled(TrackItem::Duration));

        let s3 = ClassSelector::h5bench_scenario3();
        assert!(s3.is_enabled(AgentClass::User));
        assert!(s3.is_enabled(AgentClass::Thread));
        assert!(s3.is_enabled(EntityClass::File));
        assert!(!s3.is_enabled(TrackItem::Duration));
    }

    #[test]
    fn topreco_preset_is_extensible_centric() {
        let s = ClassSelector::topreco();
        assert!(s.is_enabled(ExtensibleClass::Configuration));
        assert!(s.is_enabled(ExtensibleClass::Metrics));
        assert!(!s.is_enabled(ActivityClass::Read));
    }

    #[test]
    fn class_enabled_dispatches() {
        let s = ClassSelector::dassa_file_lineage();
        assert!(s.class_enabled(NodeClass::Entity(EntityClass::File)));
        assert!(!s.class_enabled(NodeClass::Agent(AgentClass::User)));
        assert!(s.class_enabled(NodeClass::Activity(ActivityClass::Read)));
    }
}
