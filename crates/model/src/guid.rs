//! Globally unique node identities.
//!
//! "Every node in the graph has a globally unique ID (GUID), \[so\] merging
//! the sub-graphs does not cause unnecessary duplication" (paper §5). Two
//! different processes that touch the same file must therefore mint the
//! *same* GUID for it — data objects and agents are content-addressed by
//! their class and stable name. Activities (individual I/O API invocations)
//! are the opposite: every invocation is its own node, so their GUIDs
//! include the minting process and a local counter.

use provio_rdf::{Iri, Subject};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A node identity, realized as an IRI in the run-scoped `urn:provio:`
/// namespace.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Guid(String);

impl Guid {
    /// The full IRI string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    pub fn to_iri(&self) -> Iri {
        Iri::new(self.0.clone())
    }

    pub fn to_subject(&self) -> Subject {
        Subject::Iri(self.to_iri())
    }

    /// Reconstruct from an IRI (when reading provenance back).
    pub fn from_iri(iri: &Iri) -> Option<Guid> {
        if iri.as_str().starts_with(provio_rdf::ns::RESOURCE) {
            Some(Guid(iri.as_str().to_string()))
        } else {
            None
        }
    }

    /// The human-readable tail of the GUID (after the namespace).
    pub fn local(&self) -> &str {
        &self.0[provio_rdf::ns::RESOURCE.len()..]
    }
}

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Stable content hash for GUID components (e.g. a configuration value).
pub fn content_hash(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// FNV-1a, for stable content-addressed suffixes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Percent-encode characters that may not appear raw in an IRI.
fn sanitize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '/' | '.' | '_' | '-' | '#' => out.push(c),
            other => {
                let mut buf = [0u8; 4];
                for b in other.encode_utf8(&mut buf).as_bytes() {
                    out.push_str(&format!("%{b:02X}"));
                }
            }
        }
    }
    out
}

/// GUID factory for one tracked process.
#[derive(Debug)]
pub struct GuidGen {
    /// Process identity baked into per-invocation GUIDs.
    pid: u32,
    counter: AtomicU64,
}

impl GuidGen {
    pub fn new(pid: u32) -> Self {
        GuidGen {
            pid,
            counter: AtomicU64::new(0),
        }
    }

    /// Content-addressed GUID for a data object: stable across processes.
    ///
    /// `scope` is the containing file's path (empty for POSIX-level
    /// objects); `name` the object's path/name.
    pub fn data_object(class: &str, scope: &str, name: &str) -> Guid {
        let label = if scope.is_empty() {
            sanitize(name)
        } else {
            format!("{}#{}", sanitize(scope), sanitize(name.trim_start_matches('/')))
        };
        // Hash keeps GUIDs unique even if sanitization collides.
        let h = fnv1a(format!("{class}\0{scope}\0{name}").as_bytes());
        Guid(format!(
            "{}obj/{}/{}-{:08x}",
            provio_rdf::ns::RESOURCE,
            class.to_ascii_lowercase(),
            label,
            h as u32
        ))
    }

    /// Content-addressed GUID for an agent (user/program/thread).
    pub fn agent(class: &str, name: &str) -> Guid {
        Guid(format!(
            "{}agent/{}/{}",
            provio_rdf::ns::RESOURCE,
            class.to_ascii_lowercase(),
            sanitize(name)
        ))
    }

    /// Content-addressed GUID for an extensible-class node.
    pub fn extensible(class: &str, name: &str) -> Guid {
        Guid(format!(
            "{}ext/{}/{}",
            provio_rdf::ns::RESOURCE,
            class.to_ascii_lowercase(),
            sanitize(name)
        ))
    }

    /// Unique GUID for one I/O API invocation (like "H5Dcreate2-b1" in the
    /// paper's Figure 4(b)).
    pub fn activity(&self, api_name: &str) -> Guid {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        Guid(format!(
            "{}act/{}-p{}-{}",
            provio_rdf::ns::RESOURCE,
            sanitize(api_name),
            self.pid,
            n
        ))
    }

    /// Number of activity GUIDs minted so far.
    pub fn minted(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_objects_are_content_addressed() {
        let a = GuidGen::data_object("File", "", "/data/WestSac.h5");
        let b = GuidGen::data_object("File", "", "/data/WestSac.h5");
        assert_eq!(a, b, "same object in two processes → same GUID");
        let c = GuidGen::data_object("File", "", "/data/Other.h5");
        assert_ne!(a, c);
        // Same name, different class → different GUID.
        let d = GuidGen::data_object("Dataset", "", "/data/WestSac.h5");
        assert_ne!(a, d);
    }

    #[test]
    fn scoped_objects_include_file() {
        let a = GuidGen::data_object("Dataset", "/f1.h5", "/Timestep_0/x");
        let b = GuidGen::data_object("Dataset", "/f2.h5", "/Timestep_0/x");
        assert_ne!(a, b);
        assert!(a.as_str().contains("f1.h5"));
    }

    #[test]
    fn activities_are_unique_per_invocation() {
        let gen = GuidGen::new(7);
        let a = gen.activity("H5Dcreate2");
        let b = gen.activity("H5Dcreate2");
        assert_ne!(a, b);
        assert_eq!(gen.minted(), 2);
        // Different processes can't collide either.
        let other = GuidGen::new(8);
        assert_ne!(a, other.activity("H5Dcreate2"));
    }

    #[test]
    fn guids_are_valid_iris_and_round_trip() {
        let g = GuidGen::data_object("Attribute", "/a b.h5", "/ds#units µ");
        let iri = g.to_iri();
        assert!(!iri.as_str().contains(' '), "sanitized: {iri}");
        assert_eq!(Guid::from_iri(&iri), Some(g));
        assert_eq!(Guid::from_iri(&Iri::new("http://elsewhere/x")), None);
    }

    #[test]
    fn local_strips_namespace() {
        let g = GuidGen::agent("User", "Bob");
        assert_eq!(g.local(), "agent/user/Bob");
    }
}
