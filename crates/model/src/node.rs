//! Provenance nodes and records.

use crate::class::NodeClass;
use crate::guid::Guid;
use crate::relation::Relation;

/// A property key on a node (the paper's snippet shows `provio:elapsed`,
/// `ns1:Version`, `provio:hasAccuracy`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropKey {
    /// Duration of an I/O API invocation, in nanoseconds (`provio:elapsed`).
    ElapsedNs,
    /// Virtual timestamp of the event, nanoseconds (`provio:timestamp`).
    TimestampNs,
    /// Bytes moved by a data operation (`provio:bytes`).
    Bytes,
    /// Version counter on configurations (`provio:version`).
    Version,
    /// Training accuracy / metric value (`provio:hasAccuracy`).
    Accuracy,
    /// Generic value of an extensible node (`provio:value`).
    Value,
    /// MPI rank of a Thread agent (`provio:rank`).
    Rank,
    /// Dataset dimensionality rendered as text (`provio:dims`).
    Dims,
    /// Element datatype rendered as text (`provio:datatype`).
    ElementType,
}

impl PropKey {
    pub const ALL: [PropKey; 9] = [
        PropKey::ElapsedNs,
        PropKey::TimestampNs,
        PropKey::Bytes,
        PropKey::Version,
        PropKey::Accuracy,
        PropKey::Value,
        PropKey::Rank,
        PropKey::Dims,
        PropKey::ElementType,
    ];

    pub fn local_name(self) -> &'static str {
        match self {
            PropKey::ElapsedNs => "elapsed",
            PropKey::TimestampNs => "timestamp",
            PropKey::Bytes => "bytes",
            PropKey::Version => "version",
            PropKey::Accuracy => "hasAccuracy",
            PropKey::Value => "value",
            PropKey::Rank => "rank",
            PropKey::Dims => "dims",
            PropKey::ElementType => "datatype",
        }
    }

    pub fn iri(self) -> String {
        format!("{}{}", provio_rdf::ns::PROVIO, self.local_name())
    }

    pub fn from_iri(iri: &str) -> Option<PropKey> {
        let local = iri.strip_prefix(provio_rdf::ns::PROVIO)?;
        PropKey::ALL.into_iter().find(|k| k.local_name() == local)
    }
}

/// A property value.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl PropValue {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            PropValue::Int(i) => Some(*i as f64),
            PropValue::Float(f) => Some(*f),
            _ => None,
        }
    }
}

impl From<&str> for PropValue {
    fn from(s: &str) -> Self {
        PropValue::Str(s.to_string())
    }
}

impl From<String> for PropValue {
    fn from(s: String) -> Self {
        PropValue::Str(s)
    }
}

impl From<i64> for PropValue {
    fn from(v: i64) -> Self {
        PropValue::Int(v)
    }
}

impl From<u64> for PropValue {
    fn from(v: u64) -> Self {
        PropValue::Int(v as i64)
    }
}

impl From<f64> for PropValue {
    fn from(v: f64) -> Self {
        PropValue::Float(v)
    }
}

impl From<bool> for PropValue {
    fn from(v: bool) -> Self {
        PropValue::Bool(v)
    }
}

/// A provenance node: identity, class, label, properties.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvNode {
    pub id: Guid,
    pub class: NodeClass,
    /// Human-readable label (file path, API name, user name, …).
    pub label: String,
    pub properties: Vec<(PropKey, PropValue)>,
}

impl ProvNode {
    pub fn new(id: Guid, class: impl Into<NodeClass>, label: impl Into<String>) -> Self {
        ProvNode {
            id,
            class: class.into(),
            label: label.into(),
            properties: Vec::new(),
        }
    }

    pub fn with_prop(mut self, key: PropKey, value: impl Into<PropValue>) -> Self {
        self.properties.push((key, value.into()));
        self
    }

    pub fn prop(&self, key: PropKey) -> Option<&PropValue> {
        self.properties
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// A record: one subject node plus its outgoing relations — the unit shown
/// in the paper's Figure 4(b) snippet.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvRecord {
    pub node: ProvNode,
    pub relations: Vec<(Relation, Guid)>,
}

impl ProvRecord {
    pub fn new(node: ProvNode) -> Self {
        ProvRecord {
            node,
            relations: Vec::new(),
        }
    }

    pub fn with_relation(mut self, rel: Relation, target: Guid) -> Self {
        self.relations.push((rel, target));
        self
    }

    /// Approximate serialized size of this record, in triples.
    pub fn triple_count(&self) -> usize {
        // type + label + properties + relations
        2 + self.node.properties.len() + self.relations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ActivityClass, EntityClass};
    use crate::guid::GuidGen;

    #[test]
    fn prop_key_iri_round_trip() {
        for k in PropKey::ALL {
            assert_eq!(PropKey::from_iri(&k.iri()), Some(k));
        }
        assert_eq!(PropKey::from_iri("urn:x"), None);
    }

    #[test]
    fn node_builder_and_accessors() {
        let gen = GuidGen::new(1);
        let n = ProvNode::new(gen.activity("H5Dwrite"), ActivityClass::Write, "H5Dwrite")
            .with_prop(PropKey::ElapsedNs, 1234u64)
            .with_prop(PropKey::Bytes, 8192u64);
        assert_eq!(n.prop(PropKey::ElapsedNs), Some(&PropValue::Int(1234)));
        assert_eq!(n.prop(PropKey::Accuracy), None);
    }

    #[test]
    fn record_triple_count() {
        let gen = GuidGen::new(1);
        let ds = GuidGen::data_object("Dataset", "/f.h5", "/x");
        let act = gen.activity("H5Dwrite");
        let rec = ProvRecord::new(
            ProvNode::new(ds, EntityClass::Dataset, "/x")
                .with_prop(PropKey::Dims, "[1024]"),
        )
        .with_relation(Relation::WasWrittenBy, act);
        assert_eq!(rec.triple_count(), 4);
    }

    #[test]
    fn prop_value_conversions() {
        assert_eq!(PropValue::from(1.5).as_f64(), Some(1.5));
        assert_eq!(PropValue::from(3i64).as_f64(), Some(3.0));
        assert_eq!(PropValue::from("x").as_f64(), None);
        assert_eq!(PropValue::from(true), PropValue::Bool(true));
    }
}
