//! The *Relation* super-class (paper Table 2, §4.1.5).

use provio_rdf::ns;

/// Relations between PROV-IO nodes.
///
/// The first four are inherited from W3C PROV; the `provio:` relations are
/// PROV-IO's additions that connect `<<I/O API>>` activities with
/// `<<Data Object>>` entities precisely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Relation {
    // -- inherited W3C PROV relations --
    /// entity ← entity.
    WasDerivedFrom,
    /// entity ← agent.
    WasAttributedTo,
    /// activity ← agent.
    WasAssociatedWith,
    /// agent ← agent (thread → program → user delegation).
    ActedOnBehalfOf,
    /// member-of (used to tie I/O API instances to the Activity class).
    WasMemberOf,

    // -- PROV-IO relations between Data Objects and I/O APIs --
    /// data object ← Create API.
    WasCreatedBy,
    /// data object ← Open API.
    WasOpenedBy,
    /// data object ← Read API.
    WasReadBy,
    /// data object ← Write API.
    WasWrittenBy,
    /// data object ← Fsync API.
    WasFlushedBy,
    /// data object ← Rename API.
    WasModifiedBy,
}

impl Relation {
    pub const ALL: [Relation; 11] = [
        Relation::WasDerivedFrom,
        Relation::WasAttributedTo,
        Relation::WasAssociatedWith,
        Relation::ActedOnBehalfOf,
        Relation::WasMemberOf,
        Relation::WasCreatedBy,
        Relation::WasOpenedBy,
        Relation::WasReadBy,
        Relation::WasWrittenBy,
        Relation::WasFlushedBy,
        Relation::WasModifiedBy,
    ];

    /// Is this relation inherited from the W3C PROV vocabulary (vs. a
    /// PROV-IO addition)?
    pub fn is_w3c(self) -> bool {
        matches!(
            self,
            Relation::WasDerivedFrom
                | Relation::WasAttributedTo
                | Relation::WasAssociatedWith
                | Relation::ActedOnBehalfOf
                | Relation::WasMemberOf
        )
    }

    pub fn local_name(self) -> &'static str {
        match self {
            Relation::WasDerivedFrom => "wasDerivedFrom",
            Relation::WasAttributedTo => "wasAttributedTo",
            Relation::WasAssociatedWith => "wasAssociatedWith",
            Relation::ActedOnBehalfOf => "actedOnBehalfOf",
            Relation::WasMemberOf => "wasMemberOf",
            Relation::WasCreatedBy => "wasCreatedBy",
            Relation::WasOpenedBy => "wasOpenedBy",
            Relation::WasReadBy => "wasReadBy",
            Relation::WasWrittenBy => "wasWrittenBy",
            Relation::WasFlushedBy => "wasFlushedBy",
            Relation::WasModifiedBy => "wasModifiedBy",
        }
    }

    /// The predicate IRI (W3C relations in `prov:`, additions in `provio:`).
    pub fn iri(self) -> String {
        if self.is_w3c() {
            format!("{}{}", ns::PROV, self.local_name())
        } else {
            format!("{}{}", ns::PROVIO, self.local_name())
        }
    }

    /// Parse a predicate IRI back to a relation.
    pub fn from_iri(iri: &str) -> Option<Relation> {
        let local = iri
            .strip_prefix(ns::PROV)
            .or_else(|| iri.strip_prefix(ns::PROVIO))?;
        Relation::ALL.into_iter().find(|r| r.local_name() == local)
    }

    /// The relation recording that a data object was touched by an I/O API
    /// of the given activity class (paper Table 2, bottom section).
    pub fn for_activity(class: crate::class::ActivityClass) -> Relation {
        use crate::class::ActivityClass as A;
        match class {
            A::Create => Relation::WasCreatedBy,
            A::Open => Relation::WasOpenedBy,
            A::Read => Relation::WasReadBy,
            A::Write => Relation::WasWrittenBy,
            A::Fsync => Relation::WasFlushedBy,
            A::Rename => Relation::WasModifiedBy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ActivityClass;

    #[test]
    fn w3c_vs_provio_namespacing() {
        assert_eq!(
            Relation::WasAttributedTo.iri(),
            "http://www.w3.org/ns/prov#wasAttributedTo"
        );
        assert_eq!(
            Relation::WasReadBy.iri(),
            "https://github.com/hpc-io/prov-io#wasReadBy"
        );
    }

    #[test]
    fn iri_round_trip() {
        for r in Relation::ALL {
            assert_eq!(Relation::from_iri(&r.iri()), Some(r));
        }
        assert_eq!(Relation::from_iri("urn:nope"), None);
    }

    #[test]
    fn activity_to_relation_mapping_matches_table2() {
        assert_eq!(
            Relation::for_activity(ActivityClass::Create),
            Relation::WasCreatedBy
        );
        assert_eq!(
            Relation::for_activity(ActivityClass::Rename),
            Relation::WasModifiedBy
        );
        assert_eq!(
            Relation::for_activity(ActivityClass::Fsync),
            Relation::WasFlushedBy
        );
    }

    #[test]
    fn exactly_six_provio_relations() {
        let added: Vec<Relation> = Relation::ALL
            .into_iter()
            .filter(|r| !r.is_w3c())
            .collect();
        assert_eq!(added.len(), 6);
    }
}
