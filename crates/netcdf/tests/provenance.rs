//! The integration claim: a NetCDF workflow is tracked by PROV-IO with
//! zero additional integration work, because NetCDF lowers onto the HDF5
//! VOL where the PROV-IO connector already sits.

use provio::{merge_directory, ProvIoApi, ProvIoConfig, ProvIoVol, ProvQueryEngine, TrackerRegistry};
use provio_hdf5::{Data, NativeVol, VolConnector, H5};
use provio_hpcfs::{Dispatcher, FileSystem, FsSession, LustreConfig};
use provio_model::ontology::nodes_of_class;
use provio_model::{ActivityClass, EntityClass};
use provio_netcdf::{NcFile, NcType};
use provio_simrt::VirtualClock;
use std::sync::Arc;

#[test]
fn netcdf_workflow_tracked_through_the_vol() {
    let fs = FileSystem::new(LustreConfig::default());
    let native: Arc<dyn VolConnector> = Arc::new(NativeVol::new(Arc::clone(&fs)));
    let registry = TrackerRegistry::new();
    let vol = ProvIoVol::new(native, Arc::clone(&registry));
    let session = Arc::new(FsSession::new(
        Arc::clone(&fs),
        31,
        "carol",
        "nc_climate",
        VirtualClock::new(),
        Dispatcher::new(),
    ));
    ProvIoApi::attach(
        ProvIoConfig::default().shared(),
        Arc::clone(&fs),
        &session,
        &registry,
    );
    let h5 = H5::new(session, Arc::clone(&vol) as Arc<dyn VolConnector>);

    // Plain NetCDF code — knows nothing about provenance.
    let mut nc = NcFile::create(&h5, "/climate.nc").unwrap();
    nc.def_dim("time", None).unwrap();
    nc.def_dim("site", Some(3)).unwrap();
    nc.def_var("temp", NcType::Double, &["time", "site"]).unwrap();
    nc.put_var_att("temp", "units", "K").unwrap();
    for t in 0..4 {
        nc.put_record("temp", &Data::from_f64s(&[t as f64; 3])).unwrap();
    }
    let back = nc.get_var("temp").unwrap();
    assert_eq!(back.len(), 4 * 3 * 8);
    nc.close().unwrap();

    // The PROV-IO side captured it all.
    let summaries = registry.finish_all();
    assert!(summaries[0].1.events >= 8, "events: {}", summaries[0].1.events);

    let (graph, _) = merge_directory(&fs, "/provio");
    let engine = ProvQueryEngine::new(graph);
    // The .nc file, the variable dataset, and the NetCDF-metadata
    // attributes are all first-class provenance entities.
    assert!(engine.entity_by_label("/climate.nc").is_some());
    assert!(engine.entity_by_label("/climate.nc:/temp").is_some());
    assert!(engine.entity_by_label("/climate.nc:/temp#units").is_some());
    // Record appends show up as Write activities attributed to the program.
    let writes = nodes_of_class(engine.graph(), ActivityClass::Write.into());
    assert!(writes.len() >= 4, "one write per record: {}", writes.len());
    let datasets = nodes_of_class(engine.graph(), EntityClass::Dataset.into());
    assert_eq!(datasets.len(), 1);
    let temp = engine.entity_by_label("/climate.nc:/temp").unwrap();
    let progs = engine.programs_of(&temp);
    assert_eq!(engine.label_of(&progs[0]).unwrap(), "nc_climate");
}
