//! `provio-netcdf` — a NetCDF-4-style API over the simulated HDF5 VOL.
//!
//! The paper leaves "integration with other I/O libraries" (ADIOS, NetCDF)
//! as future work (§1.5) and notes that the model's I/O API classes "are
//! applicable to other I/O libraries too (e.g., NetCDF)" (§4.1.2). This
//! crate realizes that claim the same way real netCDF-4 does: the NetCDF
//! data model (dimensions, variables, attributes) is stored *in* HDF5, so
//! every NetCDF call lowers onto VOL operations — and a workflow using this
//! API is tracked by the PROV-IO connector with **zero additional
//! integration work**.
//!
//! Supported (the classic-model subset scientific code actually uses):
//! dimensions (fixed + one unlimited), typed variables over dimensions,
//! global and per-variable attributes, whole-variable and record-wise
//! put/get.

use provio_hdf5::{Data, Dataspace, Datatype, H5Error, H5Result, Handle, Hyperslab, H5};

/// A NetCDF datatype (mapped onto HDF5 datatypes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NcType {
    Int,
    Int64,
    Float,
    Double,
}

impl NcType {
    fn to_h5(self) -> Datatype {
        match self {
            NcType::Int => Datatype::Int32,
            NcType::Int64 => Datatype::Int64,
            NcType::Float => Datatype::Float32,
            NcType::Double => Datatype::Float64,
        }
    }

    pub fn size(self) -> u64 {
        self.to_h5().size()
    }
}

/// A dimension: a name and a length (`None` = unlimited/record dimension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dim {
    pub name: String,
    pub len: Option<u64>,
}

/// A defined variable.
#[derive(Debug, Clone)]
pub struct Var {
    pub name: String,
    pub nctype: NcType,
    pub dims: Vec<String>,
    handle: Handle,
}

/// An open NetCDF file (backed by an HDF5 file through the VOL stack).
pub struct NcFile<'h> {
    h5: &'h H5,
    file: Handle,
    dims: Vec<Dim>,
    vars: Vec<Var>,
    /// Current length of the unlimited dimension (number of records).
    num_records: u64,
}

impl<'h> NcFile<'h> {
    /// nc_create: make a new file.
    pub fn create(h5: &'h H5, path: &str) -> H5Result<Self> {
        let file = h5.create_file(path)?;
        // Mark the file as NetCDF-flavored, like netCDF-4's `_NCProperties`.
        let a = h5.create_attr(
            file,
            "_NCProperties",
            Datatype::VarString,
            b"version=2,provio-netcdf=0.1",
        )?;
        h5.close_attr(a)?;
        Ok(NcFile {
            h5,
            file,
            dims: Vec::new(),
            vars: Vec::new(),
            num_records: 0,
        })
    }

    /// nc_def_dim.
    pub fn def_dim(&mut self, name: &str, len: Option<u64>) -> H5Result<()> {
        if self.dims.iter().any(|d| d.name == name) {
            return Err(H5Error::AlreadyExists(name.to_string()));
        }
        if len.is_none() && self.dims.iter().any(|d| d.len.is_none()) {
            // Classic model: at most one unlimited dimension.
            return Err(H5Error::NotExtendable);
        }
        // Record the dimension as file metadata (netCDF-4 uses dimension
        // scales; an attribute is observationally equivalent here).
        let a = self.h5.create_attr(
            self.file,
            &format!("_dim_{name}"),
            Datatype::VarString,
            len.map(|l| l.to_string())
                .unwrap_or_else(|| "unlimited".to_string())
                .as_bytes(),
        )?;
        self.h5.close_attr(a)?;
        self.dims.push(Dim {
            name: name.to_string(),
            len,
        });
        Ok(())
    }

    fn dim(&self, name: &str) -> H5Result<&Dim> {
        self.dims
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| H5Error::NotFound(format!("dimension {name}")))
    }

    /// nc_def_var: define a variable over dimensions (the unlimited
    /// dimension, if used, must come first — the classic-model rule).
    pub fn def_var(&mut self, name: &str, nctype: NcType, dims: &[&str]) -> H5Result<()> {
        if self.vars.iter().any(|v| v.name == name) {
            return Err(H5Error::AlreadyExists(name.to_string()));
        }
        let mut shape = Vec::with_capacity(dims.len());
        let mut maxdims = Vec::with_capacity(dims.len());
        for (i, dname) in dims.iter().enumerate() {
            let d = self.dim(dname)?;
            match d.len {
                Some(l) => {
                    shape.push(l);
                    maxdims.push(Some(l));
                }
                None => {
                    if i != 0 {
                        return Err(H5Error::NotExtendable);
                    }
                    shape.push(0);
                    maxdims.push(None);
                }
            }
        }
        let space = if dims.is_empty() {
            Dataspace::scalar()
        } else {
            Dataspace::with_max(&shape, &maxdims)?
        };
        let handle = self
            .h5
            .create_dataset(self.file, name, nctype.to_h5(), space)?;
        self.vars.push(Var {
            name: name.to_string(),
            nctype,
            dims: dims.iter().map(|s| s.to_string()).collect(),
            handle,
        });
        Ok(())
    }

    fn var(&self, name: &str) -> H5Result<&Var> {
        self.vars
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| H5Error::NotFound(format!("variable {name}")))
    }

    /// Shape of a variable right now (unlimited dim reflects records).
    pub fn var_shape(&self, name: &str) -> H5Result<Vec<u64>> {
        let v = self.var(name)?;
        Ok(self
            .h5
            .object_info(v.handle)?
            .dims
            .expect("variables are datasets"))
    }

    /// nc_put_att (global).
    pub fn put_global_att(&self, name: &str, value: &str) -> H5Result<()> {
        let a = self
            .h5
            .create_attr(self.file, name, Datatype::VarString, value.as_bytes())?;
        self.h5.close_attr(a)
    }

    /// nc_put_att on a variable.
    pub fn put_var_att(&self, var: &str, name: &str, value: &str) -> H5Result<()> {
        let v = self.var(var)?;
        let a = self
            .h5
            .create_attr(v.handle, name, Datatype::VarString, value.as_bytes())?;
        self.h5.close_attr(a)
    }

    /// nc_get_att on a variable.
    pub fn get_var_att(&self, var: &str, name: &str) -> H5Result<String> {
        let v = self.var(var)?;
        let bytes = self.h5.attr_value(v.handle, name)?;
        String::from_utf8(bytes).map_err(|_| H5Error::BadName(name.to_string()))
    }

    /// nc_put_var: write a whole (fixed-shape) variable.
    pub fn put_var(&self, name: &str, data: &Data) -> H5Result<()> {
        let v = self.var(name)?;
        let shape = self.var_shape(name)?;
        let space = Dataspace::fixed(&shape);
        self.h5.write(v.handle, &Hyperslab::all(&space), data)
    }

    /// nc_get_var: read a whole variable.
    pub fn get_var(&self, name: &str) -> H5Result<Data> {
        let v = self.var(name)?;
        let shape = self.var_shape(name)?;
        let space = Dataspace::fixed(&shape);
        self.h5.read(v.handle, &Hyperslab::all(&space))
    }

    /// Append one record along the unlimited dimension of `name` (grows
    /// every record variable in lock-step, like nc_put_vara at the record
    /// boundary).
    pub fn put_record(&mut self, name: &str, data: &Data) -> H5Result<()> {
        let (handle, mut shape, record_elems) = {
            let v = self.var(name)?;
            let d0 = v
                .dims
                .first()
                .and_then(|d| self.dims.iter().find(|x| &x.name == d))
                .ok_or(H5Error::NotExtendable)?;
            if d0.len.is_some() {
                return Err(H5Error::NotExtendable);
            }
            let shape = self.var_shape(name)?;
            let record_elems: u64 = shape[1..].iter().product::<u64>().max(1);
            (v.handle, shape, record_elems)
        };
        let record = shape[0];
        shape[0] = record + 1;
        self.h5.extend_dataset(handle, &shape)?;
        let mut start = vec![0u64; shape.len()];
        start[0] = record;
        let mut count = shape.clone();
        count[0] = 1;
        self.h5
            .write(handle, &Hyperslab::new(&start, &count), data)?;
        let _ = record_elems;
        self.num_records = self.num_records.max(record + 1);
        Ok(())
    }

    /// Records written to the unlimited dimension so far.
    pub fn num_records(&self) -> u64 {
        self.num_records
    }

    /// nc_close.
    pub fn close(self) -> H5Result<()> {
        for v in &self.vars {
            self.h5.close_dataset(v.handle)?;
        }
        self.h5.flush(self.file)?;
        self.h5.close_file(self.file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_hdf5::NativeVol;
    use provio_hpcfs::{Dispatcher, FileSystem, FsSession, LustreConfig};
    use std::sync::Arc;

    fn h5() -> H5 {
        let fs = FileSystem::new(LustreConfig::default());
        let vol = Arc::new(NativeVol::new(Arc::clone(&fs)));
        let s = Arc::new(FsSession::new(
            fs,
            1,
            "nc",
            "ncgen",
            provio_simrt::VirtualClock::new(),
            Dispatcher::new(),
        ));
        H5::new(s, vol)
    }

    #[test]
    fn classic_model_round_trip() {
        let h5 = h5();
        let mut nc = NcFile::create(&h5, "/climate.nc").unwrap();
        nc.def_dim("lat", Some(4)).unwrap();
        nc.def_dim("lon", Some(3)).unwrap();
        nc.def_var("temperature", NcType::Double, &["lat", "lon"]).unwrap();
        nc.put_global_att("institution", "LBNL").unwrap();
        nc.put_var_att("temperature", "units", "K").unwrap();

        let values: Vec<f64> = (0..12).map(|i| 273.0 + i as f64).collect();
        nc.put_var("temperature", &Data::from_f64s(&values)).unwrap();
        let got = nc.get_var("temperature").unwrap();
        assert_eq!(got.to_f64s().unwrap(), values);
        assert_eq!(nc.get_var_att("temperature", "units").unwrap(), "K");
        nc.close().unwrap();
    }

    #[test]
    fn record_dimension_appends() {
        let h5 = h5();
        let mut nc = NcFile::create(&h5, "/ts.nc").unwrap();
        nc.def_dim("time", None).unwrap();
        nc.def_dim("x", Some(2)).unwrap();
        nc.def_var("v", NcType::Double, &["time", "x"]).unwrap();
        for t in 0..5 {
            nc.put_record("v", &Data::from_f64s(&[t as f64, -(t as f64)]))
                .unwrap();
        }
        assert_eq!(nc.num_records(), 5);
        assert_eq!(nc.var_shape("v").unwrap(), vec![5, 2]);
        let all = nc.get_var("v").unwrap().to_f64s().unwrap();
        assert_eq!(all.len(), 10);
        assert_eq!(all[8], 4.0);
        assert_eq!(all[9], -4.0);
    }

    #[test]
    fn classic_model_rules_enforced() {
        let h5 = h5();
        let mut nc = NcFile::create(&h5, "/rules.nc").unwrap();
        nc.def_dim("t", None).unwrap();
        // Only one unlimited dimension.
        assert_eq!(nc.def_dim("t2", None), Err(H5Error::NotExtendable));
        nc.def_dim("x", Some(4)).unwrap();
        // Unlimited must be first.
        assert_eq!(
            nc.def_var("bad", NcType::Int, &["x", "t"]),
            Err(H5Error::NotExtendable)
        );
        // Unknown dimension.
        assert!(matches!(
            nc.def_var("worse", NcType::Int, &["zz"]),
            Err(H5Error::NotFound(_))
        ));
        // Duplicates.
        assert!(nc.def_dim("x", Some(4)).is_err());
        nc.def_var("ok", NcType::Int, &["t", "x"]).unwrap();
        assert!(nc.def_var("ok", NcType::Int, &["x"]).is_err());
    }

    #[test]
    fn record_append_on_fixed_var_rejected() {
        let h5 = h5();
        let mut nc = NcFile::create(&h5, "/fixed.nc").unwrap();
        nc.def_dim("x", Some(2)).unwrap();
        nc.def_var("v", NcType::Float, &["x"]).unwrap();
        assert_eq!(
            nc.put_record("v", &Data::synthetic(8)),
            Err(H5Error::NotExtendable)
        );
    }
}
