//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * asynchronous vs synchronous store serialization (paper §4.2 argues
//!   for async);
//! * per-process sub-graphs vs one shared locked graph (paper §5 argues
//!   per-process avoids inter-process synchronization);
//! * selector granularity (cost of tracking more sub-classes);
//! * Turtle vs N-Triples serialization;
//! * property-path evaluation: full-relation vs from-source.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use provio::{IoEvent, ObjectDesc, ProvIoConfig, ProvTracker};
use provio_hpcfs::{FileSystem, LustreConfig};
use provio_model::{ActivityClass, ClassSelector, EntityClass};
use provio_rdf::{ntriples, turtle, Graph, Iri, Namespaces, Subject, Term, Triple};
use provio_simrt::VirtualClock;
use provio_sparql::path::{eval_path, eval_path_from};
use provio_sparql::PathExpr;
use std::sync::Arc;

fn event(i: u64) -> IoEvent {
    IoEvent {
        activity: ActivityClass::Write,
        api_name: "H5Dwrite".to_string(),
        object: Some(ObjectDesc::hdf5(
            EntityClass::Dataset,
            "/f.h5",
            format!("/d{}", i % 16),
        )),
        bytes: 4096,
        duration_ns: 500,
        timestamp_ns: i,
        ok: true,
    }
}

fn bench_store_async_vs_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_policy");
    group.sample_size(10);
    for (name, async_store) in [("async", true), ("sync", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let fs = FileSystem::new(LustreConfig::default());
                let mut cfg = ProvIoConfig::default()
                    .with_record_latency_ns(0)
                    .with_policy(provio::SerializationPolicy::EveryRecords(256))
                    .with_selector(ClassSelector::all());
                cfg.async_store = async_store;
                let t = ProvTracker::new(cfg.shared(), fs, 0, "b", "b", VirtualClock::new());
                for i in 0..2_000u64 {
                    t.track_io(&event(i));
                }
                black_box(t.finish());
            })
        });
    }
    group.finish();
}

fn bench_subgraph_strategy(c: &mut Criterion) {
    // Per-process sub-graphs (4 trackers) vs one shared tracker hammered
    // by 4 threads — the paper's "no extra inter-process communication"
    // argument.
    let mut group = c.benchmark_group("subgraph_strategy");
    group.sample_size(10);
    group.bench_function("per_process", |b| {
        b.iter(|| {
            let fs = FileSystem::new(LustreConfig::default());
            std::thread::scope(|s| {
                for pid in 0..4u32 {
                    let fs = Arc::clone(&fs);
                    s.spawn(move || {
                        let t = ProvTracker::new(
                            ProvIoConfig::default().with_record_latency_ns(0).shared(),
                            fs,
                            pid,
                            "b",
                            "b",
                            VirtualClock::new(),
                        );
                        for i in 0..2_000u64 {
                            t.track_io(&event(i));
                        }
                        t.finish();
                    });
                }
            });
        })
    });
    group.bench_function("shared_locked", |b| {
        b.iter(|| {
            let fs = FileSystem::new(LustreConfig::default());
            let t = ProvTracker::new(
                ProvIoConfig::default().with_record_latency_ns(0).shared(),
                fs,
                0,
                "b",
                "b",
                VirtualClock::new(),
            );
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let t = Arc::clone(&t);
                    s.spawn(move || {
                        for i in 0..2_000u64 {
                            t.track_io(&event(i));
                        }
                    });
                }
            });
            black_box(t.finish());
        })
    });
    group.finish();
}

fn bench_selector_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("selector_granularity");
    for (name, sel) in [
        ("file", ClassSelector::dassa_file_lineage()),
        ("dataset", ClassSelector::dassa_dataset_lineage()),
        ("attribute", ClassSelector::dassa_attribute_lineage()),
        ("all", ClassSelector::all()),
    ] {
        let fs = FileSystem::new(LustreConfig::default());
        let t = ProvTracker::new(
            ProvIoConfig::default()
                .with_selector(sel)
                .with_record_latency_ns(0)
                .shared(),
            fs,
            0,
            "b",
            "b",
            VirtualClock::new(),
        );
        let mut i = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                i += 1;
                t.track_io(black_box(&event(i)));
            })
        });
    }
    group.finish();
}

fn bench_serialization_formats(c: &mut Criterion) {
    let mut g = Graph::new();
    for i in 0..20_000 {
        g.insert(&Triple::new(
            Subject::iri(format!("urn:provio:act/a{i}")),
            Iri::new("https://github.com/hpc-io/prov-io#elapsed"),
            Term::iri(format!("urn:provio:obj/o{}", i % 128)),
        ));
    }
    let nss = Namespaces::standard();
    let mut group = c.benchmark_group("rdf_format");
    group.bench_function("turtle", |b| b.iter(|| black_box(turtle::serialize(&g, &nss))));
    group.bench_function("ntriples", |b| b.iter(|| black_box(ntriples::serialize(&g))));
    group.finish();
}

fn bench_path_strategies(c: &mut Criterion) {
    // A derivation chain of 512 nodes with fan-in 2.
    let mut g = Graph::new();
    let p = Iri::new("http://www.w3.org/ns/prov#wasDerivedFrom");
    for i in 1..512u32 {
        g.insert(&Triple::new(
            Subject::iri(format!("urn:n{i}")),
            p.clone(),
            Term::iri(format!("urn:n{}", i / 2)),
        ));
    }
    let path = PathExpr::OneOrMore(Box::new(PathExpr::Iri(p)));
    let start = Term::iri("urn:n511");
    let mut group = c.benchmark_group("path_eval");
    group.bench_function("full_relation", |b| {
        b.iter(|| black_box(eval_path(&g, &path)).len())
    });
    group.bench_function("from_source", |b| {
        b.iter(|| black_box(eval_path_from(&g, &path, &start)).len())
    });
    group.finish();
}

fn fast_criterion() -> Criterion {
    // Keep `cargo bench --workspace` minutes-scale: shorter windows, same
    // statistical machinery.
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group!{
    name = benches;
    config = fast_criterion();
    targets = bench_store_async_vs_sync, bench_subgraph_strategy, bench_selector_granularity, bench_serialization_formats, bench_path_strategies
}
criterion_main!(benches);
