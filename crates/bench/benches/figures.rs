//! Workflow-level benches: real (host) execution time of small instances
//! of the three evaluation workflows, baseline vs tracked. These measure
//! the *harness's* wall-clock cost; the paper's completion times are
//! virtual and come from the `experiments` binary.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use provio::ProvIoConfig;
use provio_model::ClassSelector;
use provio_simrt::SimDuration;
use provio_workflows::{dassa, h5bench, topreco, Cluster, ProvMode};

fn topreco_params(mode: ProvMode) -> topreco::TopRecoParams {
    topreco::TopRecoParams {
        epochs: 5,
        n_configs: 10,
        n_events: 10_000,
        epoch_compute: SimDuration::from_secs(10),
        seed: 3,
        mode,
        run_id: 0,
    }
}

fn dassa_params(mode: ProvMode) -> dassa::DassaParams {
    dassa::DassaParams {
        n_files: 8,
        nodes: 4,
        file_mib: 32,
        channels: 16,
        datasets: 2,
        seed: 1,
        mode,
    }
}

fn h5bench_params(mode: ProvMode) -> h5bench::H5benchParams {
    h5bench::H5benchParams {
        ranks: 8,
        pattern: h5bench::IoPattern::WriteRead,
        steps: 2,
        particles_per_rank: 1 << 12,
        blocks: 2,
        compute_per_step: SimDuration::from_secs(25),
        seed: 5,
        mode,
    }
}

fn bench_workflows(c: &mut Criterion) {
    let mut group = c.benchmark_group("workflows");
    group.sample_size(10);

    group.bench_function("topreco_baseline", |b| {
        b.iter(|| black_box(topreco::run(&Cluster::new(), &topreco_params(ProvMode::Off))))
    });
    group.bench_function("topreco_provio", |b| {
        b.iter(|| {
            black_box(topreco::run(
                &Cluster::new(),
                &topreco_params(ProvMode::provio(
                    ProvIoConfig::default().with_selector(ClassSelector::topreco()),
                )),
            ))
        })
    });

    group.bench_function("dassa_baseline", |b| {
        b.iter(|| black_box(dassa::run(&Cluster::new(), &dassa_params(ProvMode::Off))))
    });
    group.bench_function("dassa_provio_attr", |b| {
        b.iter(|| {
            black_box(dassa::run(
                &Cluster::new(),
                &dassa_params(ProvMode::provio(
                    ProvIoConfig::default()
                        .with_selector(ClassSelector::dassa_attribute_lineage()),
                )),
            ))
        })
    });

    group.bench_function("h5bench_baseline", |b| {
        b.iter(|| black_box(h5bench::run(&Cluster::new(), &h5bench_params(ProvMode::Off))))
    });
    group.bench_function("h5bench_provio_s2", |b| {
        b.iter(|| {
            black_box(h5bench::run(
                &Cluster::new(),
                &h5bench_params(ProvMode::provio(
                    ProvIoConfig::default().with_selector(ClassSelector::h5bench_scenario2()),
                )),
            ))
        })
    });

    group.finish();
}

fn fast_criterion() -> Criterion {
    // Keep `cargo bench --workspace` minutes-scale: shorter windows, same
    // statistical machinery.
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group!{
    name = benches;
    config = fast_criterion();
    targets = bench_workflows
}
criterion_main!(benches);
