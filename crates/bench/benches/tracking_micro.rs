//! Microbenchmarks for the tracking hot path: the real cost of one tracked
//! I/O event (the quantity charged to workflow clocks), with and without
//! the modeled Redland-latency constant, plus the filtered (disabled) path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use provio::{IoEvent, ObjectDesc, ProvIoConfig, ProvTracker};
use provio_hpcfs::{FileSystem, LustreConfig};
use provio_model::{ActivityClass, ClassSelector, EntityClass};
use provio_simrt::VirtualClock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn event(i: u64) -> IoEvent {
    IoEvent {
        activity: ActivityClass::Write,
        api_name: "H5Dwrite".to_string(),
        object: Some(ObjectDesc::hdf5(
            EntityClass::Dataset,
            "/f.h5",
            format!("/Timestep_0/d{}", i % 32),
        )),
        bytes: 8192,
        duration_ns: 1000,
        timestamp_ns: i,
        ok: true,
    }
}

fn tracker(selector: ClassSelector, latency: u64) -> Arc<ProvTracker> {
    let fs = FileSystem::new(LustreConfig::default());
    ProvTracker::new(
        ProvIoConfig::default()
            .with_selector(selector)
            .with_record_latency_ns(latency)
            .shared(),
        fs,
        0,
        "bench",
        "bench",
        VirtualClock::new(),
    )
}

fn bench_track_io(c: &mut Criterion) {
    let t = tracker(ClassSelector::all(), 0);
    let i = AtomicU64::new(0);
    c.bench_function("track_io_native_cost", |b| {
        b.iter(|| {
            t.track_io(black_box(&event(i.fetch_add(1, Ordering::Relaxed))));
        });
    });

    // Disabled classes: the cost of an event the selector filters out.
    let t_off = tracker(ClassSelector::topreco(), 0);
    c.bench_function("track_io_filtered", |b| {
        b.iter(|| {
            t_off.track_io(black_box(&event(1)));
        });
    });
}

fn bench_explicit_apis(c: &mut Criterion) {
    let t = tracker(ClassSelector::topreco(), 0);
    let i = AtomicU64::new(0);
    c.bench_function("track_metric", |b| {
        b.iter(|| {
            t.track_metric("accuracy", black_box(0.5 + (i.fetch_add(1, Ordering::Relaxed) % 100) as f64 / 1000.0));
        });
    });
}

fn bench_finish(c: &mut Criterion) {
    c.bench_function("tracker_finish_10k_events", |b| {
        b.iter_with_setup(
            || {
                let t = tracker(ClassSelector::all(), 0);
                for i in 0..10_000 {
                    t.track_io(&event(i));
                }
                t
            },
            |t| black_box(t.finish()),
        );
    });
}

fn fast_criterion() -> Criterion {
    // Keep `cargo bench --workspace` minutes-scale: shorter windows, same
    // statistical machinery.
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group!{
    name = benches;
    config = fast_criterion();
    targets = bench_track_io, bench_explicit_apis, bench_finish
}
criterion_main!(benches);
