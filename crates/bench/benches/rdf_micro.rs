//! Microbenchmarks for the RDF substrate (the Redland librdf substitute):
//! insert throughput, serialization, parsing, and SPARQL evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use provio_rdf::{turtle, Graph, Iri, Literal, Namespaces, Subject, Term, Triple};
use provio_sparql::Query;

fn synthetic_graph(n_subjects: usize) -> Graph {
    let mut g = Graph::new();
    for i in 0..n_subjects {
        let s = Subject::iri(format!("urn:provio:act/H5Dwrite-p0-{i}"));
        g.insert(&Triple::new(
            s.clone(),
            Iri::new("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
            Term::iri("https://github.com/hpc-io/prov-io#Write"),
        ));
        g.insert(&Triple::new(
            s.clone(),
            Iri::new("https://github.com/hpc-io/prov-io#elapsed"),
            Literal::integer(i as i64),
        ));
        g.insert(&Triple::new(
            s,
            Iri::new("https://github.com/hpc-io/prov-io#wasWrittenBy"),
            Term::iri(format!("urn:provio:obj/dataset/d{}", i % 64)),
        ));
    }
    g
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_insert");
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(synthetic_graph(n)));
        });
    }
    group.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let g = synthetic_graph(10_000);
    let nss = Namespaces::standard();
    c.bench_function("turtle_serialize_30k_triples", |b| {
        b.iter(|| black_box(turtle::serialize(&g, &nss)));
    });
    let ttl = turtle::serialize(&g, &nss);
    c.bench_function("turtle_parse_30k_triples", |b| {
        b.iter(|| black_box(turtle::parse(&ttl).unwrap()));
    });
}

fn bench_query(c: &mut Criterion) {
    let g = synthetic_graph(10_000);
    let by_type = Query::parse(
        "SELECT ?a WHERE { ?a a <https://github.com/hpc-io/prov-io#Write> . }",
    )
    .unwrap();
    c.bench_function("sparql_type_scan", |b| {
        b.iter(|| black_box(by_type.execute(&g)).len());
    });
    let join = Query::parse(
        "SELECT ?a ?d WHERE { ?a <https://github.com/hpc-io/prov-io#wasWrittenBy> ?o . \
         ?a <https://github.com/hpc-io/prov-io#elapsed> ?d . FILTER(?d < 100) }",
    )
    .unwrap();
    c.bench_function("sparql_join_filter", |b| {
        b.iter(|| black_box(join.execute(&g)).len());
    });
}

fn fast_criterion() -> Criterion {
    // Keep `cargo bench --workspace` minutes-scale: shorter windows, same
    // statistical machinery.
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(20)
}

criterion_group!{
    name = benches;
    config = fast_criterion();
    targets = bench_insert, bench_serialize, bench_query
}
criterion_main!(benches);
