//! Provenance-store benchmarks: push / flush / finish / merge at 10k, 100k
//! and (opt-in) 1M triples, plus the headline before/after comparison of
//! the flush protocol — legacy full-rewrite vs snapshot + delta segments vs
//! checksummed framed segments vs write-ahead-journaled delta (group-commit
//! sizes 1/64/1024) on a flush-every-1k workload — written to
//! `BENCH_store.json` at the repo root.
//!
//! Scale selection:
//! * `PROVIO_BENCH_QUICK=1` — 10k only, no JSON output (the CI smoke step);
//! * default                — 10k and 100k, JSON written;
//! * `PROVIO_BENCH_FULL=1`  — adds 1M (delta-only where the legacy path
//!   would take minutes per sample).

use criterion::{black_box, criterion_group, Criterion};
use provio::{
    merge_directory, merge_directory_sequential, merge_directory_with_threads, Collector,
    OverloadPolicy, ProvenanceStore, RdfFormat, RetryPolicy,
};
use provio_hpcfs::{FileSystem, LustreConfig};
use provio_rdf::{Iri, Subject, Term, Triple};
use provio_simrt::{NetPlan, VirtualClock};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The acceptance workload flushes after every 1k pushed triples.
const FLUSH_INTERVAL: usize = 1_000;
/// Group-commit sizes benchmarked for the write-ahead journal.
const WAL_GROUPS: [u32; 3] = [1, 64, 1024];
/// Ranks contributing per-process sub-graphs to the merge benchmark.
const MERGE_RANKS: usize = 8;
/// Commit-plane parity group width benchmarked. Parity's exclusive cost
/// is per-seal (member records + base64 XOR block), so overhead falls as
/// the group widens; 64 matches the workload's ~100 delta commits — one
/// mid-run seal carries the compaction snapshot. The dense config default
/// of 16 trades roughly double the overhead for 4× repair coverage.
const PARITY_GROUP: u32 = 64;

fn quick() -> bool {
    std::env::var_os("PROVIO_BENCH_QUICK").is_some()
}

fn scales() -> Vec<usize> {
    if quick() {
        vec![10_000]
    } else if std::env::var_os("PROVIO_BENCH_FULL").is_some() {
        vec![10_000, 100_000, 1_000_000]
    } else {
        vec![10_000, 100_000]
    }
}

fn triples(range: std::ops::Range<usize>) -> Vec<Triple> {
    range
        .map(|i| {
            Triple::new(
                Subject::iri(format!("urn:provio:act/H5Dwrite-p0-{i}")),
                Iri::new("https://github.com/hpc-io/prov-io#wasWrittenBy"),
                Term::iri(format!("urn:provio:obj/dataset/d{}", i % 64)),
            )
        })
        .collect()
}

/// A sync store; `delta` toggles between the segment protocol (compaction
/// every 64 segments, the default) and the legacy full rewrite;
/// `checksums` toggles the framed checksummed on-disk format.
fn store_opts(fs: &Arc<FileSystem>, path: &str, delta: bool, checksums: bool) -> ProvenanceStore {
    ProvenanceStore::new(Arc::clone(fs), path, RdfFormat::NTriples, false)
        .with_delta(delta, if delta { 64 } else { 0 })
        .with_checksums(checksums)
}

fn store(fs: &Arc<FileSystem>, path: &str, delta: bool) -> ProvenanceStore {
    store_opts(fs, path, delta, false)
}

fn bench_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_push");
    for n in scales() {
        let batch = triples(0..n);
        group.bench_function(format!("{n}"), |b| {
            b.iter(|| {
                let fs = FileSystem::new(LustreConfig::default());
                let st = store(&fs, "/prov/rank0.nt", true);
                st.push(batch.clone(), None);
                black_box(st.triples_pushed())
            });
        });
    }
    group.finish();
}

/// The full flush-every-1k workload, timed end to end (push + flushes +
/// finish). This is the scenario the delta protocol exists for.
fn run_flush_workload(delta: bool, n: usize) -> Duration {
    run_flush_workload_opts(delta, false, n)
}

fn run_flush_workload_opts(delta: bool, checksums: bool, n: usize) -> Duration {
    let fs = FileSystem::new(LustreConfig::default());
    let st = store_opts(&fs, "/prov/rank0.nt", delta, checksums);
    let data = triples(0..n);
    let start = Instant::now();
    for chunk in data.chunks(FLUSH_INTERVAL) {
        st.push(chunk.to_vec(), None);
        st.flush(None);
    }
    st.finish(None);
    start.elapsed()
}

/// The checksummed workload plus the run seal: after `finish`, the
/// directory is signed — every file's Merkle root into a manifest, the
/// manifest HMAC'd and chained into the campaign ledger. This is the
/// full trust tier on top of the rot tier, timed end to end.
fn run_flush_workload_sealed(n: usize) -> Duration {
    let fs = FileSystem::new(LustreConfig::default());
    let st = store_opts(&fs, "/prov/rank0.nt", true, true);
    let data = triples(0..n);
    let start = Instant::now();
    for chunk in data.chunks(FLUSH_INTERVAL) {
        st.push(chunk.to_vec(), None);
        st.flush(None);
    }
    st.finish(None);
    // Seal with the store's commit-time root cache, the same call
    // `finish_all` makes — the walk still defines the file list, the
    // cache just spares the re-read of the run's own commits.
    let roots: provio::verify::RootCache = st
        .committed_roots()
        .into_iter()
        .map(|(p, n, r)| (p, (n, r)))
        .collect();
    provio::verify::seal_run_with_roots(&fs, "/prov", "bench-key", &[], &roots).expect("seal");
    start.elapsed()
}

/// The checksummed workload with XOR parity on: every `PARITY_GROUP`
/// commits, the store XORs the group's frames and seals a `.par` file —
/// the redundancy the scrub/repair tier reconstructs single losses from.
fn run_flush_workload_parity(n: usize) -> Duration {
    let fs = FileSystem::new(LustreConfig::default());
    let st = store_opts(&fs, "/prov/rank0.nt", true, true).with_parity(true, PARITY_GROUP);
    let data = triples(0..n);
    let start = Instant::now();
    for chunk in data.chunks(FLUSH_INTERVAL) {
        st.push(chunk.to_vec(), None);
        st.flush(None);
    }
    st.finish(None);
    start.elapsed()
}

/// The same workload with the write-ahead journal on: every push is
/// group-committed to the journal, every flush forces the tail out and
/// recycles the generation.
fn run_flush_workload_wal(n: usize, group: u32) -> Duration {
    let fs = FileSystem::new(LustreConfig::default());
    let st = store_opts(&fs, "/prov/rank0.nt", true, false).with_wal(true, group);
    let data = triples(0..n);
    let start = Instant::now();
    for chunk in data.chunks(FLUSH_INTERVAL) {
        st.push(chunk.to_vec(), None);
        st.flush(None);
    }
    st.finish(None);
    start.elapsed()
}

/// The journaled workload plus live streaming: every batch is wal-synced
/// (the durability handshake that makes an ack mean "journal-durable"),
/// offered to a collector over an ideal fabric, and flushed. The delta vs
/// `run_flush_workload_wal(n, 64)` is the sender-side cost of the
/// streaming tier: the wal-sync handshake, the batch clone onto the
/// wire, and the ack round-trip bookkeeping. (The aggregator's own graph
/// indexing is off this path by design — the receive path stages and
/// acks in O(1), folding lazily on first read.) The contract is ≤15%
/// over the WAL baseline.
fn run_flush_workload_streamed(n: usize) -> Duration {
    let fs = FileSystem::new(LustreConfig::default());
    let st = store_opts(&fs, "/prov/rank0.nt", true, false).with_wal(true, 64);
    let collector = Collector::new(Arc::clone(&fs), "/prov", NetPlan::ideal(5));
    let client = collector.client_with(
        0,
        VirtualClock::new(),
        RetryPolicy::default(),
        10_000_000,
        64,
        OverloadPolicy::Block,
    );
    let data = triples(0..n);
    let start = Instant::now();
    for chunk in data.chunks(FLUSH_INTERVAL) {
        st.push(chunk.to_vec(), None);
        st.wal_sync();
        client.send(chunk.to_vec());
        st.flush(None);
    }
    st.finish(None);
    client.drain(64);
    start.elapsed()
}

fn bench_flush(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_flush_every_1k");
    group.sample_size(2);
    for n in scales() {
        group.bench_function(format!("delta/{n}"), |b| {
            b.iter(|| black_box(run_flush_workload(true, n)));
        });
        group.bench_function(format!("checksummed/{n}"), |b| {
            b.iter(|| black_box(run_flush_workload_opts(true, true, n)));
        });
        group.bench_function(format!("sealed/{n}"), |b| {
            b.iter(|| black_box(run_flush_workload_sealed(n)));
        });
        group.bench_function(format!("parity/{n}"), |b| {
            b.iter(|| black_box(run_flush_workload_parity(n)));
        });
        for g in WAL_GROUPS {
            group.bench_function(format!("wal{g}/{n}"), |b| {
                b.iter(|| black_box(run_flush_workload_wal(n, g)));
            });
        }
        group.bench_function(format!("streamed/{n}"), |b| {
            b.iter(|| black_box(run_flush_workload_streamed(n)));
        });
        // The legacy path rewrites the whole file every flush; at 1M that
        // is minutes per sample, so cap it at 100k.
        if n <= 100_000 {
            group.bench_function(format!("legacy/{n}"), |b| {
                b.iter(|| black_box(run_flush_workload(false, n)));
            });
        }
    }
    group.finish();
}

fn bench_finish(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_push_finish");
    group.sample_size(3);
    for n in scales() {
        let batch = triples(0..n);
        group.bench_function(format!("{n}"), |b| {
            b.iter(|| {
                let fs = FileSystem::new(LustreConfig::default());
                let st = store(&fs, "/prov/rank0.nt", true);
                st.push(batch.clone(), None);
                black_box(st.finish(None))
            });
        });
    }
    group.finish();
}

/// A merge directory of `MERGE_RANKS` per-process stores, each left
/// mid-run so the directory holds snapshots *and* live delta segments.
fn build_merge_dir(n: usize) -> Arc<FileSystem> {
    let fs = FileSystem::new(LustreConfig::default());
    let per = (n / MERGE_RANKS).max(1);
    for r in 0..MERGE_RANKS {
        let st = store(&fs, &format!("/prov/rank{r}.nt"), true);
        let data = triples(r * per..(r + 1) * per);
        for chunk in data.chunks((per / 4).max(1)) {
            st.push(chunk.to_vec(), None);
            st.flush(None);
        }
        // No finish: segments stay behind, as after a crashed run.
    }
    fs
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_merge");
    group.sample_size(3);
    for n in scales() {
        let fs = build_merge_dir(n);
        group.bench_function(format!("parallel/{n}"), |b| {
            b.iter(|| black_box(merge_directory(&fs, "/prov").0.len()));
        });
        group.bench_function(format!("sequential/{n}"), |b| {
            b.iter(|| black_box(merge_directory_sequential(&fs, "/prov").0.len()));
        });
    }
    group.finish();
}

/// Before/after record for the acceptance scenario. Runs each side once
/// warm, then takes per-side minima over *interleaved* timed rounds:
/// one-shot timings drift with allocator and page-cache state by tens of
/// milliseconds at the 100k scale — enough to invert a ±10% overhead
/// ratio when one side's runs are a contiguous block — and interleaving
/// exposes every side to the same drift. Hand-formats the JSON (the
/// vendored serde_json has no `Serialize`).
fn headline_comparison() {
    if quick() {
        return;
    }
    const ROUNDS: usize = 3;
    let mut rows = String::new();
    for n in scales() {
        if n > 100_000 {
            continue; // legacy side is impractical past 100k
        }
        // One warm pass each to fault in code paths, then the timed rounds.
        run_flush_workload(false, n.min(10_000));
        run_flush_workload(true, n.min(10_000));
        run_flush_workload_opts(true, true, n.min(10_000));
        run_flush_workload_sealed(n.min(10_000));
        run_flush_workload_parity(n.min(10_000));
        for g in WAL_GROUPS {
            run_flush_workload_wal(n.min(10_000), g);
        }
        run_flush_workload_streamed(n.min(10_000));
        let mut legacy = Duration::MAX;
        let mut delta = Duration::MAX;
        let mut checksummed = Duration::MAX;
        let mut sealed = Duration::MAX;
        let mut parity = Duration::MAX;
        let mut wal = [Duration::MAX; WAL_GROUPS.len()];
        let mut streamed = Duration::MAX;
        for round in 0..ROUNDS {
            if round < 2 {
                legacy = legacy.min(run_flush_workload(false, n));
            }
            delta = delta.min(run_flush_workload(true, n));
            checksummed = checksummed.min(run_flush_workload_opts(true, true, n));
            sealed = sealed.min(run_flush_workload_sealed(n));
            parity = parity.min(run_flush_workload_parity(n));
            for (i, &g) in WAL_GROUPS.iter().enumerate() {
                wal[i] = wal[i].min(run_flush_workload_wal(n, g));
            }
            streamed = streamed.min(run_flush_workload_streamed(n));
        }
        let wal_ms: Vec<f64> = wal.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        let legacy_ms = legacy.as_secs_f64() * 1e3;
        let delta_ms = delta.as_secs_f64() * 1e3;
        let checksummed_ms = checksummed.as_secs_f64() * 1e3;
        let sealed_ms = sealed.as_secs_f64() * 1e3;
        let parity_ms = parity.as_secs_f64() * 1e3;
        let speedup = legacy_ms / delta_ms.max(1e-9);
        let overhead_pct = (checksummed_ms / delta_ms.max(1e-9) - 1.0) * 100.0;
        // The trust tier's cost: Merkle roots + signed manifest + ledger
        // append, relative to the checksummed workload it runs on top of.
        let manifest_overhead_pct = (sealed_ms / checksummed_ms.max(1e-9) - 1.0) * 100.0;
        // The self-healing tier's cost: XOR accumulation + a sealed `.par`
        // per PARITY_GROUP commits, relative to the checksummed workload
        // it protects. The contract is ≤10% at the benchmarked width.
        let parity_overhead_pct = (parity_ms / checksummed_ms.max(1e-9) - 1.0) * 100.0;
        // The durability contract's cost: journal overhead at the default
        // group-commit size, relative to the journal-free delta protocol.
        let wal64_overhead_pct = (wal_ms[1] / delta_ms.max(1e-9) - 1.0) * 100.0;
        // The streaming tier's cost: wal-sync handshake + live delivery
        // into the aggregator graph, relative to the wal64 workload it
        // rides on. The contract is ≤15%.
        let streamed_ms = streamed.as_secs_f64() * 1e3;
        let streamed_overhead_pct = (streamed_ms / wal_ms[1].max(1e-9) - 1.0) * 100.0;
        println!(
            "store_headline/{n}: legacy {legacy_ms:.1} ms, delta {delta_ms:.1} ms, {speedup:.1}x; \
             checksummed {checksummed_ms:.1} ms ({overhead_pct:+.1}% vs delta); \
             sealed {sealed_ms:.1} ms ({manifest_overhead_pct:+.1}% vs checksummed); \
             parity g{PARITY_GROUP} {parity_ms:.1} ms ({parity_overhead_pct:+.1}% vs checksummed); \
             wal g1 {:.1} ms, g64 {:.1} ms ({wal64_overhead_pct:+.1}% vs delta), g1024 {:.1} ms; \
             streamed {streamed_ms:.1} ms ({streamed_overhead_pct:+.1}% vs wal g64)",
            wal_ms[0], wal_ms[1], wal_ms[2]
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"triples\": {n}, \"flush_every\": {FLUSH_INTERVAL}, \
             \"legacy_full_rewrite_ms\": {legacy_ms:.2}, \
             \"delta_segments_ms\": {delta_ms:.2}, \"speedup\": {speedup:.2}, \
             \"checksummed_delta_ms\": {checksummed_ms:.2}, \
             \"checksum_overhead_pct\": {overhead_pct:.2}, \
             \"sealed_manifest_ms\": {sealed_ms:.2}, \
             \"manifest_overhead_pct\": {manifest_overhead_pct:.2}, \
             \"parity_group\": {PARITY_GROUP}, \
             \"parity_ms\": {parity_ms:.2}, \
             \"parity_overhead_pct\": {parity_overhead_pct:.2}, \
             \"wal_group1_ms\": {:.2}, \"wal_group64_ms\": {:.2}, \
             \"wal_group1024_ms\": {:.2}, \
             \"wal_group64_overhead_pct\": {wal64_overhead_pct:.2}, \
             \"streamed_ms\": {streamed_ms:.2}, \
             \"streamed_overhead_pct\": {streamed_overhead_pct:.2}}}",
            wal_ms[0], wal_ms[1], wal_ms[2]
        ));
    }
    // Merge before/after: sequential vs rayon-parallel over a mid-run
    // directory (snapshots + live segments). On a single-core host the
    // vendored rayon falls back to sequential, so record the core count.
    let merge_n = if scales().contains(&100_000) { 100_000 } else { 10_000 };
    let fs = build_merge_dir(merge_n);
    merge_directory_sequential(&fs, "/prov"); // warm
    fn timed<T>(k: usize, f: impl Fn() -> T) -> (T, f64) {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..k {
            let t = Instant::now();
            let v = f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
            out = Some(v);
        }
        (out.expect("k > 0"), best)
    }
    let (seq_len, seq_ms) = timed(3, || merge_directory_sequential(&fs, "/prov").0.len());
    let (par_len, par_ms) = timed(3, || merge_directory(&fs, "/prov").0.len());
    assert_eq!(seq_len, par_len, "parallel merge diverged from sequential");
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    // The explicit pool-size knob: force one worker per core so the merge
    // never silently degenerates to a 1-thread pool, and prove the forced
    // pool produces the same graph. On a real multi-core host the speedup
    // over sequential must be material, not incidental.
    let (forced_len, forced_ms) =
        timed(3, || merge_directory_with_threads(&fs, "/prov", cores as u32).0.len());
    assert_eq!(seq_len, forced_len, "forced-pool merge diverged from sequential");
    let merge_speedup = seq_ms / forced_ms.max(1e-9);
    assert!(
        cores < 4 || merge_speedup > 1.3,
        "parallel merge on {cores} cores is only {merge_speedup:.2}x over sequential \
         (seq {seq_ms:.1} ms, forced {forced_ms:.1} ms) — the pool degenerated"
    );
    println!(
        "store_merge_headline/{merge_n}: sequential {seq_ms:.1} ms, parallel {par_ms:.1} ms, \
         forced {cores}-thread pool {forced_ms:.1} ms ({merge_speedup:.2}x)"
    );
    let json = format!(
        "{{\n  \"bench\": \"provenance store flush protocol\",\n  \
         \"workload\": \"N triples pushed in batches of {FLUSH_INTERVAL}, flush after \
         every batch, finish at end (sync store, N-Triples)\",\n  \
         \"before\": \"full graph rewrite on every flush\",\n  \
         \"after\": \"snapshot + append-only delta segments, compaction every 64\",\n  \
         \"checksummed\": \"delta protocol + framed format: per-file identity header, \
         per-batch CRC32 frames, chained footer hash\",\n  \
         \"sealed\": \"checksummed workload + run seal at finish: per-file Merkle \
         roots collected into MANIFEST.provio, HMAC-SHA256 signed, digest chained \
         into the CAMPAIGN.provio ledger; manifest_overhead_pct is sealed vs \
         checksummed\",\n  \
         \"parity\": \"checksummed workload + XOR parity: one sealed .par file \
         per parity_group commits, the redundancy scrub reconstructs single \
         losses from; parity_overhead_pct is parity vs checksummed\",\n  \
         \"wal\": \"delta protocol + write-ahead journal: push-time group commits \
         of framed N-Triples records, recycled on every successful flush; \
         wal_groupN_ms is the workload with group-commit size N\",\n  \
         \"streamed\": \"wal group-64 workload + live streaming: every batch \
         wal-synced then offered to an aggregator Collector over an ideal \
         simulated fabric (at-least-once, (rank,seq) dedup); \
         streamed_overhead_pct is streamed vs wal_group64 — contract <= 15%\",\n  \
         \"scenarios\": [\n{rows}\n  ],\n  \
         \"merge\": {{\"triples\": {merge_n}, \"ranks\": {MERGE_RANKS}, \
         \"sequential_ms\": {seq_ms:.2}, \"parallel_ms\": {par_ms:.2}, \
         \"forced_pool_ms\": {forced_ms:.2}, \"forced_pool_threads\": {cores}, \
         \"forced_pool_speedup\": {merge_speedup:.2}, \
         \"host_cores\": {cores}, \
         \"note\": \"vendored rayon splits across available_parallelism threads by default; forced_pool uses merge_directory_with_threads (the merge_threads config knob) to pin one worker per core, so the merge never silently degenerates to a 1-thread pool\"}}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(path, json).expect("write BENCH_store.json");
    println!("wrote {path}");
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_push, bench_flush, bench_finish, bench_merge
}

fn main() {
    benches();
    headline_comparison();
}
