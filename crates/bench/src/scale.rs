//! Experiment scale presets.

/// How big to run the sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale: the paper's axes at 1/4 extent. Shapes (ratios,
    /// orderings, crossovers) are preserved; absolute counts are smaller.
    Quick,
    /// The paper's axis extents: DASSA up to 2048 input files on 32 nodes,
    /// H5bench up to 4096 ranks (64 for append), Top Reco up to 100 epochs.
    Paper,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }

    /// Top Reco epoch sweep (Figure 6(a)/7(a) x-axis).
    pub fn topreco_epochs(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![5, 10, 15, 20, 25],
            Scale::Paper => vec![20, 40, 60, 80, 100],
        }
    }

    /// DASSA input-file sweep (Figure 6(b)/7(b) x-axis).
    pub fn dassa_files(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![32, 64, 128, 256, 512],
            Scale::Paper => vec![128, 256, 512, 1024, 2048],
        }
    }

    /// H5bench rank sweep for write+read / write+overwrite+read.
    pub fn h5bench_ranks(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![32, 64, 128, 256, 1024],
            Scale::Paper => vec![128, 256, 512, 1024, 4096],
        }
    }

    /// H5bench rank sweep for write+append+read (the paper drops to 2–64
    /// ranks because appends exhaust memory at scale).
    pub fn h5bench_append_ranks(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![2, 4, 8, 16, 64],
            Scale::Paper => vec![2, 8, 16, 32, 64],
        }
    }

    /// Figure 8 configuration counts (the paper's 20/40/80).
    pub fn fig8_configs(self) -> Vec<usize> {
        vec![20, 40, 80]
    }

    /// Figure 8 epoch sweep per panel (virtual time — same at both scales;
    /// Top Reco trains for tens of epochs in the paper's regime).
    pub fn fig8_epochs(self) -> Vec<u32> {
        vec![20, 40, 80]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Paper.name(), "paper");
    }

    #[test]
    fn paper_extents_match_evaluation_section() {
        assert_eq!(*Scale::Paper.dassa_files().last().unwrap(), 2048);
        assert_eq!(*Scale::Paper.h5bench_ranks().last().unwrap(), 4096);
        assert_eq!(*Scale::Paper.h5bench_append_ranks().last().unwrap(), 64);
        assert_eq!(Scale::Paper.fig8_configs(), vec![20, 40, 80]);
    }

    #[test]
    fn quick_is_strictly_smaller() {
        assert!(
            Scale::Quick.dassa_files().last().unwrap()
                < Scale::Paper.dassa_files().last().unwrap()
        );
        assert!(
            Scale::Quick.h5bench_ranks().last().unwrap()
                <= Scale::Paper.h5bench_ranks().last().unwrap()
        );
    }
}
