//! `provio-bench` — the evaluation harness.
//!
//! One runner per paper artifact (every figure and table of §6), shared by
//! the `experiments` binary and the criterion benches. Each runner returns
//! a [`report::Report`] that renders as an aligned text table and saves as
//! JSON, so EXPERIMENTS.md numbers are regenerable and diffable.
//!
//! Experiments accept a [`Scale`]: `Quick` is a minutes-scale sweep with
//! the same *shape* as the paper's (same axes, same ratios of parameters);
//! `Paper` uses the paper's axis extents (up to 2048 DASSA files, up to
//! 4096 MPI ranks). Both are labeled in the output.

pub mod experiments;
pub mod report;
pub mod scale;

pub use report::Report;
pub use scale::Scale;
