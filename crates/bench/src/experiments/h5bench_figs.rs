//! Figures 6(c,d,e) and 7(c,d,e): H5bench tracking performance and storage
//! vs. MPI ranks, for three I/O patterns × three scenarios.
//!
//! Paper shape: overhead 0.5%–4% even under heavy I/O; the
//! write+append+read pattern has the lowest relative overhead (its per-op
//! compute is higher); scenario 2 (API + duration) stores the most, and
//! tracking the duration adds little time over scenario 1; storage scales
//! linearly with rank count, topping out near 168 MB.

use crate::report::{human_bytes, Report};
use crate::scale::Scale;
use provio::ProvIoConfig;
use provio_model::ClassSelector;
use provio_simrt::SimDuration;
use provio_workflows::h5bench::{run as h5bench, H5benchParams, IoPattern};
use provio_workflows::{Cluster, ProvMode};

const SCENARIOS: [(&str, fn() -> ClassSelector); 3] = [
    ("scenario-1", ClassSelector::h5bench_scenario1),
    ("scenario-2", ClassSelector::h5bench_scenario2),
    ("scenario-3", ClassSelector::h5bench_scenario3),
];

fn fig_ids(pattern: IoPattern) -> (&'static str, &'static str) {
    match pattern {
        IoPattern::WriteRead => ("fig6c", "fig7c"),
        IoPattern::WriteOverwriteRead => ("fig6d", "fig7d"),
        IoPattern::WriteAppendRead => ("fig6e", "fig7e"),
    }
}

pub fn run_pattern(scale: Scale, pattern: IoPattern) -> Vec<Report> {
    let (time_id, storage_id) = fig_ids(pattern);
    let mut time = Report::new(
        time_id,
        format!("H5bench {} tracking performance vs ranks [{}]", pattern.name(), scale.name()),
        &["ranks", "baseline_s", "scenario", "provio_s", "normalized", "overhead_%", "events"],
    );
    let mut storage = Report::new(
        storage_id,
        format!("H5bench {} provenance size vs ranks [{}]", pattern.name(), scale.name()),
        &["ranks", "scenario", "prov_bytes", "prov_human", "prov_files"],
    );

    let ranks = if pattern == IoPattern::WriteAppendRead {
        scale.h5bench_append_ranks()
    } else {
        scale.h5bench_ranks()
    };

    let mut s1_vs_s2: Vec<(f64, f64)> = Vec::new();
    let mut s2_sizes: Vec<u64> = Vec::new();
    let mut max_oh = 0.0f64;
    for &r in &ranks {
        let params = |mode: ProvMode| H5benchParams {
            ranks: r,
            pattern,
            steps: 3,
            particles_per_rank: 1 << 17,
            blocks: 4,
            compute_per_step: SimDuration::from_secs(25),
            seed: 5,
            mode,
        };
        let base = h5bench(&Cluster::new(), &params(ProvMode::Off));
        let mut ohs = Vec::new();
        for (name, preset) in SCENARIOS {
            let out = h5bench(
                &Cluster::new(),
                &params(ProvMode::provio(
                    ProvIoConfig::default().with_selector(preset()),
                )),
            );
            let overhead = out.metrics.overhead_vs(&base.metrics);
            max_oh = max_oh.max(overhead);
            ohs.push(overhead);
            time.row(vec![
                r.into(),
                base.metrics.completion.as_secs_f64().into(),
                name.into(),
                out.metrics.completion.as_secs_f64().into(),
                out.metrics.normalized_vs(&base.metrics).into(),
                (overhead * 100.0).into(),
                out.metrics.tracked_events.into(),
            ]);
            storage.row(vec![
                r.into(),
                name.into(),
                out.metrics.prov_bytes.into(),
                human_bytes(out.metrics.prov_bytes).into(),
                out.metrics.prov_files.into(),
            ]);
            if name == "scenario-2" {
                s2_sizes.push(out.metrics.prov_bytes);
            }
        }
        s1_vs_s2.push((ohs[0], ohs[1]));
    }

    time.note(format!(
        "max overhead {:.2}% (paper: 0.5%–4% across patterns)",
        max_oh * 100.0
    ));
    let piggyback = s1_vs_s2
        .iter()
        .all(|(s1, s2)| (s2 - s1).abs() < 0.01 + s1 * 0.5);
    time.note(format!(
        "duration tracking (s2) adds little over s1: {piggyback} (paper: timing piggybacks on API tracking)"
    ));
    storage.note(format!(
        "scenario-2 size grows ~linearly with ranks: {} (paper: linear, up to 168 MB)",
        s2_sizes.windows(2).all(|w| w[1] > w[0])
    ));

    vec![time, storage]
}
