//! Figures 1 and 3: the workflow DAGs, emitted as Graphviz DOT.
//!
//! Structural renderings of the two motivating workflows (solid arrows =
//! writes, dashed = reads, as in the paper's figures).

use crate::report::Report;

const DASSA_DOT: &str = r##"digraph dassa {
  rankdir=LR;
  node [shape=box, style=filled, fillcolor="#fff2ae", fontsize=10];
  tdms [label="WestSac.tdms\n(+ other .tdms/.h5 inputs)"];
  h5 [label="WestSac.h5"];
  dec_out [label="decimate.h5"];
  xcorr_out [label="xcorr_stack.h5"];
  node [shape=ellipse, fillcolor="#cbb9e8"];
  tdms2h5 [label="tdms2h5"];
  decimate [label="Decimate"];
  xcorr [label="X-Correlation-Stacking"];
  tdms -> tdms2h5 [style=dashed, label="read"];
  tdms2h5 -> h5 [label="write"];
  h5 -> decimate [style=dashed, label="read"];
  decimate -> dec_out [label="write"];
  dec_out -> xcorr [style=dashed, label="read"];
  xcorr -> xcorr_out [label="write"];
}
"##;

const TOPRECO_DOT: &str = r##"digraph topreco {
  rankdir=LR;
  node [shape=box, style=filled, fillcolor="#fff2ae", fontsize=10];
  root [label="input events (.root)"];
  ini [label="configuration (.ini)"];
  tfrecord [label="train/test (.tfrecord)"];
  scores [label="edge/node scores"];
  reco [label="reconstructed top quarks"];
  node [shape=ellipse, fillcolor="#cbb9e8"];
  gen [label="dataset generation"];
  train [label="GNN training + test"];
  reconstructor [label="reconstructor"];
  root -> gen [style=dashed, label="read"];
  ini -> gen [style=dashed, label="read"];
  gen -> tfrecord [label="write"];
  tfrecord -> train [style=dashed, label="read"];
  ini -> train [style=dashed, label="read"];
  train -> scores [label="write"];
  scores -> reconstructor [style=dashed, label="read"];
  reconstructor -> reco [label="write"];
}
"##;

pub fn run() -> Vec<Report> {
    let mut r = Report::new(
        "dags",
        "Workflow DAGs (Figures 1 and 3), as Graphviz DOT",
        &["figure", "workflow", "attachment"],
    );
    r.row(vec!["fig1".into(), "DASSA".into(), "fig1_dassa.dot".into()]);
    r.row(vec!["fig3".into(), "Top Reco".into(), "fig3_topreco.dot".into()]);
    r.attach("fig1_dassa.dot", DASSA_DOT);
    r.attach("fig3_topreco.dot", TOPRECO_DOT);
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_sources_are_valid_shaped() {
        let rs = run();
        assert_eq!(rs[0].attachments.len(), 2);
        for (_, dot) in &rs[0].attachments {
            assert!(dot.starts_with("digraph"));
            assert!(dot.trim_end().ends_with('}'));
        }
    }
}
