//! Figure 8: PROV-IO vs ProvLake on Top Reco — tracking performance
//! (panels a–c) and storage (panels d–f) for 20/40/80 tracked
//! configurations.
//!
//! Paper shape: both tools' overheads are negligible (< 0.025%) with
//! PROV-IO at or below ProvLake in most cases; PROV-IO always stores less,
//! and the gap widens with the number of configuration fields (ProvLake
//! duplicates the full workflow context into every step record).

use crate::report::{human_bytes, Report};
use crate::scale::Scale;
use provio::ProvIoConfig;
use provio_model::ClassSelector;
use provio_simrt::SimDuration;
use provio_workflows::topreco::{run as topreco, TopRecoParams};
use provio_workflows::{Cluster, ProvMode};

pub fn run(scale: Scale) -> Vec<Report> {
    let mut time = Report::new(
        "fig8abc",
        format!("Top Reco: PROV-IO vs ProvLake tracking performance [{}]", scale.name()),
        &["configs", "epochs", "baseline_s", "provio_norm", "provlake_norm"],
    );
    let mut storage = Report::new(
        "fig8def",
        format!("Top Reco: PROV-IO vs ProvLake storage [{}]", scale.name()),
        &["configs", "epochs", "provio_bytes", "provlake_bytes", "provio", "provlake"],
    );

    let mut provio_wins_time = 0usize;
    let mut total_points = 0usize;
    let mut provio_wins_storage = 0usize;
    let mut gap_by_configs: Vec<(usize, f64)> = Vec::new();

    for &configs in &scale.fig8_configs() {
        let mut gaps = Vec::new();
        for &epochs in &scale.fig8_epochs() {
            let params = |mode: ProvMode, run_id: u32| TopRecoParams {
                epochs,
                n_configs: configs,
                n_events: 100_000,
                epoch_compute: SimDuration::from_secs(60),
                seed: 7,
                mode,
                run_id,
            };
            let base = topreco(&Cluster::new(), &params(ProvMode::Off, 1));
            let pio = topreco(
                &Cluster::new(),
                &params(
                    ProvMode::provio(
                        ProvIoConfig::default().with_selector(ClassSelector::topreco()),
                    ),
                    2,
                ),
            );
            let pl = topreco(&Cluster::new(), &params(ProvMode::ProvLake, 3));

            let pio_norm = pio.metrics.normalized_vs(&base.metrics);
            let pl_norm = pl.metrics.normalized_vs(&base.metrics);
            total_points += 1;
            if pio_norm <= pl_norm {
                provio_wins_time += 1;
            }
            if pio.metrics.prov_bytes < pl.metrics.prov_bytes {
                provio_wins_storage += 1;
            }
            gaps.push(pl.metrics.prov_bytes as f64 - pio.metrics.prov_bytes as f64);

            time.row(vec![
                configs.into(),
                epochs.into(),
                base.metrics.completion.as_secs_f64().into(),
                pio_norm.into(),
                pl_norm.into(),
            ]);
            storage.row(vec![
                configs.into(),
                epochs.into(),
                pio.metrics.prov_bytes.into(),
                pl.metrics.prov_bytes.into(),
                human_bytes(pio.metrics.prov_bytes).into(),
                human_bytes(pl.metrics.prov_bytes).into(),
            ]);
        }
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        gap_by_configs.push((configs, mean_gap));
    }

    time.note(format!(
        "PROV-IO at-or-below ProvLake time in {provio_wins_time}/{total_points} points (paper: lower in most cases)"
    ));
    storage.note(format!(
        "PROV-IO stores less in {provio_wins_storage}/{total_points} points (paper: always less)"
    ));
    let widening = gap_by_configs.windows(2).all(|w| w[1].1 > w[0].1);
    storage.note(format!(
        "storage gap widens with config count: {widening} (paper: ProvLake tracks more irrelevant context)"
    ));

    vec![time, storage]
}
