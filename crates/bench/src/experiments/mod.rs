//! One runner per paper artifact. See DESIGN.md §5 for the experiment
//! index and EXPERIMENTS.md for recorded paper-vs-measured outcomes.

pub mod dags;
pub mod fig6a7a;
pub mod fig6b7b;
pub mod fig8;
pub mod fig9;
pub mod h5bench_figs;
pub mod tables;

use crate::report::Report;
use crate::scale::Scale;

/// All experiment ids, in paper order.
pub const ALL_IDS: [&str; 13] = [
    "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig7a", "fig7b", "fig7c", "fig7d", "fig7e",
    "fig8", "fig9", "tables",
];

/// Run one experiment id (figures 6/7 run in pairs because one sweep
/// yields both time and storage). Returns every report the id produces.
pub fn run_id(id: &str, scale: Scale) -> Option<Vec<Report>> {
    match id {
        "fig6a" | "fig7a" => Some(fig6a7a::run(scale)),
        "fig6b" | "fig7b" => Some(fig6b7b::run(scale)),
        "fig6c" | "fig7c" => Some(h5bench_figs::run_pattern(
            scale,
            provio_workflows::h5bench::IoPattern::WriteRead,
        )),
        "fig6d" | "fig7d" => Some(h5bench_figs::run_pattern(
            scale,
            provio_workflows::h5bench::IoPattern::WriteOverwriteRead,
        )),
        "fig6e" | "fig7e" => Some(h5bench_figs::run_pattern(
            scale,
            provio_workflows::h5bench::IoPattern::WriteAppendRead,
        )),
        "fig8" => Some(fig8::run(scale)),
        "fig9" => Some(fig9::run(scale)),
        "tables" | "tab3" | "tab4" | "tab5" => Some(tables::run(scale)),
        "dags" | "fig1" | "fig3" => Some(dags::run()),
        _ => None,
    }
}
