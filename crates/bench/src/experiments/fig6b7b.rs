//! Figures 6(b) and 7(b): DASSA tracking performance and storage vs.
//! input-file count, for File / Dataset / Attribute lineage.
//!
//! Paper shape: overhead ranges ~1.8%–11%, highest for attribute lineage
//! (attribute access forces extra file/dataset opens); storage grows
//! linearly from tens to hundreds of MB and is similar across the three
//! granularities because I/O API records dominate.

use crate::report::{human_bytes, Report};
use crate::scale::Scale;
use provio::ProvIoConfig;
use provio_model::ClassSelector;
use provio_workflows::dassa::{run as dassa, DassaParams};
use provio_workflows::{Cluster, ProvMode};

const SCENARIOS: [(&str, fn() -> ClassSelector); 3] = [
    ("file", ClassSelector::dassa_file_lineage),
    ("dataset", ClassSelector::dassa_dataset_lineage),
    ("attribute", ClassSelector::dassa_attribute_lineage),
];

pub fn run(scale: Scale) -> Vec<Report> {
    let mut time = Report::new(
        "fig6b",
        format!(
            "DASSA tracking performance vs input files, 32 nodes [{}]",
            scale.name()
        ),
        &["files", "baseline_s", "lineage", "provio_s", "normalized", "overhead_%", "events"],
    );
    let mut storage = Report::new(
        "fig7b",
        format!("DASSA provenance size vs input files [{}]", scale.name()),
        &["files", "lineage", "prov_bytes", "prov_human", "prov_files"],
    );

    let mut per_granularity_overheads: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut attr_sizes = Vec::new();
    for &n_files in &scale.dassa_files() {
        let params = |mode: ProvMode| DassaParams {
            n_files,
            nodes: 32,
            file_mib: 675,
            channels: 96,
            datasets: 4,
            seed: 11,
            mode,
        };
        let base = dassa(&Cluster::new(), &params(ProvMode::Off));
        let mut overheads = Vec::new();
        for (name, preset) in SCENARIOS {
            let out = dassa(
                &Cluster::new(),
                &params(ProvMode::provio(
                    ProvIoConfig::default().with_selector(preset()),
                )),
            );
            let overhead = out.metrics.overhead_vs(&base.metrics);
            overheads.push(overhead);
            time.row(vec![
                n_files.into(),
                base.metrics.completion.as_secs_f64().into(),
                name.into(),
                out.metrics.completion.as_secs_f64().into(),
                out.metrics.normalized_vs(&base.metrics).into(),
                (overhead * 100.0).into(),
                out.metrics.tracked_events.into(),
            ]);
            storage.row(vec![
                n_files.into(),
                name.into(),
                out.metrics.prov_bytes.into(),
                human_bytes(out.metrics.prov_bytes).into(),
                out.metrics.prov_files.into(),
            ]);
            if name == "attribute" {
                attr_sizes.push(out.metrics.prov_bytes);
            }
        }
        per_granularity_overheads.push((n_files, overheads));
    }

    let ordered = per_granularity_overheads
        .iter()
        .all(|(_, o)| o[0] < o[1] && o[1] < o[2]);
    time.note(format!(
        "file < dataset < attribute overhead at every point: {ordered} (paper: attribute highest, ~11% max)"
    ));
    let max_attr = per_granularity_overheads
        .iter()
        .map(|(_, o)| o[2])
        .fold(0.0, f64::max);
    time.note(format!(
        "max attribute-lineage overhead {:.2}% (paper: ~11%)",
        max_attr * 100.0
    ));
    storage.note(format!(
        "attribute-lineage size doubles with file count: {} (paper: linear, 40→800 MB)",
        attr_sizes.windows(2).all(|w| {
            let r = w[1] as f64 / w[0] as f64;
            (1.6..=2.4).contains(&r)
        })
    ));

    vec![time, storage]
}
