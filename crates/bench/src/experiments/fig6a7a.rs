//! Figures 6(a) and 7(a): Top Reco tracking performance and storage vs.
//! training epochs.
//!
//! Paper shape: tracking overhead is negligible (max 0.02%) and *decreases*
//! as epochs grow, because the fixed tracking cost (agents, configuration
//! set, final serialization) amortizes over a longer run; provenance size
//! grows linearly with epochs.

use crate::report::{human_bytes, Report};
use crate::scale::Scale;
use provio::ProvIoConfig;
use provio_model::ClassSelector;
use provio_simrt::SimDuration;
use provio_workflows::topreco::{run as topreco, TopRecoParams};
use provio_workflows::{Cluster, ProvMode};

pub fn run(scale: Scale) -> Vec<Report> {
    let mut time = Report::new(
        "fig6a",
        format!("Top Reco tracking performance vs epochs [{}]", scale.name()),
        &["epochs", "baseline_s", "provio_s", "normalized", "overhead_%", "io_events"],
    );
    let mut storage = Report::new(
        "fig7a",
        format!("Top Reco provenance size vs epochs [{}]", scale.name()),
        &["epochs", "prov_bytes", "prov_human", "triples_per_epoch_est"],
    );

    let mut overheads = Vec::new();
    let mut sizes = Vec::new();
    for &epochs in &scale.topreco_epochs() {
        let params = |mode: ProvMode| TopRecoParams {
            epochs,
            n_configs: 20,
            n_events: 100_000,
            epoch_compute: SimDuration::from_secs(60),
            seed: 7,
            mode,
            run_id: epochs,
        };
        let base = topreco(&Cluster::new(), &params(ProvMode::Off));
        let tracked = topreco(
            &Cluster::new(),
            &params(ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::topreco()),
            )),
        );
        let overhead = tracked.metrics.overhead_vs(&base.metrics);
        overheads.push(overhead);
        sizes.push(tracked.metrics.prov_bytes);
        time.row(vec![
            epochs.into(),
            base.metrics.completion.as_secs_f64().into(),
            tracked.metrics.completion.as_secs_f64().into(),
            tracked.metrics.normalized_vs(&base.metrics).into(),
            (overhead * 100.0).into(),
            tracked.metrics.tracked_events.into(),
        ]);
        storage.row(vec![
            epochs.into(),
            tracked.metrics.prov_bytes.into(),
            human_bytes(tracked.metrics.prov_bytes).into(),
            (tracked.metrics.prov_bytes / epochs as u64).into(),
        ]);
    }

    // Shape notes (the claims EXPERIMENTS.md checks).
    let max_oh = overheads.iter().cloned().fold(0.0, f64::max);
    time.note(format!(
        "max overhead {:.4}% (paper: max 0.02%; negligible)",
        max_oh * 100.0
    ));
    time.note(format!(
        "overhead decreasing with epochs: {} (paper: decreases almost linearly)",
        overheads.windows(2).all(|w| w[1] <= w[0] + 1e-6)
    ));
    let linear = sizes.windows(2).all(|w| w[1] > w[0]);
    storage.note(format!(
        "size strictly increasing with epochs: {linear} (paper: scales linearly)"
    ));

    vec![time, storage]
}
