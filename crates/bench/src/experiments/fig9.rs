//! Figure 9: the DASSA data-lineage visualization.
//!
//! Runs a small DASSA instance with attribute-lineage tracking, merges the
//! per-process sub-graphs, derives backward lineage for one data product,
//! and emits the Graphviz rendering with the queried lineage highlighted in
//! blue — the paper's example walks `decimate.h5 → WestSac.h5 →
//! WestSac.tdms` via `tdms2h5` and `decimate`.

use crate::report::Report;
use crate::scale::Scale;
use provio::{merge_directory, ProvIoConfig, ProvQueryEngine};
use provio_model::ClassSelector;
use provio_workflows::dassa::{run as dassa, DassaParams};
use provio_workflows::{Cluster, ProvMode};

pub fn run(_scale: Scale) -> Vec<Report> {
    let mut report = Report::new(
        "fig9",
        "DASSA backward data lineage of a decimate product (visualized)",
        &["step", "node", "label"],
    );

    let cluster = Cluster::new();
    let out = dassa(
        &cluster,
        &DassaParams {
            n_files: 4,
            nodes: 2,
            file_mib: 64,
            channels: 8,
            datasets: 2,
            seed: 11,
            mode: ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::dassa_file_lineage()),
            ),
        },
    );

    let (graph, merge) = merge_directory(&cluster.fs, &out.prov_dir);
    report.note(format!(
        "merged {} sub-graphs, {} triples, {} corrupt",
        merge.files,
        merge.triples,
        merge.corrupt.len()
    ));

    let mut engine = ProvQueryEngine::new(graph);
    let derived = engine.derive_lineage();
    report.note(format!("derived {derived} wasDerivedFrom edges"));

    let product_label = "/dassa/products/decimate_0000.h5";
    let Some(product) = engine.entity_by_label(product_label) else {
        report.note("product entity not found — tracking failed");
        return vec![report];
    };
    let lineage = engine.backward_lineage(&product);
    report.row(vec![0usize.into(), "product".into(), product_label.into()]);
    for (i, g) in lineage.iter().enumerate() {
        report.row(vec![
            (i + 1).into(),
            "ancestor".into(),
            engine.label_of(g).unwrap_or_default().into(),
        ]);
    }
    let has_tdms = lineage
        .iter()
        .filter_map(|g| engine.label_of(g))
        .any(|l| l.ends_with(".tdms"));
    report.note(format!(
        "lineage reaches the raw .tdms input: {has_tdms} (paper: decimate.h5 → WestSac.h5 → WestSac.tdms)"
    ));

    let dot = provio::engine::viz::to_dot_lineage(engine.graph(), &product, &lineage);
    report.note(format!(
        "Graphviz rendering attached as fig9.dot ({} bytes, lineage highlighted)",
        dot.len()
    ));
    report.attach("fig9.dot", dot);

    vec![report]
}
