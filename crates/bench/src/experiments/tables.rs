//! Tables 3, 4 and 5.
//!
//! * Table 3 — the information tracked per workflow need (rendered from
//!   the actual selector presets).
//! * Table 4 — basic characteristics of Komadu / ProvLake / PROV-IO.
//! * Table 5 — the example SPARQL queries, *executed* against provenance
//!   captured from real (small) runs of all three workflows, reporting
//!   each query's statement count and result size.

use crate::report::Report;
use crate::scale::Scale;
use provio::{merge_directory, ProvIoConfig, ProvQueryEngine};
use provio_model::{ActivityClass, AgentClass, ClassSelector, EntityClass, ExtensibleClass, TrackItem};
use provio_simrt::SimDuration;
use provio_sparql::Query;
use provio_workflows::{dassa, h5bench, topreco, Cluster, ProvMode};

fn tab3() -> Report {
    let mut t = Report::new(
        "tab3",
        "Provenance needs and information tracked (from the selector presets)",
        &["workflow", "need", "tracked"],
    );
    let describe = |sel: &ClassSelector| -> String {
        let mut parts: Vec<&str> = Vec::new();
        for (item, name) in [
            (TrackItem::Agent(AgentClass::User), "user"),
            (TrackItem::Agent(AgentClass::Thread), "thread"),
            (TrackItem::Agent(AgentClass::Program), "program"),
            (TrackItem::Activity(ActivityClass::Read), "I/O API"),
            (TrackItem::Entity(EntityClass::File), "file"),
            (TrackItem::Entity(EntityClass::Dataset), "dataset"),
            (TrackItem::Entity(EntityClass::Attribute), "attr"),
            (TrackItem::Duration, "duration"),
            (TrackItem::Extensible(ExtensibleClass::Configuration), "configuration"),
            (TrackItem::Extensible(ExtensibleClass::Metrics), "metrics"),
        ] {
            if sel.is_enabled(item) {
                parts.push(name);
            }
        }
        parts.join(", ")
    };
    t.row(vec![
        "Top Reco (Python)".into(),
        "metadata version control & mapping".into(),
        describe(&ClassSelector::topreco()).into(),
    ]);
    for (need, sel) in [
        ("file lineage", ClassSelector::dassa_file_lineage()),
        ("dataset lineage", ClassSelector::dassa_dataset_lineage()),
        ("attribute lineage", ClassSelector::dassa_attribute_lineage()),
    ] {
        t.row(vec!["DASSA (C++)".into(), need.into(), describe(&sel).into()]);
    }
    for (need, sel) in [
        ("scenario-1", ClassSelector::h5bench_scenario1()),
        ("scenario-2", ClassSelector::h5bench_scenario2()),
        ("scenario-3", ClassSelector::h5bench_scenario3()),
    ] {
        t.row(vec!["H5bench (C)".into(), need.into(), describe(&sel).into()]);
    }
    t
}

fn tab4() -> Report {
    let mut t = Report::new(
        "tab4",
        "Basic characteristics of three frameworks",
        &["framework", "base_model", "languages", "transparency"],
    );
    for f in provio_provlake::framework_characteristics() {
        t.row(vec![
            f.name.into(),
            f.base_model.into(),
            f.languages.join(", ").into(),
            f.transparency.as_str().into(),
        ]);
    }
    t.note("PROV-IO's I/O-library integration is transparent; explicit APIs cover extensible needs (Hybrid)");
    t
}

struct QueryCase {
    workflow: &'static str,
    need: &'static str,
    sparql: String,
}

fn tab5() -> Report {
    let mut t = Report::new(
        "tab5",
        "Example queries, executed against captured provenance",
        &["workflow", "need", "statements", "results", "sample"],
    );

    // --- DASSA: capture + backward lineage queries -------------------------
    let dassa_cluster = Cluster::new();
    let dassa_out = dassa::run(
        &dassa_cluster,
        &dassa::DassaParams {
            n_files: 4,
            nodes: 2,
            file_mib: 32,
            channels: 8,
            datasets: 2,
            seed: 11,
            mode: ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::dassa_file_lineage()),
            ),
        },
    );
    let (dassa_graph, _) = merge_directory(&dassa_cluster.fs, &dassa_out.prov_dir);
    let mut dassa_engine = ProvQueryEngine::new(dassa_graph);
    dassa_engine.derive_lineage();
    let product = dassa_engine
        .entity_by_label("/dassa/products/decimate_0000.h5")
        .expect("tracked product");
    let program = dassa_engine.programs_of(&product);
    let program_iri = program
        .first()
        .map(|g| g.to_iri().to_string())
        .unwrap_or_default();

    // The paper's three-statement backward step (Table 5 rows 1–3).
    let dassa_q = QueryCase {
        workflow: "DASSA",
        need: "file/dataset/attribute lineage (one backward step)",
        sparql: format!(
            "SELECT ?data_object ?IO_API WHERE {{ \
               <{}> prov:wasAttributedTo ?program . \
               ?data_object (provio:wasReadBy|provio:wasOpenedBy) ?IO_API . \
               ?IO_API prov:wasAssociatedWith {} . }}",
            product.to_iri().as_str(),
            program_iri,
        ),
    };

    // --- H5bench: capture + the three scenario queries ---------------------
    let h5_cluster = Cluster::new();
    let _ = h5bench::run(
        &h5_cluster,
        &h5bench::H5benchParams {
            ranks: 4,
            pattern: h5bench::IoPattern::WriteRead,
            steps: 2,
            particles_per_rank: 1 << 12,
            blocks: 2,
            compute_per_step: SimDuration::from_secs(25),
            seed: 5,
            mode: ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::h5bench_scenario2()),
            ),
        },
    );
    let (h5_graph, _) = merge_directory(&h5_cluster.fs, "/h5bench/provio");
    let h5_engine = ProvQueryEngine::new(h5_graph);

    // Scenario 3 needs agent tracking — separate run.
    let h5s3_cluster = Cluster::new();
    let _ = h5bench::run(
        &h5s3_cluster,
        &h5bench::H5benchParams {
            ranks: 4,
            pattern: h5bench::IoPattern::WriteRead,
            steps: 2,
            particles_per_rank: 1 << 12,
            blocks: 2,
            compute_per_step: SimDuration::from_secs(25),
            seed: 5,
            mode: ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::h5bench_scenario3()),
            ),
        },
    );
    let (h5s3_graph, _) = merge_directory(&h5s3_cluster.fs, "/h5bench/provio");
    let h5s3_engine = ProvQueryEngine::new(h5s3_graph);

    let h5_q1 = QueryCase {
        workflow: "H5bench",
        need: "scenario-1 (I/O API count)",
        sparql: "SELECT ?IO_API WHERE { ?IO_API prov:wasMemberOf prov:Activity . }".to_string(),
    };
    let h5_q2 = QueryCase {
        workflow: "H5bench",
        need: "scenario-2 (API + duration)",
        sparql: "SELECT ?IO_API ?duration WHERE { \
                   ?IO_API prov:wasMemberOf prov:Activity ; provio:elapsed ?duration . }"
            .to_string(),
    };
    let h5_q3 = QueryCase {
        workflow: "H5bench",
        need: "scenario-3 (who touched the file)",
        sparql: "SELECT ?program ?thread ?user WHERE { \
                   ?file prov:wasAttributedTo ?program . \
                   ?program prov:actedOnBehalfOf ?thread . \
                   ?thread prov:actedOnBehalfOf ?user . }"
            .to_string(),
    };

    // --- Top Reco: capture + version/accuracy mapping ----------------------
    let tr_cluster = Cluster::new();
    let tr_out = topreco::run(
        &tr_cluster,
        &topreco::TopRecoParams {
            epochs: 6,
            n_configs: 10,
            n_events: 10_000,
            epoch_compute: SimDuration::from_secs(10),
            seed: 3,
            mode: ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::topreco()),
            ),
            run_id: 0,
        },
    );
    let (tr_graph, _) = merge_directory(&tr_cluster.fs, &tr_out.prov_dir);
    let tr_engine = ProvQueryEngine::new(tr_graph);
    let tr_q = QueryCase {
        workflow: "Top Reco",
        need: "metadata version control & mapping",
        sparql: "SELECT ?configuration ?version ?accuracy WHERE { \
                   ?configuration provio:version ?version ; provio:hasAccuracy ?accuracy . }"
            .to_string(),
    };

    for (case, engine) in [
        (&dassa_q, &dassa_engine),
        (&h5_q1, &h5_engine),
        (&h5_q2, &h5_engine),
        (&h5_q3, &h5s3_engine),
        (&tr_q, &tr_engine),
    ] {
        let parsed = Query::parse(&case.sparql).expect("valid query");
        let sols = parsed.execute(engine.graph());
        let sample = sols
            .rows
            .first()
            .map(|r| {
                r.iter()
                    .map(|(k, v)| format!("?{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_else(|| "(none)".to_string());
        t.row(vec![
            case.workflow.into(),
            case.need.into(),
            parsed.statement_count.into(),
            sols.len().into(),
            sample.chars().take(90).collect::<String>().into(),
        ]);
        t.attach(
            format!("tab5_{}_{}.rq", case.workflow.replace(' ', "_"), parsed.statement_count),
            case.sparql.clone(),
        );
    }
    t.note("statement counts match the paper's Table 5: 3 per DASSA backward step; 1/2/3 for H5bench scenarios; 2 for Top Reco");
    t
}

pub fn run(_scale: Scale) -> Vec<Report> {
    vec![tab3(), tab4(), tab5()]
}
