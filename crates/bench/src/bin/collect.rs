//! `provio collect` — drive the streaming collection pipeline over a
//! hostile simulated fabric and check convergence.
//!
//! ```text
//! collect [--ranks N] [--seed N] [--loss P] [--dup P] [--reorder P]
//!         [--partition-us N] [--crash] [--report]
//! ```
//!
//! Builds a multi-rank tracked run whose flushed batches stream to a live
//! aggregator [`Collector`] over a seeded faulty interconnect (loss,
//! duplication, reordering, an optional partition episode, an optional
//! aggregator crash + resync mid-run), then compares the live graph
//! triple-for-triple against the post-hoc [`merge_directory`] ground
//! truth. Exit status: 0 when the live view converged, 1 when it
//! diverged, 2 on bad arguments — so CI can smoke the whole pipeline.

use provio::{merge_directory, Collector, ProvIoConfig};
use provio_mpi::MpiWorld;
use provio_rdf::ntriples::sorted_graph_lines;
use provio_simrt::{NetPlan, PartitionEpisode};
use provio_workflows::Cluster;
use std::sync::Arc;

const PHASES: [&str; 3] = ["ingest", "transform", "publish"];

fn parse<T: std::str::FromStr>(args: &mut std::env::Args, what: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("bad or missing value for {what} (try --help)");
        std::process::exit(2);
    })
}

fn main() {
    let mut ranks: u32 = 4;
    let mut seed: u64 = 11;
    let mut loss: f64 = 0.25;
    let mut dup: f64 = 0.25;
    let mut reorder: f64 = 0.25;
    let mut partition_us: u64 = 2_000;
    let mut crash = false;
    let mut show_report = false;

    let mut args = std::env::args();
    args.next();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ranks" => ranks = parse(&mut args, "--ranks"),
            "--seed" => seed = parse(&mut args, "--seed"),
            "--loss" => loss = parse(&mut args, "--loss"),
            "--dup" => dup = parse(&mut args, "--dup"),
            "--reorder" => reorder = parse(&mut args, "--reorder"),
            "--partition-us" => partition_us = parse(&mut args, "--partition-us"),
            "--crash" => crash = true,
            "--report" => show_report = true,
            "--help" | "-h" => {
                println!(
                    "collect [--ranks N] [--seed N] [--loss P] [--dup P] [--reorder P]\n\
                     \x20       [--partition-us N] [--crash] [--report]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    if ranks == 0 || !(0.0..1.0).contains(&loss) || !(0.0..1.0).contains(&dup)
        || !(0.0..1.0).contains(&reorder)
    {
        eprintln!("--ranks must be >= 1 and probabilities in [0, 1) (try --help)");
        std::process::exit(2);
    }

    // ---- The fault schedule ----------------------------------------------
    let mut plan = NetPlan::ideal(seed)
        .with_loss(loss)
        .with_ack_loss(loss)
        .with_duplicate(dup)
        .with_reorder(reorder)
        .with_delay(0, 50_000);
    if partition_us > 0 {
        plan = plan.with_partition(PartitionEpisode::all(500_000, partition_us * 1_000));
    }

    // ---- A streamed run over the simulated cluster -----------------------
    let cluster = Cluster::new();
    let collector = Collector::new(Arc::clone(&cluster.fs), "/provio", plan);
    cluster.stream_to(Arc::clone(&collector));
    let cfg = ProvIoConfig::from_ini(
        "[provio]\npolicy = every:4\nasync = false\n\
         [store]\nwal = true\nwal_group = 8\n\
         [net]\nnet = true\nnet_timeout_ns = 200000\n",
    )
    .expect("valid config")
    .shared();

    let world = MpiWorld::new(ranks);
    for (pi, phase) in PHASES.iter().enumerate() {
        world.superstep_named(phase, |ctx| {
            let (_s, h5) = cluster.process(
                700 + ctx.rank,
                "operator",
                "collect-cli",
                ctx.clock().clone(),
                Some(&cfg),
            );
            for i in 0..4 {
                let f = h5
                    .create_file(&format!("/run_r{}_p{pi}_{i}.h5", ctx.rank))
                    .unwrap();
                h5.close_file(f).unwrap();
            }
        });
        if crash && pi == 0 {
            collector.crash();
            println!("injected: aggregator crash after '{phase}'");
        }
        if crash && pi == 1 {
            let (recovered, _) = collector.resync();
            println!("resync: {recovered} triple(s) rebuilt from the rank stores");
        }
    }
    let summaries = cluster.registry.finish_all();

    // ---- Convergence check -----------------------------------------------
    let delivery = collector.report();
    println!("{delivery}");
    if show_report {
        let mut report = provio::RunReport::new(ranks);
        report.attach_summaries(&summaries);
        report.attach_delivery(&delivery);
        println!("{report}");
    }
    let (ground, mrep) = merge_directory(&cluster.fs, "/provio");
    if !mrep.corrupt.is_empty() {
        eprintln!("rank files corrupt: {:?}", mrep.corrupt);
        std::process::exit(1);
    }
    let live = sorted_graph_lines(&collector.graph());
    let post = sorted_graph_lines(&ground);
    if live == post {
        println!(
            "converged: live graph == post-hoc merge ({} triple(s))",
            live.len()
        );
        std::process::exit(0);
    }
    eprintln!(
        "DIVERGED: live {} triple(s), post-hoc merge {} triple(s)",
        live.len(),
        post.len()
    );
    std::process::exit(1);
}
