//! `provio scrub` — drive the self-healing pipeline against a damaged run.
//!
//! ```text
//! scrub [--ranks N] [--seed N] [--group N] [--key KEY]
//!       [--damage none|corrupt|delete|parity] [--verify]
//! ```
//!
//! The store lives on the simulated Lustre filesystem, so the binary
//! builds a parity-protected multi-rank run in process, applies at most
//! one at-rest damage (a rotted member, a deleted member, or a rotted
//! parity block), and then scrubs the directory exactly as an offline
//! repair pass would. Exit status: 0 when the scrub left the run fully
//! repaired (or found nothing to do), 1 when data was unrecoverable — so
//! CI can assert both directions of the contract.

use provio::{
    merge_directory, repairable_paths, scrub_directory, verify_directory, ProvIoConfig,
};
use provio_hpcfs::CorruptKind;
use provio_mpi::MpiWorld;
use provio_workflows::Cluster;

fn main() {
    let mut ranks: u32 = 4;
    let mut seed: u64 = 7;
    let mut group: u32 = 2;
    let mut key = "campaign-key".to_string();
    let mut damage = "none".to_string();
    let mut verify = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ranks" => ranks = args.next().and_then(|v| v.parse().ok()).unwrap_or(4),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(7),
            "--group" => group = args.next().and_then(|v| v.parse().ok()).unwrap_or(2),
            "--key" => key = args.next().unwrap_or_default(),
            "--damage" => damage = args.next().unwrap_or_else(|| "none".into()),
            "--verify" => verify = true,
            "--help" | "-h" => {
                println!(
                    "scrub [--ranks N] [--seed N] [--group N] [--key KEY]\n\
                     \x20     [--damage none|corrupt|delete|parity] [--verify]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    // ---- A parity-protected run over the simulated filesystem -----------
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::from_ini(&format!(
        "[provio]\nformat = ntriples\npolicy = every:2\nasync = false\n\
         [store]\nchecksum_format = true\ndelta_segments = true\ncompact_every = 0\n\
         parity = true\nparity_group = {group}\nmanifest = true\nmanifest_key = {key}\n"
    ))
    .expect("valid config")
    .shared();
    let world = MpiWorld::new(ranks);
    world.superstep_named("produce", |ctx| {
        let (_s, h5) = cluster.process(
            900 + ctx.rank,
            "operator",
            "scrub-cli",
            ctx.clock().clone(),
            Some(&cfg),
        );
        for i in 0..6 {
            let f = h5
                .create_file(&format!("/run_r{}_{i}.h5", ctx.rank))
                .unwrap();
            h5.close_file(f).unwrap();
        }
    });
    // One rank is killed mid-run so its uncompacted snapshot + segments —
    // the artifacts mid-run parity groups actually cover — survive.
    if let Some(t) = cluster.registry.unregister(900 + seed as u32 % ranks) {
        std::mem::forget(t);
    }
    cluster.registry.finish_all();
    let fs = &cluster.fs;

    // ---- At most one at-rest damage --------------------------------------
    let mut covered: Vec<String> = repairable_paths(fs, "/provio").into_iter().collect();
    covered.sort();
    match damage.as_str() {
        "none" => {}
        "corrupt" | "delete" => {
            let members: Vec<&String> =
                covered.iter().filter(|p| !p.ends_with(".par")).collect();
            let target = members[seed as usize % members.len()];
            if damage == "delete" {
                fs.unlink(target).expect("damage target exists");
                println!("damage: deleted {target}");
            } else {
                let n = fs
                    .corrupt_at_rest(target, &CorruptKind::BitFlips { count: 3 }, seed)
                    .expect("damage target exists");
                println!("damage: {n} bit(s) flipped in {target}");
            }
        }
        "parity" => {
            let pars: Vec<&String> = covered.iter().filter(|p| p.ends_with(".par")).collect();
            let target = pars[seed as usize % pars.len()];
            let n = fs
                .corrupt_at_rest(target, &CorruptKind::BitFlips { count: 3 }, seed)
                .expect("damage target exists");
            println!("damage: {n} bit(s) flipped in {target}");
        }
        other => {
            eprintln!("unknown damage kind '{other}' (try --help)");
            std::process::exit(2);
        }
    }

    // ---- The repair pass -------------------------------------------------
    let report = scrub_directory(fs, "/provio");
    println!("{report}");
    for p in &report.repaired_files {
        println!("repaired: {p}");
    }
    for p in &report.repaired_parity {
        println!("regenerated: {p}");
    }
    for p in &report.unrecoverable {
        println!("UNRECOVERABLE: {p}");
    }

    let (_, mrep) = merge_directory(fs, "/provio");
    println!(
        "post-scrub merge: {} file(s), {} corrupt, {} quarantined, {} chain break(s)",
        mrep.files,
        mrep.corrupt.len(),
        mrep.quarantined.len(),
        mrep.chain_breaks
    );

    if verify {
        let audited = verify_directory(fs, "/provio", &key);
        println!("{audited}");
        if !audited.is_trusted() {
            std::process::exit(1);
        }
    }

    std::process::exit(if report.fully_repaired() { 0 } else { 1 });
}
