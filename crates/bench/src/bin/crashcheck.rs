//! `provio crashcheck` — enumerate post-crash disk states of the full
//! commit protocol and machine-check the recovery invariants.
//!
//! ```text
//! crashcheck [--ranks N] [--pushes N] [--flush-every N] [--wal-group N]
//!            [--parity-group N] [--compact-every N] [--key KEY | --no-key]
//!            [--budget N] [--max-dropped N] [--seed N] [--repro FILE]
//! ```
//!
//! Records the workload's complete syscall trace, reconstructs every
//! operation-prefix crash state (plus torn-tail and barrier-free reorder
//! variants), and runs the full recovery pipeline over each. `--budget`
//! stride-caps the explored states so CI stays bounded; `--repro FILE`
//! writes the minimized failing state's deterministic repro (trace
//! window + fault plan) when an invariant breaks.
//!
//! Exit status: 0 when every checked state satisfies every invariant,
//! 1 on a violation, 2 on bad arguments — so CI can gate on the
//! contract and archive the repro artifact on failure.

use provio::crashcheck::{crashcheck, repro_text, CrashcheckConfig};

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value (try --help)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut cfg = CrashcheckConfig::default();
    let mut repro_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ranks" => cfg.ranks = parse(&mut args, "--ranks"),
            "--pushes" => cfg.pushes = parse(&mut args, "--pushes"),
            "--flush-every" => cfg.flush_every = parse(&mut args, "--flush-every"),
            "--wal-group" => cfg.wal_group = parse(&mut args, "--wal-group"),
            "--parity-group" => cfg.parity_group = parse(&mut args, "--parity-group"),
            "--compact-every" => cfg.compact_every = parse(&mut args, "--compact-every"),
            "--key" => cfg.manifest_key = Some(parse(&mut args, "--key")),
            "--no-key" => cfg.manifest_key = None,
            "--budget" => cfg.max_states = parse(&mut args, "--budget"),
            "--max-dropped" => cfg.max_dropped = parse(&mut args, "--max-dropped"),
            "--seed" => cfg.seed = parse(&mut args, "--seed"),
            "--repro" => repro_path = Some(parse(&mut args, "--repro")),
            "--help" | "-h" => {
                println!(
                    "crashcheck [--ranks N] [--pushes N] [--flush-every N] [--wal-group N]\n\
                     \x20          [--parity-group N] [--compact-every N] [--key KEY | --no-key]\n\
                     \x20          [--budget N] [--max-dropped N] [--seed N] [--repro FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    let (workload, report) = crashcheck(&cfg);
    println!("{report}");

    if report.ok() {
        println!("all recovery invariants hold over the explored state space");
        return;
    }

    for v in &report.violations {
        println!("  {v}");
    }
    if let Some(min) = report.minimized() {
        let repro = repro_text(&workload, min);
        println!("\nminimized failing state:\n{repro}");
        if let Some(path) = repro_path {
            if let Err(e) = std::fs::write(&path, &repro) {
                eprintln!("could not write repro to {path}: {e}");
            } else {
                println!("repro written to {path}");
            }
        }
    }
    std::process::exit(1);
}
