//! The experiment harness: regenerates every table and figure of the
//! PROV-IO paper's evaluation (§6).
//!
//! ```text
//! experiments [--scale quick|paper] [--out DIR] [ids…|all]
//!
//! ids: fig6a fig6b fig6c fig6d fig6e fig7a fig7b fig7c fig7d fig7e
//!      fig8 fig9 tables dags all
//! ```
//!
//! Results print as aligned tables and save as JSON (+ DOT/SPARQL
//! attachments) under `--out` (default `results/`).

use provio_bench::experiments::{run_id, ALL_IDS};
use provio_bench::Scale;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut scale = Scale::Quick;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (quick|paper)");
                    std::process::exit(2);
                });
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| "results".into()));
            }
            "--help" | "-h" => {
                println!(
                    "experiments [--scale quick|paper] [--out DIR] [ids…|all]\nids: {} all dags",
                    ALL_IDS.join(" ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
        ids.push("dags".to_string());
    }

    println!("PROV-IO experiment harness — scale: {}\n", scale.name());
    let mut seen_reports: BTreeSet<String> = BTreeSet::new();
    let started = Instant::now();
    for id in &ids {
        let t0 = Instant::now();
        let Some(reports) = run_id(id, scale) else {
            eprintln!("unknown experiment id '{id}' — skipping");
            continue;
        };
        for r in reports {
            // Paired runners (fig6a ⇒ fig6a+fig7a) may repeat across ids.
            if !seen_reports.insert(r.id.clone()) {
                continue;
            }
            println!("{}", r.render());
            if let Err(e) = r.save(&out_dir) {
                eprintln!("failed to save {}: {e}", r.id);
            }
        }
        println!("  [{id} took {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
    println!(
        "done: {} report(s) in {:.1}s → {}",
        seen_reports.len(),
        started.elapsed().as_secs_f64(),
        out_dir.display()
    );
}
