//! `provio verify` — drive the trust pipeline against a sealed run.
//!
//! ```text
//! verify [--ranks N] [--seed N] [--key KEY] [--wrong-key]
//!        [--tamper none|crc|substitute|manifest|ledger] [--quarantine]
//! ```
//!
//! The store lives on the simulated Lustre filesystem, so the binary
//! builds a sealed multi-rank run in process, applies at most one
//! adversarial mutation, and then verifies the directory exactly as a
//! post-hoc audit would. Exit status: 0 when the run is TRUSTED, 1 when
//! it is not — so CI can assert both directions of the contract.

use provio::verify::seal_run;
use provio::{merge_directory, quarantine_tampered, verify_directory, ProvIoConfig};
use provio_hpcfs::TamperKind;
use provio_mpi::MpiWorld;
use provio_workflows::Cluster;

fn main() {
    let mut ranks: u32 = 4;
    let mut seed: u64 = 7;
    let mut key = "campaign-key".to_string();
    let mut wrong_key = false;
    let mut tamper = "none".to_string();
    let mut quarantine = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ranks" => ranks = args.next().and_then(|v| v.parse().ok()).unwrap_or(4),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(7),
            "--key" => key = args.next().unwrap_or_default(),
            "--wrong-key" => wrong_key = true,
            "--tamper" => tamper = args.next().unwrap_or_else(|| "none".into()),
            "--quarantine" => quarantine = true,
            "--help" | "-h" => {
                println!(
                    "verify [--ranks N] [--seed N] [--key KEY] [--wrong-key]\n\
                     \x20      [--tamper none|crc|substitute|manifest|ledger] [--quarantine]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    // ---- A sealed run over the simulated filesystem ---------------------
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::from_ini(&format!(
        "[provio]\nformat = ntriples\npolicy = every:2\nasync = false\n\
         [store]\nchecksum_format = true\nmanifest = true\nmanifest_key = {key}\n"
    ))
    .expect("valid config")
    .shared();
    let world = MpiWorld::new(ranks);
    world.superstep_named("produce", |ctx| {
        let (_s, h5) = cluster.process(
            800 + ctx.rank,
            "auditor",
            "verify-cli",
            ctx.clock().clone(),
            Some(&cfg),
        );
        for i in 0..4 {
            let f = h5
                .create_file(&format!("/run_r{}_{i}.h5", ctx.rank))
                .unwrap();
            h5.close_file(f).unwrap();
        }
    });
    cluster.registry.finish_all();
    let fs = &cluster.fs;

    // ---- At most one adversarial mutation -------------------------------
    let kind = match tamper.as_str() {
        "none" => None,
        "crc" => Some(TamperKind::CrcPatchedRewrite),
        "substitute" => Some(TamperKind::FileSubstitution),
        "manifest" => Some(TamperKind::ManifestEdit),
        "ledger" => Some(TamperKind::LedgerTruncate),
        other => {
            eprintln!("unknown tamper kind '{other}' (try --help)");
            std::process::exit(2);
        }
    };
    if let Some(kind) = kind {
        let target = match kind {
            TamperKind::ManifestEdit => "/provio/MANIFEST.provio".to_string(),
            TamperKind::LedgerTruncate => "/provio/CAMPAIGN.provio".to_string(),
            _ => format!("/provio/prov_p{}.nt", 800 + seed % ranks as u64),
        };
        let affected = fs
            .tamper_at_rest(&target, &kind, seed)
            .expect("tamper target exists");
        println!("tamper: {tamper} on {target} → {affected} unit(s) mutated");
    }

    // ---- The audit -------------------------------------------------------
    let verify_key = if wrong_key {
        format!("{key}-but-wrong")
    } else {
        key
    };
    let report = verify_directory(fs, "/provio", &verify_key);
    println!("{report}");

    if quarantine {
        let renamed = quarantine_tampered(fs, &report);
        if renamed.is_empty() {
            println!("quarantine: nothing to rename");
        } else {
            for p in &renamed {
                println!("quarantine: {p} → {p}.quarantine");
            }
            let (_, mrep) = merge_directory(fs, "/provio");
            println!(
                "re-merge after quarantine: {} file(s), {} corrupt, {} quarantined",
                mrep.files,
                mrep.corrupt.len(),
                mrep.quarantined.len()
            );
        }
    }

    // Reseal check: re-signing an untouched directory must keep the run
    // trusted, with the new manifest chained onto the ledger.
    if report.is_trusted() {
        seal_run(fs, "/provio", &verify_key, &[]).expect("reseal");
        let resealed = verify_directory(fs, "/provio", &verify_key);
        assert!(resealed.is_trusted(), "reseal must stay trusted");
    }

    std::process::exit(if report.is_trusted() { 0 } else { 1 });
}
