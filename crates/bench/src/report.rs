//! Experiment output: aligned text tables + JSON records.

use std::fmt::Write as _;
use std::path::Path;

/// One cell value.
#[derive(Debug, Clone)]
pub enum Cell {
    Str(String),
    Int(i64),
    Float(f64),
}

impl Cell {
    /// Untagged JSON value: strings quoted, numbers bare.
    fn to_json(&self) -> String {
        match self {
            Cell::Str(s) => format!("\"{}\"", json_escape(s)),
            Cell::Int(i) => i.to_string(),
            Cell::Float(f) if f.is_finite() => f.to_string(),
            Cell::Float(_) => "null".to_string(),
        }
    }

    fn render(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Int(i) => i.to_string(),
            Cell::Float(f) => {
                if f.abs() >= 100.0 {
                    format!("{f:.1}")
                } else if f.abs() >= 1.0 {
                    format!("{f:.3}")
                } else {
                    format!("{f:.5}")
                }
            }
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Str(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Str(s)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<u32> for Cell {
    fn from(v: u32) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

/// A rendered experiment result.
#[derive(Debug, Clone)]
pub struct Report {
    /// Paper artifact id ("fig6a", "tab5", …).
    pub id: String,
    pub title: String,
    /// What the paper's y-axis/shape looks like, asserted from our data.
    pub notes: Vec<String>,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<Cell>>,
    /// Extra artifacts (DOT sources, query texts) keyed by file stem.
    /// Omitted from the JSON record when empty.
    pub attachments: Vec<(String, String)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_str_list(items: impl Iterator<Item = String>) -> String {
    let body: Vec<String> = items.map(|s| format!("\"{}\"", json_escape(&s))).collect();
    format!("[{}]", body.join(", "))
}

impl Report {
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            attachments: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    pub fn attach(&mut self, name: impl Into<String>, body: impl Into<String>) -> &mut Self {
        self.attachments.push((name.into(), body.into()));
        self
    }

    /// Aligned text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &rendered {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
        }
        out.push('\n');
        for (i, _) in self.headers.iter().enumerate() {
            let _ = write!(out, "{}  ", "-".repeat(widths[i]));
        }
        out.push('\n');
        for row in &rendered {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// JSON record of the full report (pretty-printed, stable field order).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"id\": \"{}\",", json_escape(&self.id));
        let _ = writeln!(out, "  \"title\": \"{}\",", json_escape(&self.title));
        let _ = writeln!(out, "  \"notes\": {},", json_str_list(self.notes.iter().cloned()));
        let _ = writeln!(
            out,
            "  \"headers\": {},",
            json_str_list(self.headers.iter().cloned())
        );
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(Cell::to_json).collect();
                format!("    [{}]", cells.join(", "))
            })
            .collect();
        if rows.is_empty() {
            let _ = write!(out, "  \"rows\": []");
        } else {
            let _ = write!(out, "  \"rows\": [\n{}\n  ]", rows.join(",\n"));
        }
        if !self.attachments.is_empty() {
            let atts: Vec<String> = self
                .attachments
                .iter()
                .map(|(name, body)| {
                    format!(
                        "    [\"{}\", \"{}\"]",
                        json_escape(name),
                        json_escape(body)
                    )
                })
                .collect();
            let _ = write!(out, ",\n  \"attachments\": [\n{}\n  ]", atts.join(",\n"));
        }
        out.push_str("\n}");
        out
    }

    /// Write `<dir>/<id>.json` (+ attachments as separate files).
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let json = self.to_json_pretty();
        std::fs::write(dir.join(format!("{}.json", self.id)), json)?;
        for (name, body) in &self.attachments {
            std::fs::write(dir.join(name), body)?;
        }
        Ok(())
    }
}

/// Format bytes at a human scale (matching the paper's KB/MB y-axes).
pub fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_notes() {
        let mut r = Report::new("figX", "demo", &["a", "b"]);
        r.row(vec!["x".into(), 1u64.into()]);
        r.row(vec!["longer".into(), 2.5f64.into()]);
        r.note("shape holds");
        let t = r.render();
        assert!(t.contains("== figX"));
        assert!(t.contains("note: shape holds"));
        assert_eq!(t.lines().filter(|l| !l.is_empty()).count(), 6);
    }

    #[test]
    fn save_writes_json_and_attachments() {
        let dir = std::env::temp_dir().join(format!("provio-bench-test-{}", std::process::id()));
        let mut r = Report::new("figY", "demo", &["a"]);
        r.row(vec![1u64.into()]);
        r.attach("figY.dot", "digraph {}");
        r.save(&dir).unwrap();
        assert!(dir.join("figY.json").exists());
        assert!(dir.join("figY.dot").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(3 << 20), "3.00 MiB");
    }
}
