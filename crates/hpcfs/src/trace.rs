//! Syscall trace recording and post-crash disk-state reconstruction —
//! the substrate of the crashcheck explorer (DESIGN.md §15).
//!
//! A workload runs once against a [`FileSystem`] with an [`OpTrace`]
//! attached; every *successful* mutating operation (create, positional
//! write with its full buffer, rename, unlink, truncate) is appended to
//! the trace in issue order. The trace then defines the crash-state
//! space: one state per operation prefix, torn-tail variants of the
//! write at each crash point, and reorder variants that drop an earlier
//! write inside a window where no rename barrier intervenes. Each
//! [`CrashState`] reconstructs into a fresh file system by replaying
//! the surviving prefix, so recovery can be driven — and its invariants
//! checked — against every reachable post-crash disk.
//!
//! The model is deliberately conservative about ordering: data writes
//! may be reordered or lost until a *rename* of any path commits, which
//! models the store's tmp+rename discipline (rename is the protocol's
//! only durability barrier). Operations are never reordered across a
//! rename, and metadata operations (create/rename/unlink/truncate) are
//! never dropped individually — only truncated with everything after
//! them, which the prefix states cover.

use std::sync::{Arc, Mutex};

use crate::fault::{FaultOp, FaultPlan, FaultRule};
use crate::fs::FileSystem;
use crate::lustre::LustreConfig;
use provio_simrt::SimTime;

/// One successful mutating file-system operation, with everything needed
/// to replay it bit-for-bit onto a fresh file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// `create_file` succeeded for `path` (parents implied).
    Create { path: String },
    /// `write_at` persisted `data` at `offset` of the file at `path`.
    WriteAt {
        path: String,
        offset: u64,
        data: Vec<u8>,
    },
    /// `rename` moved `old` to `new` — the protocol's ordering barrier.
    Rename { old: String, new: String },
    /// `unlink` removed `path`.
    Unlink { path: String },
    /// `truncate` resized the file at `path` to `size` bytes.
    Truncate { path: String, size: u64 },
}

impl TraceOp {
    /// The [`FaultOp`] kind a fault rule would match to interrupt this
    /// operation in a live re-run.
    pub fn fault_kind(&self) -> FaultOp {
        match self {
            TraceOp::Create { .. } => FaultOp::CreateFile,
            TraceOp::WriteAt { .. } => FaultOp::WriteAt,
            TraceOp::Rename { .. } => FaultOp::Rename,
            TraceOp::Unlink { .. } => FaultOp::Unlink,
            TraceOp::Truncate { .. } => FaultOp::TruncateIno,
        }
    }

    /// The primary path the operation touches (the fault-rule match key).
    pub fn path(&self) -> &str {
        match self {
            TraceOp::Create { path }
            | TraceOp::WriteAt { path, .. }
            | TraceOp::Unlink { path }
            | TraceOp::Truncate { path, .. } => path,
            TraceOp::Rename { old, .. } => old,
        }
    }
}

/// An append-only recording of every successful mutating operation on a
/// file system, attached via [`FileSystem::attach_tracer`]. Cheap to
/// share: the file system holds an `Arc` and appends under a mutex.
#[derive(Debug, Default)]
pub struct OpTrace {
    ops: Mutex<Vec<TraceOp>>,
}

impl OpTrace {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record one operation (called by the file system on success).
    pub fn record(&self, op: TraceOp) {
        self.ops.lock().expect("trace lock").push(op);
    }

    /// Number of operations recorded so far. Workloads sample this
    /// between phases to mark ack points in the trace.
    pub fn len(&self) -> usize {
        self.ops.lock().expect("trace lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the recorded operations.
    pub fn snapshot(&self) -> Vec<TraceOp> {
        self.ops.lock().expect("trace lock").clone()
    }
}

/// How the operation *at* the crash point fared, refining the plain
/// prefix state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrashVariant {
    /// Operations `0..prefix` persisted whole; nothing after survives.
    Clean,
    /// Additionally, the first `keep` bytes of the write at index
    /// `prefix` reached disk before the crash (a torn tail).
    TornNext { keep: u64 },
    /// The write at index `op` (`op < prefix`) never reached disk even
    /// though later operations did — legal reordering inside a window
    /// with no intervening rename barrier.
    DroppedWrite { op: usize },
}

/// One reachable post-crash disk state of a traced workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashState {
    /// Operations `0..prefix` are on disk (minus a dropped write).
    pub prefix: usize,
    pub variant: CrashVariant,
}

impl std::fmt::Display for CrashState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.variant {
            CrashVariant::Clean => write!(f, "prefix {}", self.prefix),
            CrashVariant::TornNext { keep } => {
                write!(f, "prefix {} + torn write ({} bytes kept)", self.prefix, keep)
            }
            CrashVariant::DroppedWrite { op } => {
                write!(f, "prefix {} with write #{op} dropped", self.prefix)
            }
        }
    }
}

/// Severity/simplicity order for the minimizer: for the same prefix, a
/// clean truncation is a simpler repro than a torn tail, which is
/// simpler than a reorder.
fn variant_rank(v: &CrashVariant) -> u8 {
    match v {
        CrashVariant::Clean => 0,
        CrashVariant::TornNext { .. } => 1,
        CrashVariant::DroppedWrite { .. } => 2,
    }
}

impl CrashState {
    /// Total order used by the failing-state minimizer: smallest prefix
    /// first, simpler variant first.
    pub fn sort_key(&self) -> (usize, u8) {
        (self.prefix, variant_rank(&self.variant))
    }
}

/// Enumerate every crash state of `ops`, in minimizer order.
///
/// * one [`CrashVariant::Clean`] state per prefix `0..=len` (the full
///   prefix is the crash-free run — recovery must be a no-op there);
/// * for each prefix whose next operation is a write of ≥ 2 bytes,
///   [`CrashVariant::TornNext`] states at keep points 1, len/2 and
///   len−1 (deduplicated);
/// * for each prefix, one [`CrashVariant::DroppedWrite`] per earlier
///   write with no rename barrier between the write and the crash
///   point. `max_dropped` caps these (they grow quadratically); the cap
///   keeps an even deterministic stride across the window list, never a
///   silent truncation of one region.
pub fn enumerate_crash_states(ops: &[TraceOp], max_dropped: usize) -> Vec<CrashState> {
    let mut states = Vec::new();
    for prefix in 0..=ops.len() {
        states.push(CrashState {
            prefix,
            variant: CrashVariant::Clean,
        });
        if let Some(TraceOp::WriteAt { data, .. }) = ops.get(prefix) {
            let len = data.len() as u64;
            if len >= 2 {
                let mut keeps = vec![1, len / 2, len - 1];
                keeps.sort_unstable();
                keeps.dedup();
                for keep in keeps {
                    if keep > 0 && keep < len {
                        states.push(CrashState {
                            prefix,
                            variant: CrashVariant::TornNext { keep },
                        });
                    }
                }
            }
        }
    }

    // Reorder variants: a write at `i` drops while `i+1..prefix` persist,
    // provided no rename (the barrier) sits in `i+1..prefix`. Walking
    // prefixes outward from each write visits each window once.
    let mut dropped = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if !matches!(op, TraceOp::WriteAt { .. }) {
            continue;
        }
        for prefix in (i + 2)..=ops.len() {
            if ops[i + 1..prefix]
                .iter()
                .any(|o| matches!(o, TraceOp::Rename { .. }))
            {
                break;
            }
            dropped.push(CrashState {
                prefix,
                variant: CrashVariant::DroppedWrite { op: i },
            });
        }
    }
    if dropped.len() > max_dropped && max_dropped > 0 {
        let stride = dropped.len().div_ceil(max_dropped);
        dropped = dropped.into_iter().step_by(stride).collect();
    } else if max_dropped == 0 {
        dropped.clear();
    }
    states.extend(dropped);
    states.sort_by_key(CrashState::sort_key);
    states
}

/// Replay `ops[..prefix]` onto `fs`, skipping index `skip` if given,
/// then (for torn states) the kept head of the write at `prefix`.
/// Replay resolves paths at apply time, so renames recorded mid-trace
/// compose exactly as they did live.
pub fn apply_prefix(fs: &Arc<FileSystem>, ops: &[TraceOp], state: &CrashState) {
    let now = SimTime::ZERO;
    let skip = match state.variant {
        CrashVariant::DroppedWrite { op } => Some(op),
        _ => None,
    };
    let apply = |op: &TraceOp, torn_keep: Option<u64>| match op {
        TraceOp::Create { path } => {
            if let Some((dir, _)) = path.rsplit_once('/') {
                if !dir.is_empty() {
                    let _ = fs.mkdir_all(dir, "crashcheck", now);
                }
            }
            let _ = fs.create_file(path, false, "crashcheck", now);
        }
        TraceOp::WriteAt { path, offset, data } => {
            let ino = match fs.lookup(path) {
                Ok(ino) => ino,
                // A dropped create cannot precede a recorded write (creates
                // are never dropped), but a reconstruction under a skipped
                // write may leave the file shorter than recorded — recreate
                // defensively so replay never wedges.
                Err(_) => match fs.create_file(path, false, "crashcheck", now) {
                    Ok(ino) => ino,
                    Err(_) => return,
                },
            };
            let data = match torn_keep {
                Some(keep) => &data[..keep.min(data.len() as u64) as usize],
                None => &data[..],
            };
            let _ = fs.write_at(ino, *offset, data, now);
        }
        TraceOp::Rename { old, new } => {
            let _ = fs.rename(old, new, now);
        }
        TraceOp::Unlink { path } => {
            let _ = fs.unlink(path);
        }
        TraceOp::Truncate { path, size } => {
            if let Ok(ino) = fs.lookup(path) {
                let _ = fs.truncate_ino(ino, *size, now);
            }
        }
    };
    for (i, op) in ops.iter().take(state.prefix).enumerate() {
        if Some(i) == skip {
            continue;
        }
        apply(op, None);
    }
    if let CrashVariant::TornNext { keep } = state.variant {
        if let Some(op @ TraceOp::WriteAt { .. }) = ops.get(state.prefix) {
            apply(op, Some(keep));
        }
    }
}

/// Reconstruct the post-crash disk of `state` as a fresh file system.
pub fn reconstruct(ops: &[TraceOp], state: &CrashState) -> Arc<FileSystem> {
    let fs = FileSystem::new(LustreConfig::default());
    apply_prefix(&fs, ops, state);
    fs
}

/// A deterministic [`FaultPlan`] that reproduces `state` in a live
/// re-run of the same workload: crash on the Nth operation of the
/// matching kind, torn-tail included. `None` for states a single crash
/// rule cannot express — the crash-free full prefix, and reorder
/// states (those reproduce via [`reconstruct`]; see
/// [`describe_state`]).
pub fn repro_plan(ops: &[TraceOp], state: &CrashState, seed: u64) -> Option<Arc<FaultPlan>> {
    if state.prefix >= ops.len() && matches!(state.variant, CrashVariant::Clean) {
        return None;
    }
    if matches!(state.variant, CrashVariant::DroppedWrite { .. }) {
        return None;
    }
    let target = ops.get(state.prefix)?;
    let kind = target.fault_kind();
    let prior = ops[..state.prefix]
        .iter()
        .filter(|o| o.fault_kind() == kind)
        .count();
    let mut rule = FaultRule::crash(kind).after(prior as u32).times(1);
    if let CrashVariant::TornNext { keep } = state.variant {
        rule = rule.torn(keep);
    }
    Some(FaultPlan::new(seed).with_rule(rule))
}

/// A human-readable specification of `state` against its trace — the
/// repro artifact for states [`repro_plan`] cannot express, and the
/// context line for those it can.
pub fn describe_state(ops: &[TraceOp], state: &CrashState) -> String {
    let mut out = format!("crash state: {state}\n");
    let around = state.prefix.saturating_sub(3)..(state.prefix + 2).min(ops.len());
    for i in around {
        let marker = if i == state.prefix { ">" } else { " " };
        let dropped = matches!(state.variant, CrashVariant::DroppedWrite { op } if op == i);
        let d = if dropped { " [DROPPED]" } else { "" };
        let line = match &ops[i] {
            TraceOp::Create { path } => format!("create {path}"),
            TraceOp::WriteAt { path, offset, data } => {
                format!("write {path} @{offset} +{}", data.len())
            }
            TraceOp::Rename { old, new } => format!("rename {old} -> {new}"),
            TraceOp::Unlink { path } => format!("unlink {path}"),
            TraceOp::Truncate { path, size } => format!("truncate {path} -> {size}"),
        };
        out.push_str(&format!("{marker} op {i:5}: {line}{d}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FsError;

    const T0: SimTime = SimTime(1_000);

    fn traced_fs() -> (Arc<FileSystem>, Arc<OpTrace>) {
        let fs = FileSystem::new(LustreConfig::default());
        let trace = OpTrace::new();
        fs.attach_tracer(Arc::clone(&trace));
        (fs, trace)
    }

    fn read(fs: &Arc<FileSystem>, path: &str) -> Option<Vec<u8>> {
        let ino = fs.lookup(path).ok()?;
        let size = fs.file_size(ino).ok()?;
        Some(fs.read_at(ino, 0, size).ok()?.to_vec())
    }

    #[test]
    fn records_successful_mutations_in_order() {
        let (fs, trace) = traced_fs();
        fs.mkdir_all("/d", "t", T0).unwrap();
        let ino = fs.create_file("/d/a.tmp", false, "t", T0).unwrap();
        fs.write_at(ino, 0, b"hello", T0).unwrap();
        fs.rename("/d/a.tmp", "/d/a", T0).unwrap();
        fs.unlink("/d/a").unwrap();
        let ops = trace.snapshot();
        assert_eq!(
            ops,
            vec![
                TraceOp::Create { path: "/d/a.tmp".into() },
                TraceOp::WriteAt {
                    path: "/d/a.tmp".into(),
                    offset: 0,
                    data: b"hello".to_vec()
                },
                TraceOp::Rename { old: "/d/a.tmp".into(), new: "/d/a".into() },
                TraceOp::Unlink { path: "/d/a".into() },
            ]
        );
    }

    #[test]
    fn failed_operations_are_not_recorded() {
        let (fs, trace) = traced_fs();
        assert!(fs.unlink("/missing").is_err());
        assert!(fs.rename("/nope", "/nowhere", T0).is_err());
        assert!(trace.is_empty());
    }

    #[test]
    fn reconstruct_replays_each_prefix() {
        let (fs, trace) = traced_fs();
        fs.mkdir_all("/d", "t", T0).unwrap();
        let ino = fs.create_file("/d/f.tmp", false, "t", T0).unwrap();
        fs.write_at(ino, 0, b"abcdef", T0).unwrap();
        fs.rename("/d/f.tmp", "/d/f", T0).unwrap();
        let ops = trace.snapshot();
        assert_eq!(ops.len(), 3);

        // After only the create, the file exists empty under the tmp name.
        let s1 = CrashState { prefix: 1, variant: CrashVariant::Clean };
        let r1 = reconstruct(&ops, &s1);
        assert_eq!(read(&r1, "/d/f.tmp"), Some(Vec::new()));
        assert!(read(&r1, "/d/f").is_none());

        // Full prefix reproduces the final disk exactly.
        let s3 = CrashState { prefix: 3, variant: CrashVariant::Clean };
        let r3 = reconstruct(&ops, &s3);
        assert_eq!(read(&r3, "/d/f"), Some(b"abcdef".to_vec()));
        assert!(read(&r3, "/d/f.tmp").is_none());
    }

    #[test]
    fn torn_variant_keeps_write_head() {
        let (fs, trace) = traced_fs();
        let ino = fs.create_file("/f", false, "t", T0).unwrap();
        fs.write_at(ino, 0, b"abcdef", T0).unwrap();
        let ops = trace.snapshot();
        let s = CrashState { prefix: 1, variant: CrashVariant::TornNext { keep: 3 } };
        let r = reconstruct(&ops, &s);
        assert_eq!(read(&r, "/f"), Some(b"abc".to_vec()));
    }

    #[test]
    fn dropped_write_variant_skips_one_write() {
        let (fs, trace) = traced_fs();
        let a = fs.create_file("/a", false, "t", T0).unwrap();
        let b = fs.create_file("/b", false, "t", T0).unwrap();
        fs.write_at(a, 0, b"xx", T0).unwrap();
        fs.write_at(b, 0, b"yy", T0).unwrap();
        let ops = trace.snapshot();
        let s = CrashState { prefix: 4, variant: CrashVariant::DroppedWrite { op: 2 } };
        let r = reconstruct(&ops, &s);
        assert_eq!(read(&r, "/a"), Some(Vec::new()));
        assert_eq!(read(&r, "/b"), Some(b"yy".to_vec()));
    }

    #[test]
    fn enumeration_covers_prefixes_torn_and_barriers() {
        let (fs, trace) = traced_fs();
        let a = fs.create_file("/a.tmp", false, "t", T0).unwrap();
        fs.write_at(a, 0, b"abcd", T0).unwrap();
        fs.rename("/a.tmp", "/a", T0).unwrap();
        let b = fs.create_file("/b", false, "t", T0).unwrap();
        fs.write_at(b, 0, b"zz", T0).unwrap();
        let ops = trace.snapshot();
        let states = enumerate_crash_states(&ops, usize::MAX);

        // Every prefix 0..=5 appears as a clean state.
        for p in 0..=ops.len() {
            assert!(states
                .iter()
                .any(|s| s.prefix == p && s.variant == CrashVariant::Clean));
        }
        // Torn variants for the 4-byte write: keeps {1, 2, 3}.
        for keep in [1, 2, 3] {
            assert!(states
                .iter()
                .any(|s| s.prefix == 1 && s.variant == CrashVariant::TornNext { keep }));
        }
        // No reorder crosses the rename at index 2: the write at 1 may
        // drop only with prefix <= 2 (and prefix must exceed op + 1).
        assert!(!states.iter().any(|s| matches!(
            s.variant,
            CrashVariant::DroppedWrite { op: 1 }
        ) && s.prefix > 2));
        // The write at index 4 has nothing after it to reorder past.
        assert!(!states
            .iter()
            .any(|s| matches!(s.variant, CrashVariant::DroppedWrite { op: 4 })));
        // Minimizer order: sorted by (prefix, variant rank).
        let keys: Vec<_> = states.iter().map(CrashState::sort_key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn dropped_budget_strides_evenly() {
        let (fs, trace) = traced_fs();
        let a = fs.create_file("/a", false, "t", T0).unwrap();
        for i in 0..10 {
            fs.write_at(a, i * 2, b"xy", T0).unwrap();
        }
        let ops = trace.snapshot();
        let all = enumerate_crash_states(&ops, usize::MAX);
        let total_dropped = all
            .iter()
            .filter(|s| matches!(s.variant, CrashVariant::DroppedWrite { .. }))
            .count();
        assert!(total_dropped > 8);
        let capped = enumerate_crash_states(&ops, 8);
        let kept: Vec<_> = capped
            .iter()
            .filter(|s| matches!(s.variant, CrashVariant::DroppedWrite { .. }))
            .collect();
        assert!(kept.len() <= 8 && !kept.is_empty());
        let none = enumerate_crash_states(&ops, 0);
        assert!(!none
            .iter()
            .any(|s| matches!(s.variant, CrashVariant::DroppedWrite { .. })));
    }

    #[test]
    fn repro_plan_crashes_the_exact_operation() {
        // Record a workload with three writes; a repro plan for a crash
        // at the third write must fire on that call in a live re-run.
        let (fs, trace) = traced_fs();
        let a = fs.create_file("/a", false, "t", T0).unwrap();
        fs.write_at(a, 0, b"one", T0).unwrap();
        fs.write_at(a, 3, b"two", T0).unwrap();
        fs.write_at(a, 6, b"three", T0).unwrap();
        let ops = trace.snapshot();
        let state = CrashState { prefix: 3, variant: CrashVariant::Clean };
        let plan = repro_plan(&ops, &state, 42).expect("plannable state");

        let live = FileSystem::new(LustreConfig::default());
        live.install_faults(plan);
        let ino = live.create_file("/a", false, "t", T0).unwrap();
        live.write_at(ino, 0, b"one", T0).unwrap();
        live.write_at(ino, 3, b"two", T0).unwrap();
        assert!(matches!(
            live.write_at(ino, 6, b"three", T0),
            Err(FsError::Crashed)
        ));

        // Crash-free full prefix and reorder states have no single-rule plan.
        let full = CrashState { prefix: 4, variant: CrashVariant::Clean };
        assert!(repro_plan(&ops, &full, 42).is_none());
        let dropped = CrashState { prefix: 3, variant: CrashVariant::DroppedWrite { op: 1 } };
        assert!(repro_plan(&ops, &dropped, 42).is_none());
        assert!(describe_state(&ops, &dropped).contains("[DROPPED]"));
    }

    #[test]
    fn torn_repro_plan_keeps_prefix() {
        let (fs, trace) = traced_fs();
        let a = fs.create_file("/a", false, "t", T0).unwrap();
        fs.write_at(a, 0, b"abcdef", T0).unwrap();
        let ops = trace.snapshot();
        let state = CrashState { prefix: 1, variant: CrashVariant::TornNext { keep: 2 } };
        let plan = repro_plan(&ops, &state, 7).expect("plannable");

        let live = FileSystem::new(LustreConfig::default());
        live.install_faults(plan);
        let ino = live.create_file("/a", false, "t", T0).unwrap();
        assert!(live.write_at(ino, 0, b"abcdef", T0).is_err());
        assert_eq!(live.file_size(ino).unwrap(), 2);
    }
}
