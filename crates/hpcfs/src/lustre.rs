//! The Lustre cost model.
//!
//! The paper's storage backend is "a Lustre file system with stripe count of
//! 128 and stripe size of 16MB" (§6.1). This module models what matters for
//! the evaluation's completion times: every operation pays a metadata-server
//! round trip, and bulk transfers stream through up to `stripe_count` object
//! storage targets in parallel.
//!
//! The default constants are calibrated to commodity Lustre deployments
//! (tens-of-microsecond MDS latency, ~1 GB/s per OST). Absolute times are
//! therefore *modeled*; the paper-shape analysis in EXPERIMENTS.md depends
//! only on their ratios to real tracking cost staying in a realistic range.

use provio_simrt::{LatencyBandwidth, SimDuration};

/// Striping + latency parameters for the simulated parallel file system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LustreConfig {
    /// Number of OSTs a file is striped across.
    pub stripe_count: u32,
    /// Stripe size in bytes.
    pub stripe_size: u64,
    /// Metadata server: path resolution, open/create/rename/xattr.
    pub mds: LatencyBandwidth,
    /// One object storage target's data channel.
    pub ost: LatencyBandwidth,
    /// Client-side per-call overhead (VFS + network stack).
    pub client_overhead_ns: u64,
}

impl Default for LustreConfig {
    fn default() -> Self {
        // Paper configuration: stripe count 128, stripe size 16 MB.
        LustreConfig {
            stripe_count: 128,
            stripe_size: 16 * 1024 * 1024,
            mds: LatencyBandwidth::new(60_000, 0), // 60 us metadata RTT
            ost: LatencyBandwidth::new(120_000, 1_000_000_000), // 120 us + 1 GB/s per OST
            client_overhead_ns: 2_000,
        }
    }
}

impl LustreConfig {
    /// A metadata-only operation (open, create, stat, rename, xattr, …).
    pub fn meta_op(&self) -> SimDuration {
        SimDuration::from_nanos(self.client_overhead_ns).saturating_add(self.mds.meta_cost())
    }

    /// A data transfer of `bytes` (read or write).
    ///
    /// The transfer is split round-robin across the stripes it touches; the
    /// per-OST latencies overlap, so the modeled time is one OST latency plus
    /// the slowest OST's share of the bytes.
    pub fn data_op(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::from_nanos(self.client_overhead_ns)
                .saturating_add(SimDuration::from_nanos(self.ost.latency_ns));
        }
        let stripes_touched = (bytes.div_ceil(self.stripe_size))
            .min(self.stripe_count as u64)
            .max(1);
        let per_ost = bytes.div_ceil(stripes_touched);
        SimDuration::from_nanos(self.client_overhead_ns)
            .saturating_add(self.ost.cost(per_ost))
    }

    /// An fsync: metadata commit plus flushing each dirty OST.
    pub fn fsync_op(&self, dirty_bytes: u64) -> SimDuration {
        self.meta_op().saturating_add(self.data_op(dirty_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_op_is_latency_dominated() {
        let c = LustreConfig::default();
        assert_eq!(c.meta_op().as_nanos(), 2_000 + 60_000);
    }

    #[test]
    fn small_transfer_single_stripe() {
        let c = LustreConfig::default();
        let d = c.data_op(1024);
        // 2us client + 120us OST latency + 1 KiB at 1 GB/s (~1us)
        assert!(d.as_nanos() > 122_000 && d.as_nanos() < 125_000, "{d}");
    }

    #[test]
    fn large_transfer_parallelizes_across_stripes() {
        let c = LustreConfig::default();
        let one_gb = 1u64 << 30;
        let striped = c.data_op(one_gb);
        // 1 GiB touches 64 stripes of 16 MB → per-OST share is 16 MiB.
        let serial = c.ost.cost(one_gb);
        assert!(striped.as_nanos() < serial.as_nanos() / 32, "{striped} vs {serial}");
    }

    #[test]
    fn stripes_cap_at_stripe_count() {
        let c = LustreConfig {
            stripe_count: 2,
            ..Default::default()
        };
        let bytes = 10 * c.stripe_size;
        // Two OSTs → per-OST share = 5 stripes.
        let d = c.data_op(bytes);
        let expect = c.ost.cost(bytes / 2).as_nanos() + c.client_overhead_ns;
        assert_eq!(d.as_nanos(), expect);
    }

    #[test]
    fn data_op_monotone_in_bytes() {
        let c = LustreConfig::default();
        let mut last = SimDuration::ZERO;
        for bytes in [0u64, 1, 1024, 1 << 20, 1 << 30, 1 << 40] {
            let d = c.data_op(bytes);
            assert!(d >= last, "cost must be monotone: {bytes}");
            last = d;
        }
    }

    #[test]
    fn fsync_includes_meta_and_data() {
        let c = LustreConfig::default();
        assert!(c.fsync_op(0) >= c.meta_op());
        assert!(c.fsync_op(1 << 20) > c.fsync_op(0));
    }
}
