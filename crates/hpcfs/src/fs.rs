//! The in-memory POSIX-like file system.
//!
//! `FileSystem` owns the namespace and inode table behind one
//! `parking_lot::RwLock`; all path-level operations are short and
//! lock-scoped, so many simulated processes can share one instance. Modeled
//! I/O *time* is charged by the [`crate::session::FsSession`] layer, not
//! here — this module is pure semantics.

use crate::content::FileContent;
use crate::error::{FsError, FsResult};
use crate::fault::{CorruptKind, FaultAction, FaultOp, FaultPlan, TamperKind};
use crate::lustre::LustreConfig;
use crate::trace::{OpTrace, TraceOp};
use parking_lot::{Mutex, RwLock};
use provio_simrt::{DetRng, SimDuration, SimTime, VirtualClock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

pub type Ino = u64;

const SYMLINK_LIMIT: usize = 40;

/// RNG stream for [`FileSystem::corrupt_at_rest`], distinct from the fault
/// plan's own stream so rest-time damage never perturbs scheduled faults.
const REST_CORRUPTION_STREAM: u64 = 0xB172;

/// Stream id for [`FileSystem::tamper_at_rest`] draws, separate from the
/// rot stream so a tamper schedule never perturbs a corruption schedule
/// under the same seed.
const REST_TAMPER_STREAM: u64 = 0x7A3F;

/// What kind of object an inode is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    File,
    Directory,
    Symlink,
}

#[derive(Debug)]
enum Node {
    File(FileContent),
    Dir(BTreeMap<String, Ino>),
    Symlink(String),
}

#[derive(Debug)]
struct Inode {
    node: Node,
    nlink: u32,
    xattrs: BTreeMap<String, Vec<u8>>,
    owner: String,
    mtime: SimTime,
    ctime: SimTime,
}

impl Inode {
    fn kind(&self) -> FileKind {
        match self.node {
            Node::File(_) => FileKind::File,
            Node::Dir(_) => FileKind::Directory,
            Node::Symlink(_) => FileKind::Symlink,
        }
    }

    fn as_dir(&self) -> FsResult<&BTreeMap<String, Ino>> {
        match &self.node {
            Node::Dir(d) => Ok(d),
            _ => Err(FsError::NotADirectory),
        }
    }

    fn as_dir_mut(&mut self) -> FsResult<&mut BTreeMap<String, Ino>> {
        match &mut self.node {
            Node::Dir(d) => Ok(d),
            _ => Err(FsError::NotADirectory),
        }
    }

    fn as_file(&self) -> FsResult<&FileContent> {
        match &self.node {
            Node::File(f) => Ok(f),
            Node::Dir(_) => Err(FsError::IsADirectory),
            Node::Symlink(_) => Err(FsError::InvalidArgument),
        }
    }

    fn as_file_mut(&mut self) -> FsResult<&mut FileContent> {
        match &mut self.node {
            Node::File(f) => Ok(f),
            Node::Dir(_) => Err(FsError::IsADirectory),
            Node::Symlink(_) => Err(FsError::InvalidArgument),
        }
    }
}

/// stat(2)-style metadata snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    pub ino: Ino,
    pub kind: FileKind,
    pub size: u64,
    pub nlink: u32,
    pub owner: String,
    pub mtime: SimTime,
    pub ctime: SimTime,
}

struct FsInner {
    inodes: HashMap<Ino, Inode>,
    next_ino: Ino,
    root: Ino,
}

/// A shareable simulated file system with a Lustre cost model attached.
pub struct FileSystem {
    inner: RwLock<FsInner>,
    config: LustreConfig,
    /// Installed fault schedule, if any (see [`crate::fault`]).
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// ino → last-created/renamed path, so ino-level ops (`write_at`,
    /// `truncate_ino`) can be matched by path-filtered fault rules.
    ino_paths: Mutex<HashMap<Ino, String>>,
    /// Clock that [`FaultAction::Delay`] stalls are charged to, when one is
    /// attached. Time charging otherwise stays in the session layer.
    clock: RwLock<Option<VirtualClock>>,
    /// Attached syscall trace for crashcheck, if any (see [`crate::trace`]).
    /// Successful mutating operations are recorded in issue order.
    tracer: RwLock<Option<Arc<OpTrace>>>,
}

impl FileSystem {
    /// An empty file system with the given Lustre configuration.
    pub fn new(config: LustreConfig) -> Arc<Self> {
        let root = Inode {
            node: Node::Dir(BTreeMap::new()),
            nlink: 2,
            xattrs: BTreeMap::new(),
            owner: "root".to_string(),
            mtime: SimTime::ZERO,
            ctime: SimTime::ZERO,
        };
        let mut inodes = HashMap::new();
        inodes.insert(1, root);
        Arc::new(FileSystem {
            inner: RwLock::new(FsInner {
                inodes,
                next_ino: 2,
                root: 1,
            }),
            config,
            faults: RwLock::new(None),
            ino_paths: Mutex::new(HashMap::new()),
            clock: RwLock::new(None),
            tracer: RwLock::new(None),
        })
    }

    /// The cost model used for this file system.
    pub fn config(&self) -> &LustreConfig {
        &self.config
    }

    // --- fault injection -------------------------------------------------

    /// Install a fault schedule, replacing any existing one.
    pub fn install_faults(&self, plan: Arc<FaultPlan>) {
        *self.faults.write() = Some(plan);
    }

    /// Remove the installed fault schedule.
    pub fn clear_faults(&self) {
        *self.faults.write() = None;
    }

    fn fault_decision(&self, op: FaultOp, path: &str) -> Option<FaultAction> {
        self.faults.read().as_ref().and_then(|p| p.decide(op, path))
    }

    /// Attach the clock [`FaultAction::Delay`] stalls are charged to.
    /// Virtual clocks share state through their handles, so the caller
    /// keeps observing the injected latency on its own copy.
    pub fn attach_clock(&self, clock: VirtualClock) {
        *self.clock.write() = Some(clock);
    }

    /// Detach the delay clock; stalls become counted no-ops again.
    pub fn detach_clock(&self) {
        *self.clock.write() = None;
    }

    // --- syscall tracing -------------------------------------------------

    /// Attach an operation trace; every subsequent successful mutating
    /// operation (create/write/rename/unlink/truncate) is recorded for
    /// crash-state enumeration (see [`crate::trace`]).
    pub fn attach_tracer(&self, trace: Arc<OpTrace>) {
        *self.tracer.write() = Some(trace);
    }

    /// Detach the operation trace; recording stops.
    pub fn detach_tracer(&self) {
        *self.tracer.write() = None;
    }

    /// Record `op` on the attached trace, if any. Called only after the
    /// operation has fully succeeded, so the trace replays cleanly.
    fn trace_op(&self, op: impl FnOnce() -> TraceOp) {
        if let Some(t) = self.tracer.read().as_ref() {
            t.record(op());
        }
    }

    /// Serve a fired [`FaultAction::Delay`]: advance the attached clock (if
    /// any) and let the caller proceed to the real operation.
    fn stall(&self, ns: u64) {
        if let Some(clock) = self.clock.read().as_ref() {
            clock.advance(SimDuration::from_nanos(ns));
        }
    }

    fn ino_path(&self, ino: Ino) -> String {
        self.ino_paths.lock().get(&ino).cloned().unwrap_or_default()
    }

    // --- path machinery ------------------------------------------------

    fn split_path(path: &str) -> FsResult<Vec<&str>> {
        if !path.starts_with('/') {
            return Err(FsError::BadPath);
        }
        Ok(path.split('/').filter(|c| !c.is_empty() && *c != ".").collect())
    }

    fn resolve_in(inner: &FsInner, path: &str, follow_last: bool) -> FsResult<Ino> {
        Self::resolve_rec(inner, path, follow_last, 0)
    }

    fn resolve_rec(
        inner: &FsInner,
        path: &str,
        follow_last: bool,
        depth: usize,
    ) -> FsResult<Ino> {
        if depth > SYMLINK_LIMIT {
            return Err(FsError::TooManySymlinks);
        }
        let comps = Self::split_path(path)?;
        let mut cur = inner.root;
        let mut stack: Vec<Ino> = vec![inner.root];
        for (i, comp) in comps.iter().enumerate() {
            if *comp == ".." {
                stack.pop();
                cur = *stack.last().unwrap_or(&inner.root);
                continue;
            }
            let inode = inner.inodes.get(&cur).ok_or(FsError::NotFound)?;
            let dir = inode.as_dir()?;
            let &child = dir.get(*comp).ok_or(FsError::NotFound)?;
            let child_inode = inner.inodes.get(&child).ok_or(FsError::NotFound)?;
            let is_last = i + 1 == comps.len();
            if let Node::Symlink(target) = &child_inode.node {
                if !is_last || follow_last {
                    // Resolve the symlink target, then continue with the
                    // remaining components appended.
                    let rest: String = comps[i + 1..].join("/");
                    let full = if rest.is_empty() {
                        target.clone()
                    } else {
                        format!("{}/{}", target.trim_end_matches('/'), rest)
                    };
                    return Self::resolve_rec(inner, &full, follow_last, depth + 1);
                }
            }
            cur = child;
            stack.push(child);
        }
        Ok(cur)
    }

    /// Resolve parent directory + final component of `path`.
    fn resolve_parent<'p>(inner: &FsInner, path: &'p str) -> FsResult<(Ino, &'p str)> {
        let comps = Self::split_path(path)?;
        let Some((&name, parents)) = comps.split_last() else {
            return Err(FsError::InvalidArgument); // operating on "/"
        };
        if name == ".." {
            return Err(FsError::InvalidArgument);
        }
        let parent_path = format!("/{}", parents.join("/"));
        let parent = Self::resolve_in(inner, &parent_path, true)?;
        Ok((parent, name))
    }

    // --- namespace operations -------------------------------------------

    /// Look up `path`, following symlinks.
    pub fn lookup(&self, path: &str) -> FsResult<Ino> {
        let inner = self.inner.read();
        Self::resolve_in(&inner, path, true)
    }

    pub fn exists(&self, path: &str) -> bool {
        self.lookup(path).is_ok()
    }

    /// Create a regular file. `excl` makes an existing file an error;
    /// otherwise an existing regular file is reused (open(O_CREAT)).
    pub fn create_file(
        &self,
        path: &str,
        excl: bool,
        owner: &str,
        now: SimTime,
    ) -> FsResult<Ino> {
        match self.fault_decision(FaultOp::CreateFile, path) {
            Some(FaultAction::Fail(e)) => return Err(e),
            Some(FaultAction::TornWrite { .. }) => return Err(FsError::Io),
            Some(FaultAction::Crash { .. }) => return Err(FsError::Crashed),
            // Creation moves no data to corrupt; degrade to a media error.
            Some(FaultAction::Corrupt(_)) => return Err(FsError::Io),
            Some(FaultAction::Delay { ns }) => self.stall(ns),
            None => {}
        }
        let ino = self.create_file_inner(path, excl, owner, now)?;
        self.ino_paths.lock().insert(ino, path.to_string());
        self.trace_op(|| TraceOp::Create { path: path.to_string() });
        Ok(ino)
    }

    fn create_file_inner(
        &self,
        path: &str,
        excl: bool,
        owner: &str,
        now: SimTime,
    ) -> FsResult<Ino> {
        let mut inner = self.inner.write();
        let (parent, name) = Self::resolve_parent(&inner, path)?;
        let pdir = inner
            .inodes
            .get(&parent)
            .ok_or(FsError::NotFound)?
            .as_dir()?;
        if let Some(&existing) = pdir.get(name) {
            if excl {
                return Err(FsError::AlreadyExists);
            }
            let node = inner.inodes.get(&existing).ok_or(FsError::NotFound)?;
            return match node.kind() {
                FileKind::File => Ok(existing),
                FileKind::Directory => Err(FsError::IsADirectory),
                FileKind::Symlink => {
                    // Follow to the target (which must exist).
                    Self::resolve_in(&inner, path, true)
                }
            };
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        inner.inodes.insert(
            ino,
            Inode {
                node: Node::File(FileContent::new()),
                nlink: 1,
                xattrs: BTreeMap::new(),
                owner: owner.to_string(),
                mtime: now,
                ctime: now,
            },
        );
        inner
            .inodes
            .get_mut(&parent)
            .expect("parent exists")
            .as_dir_mut()?
            .insert(name.to_string(), ino);
        Ok(ino)
    }

    pub fn mkdir(&self, path: &str, owner: &str, now: SimTime) -> FsResult<Ino> {
        let mut inner = self.inner.write();
        let (parent, name) = Self::resolve_parent(&inner, path)?;
        let pdir = inner
            .inodes
            .get(&parent)
            .ok_or(FsError::NotFound)?
            .as_dir()?;
        if pdir.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        inner.inodes.insert(
            ino,
            Inode {
                node: Node::Dir(BTreeMap::new()),
                nlink: 2,
                xattrs: BTreeMap::new(),
                owner: owner.to_string(),
                mtime: now,
                ctime: now,
            },
        );
        inner
            .inodes
            .get_mut(&parent)
            .expect("parent exists")
            .as_dir_mut()?
            .insert(name.to_string(), ino);
        Ok(ino)
    }

    /// `mkdir -p`.
    pub fn mkdir_all(&self, path: &str, owner: &str, now: SimTime) -> FsResult<()> {
        let comps: Vec<&str> = {
            // Validate syntax up front.
            Self::split_path(path)?
        };
        let mut cur = String::new();
        for c in comps {
            cur.push('/');
            cur.push_str(c);
            match self.mkdir(&cur, owner, now) {
                Ok(_) | Err(FsError::AlreadyExists) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    pub fn unlink(&self, path: &str) -> FsResult<()> {
        match self.fault_decision(FaultOp::Unlink, path) {
            Some(FaultAction::Fail(e)) => return Err(e),
            Some(FaultAction::TornWrite { .. }) => return Err(FsError::Io),
            Some(FaultAction::Crash { .. }) => return Err(FsError::Crashed),
            // An unlink moves no data to corrupt; degrade to a media error.
            Some(FaultAction::Corrupt(_)) => return Err(FsError::Io),
            Some(FaultAction::Delay { ns }) => self.stall(ns),
            None => {}
        }
        self.unlink_inner(path)?;
        self.trace_op(|| TraceOp::Unlink { path: path.to_string() });
        Ok(())
    }

    fn unlink_inner(&self, path: &str) -> FsResult<()> {
        let mut inner = self.inner.write();
        let (parent, name) = Self::resolve_parent(&inner, path)?;
        let pdir = inner
            .inodes
            .get(&parent)
            .ok_or(FsError::NotFound)?
            .as_dir()?;
        let &ino = pdir.get(name).ok_or(FsError::NotFound)?;
        if inner.inodes[&ino].kind() == FileKind::Directory {
            return Err(FsError::IsADirectory);
        }
        inner
            .inodes
            .get_mut(&parent)
            .expect("parent exists")
            .as_dir_mut()?
            .remove(name);
        let drop_inode = {
            let node = inner.inodes.get_mut(&ino).expect("linked inode");
            node.nlink -= 1;
            node.nlink == 0
        };
        if drop_inode {
            inner.inodes.remove(&ino);
        }
        Ok(())
    }

    pub fn rmdir(&self, path: &str) -> FsResult<()> {
        let mut inner = self.inner.write();
        let (parent, name) = Self::resolve_parent(&inner, path)?;
        let pdir = inner
            .inodes
            .get(&parent)
            .ok_or(FsError::NotFound)?
            .as_dir()?;
        let &ino = pdir.get(name).ok_or(FsError::NotFound)?;
        let dir = inner.inodes[&ino].as_dir()?;
        if !dir.is_empty() {
            return Err(FsError::NotEmpty);
        }
        inner
            .inodes
            .get_mut(&parent)
            .expect("parent exists")
            .as_dir_mut()?
            .remove(name);
        inner.inodes.remove(&ino);
        Ok(())
    }

    /// rename(2): atomically move `old` to `new`, replacing a non-directory
    /// target.
    pub fn rename(&self, old: &str, new: &str, now: SimTime) -> FsResult<()> {
        if let Some(action) = self
            .fault_decision(FaultOp::Rename, old)
            .or_else(|| self.fault_decision(FaultOp::Rename, new))
        {
            match action {
                FaultAction::Fail(e) => return Err(e),
                FaultAction::TornWrite { .. } => return Err(FsError::Io),
                FaultAction::Crash { .. } => return Err(FsError::Crashed),
                // A rename moves no data to corrupt; degrade to a media error.
                FaultAction::Corrupt(_) => return Err(FsError::Io),
                FaultAction::Delay { ns } => self.stall(ns),
            }
        }
        let ino = self.rename_inner(old, new, now)?;
        self.ino_paths.lock().insert(ino, new.to_string());
        self.trace_op(|| TraceOp::Rename {
            old: old.to_string(),
            new: new.to_string(),
        });
        Ok(())
    }

    fn rename_inner(&self, old: &str, new: &str, now: SimTime) -> FsResult<Ino> {
        let mut inner = self.inner.write();
        let (old_parent, old_name) = Self::resolve_parent(&inner, old)?;
        let (new_parent, new_name) = Self::resolve_parent(&inner, new)?;
        let &ino = inner
            .inodes
            .get(&old_parent)
            .ok_or(FsError::NotFound)?
            .as_dir()?
            .get(old_name)
            .ok_or(FsError::NotFound)?;
        // Replacing an existing target?
        if let Some(&target) = inner
            .inodes
            .get(&new_parent)
            .ok_or(FsError::NotFound)?
            .as_dir()?
            .get(new_name)
        {
            if target == ino {
                return Ok(ino); // rename to itself
            }
            match inner.inodes[&target].kind() {
                FileKind::Directory => {
                    if !inner.inodes[&target].as_dir()?.is_empty() {
                        return Err(FsError::NotEmpty);
                    }
                    if inner.inodes[&ino].kind() != FileKind::Directory {
                        return Err(FsError::IsADirectory);
                    }
                    inner.inodes.remove(&target);
                }
                _ => {
                    let drop_inode = {
                        let t = inner.inodes.get_mut(&target).expect("target exists");
                        t.nlink -= 1;
                        t.nlink == 0
                    };
                    if drop_inode {
                        inner.inodes.remove(&target);
                    }
                }
            }
        }
        inner
            .inodes
            .get_mut(&old_parent)
            .expect("resolved")
            .as_dir_mut()?
            .remove(old_name);
        inner
            .inodes
            .get_mut(&new_parent)
            .expect("resolved")
            .as_dir_mut()?
            .insert(new_name.to_string(), ino);
        if let Some(n) = inner.inodes.get_mut(&ino) {
            n.ctime = now;
        }
        Ok(ino)
    }

    /// Hard link `existing` at `new`.
    pub fn link(&self, existing: &str, new: &str, now: SimTime) -> FsResult<()> {
        let mut inner = self.inner.write();
        let ino = Self::resolve_in(&inner, existing, true)?;
        if inner.inodes[&ino].kind() == FileKind::Directory {
            return Err(FsError::IsADirectory);
        }
        let (parent, name) = Self::resolve_parent(&inner, new)?;
        let pdir = inner
            .inodes
            .get(&parent)
            .ok_or(FsError::NotFound)?
            .as_dir()?;
        if pdir.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        inner
            .inodes
            .get_mut(&parent)
            .expect("parent exists")
            .as_dir_mut()?
            .insert(name.to_string(), ino);
        let n = inner.inodes.get_mut(&ino).expect("linked inode");
        n.nlink += 1;
        n.ctime = now;
        Ok(())
    }

    /// Symlink at `linkpath` pointing at `target` (not required to exist).
    pub fn symlink(
        &self,
        target: &str,
        linkpath: &str,
        owner: &str,
        now: SimTime,
    ) -> FsResult<()> {
        let mut inner = self.inner.write();
        let (parent, name) = Self::resolve_parent(&inner, linkpath)?;
        let pdir = inner
            .inodes
            .get(&parent)
            .ok_or(FsError::NotFound)?
            .as_dir()?;
        if pdir.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        inner.inodes.insert(
            ino,
            Inode {
                node: Node::Symlink(target.to_string()),
                nlink: 1,
                xattrs: BTreeMap::new(),
                owner: owner.to_string(),
                mtime: now,
                ctime: now,
            },
        );
        inner
            .inodes
            .get_mut(&parent)
            .expect("parent exists")
            .as_dir_mut()?
            .insert(name.to_string(), ino);
        Ok(())
    }

    pub fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        let inner = self.inner.read();
        let ino = Self::resolve_in(&inner, path, true)?;
        Ok(inner.inodes[&ino].as_dir()?.keys().cloned().collect())
    }

    pub fn stat(&self, path: &str) -> FsResult<Metadata> {
        let inner = self.inner.read();
        let ino = Self::resolve_in(&inner, path, true)?;
        Ok(Self::stat_ino_in(&inner, ino))
    }

    /// lstat(2): do not follow a final symlink.
    pub fn lstat(&self, path: &str) -> FsResult<Metadata> {
        let inner = self.inner.read();
        let ino = Self::resolve_in(&inner, path, false)?;
        Ok(Self::stat_ino_in(&inner, ino))
    }

    pub fn stat_ino(&self, ino: Ino) -> FsResult<Metadata> {
        let inner = self.inner.read();
        if !inner.inodes.contains_key(&ino) {
            return Err(FsError::NotFound);
        }
        Ok(Self::stat_ino_in(&inner, ino))
    }

    fn stat_ino_in(inner: &FsInner, ino: Ino) -> Metadata {
        let n = &inner.inodes[&ino];
        let size = match &n.node {
            Node::File(f) => f.len(),
            Node::Dir(d) => d.len() as u64,
            Node::Symlink(t) => t.len() as u64,
        };
        Metadata {
            ino,
            kind: n.kind(),
            size,
            nlink: n.nlink,
            owner: n.owner.clone(),
            mtime: n.mtime,
            ctime: n.ctime,
        }
    }

    // --- file data -------------------------------------------------------

    pub fn read_at(&self, ino: Ino, offset: u64, len: u64) -> FsResult<bytes::Bytes> {
        let plan = self.faults.read().clone();
        if let Some(p) = &plan {
            match p.decide(FaultOp::ReadAt, &self.ino_path(ino)) {
                Some(FaultAction::Fail(e)) => return Err(e),
                Some(FaultAction::TornWrite { .. }) => return Err(FsError::Io),
                Some(FaultAction::Crash { .. }) => return Err(FsError::Crashed),
                Some(FaultAction::Corrupt(kind)) => {
                    // Corrupt only the returned copy: the media stays intact,
                    // modeling a transient read-path (network/cache) flip.
                    let mut buf = {
                        let inner = self.inner.read();
                        let n = inner.inodes.get(&ino).ok_or(FsError::BadFd)?;
                        n.as_file()?.read(offset, len).to_vec()
                    };
                    p.apply_corruption(&kind, &mut buf);
                    return Ok(bytes::Bytes::from(buf));
                }
                Some(FaultAction::Delay { ns }) => self.stall(ns),
                None => {}
            }
        }
        let inner = self.inner.read();
        let n = inner.inodes.get(&ino).ok_or(FsError::BadFd)?;
        Ok(n.as_file()?.read(offset, len))
    }

    pub fn write_at(&self, ino: Ino, offset: u64, data: &[u8], now: SimTime) -> FsResult<()> {
        let plan = self.faults.read().clone();
        let decision = plan
            .as_ref()
            .and_then(|p| p.decide(FaultOp::WriteAt, &self.ino_path(ino)));
        match decision {
            Some(FaultAction::Fail(e)) => return Err(e),
            Some(FaultAction::TornWrite { keep }) => {
                // Persist only a prefix, then report the media error.
                let keep = keep.min(data.len() as u64) as usize;
                if keep > 0 {
                    self.write_at_inner(ino, offset, &data[..keep], now)?;
                }
                return Err(FsError::Io);
            }
            Some(FaultAction::Crash { torn_keep }) => {
                if let Some(keep) = torn_keep {
                    let keep = keep.min(data.len() as u64) as usize;
                    if keep > 0 {
                        let _ = self.write_at_inner(ino, offset, &data[..keep], now);
                    }
                }
                return Err(FsError::Crashed);
            }
            Some(FaultAction::Corrupt(kind)) => {
                // Silent corruption: the damaged buffer lands on media and
                // the write reports success, as a failing disk would.
                let mut buf = data.to_vec();
                plan.as_ref()
                    .expect("decision implies a plan")
                    .apply_corruption(&kind, &mut buf);
                return self.write_at_inner(ino, offset, &buf, now);
            }
            Some(FaultAction::Delay { ns }) => self.stall(ns),
            None => {}
        }
        self.write_at_inner(ino, offset, data, now)?;
        self.trace_op(|| TraceOp::WriteAt {
            path: self.ino_path(ino),
            offset,
            data: data.to_vec(),
        });
        Ok(())
    }

    fn write_at_inner(&self, ino: Ino, offset: u64, data: &[u8], now: SimTime) -> FsResult<()> {
        let mut inner = self.inner.write();
        let n = inner.inodes.get_mut(&ino).ok_or(FsError::BadFd)?;
        n.as_file_mut()?.write(offset, data);
        n.mtime = now;
        Ok(())
    }

    pub fn write_synthetic_at(
        &self,
        ino: Ino,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> FsResult<()> {
        let mut inner = self.inner.write();
        let n = inner.inodes.get_mut(&ino).ok_or(FsError::BadFd)?;
        n.as_file_mut()?.write_synthetic(offset, len);
        n.mtime = now;
        Ok(())
    }

    pub fn truncate_ino(&self, ino: Ino, size: u64, now: SimTime) -> FsResult<()> {
        match self.fault_decision(FaultOp::TruncateIno, &self.ino_path(ino)) {
            Some(FaultAction::Fail(e)) => return Err(e),
            Some(FaultAction::TornWrite { .. }) => return Err(FsError::Io),
            Some(FaultAction::Crash { .. }) => return Err(FsError::Crashed),
            // Truncation moves no data to corrupt; degrade to a media error.
            Some(FaultAction::Corrupt(_)) => return Err(FsError::Io),
            Some(FaultAction::Delay { ns }) => self.stall(ns),
            None => {}
        }
        {
            let mut inner = self.inner.write();
            let n = inner.inodes.get_mut(&ino).ok_or(FsError::BadFd)?;
            n.as_file_mut()?.truncate(size);
            n.mtime = now;
        }
        self.trace_op(|| TraceOp::Truncate {
            path: self.ino_path(ino),
            size,
        });
        Ok(())
    }

    /// Damage the committed bytes of `path` in place, as bit rot at rest
    /// would: no fault rule needs to be armed, no mtime/ctime changes, and
    /// the next reader sees the corrupted bytes with no error. `seed` makes
    /// the damage reproducible independently of any installed [`FaultPlan`].
    /// Returns the number of bytes affected.
    pub fn corrupt_at_rest(&self, path: &str, kind: &CorruptKind, seed: u64) -> FsResult<u64> {
        let mut inner = self.inner.write();
        let ino = Self::resolve_in(&inner, path, true)?;
        let file = inner
            .inodes
            .get_mut(&ino)
            .ok_or(FsError::NotFound)?
            .as_file_mut()?;
        let mut data = file.to_vec();
        let mut rng = DetRng::with_stream(seed, REST_CORRUPTION_STREAM);
        let affected = kind.apply(&mut data, &mut rng);
        file.truncate(0);
        file.write(0, &data);
        Ok(affected)
    }

    /// Adversarially mutate the committed bytes of `path` in place — the
    /// tamper counterpart of [`Self::corrupt_at_rest`]: no armed rule, no
    /// mtime/ctime change, no error for the next reader. The mutation is
    /// format-aware (see [`TamperKind`]) and seeded, so a tamper schedule
    /// replays bit-for-bit. Returns bytes affected; 0 means the file was
    /// not a valid target for this mutation and was left untouched.
    pub fn tamper_at_rest(&self, path: &str, kind: &TamperKind, seed: u64) -> FsResult<u64> {
        let mut inner = self.inner.write();
        let ino = Self::resolve_in(&inner, path, true)?;
        let file = inner
            .inodes
            .get_mut(&ino)
            .ok_or(FsError::NotFound)?
            .as_file_mut()?;
        let mut data = file.to_vec();
        let mut rng = DetRng::with_stream(seed, REST_TAMPER_STREAM);
        let affected = kind.apply(&mut data, &mut rng);
        if affected > 0 {
            file.truncate(0);
            file.write(0, &data);
        }
        Ok(affected)
    }

    /// Does `[offset, offset+len)` of a regular file overlap real bytes?
    /// (Sparse/synthetic regions read back as zeros without materializing.)
    pub fn materialized(&self, ino: Ino, offset: u64, len: u64) -> FsResult<bool> {
        let inner = self.inner.read();
        let n = inner.inodes.get(&ino).ok_or(FsError::BadFd)?;
        Ok(n.as_file()?.is_materialized(offset, len))
    }

    pub fn file_size(&self, ino: Ino) -> FsResult<u64> {
        let inner = self.inner.read();
        let n = inner.inodes.get(&ino).ok_or(FsError::BadFd)?;
        Ok(n.as_file()?.len())
    }

    // --- extended attributes ----------------------------------------------

    pub fn setxattr(&self, path: &str, name: &str, value: &[u8], now: SimTime) -> FsResult<()> {
        let mut inner = self.inner.write();
        let ino = Self::resolve_in(&inner, path, true)?;
        let n = inner.inodes.get_mut(&ino).expect("resolved");
        n.xattrs.insert(name.to_string(), value.to_vec());
        n.ctime = now;
        Ok(())
    }

    pub fn getxattr(&self, path: &str, name: &str) -> FsResult<Vec<u8>> {
        let inner = self.inner.read();
        let ino = Self::resolve_in(&inner, path, true)?;
        inner.inodes[&ino]
            .xattrs
            .get(name)
            .cloned()
            .ok_or(FsError::NoAttr)
    }

    pub fn listxattr(&self, path: &str) -> FsResult<Vec<String>> {
        let inner = self.inner.read();
        let ino = Self::resolve_in(&inner, path, true)?;
        Ok(inner.inodes[&ino].xattrs.keys().cloned().collect())
    }

    pub fn removexattr(&self, path: &str, name: &str, now: SimTime) -> FsResult<()> {
        let mut inner = self.inner.write();
        let ino = Self::resolve_in(&inner, path, true)?;
        let n = inner.inodes.get_mut(&ino).expect("resolved");
        if n.xattrs.remove(name).is_none() {
            return Err(FsError::NoAttr);
        }
        n.ctime = now;
        Ok(())
    }

    // --- accounting --------------------------------------------------------

    /// Total logical bytes of all regular files.
    pub fn total_file_bytes(&self) -> u64 {
        let inner = self.inner.read();
        inner
            .inodes
            .values()
            .filter_map(|n| match &n.node {
                Node::File(f) => Some(f.len()),
                _ => None,
            })
            .sum()
    }

    /// Total bytes actually resident in host memory.
    pub fn total_resident_bytes(&self) -> u64 {
        let inner = self.inner.read();
        inner
            .inodes
            .values()
            .filter_map(|n| match &n.node {
                Node::File(f) => Some(f.resident_bytes()),
                _ => None,
            })
            .sum()
    }

    /// Number of inodes (files + dirs + symlinks).
    pub fn inode_count(&self) -> usize {
        self.inner.read().inodes.len()
    }

    /// Recursively list all regular-file paths under `dir` (sorted).
    pub fn walk_files(&self, dir: &str) -> FsResult<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![dir.trim_end_matches('/').to_string()];
        if stack[0].is_empty() {
            stack[0] = "/".into();
        }
        while let Some(d) = stack.pop() {
            for name in self.readdir(&d)? {
                let full = if d == "/" {
                    format!("/{name}")
                } else {
                    format!("{d}/{name}")
                };
                match self.lstat(&full)?.kind {
                    FileKind::Directory => stack.push(full),
                    FileKind::File => out.push(full),
                    FileKind::Symlink => {}
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Arc<FileSystem> {
        FileSystem::new(LustreConfig::default())
    }

    const T0: SimTime = SimTime(1_000);

    #[test]
    fn create_write_read() {
        let fs = fs();
        fs.mkdir("/data", "alice", T0).unwrap();
        let ino = fs.create_file("/data/a.txt", false, "alice", T0).unwrap();
        fs.write_at(ino, 0, b"hello", T0).unwrap();
        assert_eq!(&fs.read_at(ino, 0, 5).unwrap()[..], b"hello");
        let md = fs.stat("/data/a.txt").unwrap();
        assert_eq!(md.size, 5);
        assert_eq!(md.kind, FileKind::File);
        assert_eq!(md.owner, "alice");
    }

    #[test]
    fn create_excl_conflicts() {
        let fs = fs();
        fs.create_file("/a", true, "u", T0).unwrap();
        assert_eq!(fs.create_file("/a", true, "u", T0), Err(FsError::AlreadyExists));
        // Non-exclusive create reuses.
        let ino = fs.create_file("/a", false, "u", T0).unwrap();
        assert_eq!(fs.lookup("/a").unwrap(), ino);
    }

    #[test]
    fn missing_parent_is_enoent() {
        let fs = fs();
        assert_eq!(
            fs.create_file("/no/such/file", false, "u", T0),
            Err(FsError::NotFound)
        );
    }

    #[test]
    fn relative_paths_rejected() {
        let fs = fs();
        assert_eq!(fs.lookup("a/b"), Err(FsError::BadPath));
    }

    #[test]
    fn mkdir_all_idempotent() {
        let fs = fs();
        fs.mkdir_all("/a/b/c", "u", T0).unwrap();
        fs.mkdir_all("/a/b/c", "u", T0).unwrap();
        assert!(fs.exists("/a/b/c"));
        assert_eq!(fs.readdir("/a").unwrap(), vec!["b"]);
    }

    #[test]
    fn unlink_removes_and_rmdir_requires_empty() {
        let fs = fs();
        fs.mkdir("/d", "u", T0).unwrap();
        fs.create_file("/d/f", false, "u", T0).unwrap();
        assert_eq!(fs.rmdir("/d"), Err(FsError::NotEmpty));
        fs.unlink("/d/f").unwrap();
        assert!(!fs.exists("/d/f"));
        fs.rmdir("/d").unwrap();
        assert!(!fs.exists("/d"));
    }

    #[test]
    fn unlink_dir_is_eisdir() {
        let fs = fs();
        fs.mkdir("/d", "u", T0).unwrap();
        assert_eq!(fs.unlink("/d"), Err(FsError::IsADirectory));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let fs = fs();
        fs.mkdir("/a", "u", T0).unwrap();
        fs.mkdir("/b", "u", T0).unwrap();
        let ino = fs.create_file("/a/f", false, "u", T0).unwrap();
        fs.write_at(ino, 0, b"x", T0).unwrap();
        // Replace an existing target.
        fs.create_file("/b/g", false, "u", T0).unwrap();
        fs.rename("/a/f", "/b/g", T0).unwrap();
        assert!(!fs.exists("/a/f"));
        let md = fs.stat("/b/g").unwrap();
        assert_eq!(md.ino, ino);
        assert_eq!(md.size, 1);
    }

    #[test]
    fn rename_to_self_is_noop() {
        let fs = fs();
        fs.create_file("/f", false, "u", T0).unwrap();
        fs.rename("/f", "/f", T0).unwrap();
        assert!(fs.exists("/f"));
    }

    #[test]
    fn hard_links_share_content() {
        let fs = fs();
        let ino = fs.create_file("/f", false, "u", T0).unwrap();
        fs.link("/f", "/g", T0).unwrap();
        fs.write_at(ino, 0, b"shared", T0).unwrap();
        assert_eq!(fs.stat("/g").unwrap().size, 6);
        assert_eq!(fs.stat("/g").unwrap().nlink, 2);
        fs.unlink("/f").unwrap();
        // Content persists through the other link.
        assert_eq!(fs.stat("/g").unwrap().size, 6);
        assert_eq!(fs.stat("/g").unwrap().nlink, 1);
        fs.unlink("/g").unwrap();
        assert_eq!(fs.inode_count(), 1); // only root remains
    }

    #[test]
    fn symlinks_resolve_transitively() {
        let fs = fs();
        fs.mkdir("/data", "u", T0).unwrap();
        fs.create_file("/data/real", false, "u", T0).unwrap();
        fs.symlink("/data/real", "/link1", "u", T0).unwrap();
        fs.symlink("/link1", "/link2", "u", T0).unwrap();
        assert_eq!(
            fs.stat("/link2").unwrap().ino,
            fs.stat("/data/real").unwrap().ino
        );
        assert_eq!(fs.lstat("/link2").unwrap().kind, FileKind::Symlink);
    }

    #[test]
    fn symlink_loop_detected() {
        let fs = fs();
        fs.symlink("/b", "/a", "u", T0).unwrap();
        fs.symlink("/a", "/b", "u", T0).unwrap();
        assert_eq!(fs.lookup("/a"), Err(FsError::TooManySymlinks));
    }

    #[test]
    fn dotdot_resolution() {
        let fs = fs();
        fs.mkdir_all("/a/b", "u", T0).unwrap();
        fs.create_file("/a/f", false, "u", T0).unwrap();
        assert_eq!(
            fs.lookup("/a/b/../f").unwrap(),
            fs.lookup("/a/f").unwrap()
        );
        // ".." above root stays at root.
        assert_eq!(fs.lookup("/../../a/f").unwrap(), fs.lookup("/a/f").unwrap());
    }

    #[test]
    fn xattrs_set_get_list_remove() {
        let fs = fs();
        fs.create_file("/f", false, "u", T0).unwrap();
        fs.setxattr("/f", "user.units", b"m/s", T0).unwrap();
        fs.setxattr("/f", "user.origin", b"DAS", T0).unwrap();
        assert_eq!(fs.getxattr("/f", "user.units").unwrap(), b"m/s");
        assert_eq!(
            fs.listxattr("/f").unwrap(),
            vec!["user.origin", "user.units"]
        );
        fs.removexattr("/f", "user.units", T0).unwrap();
        assert_eq!(fs.getxattr("/f", "user.units"), Err(FsError::NoAttr));
        assert_eq!(fs.removexattr("/f", "user.units", T0), Err(FsError::NoAttr));
    }

    #[test]
    fn accounting_counts_logical_bytes() {
        let fs = fs();
        let a = fs.create_file("/a", false, "u", T0).unwrap();
        fs.write_at(a, 0, b"12345", T0).unwrap();
        let b = fs.create_file("/b", false, "u", T0).unwrap();
        fs.write_synthetic_at(b, 0, 1 << 30, T0).unwrap();
        assert_eq!(fs.total_file_bytes(), 5 + (1 << 30));
        assert_eq!(fs.total_resident_bytes(), 5);
    }

    #[test]
    fn walk_files_recurses_sorted() {
        let fs = fs();
        fs.mkdir_all("/x/y", "u", T0).unwrap();
        fs.create_file("/x/b", false, "u", T0).unwrap();
        fs.create_file("/x/a", false, "u", T0).unwrap();
        fs.create_file("/x/y/c", false, "u", T0).unwrap();
        assert_eq!(fs.walk_files("/x").unwrap(), vec!["/x/a", "/x/b", "/x/y/c"]);
    }

    #[test]
    fn corrupt_at_rest_flips_committed_bytes_deterministically() {
        let run = |seed: u64| -> Vec<u8> {
            let fs = fs();
            let ino = fs.create_file("/snap.ttl", false, "u", T0).unwrap();
            fs.write_at(ino, 0, b"committed provenance bytes", T0).unwrap();
            let n = fs
                .corrupt_at_rest("/snap.ttl", &CorruptKind::BitFlips { count: 2 }, seed)
                .unwrap();
            assert_eq!(n, 2);
            fs.read_at(ino, 0, 1 << 16).unwrap().to_vec()
        };
        assert_ne!(run(1), b"committed provenance bytes".to_vec());
        assert_eq!(run(1), run(1), "same seed, same damage");
        assert_ne!(run(1), run(2));
        // mtime untouched: bit rot is invisible to metadata.
        let fs = fs();
        let ino = fs.create_file("/f", false, "u", T0).unwrap();
        fs.write_at(ino, 0, b"x", T0).unwrap();
        let before = fs.stat("/f").unwrap();
        fs.corrupt_at_rest("/f", &CorruptKind::ZeroFill, 3).unwrap();
        assert_eq!(fs.stat("/f").unwrap(), before);
    }

    #[test]
    fn read_time_corruption_leaves_media_intact() {
        use crate::fault::{FaultPlan, FaultRule};
        let fs = fs();
        let ino = fs.create_file("/seg.nt", false, "u", T0).unwrap();
        fs.write_at(ino, 0, b"<urn:s> <urn:p> <urn:o> .\n", T0).unwrap();
        let plan = FaultPlan::new(7);
        plan.add_rule(
            FaultRule::corrupt_reads(CorruptKind::BitFlips { count: 1 }).times(1),
        );
        fs.install_faults(plan);
        let clean = b"<urn:s> <urn:p> <urn:o> .\n".to_vec();
        let first = fs.read_at(ino, 0, 1 << 16).unwrap().to_vec();
        assert_ne!(first, clean, "armed read returns flipped bytes");
        // The rule fired once; the next read sees the untouched media.
        assert_eq!(fs.read_at(ino, 0, 1 << 16).unwrap().to_vec(), clean);
    }

    #[test]
    fn write_time_corruption_is_silent_and_persists() {
        use crate::fault::{FaultPlan, FaultRule, FaultOp};
        let fs = fs();
        let ino = fs.create_file("/out.nt", false, "u", T0).unwrap();
        let plan = FaultPlan::new(11);
        plan.add_rule(
            FaultRule::corrupt(FaultOp::WriteAt, CorruptKind::ZeroFill).times(1),
        );
        fs.install_faults(plan);
        // The corrupted write still reports success.
        fs.write_at(ino, 0, b"abcdef", T0).unwrap();
        fs.clear_faults();
        assert_eq!(fs.read_at(ino, 0, 6).unwrap().to_vec(), vec![0u8; 6]);
    }

    #[test]
    fn delay_fault_stalls_the_attached_clock_and_persists_exact_bytes() {
        use crate::fault::{FaultOp, FaultPlan, FaultRule};
        let fs = fs();
        let clock = VirtualClock::new();
        fs.attach_clock(clock.clone());
        let plan = FaultPlan::new(13);
        plan.add_rule(FaultRule::delay(FaultOp::WriteAt, 2_000_000).times(1));
        plan.add_rule(FaultRule::delay(FaultOp::ReadAt, 500_000).times(1));
        fs.install_faults(Arc::clone(&plan));
        let ino = fs.create_file("/slow.nt", false, "u", T0).unwrap();
        // The delayed write succeeds and lands byte-for-byte.
        fs.write_at(ino, 0, b"<urn:s> <urn:p> <urn:o> .\n", T0).unwrap();
        assert_eq!(clock.now().as_nanos(), 2_000_000, "stall charged to the clock");
        // The delayed read succeeds and returns the untouched media.
        let back = fs.read_at(ino, 0, 1 << 16).unwrap();
        assert_eq!(back.as_ref(), b"<urn:s> <urn:p> <urn:o> .\n");
        assert_eq!(clock.now().as_nanos(), 2_500_000);
        assert_eq!(plan.injected(), 2);
        // Rules exhausted: later ops run at full speed.
        fs.write_at(ino, 0, b"x", T0).unwrap();
        assert_eq!(clock.now().as_nanos(), 2_500_000);
        // With no clock attached a stall is a counted no-op, never an error.
        fs.detach_clock();
        let plan2 = FaultPlan::new(14);
        plan2.add_rule(FaultRule::delay(FaultOp::Rename, 1_000));
        fs.install_faults(Arc::clone(&plan2));
        fs.rename("/slow.nt", "/fast.nt", T0).unwrap();
        assert_eq!(plan2.injected(), 1);
        assert!(fs.lookup("/fast.nt").is_ok());
    }

    #[test]
    fn concurrent_creates_distinct_inodes() {
        let fs = fs();
        fs.mkdir("/p", "u", T0).unwrap();
        std::thread::scope(|s| {
            for i in 0..8 {
                let fs = Arc::clone(&fs);
                s.spawn(move || {
                    for j in 0..50 {
                        fs.create_file(&format!("/p/f-{i}-{j}"), true, "u", T0).unwrap();
                    }
                });
            }
        });
        assert_eq!(fs.readdir("/p").unwrap().len(), 400);
    }
}
