//! Sparse file content.
//!
//! H5bench-scale experiments move terabytes of synthetic payload through the
//! I/O path; storing those bytes would exhaust host memory for data whose
//! values never matter to provenance. `FileContent` therefore separates the
//! *size* of a file from the bytes it *materializes*: real writes (metadata
//! blocks, provenance Turtle, small headers) are stored; synthetic writes
//! only extend the file and charge modeled transfer time. Reads return
//! stored bytes where present and zeros elsewhere — the same observable
//! behavior as a sparse file on a real file system.

use bytes::Bytes;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Size of the shared zero block backing fully-sparse reads (64 MiB, the
/// largest request size the workflows issue).
const ZERO_BLOCK_LEN: usize = 64 << 20;

fn zero_block() -> &'static Bytes {
    static ZEROS: OnceLock<Bytes> = OnceLock::new();
    ZEROS.get_or_init(|| Bytes::from(vec![0u8; ZERO_BLOCK_LEN]))
}

/// Sparse byte content of a regular file.
#[derive(Debug, Clone, Default)]
pub struct FileContent {
    /// Materialized segments: offset → bytes. Invariant: segments are
    /// non-empty, non-overlapping, non-adjacent (maintained by `write`).
    segments: BTreeMap<u64, Vec<u8>>,
    /// Logical file size (may exceed the materialized extent).
    size: u64,
}

impl FileContent {
    pub fn new() -> Self {
        FileContent::default()
    }

    /// Logical size in bytes.
    pub fn len(&self) -> u64 {
        self.size
    }

    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Bytes actually materialized in memory.
    pub fn resident_bytes(&self) -> u64 {
        self.segments.values().map(|v| v.len() as u64).sum()
    }

    /// Write real bytes at `offset`, extending the file if needed.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let end = offset + data.len() as u64;
        self.size = self.size.max(end);

        // Collect every segment that overlaps or touches [offset, end].
        let mut merged_start = offset;
        let mut merged: Vec<u8> = Vec::new();
        let overlapping: Vec<u64> = self
            .segments
            .range(..=end)
            .filter(|(&start, seg)| start + seg.len() as u64 >= offset)
            .map(|(&start, _)| start)
            .collect();

        if let Some(&first) = overlapping.first() {
            merged_start = merged_start.min(first);
        }
        // Build merged buffer spanning [merged_start, max(end, last segment end)].
        let mut merged_end = end;
        for &s in &overlapping {
            let seg = &self.segments[&s];
            merged_end = merged_end.max(s + seg.len() as u64);
        }
        merged.resize((merged_end - merged_start) as usize, 0);
        for &s in &overlapping {
            let seg = self.segments.remove(&s).expect("collected above");
            let rel = (s - merged_start) as usize;
            merged[rel..rel + seg.len()].copy_from_slice(&seg);
        }
        let rel = (offset - merged_start) as usize;
        merged[rel..rel + data.len()].copy_from_slice(data);
        self.segments.insert(merged_start, merged);
    }

    /// Extend the file by `len` synthetic (all-zero, unmaterialized) bytes
    /// at `offset`. Overlapping materialized bytes are left in place — the
    /// caller models "we wrote simulation output here" without storing it.
    pub fn write_synthetic(&mut self, offset: u64, len: u64) {
        self.size = self.size.max(offset + len);
    }

    /// Read up to `len` bytes at `offset`. Returns fewer bytes at EOF.
    pub fn read(&self, offset: u64, len: u64) -> Bytes {
        if offset >= self.size {
            return Bytes::new();
        }
        let len = len.min(self.size - offset) as usize;
        // Fast path: a fully sparse window is a slice of one shared zero
        // block — multi-GB synthetic reads cost no memset.
        let end = offset + len as u64;
        let touches_data = self
            .segments
            .range(..end)
            .next_back()
            .is_some_and(|(&s, seg)| s + seg.len() as u64 > offset)
            || self.segments.range(offset..end).next().is_some();
        if !touches_data && len <= ZERO_BLOCK_LEN {
            return zero_block().slice(..len);
        }
        let mut out = vec![0u8; len];
        let end = offset + len as u64;
        for (&start, seg) in self.segments.range(..end) {
            let seg_end = start + seg.len() as u64;
            if seg_end <= offset {
                continue;
            }
            let copy_start = offset.max(start);
            let copy_end = end.min(seg_end);
            let dst = (copy_start - offset) as usize;
            let src = (copy_start - start) as usize;
            let n = (copy_end - copy_start) as usize;
            out[dst..dst + n].copy_from_slice(&seg[src..src + n]);
        }
        Bytes::from(out)
    }

    /// Does the window `[offset, offset+len)` overlap any materialized
    /// (real-byte) segment?
    pub fn is_materialized(&self, offset: u64, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let end = offset.saturating_add(len);
        self.segments
            .range(..end)
            .next_back()
            .is_some_and(|(&s, seg)| s + seg.len() as u64 > offset)
    }

    /// Truncate (or extend with zeros) to `size`.
    pub fn truncate(&mut self, size: u64) {
        if size < self.size {
            let keys: Vec<u64> = self.segments.range(..).map(|(&k, _)| k).collect();
            for k in keys {
                let seg_len = self.segments[&k].len() as u64;
                if k >= size {
                    self.segments.remove(&k);
                } else if k + seg_len > size {
                    let seg = self.segments.get_mut(&k).expect("checked");
                    seg.truncate((size - k) as usize);
                    if seg.is_empty() {
                        self.segments.remove(&k);
                    }
                }
            }
        }
        self.size = size;
    }

    /// Full materialized view (zeros where sparse). For small files only.
    pub fn to_vec(&self) -> Vec<u8> {
        self.read(0, self.size).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut c = FileContent::new();
        c.write(0, b"hello world");
        assert_eq!(c.len(), 11);
        assert_eq!(&c.read(0, 11)[..], b"hello world");
        assert_eq!(&c.read(6, 5)[..], b"world");
    }

    #[test]
    fn read_past_eof_truncates() {
        let mut c = FileContent::new();
        c.write(0, b"abc");
        assert_eq!(&c.read(1, 100)[..], b"bc");
        assert!(c.read(3, 10).is_empty());
        assert!(c.read(100, 10).is_empty());
    }

    #[test]
    fn sparse_holes_read_as_zeros() {
        let mut c = FileContent::new();
        c.write(10, b"xy");
        assert_eq!(c.len(), 12);
        let r = c.read(0, 12);
        assert_eq!(&r[..10], &[0u8; 10]);
        assert_eq!(&r[10..], b"xy");
    }

    #[test]
    fn overlapping_writes_merge() {
        let mut c = FileContent::new();
        c.write(0, b"aaaa");
        c.write(2, b"bbbb");
        assert_eq!(&c.read(0, 6)[..], b"aabbbb");
        // Internal invariant: one coalesced segment.
        assert_eq!(c.segments.len(), 1);
    }

    #[test]
    fn adjacent_writes_coalesce() {
        let mut c = FileContent::new();
        c.write(0, b"ab");
        c.write(2, b"cd");
        assert_eq!(&c.read(0, 4)[..], b"abcd");
        assert_eq!(c.segments.len(), 1);
    }

    #[test]
    fn disjoint_writes_stay_separate() {
        let mut c = FileContent::new();
        c.write(0, b"ab");
        c.write(100, b"cd");
        assert_eq!(c.segments.len(), 2);
        assert_eq!(c.resident_bytes(), 4);
        assert_eq!(c.len(), 102);
    }

    #[test]
    fn synthetic_write_extends_without_memory() {
        let mut c = FileContent::new();
        c.write_synthetic(0, 1 << 40); // 1 TiB
        assert_eq!(c.len(), 1 << 40);
        assert_eq!(c.resident_bytes(), 0);
        // Reads are zeros.
        assert_eq!(&c.read(1 << 39, 4)[..], &[0, 0, 0, 0]);
    }

    #[test]
    fn synthetic_then_real_overlay() {
        let mut c = FileContent::new();
        c.write_synthetic(0, 1000);
        c.write(500, b"MARK");
        assert_eq!(c.len(), 1000);
        assert_eq!(&c.read(500, 4)[..], b"MARK");
        assert_eq!(&c.read(498, 2)[..], &[0, 0]);
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let mut c = FileContent::new();
        c.write(0, b"abcdef");
        c.truncate(3);
        assert_eq!(c.len(), 3);
        assert_eq!(&c.read(0, 10)[..], b"abc");
        c.truncate(5);
        assert_eq!(c.len(), 5);
        assert_eq!(&c.read(0, 5)[..], &[b'a', b'b', b'c', 0, 0]);
    }

    #[test]
    fn truncate_mid_segment() {
        let mut c = FileContent::new();
        c.write(10, b"abcdef");
        c.truncate(12);
        assert_eq!(&c.read(10, 10)[..], b"ab");
        c.truncate(10);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn to_vec_matches_reads() {
        let mut c = FileContent::new();
        c.write(3, b"xyz");
        assert_eq!(c.to_vec(), vec![0, 0, 0, b'x', b'y', b'z']);
    }
}
