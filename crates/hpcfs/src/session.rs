//! A process's view of the file system: file descriptors, the POSIX call
//! surface, cost charging, and syscall-event dispatch.
//!
//! `FsSession` is what simulated workflow code holds. Every call:
//! 1. performs the native operation on the shared [`FileSystem`],
//! 2. charges the modeled Lustre cost to this process's [`VirtualClock`],
//! 3. emits a [`SyscallEvent`] through the session's [`Dispatcher`].
//!
//! That ordering mirrors GOTCHA interposition: the wrapper observes a
//! completed call and its result, and any time the wrapper itself spends is
//! additional time the process pays (hooks charge themselves via the clock
//! handle they receive).

use crate::error::{FsError, FsResult};
use crate::fs::{FileSystem, Ino, Metadata};
use crate::syscall::{Dispatcher, SyscallEvent, SyscallKind};
use parking_lot::Mutex;
use provio_simrt::{SimDuration, VirtualClock};
use std::collections::HashMap;
use std::sync::Arc;

/// A file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u32);

/// open(2) flags (the subset the workflows use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    pub read: bool,
    pub write: bool,
    pub create: bool,
    pub truncate: bool,
    pub append: bool,
    pub excl: bool,
}

impl OpenFlags {
    /// O_RDONLY
    pub fn rdonly() -> Self {
        OpenFlags {
            read: true,
            ..Default::default()
        }
    }

    /// O_WRONLY
    pub fn wronly() -> Self {
        OpenFlags {
            write: true,
            ..Default::default()
        }
    }

    /// O_RDWR
    pub fn rdwr() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..Default::default()
        }
    }

    pub fn with_create(mut self) -> Self {
        self.create = true;
        self
    }

    pub fn with_truncate(mut self) -> Self {
        self.truncate = true;
        self
    }

    pub fn with_append(mut self) -> Self {
        self.append = true;
        self
    }

    pub fn with_excl(mut self) -> Self {
        self.excl = true;
        self
    }
}

/// lseek whence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    Set,
    Cur,
    End,
}

#[derive(Debug)]
struct OpenFile {
    ino: Ino,
    path: String,
    offset: u64,
    flags: OpenFlags,
    /// Bytes written since the last fsync (drives fsync cost).
    dirty_bytes: u64,
}

/// A simulated process handle onto a shared [`FileSystem`].
pub struct FsSession {
    fs: Arc<FileSystem>,
    pid: u32,
    user: String,
    program: String,
    clock: VirtualClock,
    dispatcher: Dispatcher,
    state: Mutex<SessionState>,
}

#[derive(Debug, Default)]
struct SessionState {
    fds: HashMap<u32, OpenFile>,
    next_fd: u32,
}

impl FsSession {
    pub fn new(
        fs: Arc<FileSystem>,
        pid: u32,
        user: impl Into<String>,
        program: impl Into<String>,
        clock: VirtualClock,
        dispatcher: Dispatcher,
    ) -> Self {
        FsSession {
            fs,
            pid,
            user: user.into(),
            program: program.into(),
            clock,
            dispatcher,
            state: Mutex::new(SessionState {
                fds: HashMap::new(),
                next_fd: 3, // 0,1,2 are "stdio"
            }),
        }
    }

    pub fn pid(&self) -> u32 {
        self.pid
    }

    pub fn user(&self) -> &str {
        &self.user
    }

    pub fn program(&self) -> &str {
        &self.program
    }

    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    pub fn fs(&self) -> &Arc<FileSystem> {
        &self.fs
    }

    pub fn dispatcher(&self) -> &Dispatcher {
        &self.dispatcher
    }

    /// Charge pure compute time (the workflow's own work between I/O calls).
    pub fn compute(&self, d: SimDuration) {
        self.clock.advance(d);
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        kind: SyscallKind,
        path: Option<&str>,
        path2: Option<&str>,
        fd: Option<Fd>,
        bytes: u64,
        attr_name: Option<&str>,
        ok: bool,
        duration: SimDuration,
    ) {
        self.clock.advance(duration);
        let event = SyscallEvent {
            pid: self.pid,
            user: self.user.clone(),
            program: self.program.clone(),
            kind,
            path: path.map(str::to_string),
            path2: path2.map(str::to_string),
            fd: fd.map(|f| f.0),
            bytes,
            attr_name: attr_name.map(str::to_string),
            ok,
            duration,
            timestamp: self.clock.now(),
        };
        self.dispatcher.dispatch(&event, &self.clock);
    }

    // --- the call surface -------------------------------------------------

    pub fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        let cost = self.fs.config().meta_op();
        let now = self.clock.now();
        let result = (|| {
            let ino = if flags.create {
                self.fs.create_file(path, flags.excl, &self.user, now)?
            } else {
                let ino = self.fs.lookup(path)?;
                let md = self.fs.stat_ino(ino)?;
                if md.kind == crate::fs::FileKind::Directory && flags.write {
                    return Err(FsError::IsADirectory);
                }
                ino
            };
            if flags.truncate && flags.write {
                self.fs.truncate_ino(ino, 0, now)?;
            }
            let offset = if flags.append {
                self.fs.file_size(ino).unwrap_or(0)
            } else {
                0
            };
            let mut st = self.state.lock();
            let fd = st.next_fd;
            st.next_fd += 1;
            st.fds.insert(
                fd,
                OpenFile {
                    ino,
                    path: path.to_string(),
                    offset,
                    flags,
                    dirty_bytes: 0,
                },
            );
            Ok(Fd(fd))
        })();
        let kind = if flags.create {
            SyscallKind::Creat
        } else {
            SyscallKind::Open
        };
        self.emit(kind, Some(path), None, result.as_ref().ok().copied(), 0, None, result.is_ok(), cost);
        result
    }

    pub fn close(&self, fd: Fd) -> FsResult<()> {
        let cost = SimDuration::from_nanos(self.fs.config().client_overhead_ns);
        let (result, path) = {
            let mut st = self.state.lock();
            match st.fds.remove(&fd.0) {
                Some(of) => (Ok(()), Some(of.path)),
                None => (Err(FsError::BadFd), None),
            }
        };
        self.emit(
            SyscallKind::Close,
            path.as_deref(),
            None,
            Some(fd),
            0,
            None,
            result.is_ok(),
            cost,
        );
        result
    }

    fn with_fd<T>(
        &self,
        fd: Fd,
        f: impl FnOnce(&mut OpenFile) -> FsResult<T>,
    ) -> FsResult<(T, String)> {
        let mut st = self.state.lock();
        let of = st.fds.get_mut(&fd.0).ok_or(FsError::BadFd)?;
        let path = of.path.clone();
        f(of).map(|v| (v, path))
    }

    /// read(2): from the current offset.
    pub fn read(&self, fd: Fd, len: u64) -> FsResult<bytes::Bytes> {
        let fs = &self.fs;
        let result = self.with_fd(fd, |of| {
            if !of.flags.read {
                return Err(FsError::AccessDenied);
            }
            let data = fs.read_at(of.ino, of.offset, len)?;
            of.offset += data.len() as u64;
            Ok(data)
        });
        let (ok, nbytes, path) = match &result {
            Ok((d, p)) => (true, d.len() as u64, Some(p.clone())),
            Err(_) => (false, 0, None),
        };
        let cost = self.fs.config().data_op(nbytes);
        self.emit(SyscallKind::Read, path.as_deref(), None, Some(fd), nbytes, None, ok, cost);
        result.map(|(d, _)| d)
    }

    /// write(2): at the current offset (or EOF when O_APPEND).
    pub fn write(&self, fd: Fd, data: &[u8]) -> FsResult<u64> {
        self.write_impl(fd, WritePayload::Real(data), SyscallKind::Write, None)
    }

    /// A write of `len` synthetic bytes: charged and sized like write(2) but
    /// not materialized (see [`crate::content::FileContent`]).
    pub fn write_synthetic(&self, fd: Fd, len: u64) -> FsResult<u64> {
        self.write_impl(fd, WritePayload::Synthetic(len), SyscallKind::Write, None)
    }

    /// pread(2).
    pub fn pread(&self, fd: Fd, offset: u64, len: u64) -> FsResult<bytes::Bytes> {
        let fs = &self.fs;
        let result = self.with_fd(fd, |of| {
            if !of.flags.read {
                return Err(FsError::AccessDenied);
            }
            fs.read_at(of.ino, offset, len)
        });
        let (ok, nbytes, path) = match &result {
            Ok((d, p)) => (true, d.len() as u64, Some(p.clone())),
            Err(_) => (false, 0, None),
        };
        let cost = self.fs.config().data_op(nbytes);
        self.emit(SyscallKind::Pread, path.as_deref(), None, Some(fd), nbytes, None, ok, cost);
        result.map(|(d, _)| d)
    }

    /// pwrite(2).
    pub fn pwrite(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<u64> {
        self.write_impl(fd, WritePayload::Real(data), SyscallKind::Pwrite, Some(offset))
    }

    /// pwrite of synthetic bytes.
    pub fn pwrite_synthetic(&self, fd: Fd, offset: u64, len: u64) -> FsResult<u64> {
        self.write_impl(
            fd,
            WritePayload::Synthetic(len),
            SyscallKind::Pwrite,
            Some(offset),
        )
    }

    fn write_impl(
        &self,
        fd: Fd,
        payload: WritePayload<'_>,
        kind: SyscallKind,
        offset: Option<u64>,
    ) -> FsResult<u64> {
        let len = payload.len();
        let fs = &self.fs;
        let now = self.clock.now();
        let result = self.with_fd(fd, |of| {
            if !of.flags.write {
                return Err(FsError::AccessDenied);
            }
            let at = match offset {
                Some(o) => o,
                None => {
                    if of.flags.append {
                        fs.file_size(of.ino)?
                    } else {
                        of.offset
                    }
                }
            };
            match payload {
                WritePayload::Real(data) => fs.write_at(of.ino, at, data, now)?,
                WritePayload::Synthetic(n) => fs.write_synthetic_at(of.ino, at, n, now)?,
            }
            if offset.is_none() {
                of.offset = at + len;
            }
            of.dirty_bytes += len;
            Ok(len)
        });
        let (ok, path) = match &result {
            Ok((_, p)) => (true, Some(p.clone())),
            Err(_) => (false, None),
        };
        let cost = self.fs.config().data_op(if ok { len } else { 0 });
        self.emit(kind, path.as_deref(), None, Some(fd), if ok { len } else { 0 }, None, ok, cost);
        result.map(|(n, _)| n)
    }

    pub fn lseek(&self, fd: Fd, offset: i64, whence: Whence) -> FsResult<u64> {
        let fs = &self.fs;
        let result = self.with_fd(fd, |of| {
            let base = match whence {
                Whence::Set => 0i64,
                Whence::Cur => of.offset as i64,
                Whence::End => fs.file_size(of.ino)? as i64,
            };
            let new = base + offset;
            if new < 0 {
                return Err(FsError::InvalidArgument);
            }
            of.offset = new as u64;
            Ok(of.offset)
        });
        let cost = SimDuration::from_nanos(self.fs.config().client_overhead_ns);
        let ok = result.is_ok();
        let path = result.as_ref().ok().map(|(_, p)| p.clone());
        self.emit(SyscallKind::Lseek, path.as_deref(), None, Some(fd), 0, None, ok, cost);
        result.map(|(o, _)| o)
    }

    pub fn fsync(&self, fd: Fd) -> FsResult<()> {
        let result = self.with_fd(fd, |of| {
            let dirty = of.dirty_bytes;
            of.dirty_bytes = 0;
            Ok(dirty)
        });
        let (ok, dirty, path) = match &result {
            Ok((d, p)) => (true, *d, Some(p.clone())),
            Err(_) => (false, 0, None),
        };
        let cost = self.fs.config().fsync_op(dirty);
        self.emit(SyscallKind::Fsync, path.as_deref(), None, Some(fd), dirty, None, ok, cost);
        result.map(|_| ())
    }

    pub fn rename(&self, old: &str, new: &str) -> FsResult<()> {
        let cost = self.fs.config().meta_op();
        let result = self.fs.rename(old, new, self.clock.now());
        self.emit(
            SyscallKind::Rename,
            Some(old),
            Some(new),
            None,
            0,
            None,
            result.is_ok(),
            cost,
        );
        result
    }

    pub fn unlink(&self, path: &str) -> FsResult<()> {
        let cost = self.fs.config().meta_op();
        let result = self.fs.unlink(path);
        self.emit(SyscallKind::Unlink, Some(path), None, None, 0, None, result.is_ok(), cost);
        result
    }

    pub fn mkdir(&self, path: &str) -> FsResult<()> {
        let cost = self.fs.config().meta_op();
        let result = self.fs.mkdir(path, &self.user, self.clock.now()).map(|_| ());
        self.emit(SyscallKind::Mkdir, Some(path), None, None, 0, None, result.is_ok(), cost);
        result
    }

    pub fn rmdir(&self, path: &str) -> FsResult<()> {
        let cost = self.fs.config().meta_op();
        let result = self.fs.rmdir(path);
        self.emit(SyscallKind::Rmdir, Some(path), None, None, 0, None, result.is_ok(), cost);
        result
    }

    pub fn stat(&self, path: &str) -> FsResult<Metadata> {
        let cost = self.fs.config().meta_op();
        let result = self.fs.stat(path);
        self.emit(SyscallKind::Stat, Some(path), None, None, 0, None, result.is_ok(), cost);
        result
    }

    pub fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        let cost = self.fs.config().meta_op();
        let result = self.fs.readdir(path);
        self.emit(SyscallKind::Readdir, Some(path), None, None, 0, None, result.is_ok(), cost);
        result
    }

    pub fn link(&self, existing: &str, new: &str) -> FsResult<()> {
        let cost = self.fs.config().meta_op();
        let result = self.fs.link(existing, new, self.clock.now());
        self.emit(
            SyscallKind::Link,
            Some(existing),
            Some(new),
            None,
            0,
            None,
            result.is_ok(),
            cost,
        );
        result
    }

    pub fn symlink(&self, target: &str, linkpath: &str) -> FsResult<()> {
        let cost = self.fs.config().meta_op();
        let result = self.fs.symlink(target, linkpath, &self.user, self.clock.now());
        self.emit(
            SyscallKind::Symlink,
            Some(target),
            Some(linkpath),
            None,
            0,
            None,
            result.is_ok(),
            cost,
        );
        result
    }

    pub fn setxattr(&self, path: &str, name: &str, value: &[u8]) -> FsResult<()> {
        let cost = self.fs.config().meta_op();
        let result = self.fs.setxattr(path, name, value, self.clock.now());
        self.emit(
            SyscallKind::SetXattr,
            Some(path),
            None,
            None,
            value.len() as u64,
            Some(name),
            result.is_ok(),
            cost,
        );
        result
    }

    pub fn getxattr(&self, path: &str, name: &str) -> FsResult<Vec<u8>> {
        let cost = self.fs.config().meta_op();
        let result = self.fs.getxattr(path, name);
        let bytes = result.as_ref().map(|v| v.len() as u64).unwrap_or(0);
        self.emit(
            SyscallKind::GetXattr,
            Some(path),
            None,
            None,
            bytes,
            Some(name),
            result.is_ok(),
            cost,
        );
        result
    }

    pub fn listxattr(&self, path: &str) -> FsResult<Vec<String>> {
        let cost = self.fs.config().meta_op();
        let result = self.fs.listxattr(path);
        self.emit(
            SyscallKind::ListXattr,
            Some(path),
            None,
            None,
            0,
            None,
            result.is_ok(),
            cost,
        );
        result
    }

    pub fn truncate(&self, path: &str, size: u64) -> FsResult<()> {
        let cost = self.fs.config().meta_op();
        let result = self
            .fs
            .lookup(path)
            .and_then(|ino| self.fs.truncate_ino(ino, size, self.clock.now()));
        self.emit(
            SyscallKind::Truncate,
            Some(path),
            None,
            None,
            size,
            None,
            result.is_ok(),
            cost,
        );
        result
    }

    /// Convenience: read a whole file to a Vec.
    pub fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let fd = self.open(path, OpenFlags::rdonly())?;
        let size = self.fs.stat(path)?.size;
        let data = self.read(fd, size)?;
        self.close(fd)?;
        Ok(data.to_vec())
    }

    /// Convenience: create/truncate a file with the given contents.
    pub fn write_file(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let fd = self.open(path, OpenFlags::wronly().with_create().with_truncate())?;
        self.write(fd, data)?;
        self.close(fd)?;
        Ok(())
    }

    /// Number of currently open descriptors (leak checks in tests).
    pub fn open_fd_count(&self) -> usize {
        self.state.lock().fds.len()
    }
}

enum WritePayload<'a> {
    Real(&'a [u8]),
    Synthetic(u64),
}

impl WritePayload<'_> {
    fn len(&self) -> u64 {
        match self {
            WritePayload::Real(d) => d.len() as u64,
            WritePayload::Synthetic(n) => *n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lustre::LustreConfig;
    use crate::syscall::SyscallHook;
    use parking_lot::Mutex as PlMutex;

    fn session() -> FsSession {
        let fs = FileSystem::new(LustreConfig::default());
        FsSession::new(
            fs,
            100,
            "alice",
            "decimate",
            VirtualClock::new(),
            Dispatcher::new(),
        )
    }

    #[test]
    fn open_write_read_close() {
        let s = session();
        let fd = s.open("/f", OpenFlags::rdwr().with_create()).unwrap();
        assert_eq!(s.write(fd, b"hello").unwrap(), 5);
        s.lseek(fd, 0, Whence::Set).unwrap();
        assert_eq!(&s.read(fd, 5).unwrap()[..], b"hello");
        s.close(fd).unwrap();
        assert_eq!(s.open_fd_count(), 0);
        assert!(s.close(fd).is_err(), "double close is EBADF");
    }

    #[test]
    fn offsets_advance_sequentially() {
        let s = session();
        let fd = s.open("/f", OpenFlags::rdwr().with_create()).unwrap();
        s.write(fd, b"abc").unwrap();
        s.write(fd, b"def").unwrap();
        s.lseek(fd, 0, Whence::Set).unwrap();
        assert_eq!(&s.read(fd, 6).unwrap()[..], b"abcdef");
        // Partial reads move the offset by the returned length.
        s.lseek(fd, 4, Whence::Set).unwrap();
        assert_eq!(&s.read(fd, 100).unwrap()[..], b"ef");
        assert!(s.read(fd, 10).unwrap().is_empty());
    }

    #[test]
    fn append_mode_writes_at_eof() {
        let s = session();
        s.write_file("/log", b"one").unwrap();
        let fd = s.open("/log", OpenFlags::wronly().with_append()).unwrap();
        s.write(fd, b"+two").unwrap();
        s.close(fd).unwrap();
        assert_eq!(s.read_file("/log").unwrap(), b"one+two");
    }

    #[test]
    fn access_mode_enforced() {
        let s = session();
        s.write_file("/f", b"x").unwrap();
        let fd = s.open("/f", OpenFlags::rdonly()).unwrap();
        assert_eq!(s.write(fd, b"y"), Err(FsError::AccessDenied));
        let fd2 = s.open("/f", OpenFlags::wronly()).unwrap();
        assert_eq!(s.read(fd2, 1), Err(FsError::AccessDenied));
    }

    #[test]
    fn clock_advances_with_io() {
        let s = session();
        let t0 = s.clock().now();
        s.write_file("/f", &vec![0u8; 1 << 20]).unwrap();
        let t1 = s.clock().now();
        assert!(t1 > t0, "I/O must cost virtual time");
        // A bigger write costs more.
        s.write_file("/g", &vec![0u8; 8 << 20]).unwrap();
        let t2 = s.clock().now();
        assert!(t2.elapsed_since(t1) > t1.elapsed_since(t0));
    }

    #[test]
    fn synthetic_write_sized_but_not_resident() {
        let s = session();
        let fd = s.open("/big", OpenFlags::wronly().with_create()).unwrap();
        s.write_synthetic(fd, 10 << 30).unwrap();
        s.close(fd).unwrap();
        assert_eq!(s.fs().stat("/big").unwrap().size, 10 << 30);
        assert_eq!(s.fs().total_resident_bytes(), 0);
    }

    #[test]
    fn pread_pwrite_do_not_move_offset() {
        let s = session();
        let fd = s.open("/f", OpenFlags::rdwr().with_create()).unwrap();
        s.write(fd, b"0123456789").unwrap();
        s.pwrite(fd, 2, b"XY").unwrap();
        assert_eq!(&s.pread(fd, 0, 10).unwrap()[..], b"01XY456789");
        // Sequential offset still at 10.
        assert_eq!(s.lseek(fd, 0, Whence::Cur).unwrap(), 10);
    }

    #[test]
    fn fsync_cost_scales_with_dirty_bytes() {
        let s = session();
        let fd = s.open("/f", OpenFlags::wronly().with_create()).unwrap();
        s.write_synthetic(fd, 64 << 20).unwrap();
        let before = s.clock().now();
        s.fsync(fd).unwrap();
        let big = s.clock().now().elapsed_since(before);
        // Second fsync with no new dirty bytes is cheap.
        let before = s.clock().now();
        s.fsync(fd).unwrap();
        let small = s.clock().now().elapsed_since(before);
        assert!(big > small, "{big} vs {small}");
    }

    #[test]
    fn events_reach_hooks_with_context() {
        struct Capture(PlMutex<Vec<SyscallEvent>>);
        impl SyscallHook for Capture {
            fn on_syscall(&self, e: &SyscallEvent, _c: &VirtualClock) {
                self.0.lock().push(e.clone());
            }
        }
        let s = session();
        let cap = Arc::new(Capture(PlMutex::new(Vec::new())));
        s.dispatcher().register(cap.clone());
        s.write_file("/traced", b"abc").unwrap();
        let events = cap.0.lock();
        let kinds: Vec<SyscallKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![SyscallKind::Creat, SyscallKind::Write, SyscallKind::Close]
        );
        let w = &events[1];
        assert_eq!(w.pid, 100);
        assert_eq!(w.user, "alice");
        assert_eq!(w.program, "decimate");
        assert_eq!(w.path.as_deref(), Some("/traced"));
        assert_eq!(w.bytes, 3);
        assert!(w.ok);
        assert!(w.duration.as_nanos() > 0);
    }

    #[test]
    fn failed_calls_emit_not_ok_events() {
        struct LastOk(PlMutex<Option<bool>>);
        impl SyscallHook for LastOk {
            fn on_syscall(&self, e: &SyscallEvent, _c: &VirtualClock) {
                *self.0.lock() = Some(e.ok);
            }
        }
        let s = session();
        let h = Arc::new(LastOk(PlMutex::new(None)));
        s.dispatcher().register(h.clone());
        assert!(s.open("/missing", OpenFlags::rdonly()).is_err());
        assert_eq!(*h.0.lock(), Some(false));
    }

    #[test]
    fn xattr_calls_surface_attr_name() {
        struct Names(PlMutex<Vec<String>>);
        impl SyscallHook for Names {
            fn on_syscall(&self, e: &SyscallEvent, _c: &VirtualClock) {
                if let Some(n) = &e.attr_name {
                    self.0.lock().push(n.clone());
                }
            }
        }
        let s = session();
        let h = Arc::new(Names(PlMutex::new(Vec::new())));
        s.dispatcher().register(h.clone());
        s.write_file("/f", b"").unwrap();
        s.setxattr("/f", "user.sample_rate", b"500").unwrap();
        s.getxattr("/f", "user.sample_rate").unwrap();
        assert_eq!(*h.0.lock(), vec!["user.sample_rate", "user.sample_rate"]);
    }

    #[test]
    fn rename_event_has_both_paths() {
        struct Paths(PlMutex<Option<(String, String)>>);
        impl SyscallHook for Paths {
            fn on_syscall(&self, e: &SyscallEvent, _c: &VirtualClock) {
                if e.kind == SyscallKind::Rename {
                    *self.0.lock() =
                        Some((e.path.clone().unwrap(), e.path2.clone().unwrap()));
                }
            }
        }
        let s = session();
        let h = Arc::new(Paths(PlMutex::new(None)));
        s.dispatcher().register(h.clone());
        s.write_file("/old", b"").unwrap();
        s.rename("/old", "/new").unwrap();
        assert_eq!(*h.0.lock(), Some(("/old".into(), "/new".into())));
    }
}
