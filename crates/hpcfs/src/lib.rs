//! `provio-hpcfs` — a simulated HPC storage stack.
//!
//! The paper evaluates PROV-IO on a Lustre parallel file system and captures
//! POSIX I/O by interposing syscalls with GOTCHA (paper §5). This crate is
//! that substrate, built from scratch:
//!
//! * [`FileSystem`] — a POSIX-like in-memory file system: directories,
//!   regular files, symlinks/hard links, inode extended attributes (which
//!   back the PROV-IO *Attribute* entity sub-class on the POSIX side),
//!   rename, fsync, and sparse file content so multi-terabyte synthetic
//!   datasets occupy metadata only.
//! * [`lustre::LustreConfig`] — a striping cost model (stripe count/size,
//!   OST latency/bandwidth) that charges every operation's modeled duration
//!   to the calling process's virtual clock.
//! * [`syscall`] — the interposition layer: every [`FsSession`] operation is
//!   routed through a [`syscall::Dispatcher`] which invokes registered
//!   [`syscall::SyscallHook`]s with the full event (pid, call, paths, bytes,
//!   duration). PROV-IO's POSIX wrapper is one such hook; the workflow code
//!   never changes — exactly GOTCHA's contract.
//!
//! Processes interact with the file system through an [`FsSession`], which
//! bundles a process id, user, virtual clock and file-descriptor table.

pub mod content;
pub mod error;
pub mod fault;
pub mod fs;
pub mod lustre;
pub mod session;
pub mod syscall;
pub mod trace;

pub use content::FileContent;
pub use error::{FsError, FsResult};
pub use fault::{CorruptKind, FaultAction, FaultOp, FaultPlan, FaultRule, TamperKind};
pub use fs::{FileKind, FileSystem, Ino, Metadata};
pub use lustre::LustreConfig;
pub use session::{Fd, FsSession, OpenFlags, Whence};
pub use syscall::{Dispatcher, SyscallEvent, SyscallHook, SyscallKind};
pub use trace::{
    apply_prefix, describe_state, enumerate_crash_states, reconstruct, repro_plan, CrashState,
    CrashVariant, OpTrace, TraceOp,
};
