//! Syscall interposition — the GOTCHA substitute.
//!
//! Real PROV-IO wraps POSIX syscalls with GOTCHA so provenance capture needs
//! no changes to workflow source (paper §5). Here, every [`crate::FsSession`]
//! operation constructs a [`SyscallEvent`] and routes it through the
//! session's [`Dispatcher`] after the native operation completes, passing
//! the native result through untouched. Hooks observe the call, its
//! arguments, outcome and modeled duration; PROV-IO's POSIX wrapper is one
//! hook, I/O tracers or fault injectors can be others.
//!
//! Hooks can be toggled at runtime (the paper configures the wrapper "via
//! environmental variables"); a disabled dispatcher adds no work beyond one
//! relaxed atomic load.

use parking_lot::RwLock;
use provio_simrt::{SimDuration, SimTime, VirtualClock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which syscall an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    Open,
    Creat,
    Close,
    Read,
    Write,
    Pread,
    Pwrite,
    Lseek,
    Fsync,
    Rename,
    Unlink,
    Mkdir,
    Rmdir,
    Stat,
    Readdir,
    Link,
    Symlink,
    SetXattr,
    GetXattr,
    ListXattr,
    Truncate,
}

impl SyscallKind {
    /// The name a GOTCHA wrapper would intercept.
    pub fn name(self) -> &'static str {
        match self {
            SyscallKind::Open => "open",
            SyscallKind::Creat => "creat",
            SyscallKind::Close => "close",
            SyscallKind::Read => "read",
            SyscallKind::Write => "write",
            SyscallKind::Pread => "pread",
            SyscallKind::Pwrite => "pwrite",
            SyscallKind::Lseek => "lseek",
            SyscallKind::Fsync => "fsync",
            SyscallKind::Rename => "rename",
            SyscallKind::Unlink => "unlink",
            SyscallKind::Mkdir => "mkdir",
            SyscallKind::Rmdir => "rmdir",
            SyscallKind::Stat => "stat",
            SyscallKind::Readdir => "readdir",
            SyscallKind::Link => "link",
            SyscallKind::Symlink => "symlink",
            SyscallKind::SetXattr => "setxattr",
            SyscallKind::GetXattr => "getxattr",
            SyscallKind::ListXattr => "listxattr",
            SyscallKind::Truncate => "truncate",
        }
    }
}

/// A completed syscall, as observed by the interposition layer.
#[derive(Debug, Clone)]
pub struct SyscallEvent {
    pub pid: u32,
    /// Name of the user who owns the process.
    pub user: String,
    /// Name of the program the process is running.
    pub program: String,
    pub kind: SyscallKind,
    /// Primary path argument, if any.
    pub path: Option<String>,
    /// Secondary path (rename/link targets).
    pub path2: Option<String>,
    /// File descriptor argument, if any.
    pub fd: Option<u32>,
    /// Payload size for data calls.
    pub bytes: u64,
    /// Extended-attribute name for xattr calls.
    pub attr_name: Option<String>,
    /// Whether the native call succeeded.
    pub ok: bool,
    /// Modeled duration of the native call.
    pub duration: SimDuration,
    /// Virtual time at completion.
    pub timestamp: SimTime,
}

/// A syscall observer. `clock` is the issuing process's virtual clock so a
/// hook that does real work (like the PROV-IO wrapper) can charge its own
/// measured time to the workflow, exactly like in-process interposition.
pub trait SyscallHook: Send + Sync {
    fn on_syscall(&self, event: &SyscallEvent, clock: &VirtualClock);
}

/// A registry of hooks. Cheap to clone (shared internals).
#[derive(Clone, Default)]
pub struct Dispatcher {
    hooks: Arc<RwLock<Vec<Arc<dyn SyscallHook>>>>,
    enabled: Arc<AtomicBool>,
}

impl Dispatcher {
    pub fn new() -> Self {
        Dispatcher {
            hooks: Arc::new(RwLock::new(Vec::new())),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Register a hook. Hooks run in registration order.
    pub fn register(&self, hook: Arc<dyn SyscallHook>) {
        self.hooks.write().push(hook);
    }

    /// Remove all hooks.
    pub fn clear(&self) {
        self.hooks.write().clear();
    }

    /// Globally enable/disable dispatch (the "environment variable" switch).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    pub fn hook_count(&self) -> usize {
        self.hooks.read().len()
    }

    /// Deliver `event` to every hook (if enabled).
    pub fn dispatch(&self, event: &SyscallEvent, clock: &VirtualClock) {
        if !self.is_enabled() {
            return;
        }
        let hooks = self.hooks.read();
        for h in hooks.iter() {
            h.on_syscall(event, clock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct Counter(AtomicUsize);

    impl SyscallHook for Counter {
        fn on_syscall(&self, _e: &SyscallEvent, _c: &VirtualClock) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn event(kind: SyscallKind) -> SyscallEvent {
        SyscallEvent {
            pid: 1,
            user: "u".into(),
            program: "p".into(),
            kind,
            path: Some("/f".into()),
            path2: None,
            fd: None,
            bytes: 0,
            attr_name: None,
            ok: true,
            duration: SimDuration::ZERO,
            timestamp: SimTime::ZERO,
        }
    }

    #[test]
    fn hooks_receive_events_in_order() {
        let d = Dispatcher::new();
        let c1 = Arc::new(Counter(AtomicUsize::new(0)));
        let c2 = Arc::new(Counter(AtomicUsize::new(0)));
        d.register(c1.clone());
        d.register(c2.clone());
        let clock = VirtualClock::new();
        d.dispatch(&event(SyscallKind::Open), &clock);
        d.dispatch(&event(SyscallKind::Read), &clock);
        assert_eq!(c1.0.load(Ordering::Relaxed), 2);
        assert_eq!(c2.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn disabled_dispatcher_is_silent() {
        let d = Dispatcher::new();
        let c = Arc::new(Counter(AtomicUsize::new(0)));
        d.register(c.clone());
        d.set_enabled(false);
        d.dispatch(&event(SyscallKind::Write), &VirtualClock::new());
        assert_eq!(c.0.load(Ordering::Relaxed), 0);
        d.set_enabled(true);
        d.dispatch(&event(SyscallKind::Write), &VirtualClock::new());
        assert_eq!(c.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn clear_removes_hooks() {
        let d = Dispatcher::new();
        d.register(Arc::new(Counter(AtomicUsize::new(0))));
        assert_eq!(d.hook_count(), 1);
        d.clear();
        assert_eq!(d.hook_count(), 0);
    }

    #[test]
    fn syscall_names() {
        assert_eq!(SyscallKind::Pwrite.name(), "pwrite");
        assert_eq!(SyscallKind::GetXattr.name(), "getxattr");
    }
}
