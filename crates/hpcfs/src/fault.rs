//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] is installed on a [`crate::FileSystem`] and consulted by
//! the mutating data-path operations (`create_file`, `write_at`, `rename`,
//! `truncate_ino`). Each [`FaultRule`] selects an operation (optionally
//! narrowed to paths containing a substring), waits out a number of clean
//! calls, then fires a [`FaultAction`] — a typed POSIX error, a *torn write*
//! that persists only a prefix of the buffer, or a *crash point* that kills
//! the writing process mid-operation ([`FsError::Crashed`]).
//!
//! Randomized rules draw from a [`DetRng`] stream derived from the plan's
//! seed, so a failing schedule replays bit-for-bit from `(seed, rules)` —
//! the same contract the rest of the simulation keeps for time and data.

use crate::error::FsError;
use parking_lot::Mutex;
use provio_simrt::DetRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Stream id carved out of the run seed for fault decisions, so fault
/// randomness never perturbs workload randomness under the same seed.
const FAULT_STREAM: u64 = 0xFA17;

/// Which file-system operation a rule arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    CreateFile,
    WriteAt,
    Rename,
    TruncateIno,
    /// `unlink(2)` — armed so recovery-time cleanup (quarantine removal,
    /// WAL recycling) is as crashable as the write path it cleans up after.
    Unlink,
    /// Data-path reads; the only op where [`FaultAction::Corrupt`] mutates
    /// the bytes handed back instead of the bytes on media.
    ReadAt,
}

/// The shape of a silent-corruption fault: what bit rot, a misdirected
/// write, or a failing controller does to committed bytes. Where the bytes
/// land (the media, or just one read's returned copy) is decided by the op
/// the rule armed; *which* bytes are hit is drawn from the plan's seeded
/// RNG, so a damaging schedule replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Flip `count` independently-chosen bits anywhere in the buffer.
    BitFlips { count: u32 },
    /// Cut the buffer at a random point strictly inside it.
    Truncate,
    /// Overwrite one randomly-placed `len`-byte window with a copy of
    /// another (a stale or misdirected block; length is preserved).
    DuplicateBlock { len: u64 },
    /// Zero every byte (a lost stripe reading back as holes).
    ZeroFill,
}

/// What happens when a rule fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the call with a typed errno; nothing is persisted.
    Fail(FsError),
    /// Persist only the first `keep` bytes of the buffer, then report EIO.
    /// Models a torn write: the media holds a prefix, the caller sees an
    /// error. Only meaningful for `WriteAt`; elsewhere it degrades to EIO.
    TornWrite { keep: u64 },
    /// Kill the writer mid-operation: optionally persist a `torn_keep`-byte
    /// prefix (for `WriteAt`), then return [`FsError::Crashed`]. A crashed
    /// process must not retry or clean up — recovery happens at merge time.
    Crash { torn_keep: Option<u64> },
    /// Silently corrupt the data and report *success* — the caller never
    /// learns. On `WriteAt` the mutated buffer is what lands on media; on
    /// `ReadAt` the media is intact and only the returned copy is mutated.
    /// On ops that move no data it degrades to EIO.
    Corrupt(CorruptKind),
    /// Stall the operation for `ns` virtual nanoseconds, then let it
    /// succeed untouched — a slow OST, a congested network link, a retried
    /// RPC. The stall is charged to the clock attached to the file system
    /// ([`crate::FileSystem::attach_clock`]); with no clock attached only
    /// the injection is counted. Data is never altered: the op persists
    /// (or returns) exactly the bytes a fault-free call would.
    Delay { ns: u64 },
}

impl CorruptKind {
    /// Apply this corruption to `data` in place, drawing positions from
    /// `rng`. Returns the number of bytes affected (0 = the buffer was too
    /// small to damage, e.g. an empty file).
    pub fn apply(&self, data: &mut Vec<u8>, rng: &mut DetRng) -> u64 {
        if data.is_empty() {
            return 0;
        }
        let len = data.len() as u64;
        match *self {
            CorruptKind::BitFlips { count } => {
                for _ in 0..count {
                    let byte = rng.below(len) as usize;
                    let bit = rng.below(8) as u8;
                    data[byte] ^= 1 << bit;
                }
                count as u64
            }
            CorruptKind::Truncate => {
                let keep = rng.below(len) as usize;
                let cut = data.len() - keep;
                data.truncate(keep);
                cut as u64
            }
            CorruptKind::DuplicateBlock { len: block } => {
                let block = (block.max(1)).min(len) as usize;
                let src = rng.below(len - block as u64 + 1) as usize;
                let dst = rng.below(len - block as u64 + 1) as usize;
                let window: Vec<u8> = data[src..src + block].to_vec();
                data[dst..dst + block].copy_from_slice(&window);
                block as u64
            }
            CorruptKind::ZeroFill => {
                data.iter_mut().for_each(|b| *b = 0);
                len
            }
        }
    }
}

/// The shape of an *adversarial* at-rest mutation. Unlike [`CorruptKind`]
/// — rot, which damages bytes blindly and trips CRCs — these are
/// format-aware: the adversary has read the `PROVIO1` frame layout and
/// patches every internal check (batch CRC, footer Merkle root) so the
/// mutated file stays internally consistent and the merge accepts it
/// without complaint. Only a signed run manifest, anchored in a key the
/// adversary does not hold, can tell the difference — which is exactly the
/// threat model `provio verify` exists for. The frame knowledge is
/// deliberately reimplemented here rather than imported: the fault layer
/// plays the adversary, not the library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperKind {
    /// Flip one payload byte inside a randomly-chosen batch, then
    /// recompute and patch that batch's `crc=` and the footer `root=`.
    /// Every frame check passes; the content is a lie.
    CrcPatchedRewrite,
    /// Replace a whole batch body with forged triples (same line count),
    /// patching `crc=` and `root=` the same way.
    FileSubstitution,
    /// Flip one hex digit of a signed `root=` inside a run manifest,
    /// leaving its HMAC stale.
    ManifestEdit,
    /// Cut the campaign ledger's tail: either cleanly at the last chunk
    /// boundary (the last sealed run silently vanishes) or mid-chunk (a
    /// torn tail indistinguishable from a crashed append).
    LedgerTruncate,
}

/// One `PROVIO1` frame pulled apart for re-forging: header and footer
/// fields kept verbatim, batch bodies editable.
struct FrameScan {
    header: String,
    /// `(lines= field, body including trailing newlines)` per batch.
    batches: Vec<(usize, String)>,
    footer_batches: String,
    footer_chain: String,
}

fn scan_frame(text: &str) -> Option<FrameScan> {
    if !text.starts_with("# PROVIO1") {
        return None;
    }
    let mut lines = text.split_inclusive('\n');
    let header = lines.next()?.trim_end_matches('\n').to_string();
    let mut batches: Vec<(usize, String)> = Vec::new();
    let mut current: Option<(usize, String)> = None;
    let mut footer = None;
    for line in lines {
        let trimmed = line.trim_end_matches('\n');
        if let Some(rest) = trimmed.strip_prefix("#~B ") {
            if let Some(done) = current.take() {
                batches.push(done);
            }
            let n = rest
                .split(' ')
                .find_map(|t| t.strip_prefix("lines="))
                .and_then(|v| v.parse().ok())?;
            current = Some((n, String::new()));
        } else if let Some(rest) = trimmed.strip_prefix("#~F ") {
            if let Some(done) = current.take() {
                batches.push(done);
            }
            let field = |k: &str| {
                rest.split(' ')
                    .find_map(|t| t.strip_prefix(k))
                    .map(str::to_string)
            };
            footer = Some((field("batches=")?, field("chain=")?));
            break;
        } else if let Some((_, body)) = &mut current {
            body.push_str(line);
        } else {
            return None; // payload before any batch marker
        }
    }
    let (footer_batches, footer_chain) = footer?;
    Some(FrameScan {
        header,
        batches,
        footer_batches,
        footer_chain,
    })
}

/// The frame layer's Merkle fold, as the adversary reimplements it:
/// leaves are SHA-256 of each batch CRC's big-endian bytes, interior nodes
/// hash child concatenations, odd nodes promote, zero leaves root at
/// SHA-256 of the empty string.
fn forged_root(leaves: &[u32]) -> [u8; 32] {
    let mut level: Vec<[u8; 32]> = leaves
        .iter()
        .map(|crc| sha2::sha256(&crc.to_be_bytes()))
        .collect();
    if level.is_empty() {
        return sha2::sha256(b"");
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if let [left, right] = pair {
                let mut h = sha2::Sha256::new();
                h.update(left);
                h.update(right);
                next.push(h.finalize());
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// Re-forge a frame around mutated batch bodies: every `crc=` recomputed,
/// the footer `root=` patched to the forged leaves. Returns the rebuilt
/// text's length, or 0 if the bytes are not a single forgeable frame.
fn rewrite_frame(data: &mut Vec<u8>, rng: &mut DetRng, substitute: bool) -> u64 {
    use std::fmt::Write as _;
    let Ok(text) = std::str::from_utf8(data) else {
        return 0;
    };
    let Some(mut scan) = scan_frame(text) else {
        return 0;
    };
    if scan.batches.is_empty() {
        return 0;
    }
    let idx = rng.below(scan.batches.len() as u64) as usize;
    if substitute {
        let lines = scan.batches[idx].1.lines().count().max(1);
        let mut forged = String::new();
        for i in 0..lines {
            let _ = writeln!(forged, "<urn:forged> <urn:prop> <urn:forged{i}> .");
        }
        scan.batches[idx].1 = forged;
    } else {
        let mut body = std::mem::take(&mut scan.batches[idx].1).into_bytes();
        let spots: Vec<usize> = body
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_ascii_alphanumeric())
            .map(|(i, _)| i)
            .collect();
        if spots.is_empty() {
            return 0;
        }
        let at = spots[rng.below(spots.len() as u64) as usize];
        body[at] = if body[at] == b'x' { b'y' } else { b'x' };
        scan.batches[idx].1 = String::from_utf8(body).expect("ascii swap");
    }
    let mut out = String::with_capacity(text.len() + 16);
    out.push_str(&scan.header);
    out.push('\n');
    let mut leaves = Vec::with_capacity(scan.batches.len());
    for (lines, body) in &scan.batches {
        let crc = crc32fast::hash(body.as_bytes());
        leaves.push(crc);
        let _ = writeln!(out, "#~B lines={lines} crc={crc:08x}");
        out.push_str(body);
    }
    let _ = writeln!(
        out,
        "#~F batches={} chain={} root={}",
        scan.footer_batches,
        scan.footer_chain,
        sha2::hex(&forged_root(&leaves))
    );
    let n = out.len() as u64;
    *data = out.into_bytes();
    n
}

fn manifest_edit(data: &mut [u8], rng: &mut DetRng) -> u64 {
    let Ok(text) = std::str::from_utf8(data) else {
        return 0;
    };
    if !text.starts_with("# PROVIO-MANIFEST1") {
        return 0;
    }
    let mut targets: Vec<usize> = Vec::new();
    let mut off = 0usize;
    for line in text.split_inclusive('\n') {
        if line.starts_with("file ") {
            if let Some(p) = line.find("root=") {
                targets.push(off + p + "root=".len());
            }
        }
        off += line.len();
    }
    if targets.is_empty() {
        return 0;
    }
    let base = targets[rng.below(targets.len() as u64) as usize];
    let digit = base + rng.below(64) as usize;
    data[digit] = if data[digit] == b'0' { b'1' } else { b'0' };
    1
}

fn ledger_truncate(data: &mut Vec<u8>, rng: &mut DetRng) -> u64 {
    let Ok(text) = std::str::from_utf8(data) else {
        return 0;
    };
    let mut starts: Vec<usize> = Vec::new();
    let mut off = 0usize;
    for line in text.split_inclusive('\n') {
        if line.starts_with("# PROVIO1") {
            starts.push(off);
        }
        off += line.len();
    }
    let Some(&last) = starts.last() else {
        return 0;
    };
    let cut = if rng.below(2) == 0 {
        last // clean cut at the chunk boundary
    } else {
        last + 1 + rng.below((data.len() - last - 1).max(1) as u64) as usize
    };
    let removed = (data.len() - cut) as u64;
    data.truncate(cut);
    removed
}

impl TamperKind {
    /// Apply this mutation to `data` in place, drawing choices from `rng`.
    /// Returns the number of bytes affected — 0 means the bytes were not a
    /// valid target (e.g. a frame rewrite aimed at an unframed file), in
    /// which case `data` is unchanged: tamper is surgical, never noisy.
    pub fn apply(&self, data: &mut Vec<u8>, rng: &mut DetRng) -> u64 {
        match self {
            TamperKind::CrcPatchedRewrite => rewrite_frame(data, rng, false),
            TamperKind::FileSubstitution => rewrite_frame(data, rng, true),
            TamperKind::ManifestEdit => manifest_edit(data, rng),
            TamperKind::LedgerTruncate => ledger_truncate(data, rng),
        }
    }
}

/// One armed fault: operation selector, path filter, scheduling, action.
#[derive(Debug, Clone)]
pub struct FaultRule {
    op: FaultOp,
    path_substr: Option<String>,
    /// Path suffix filter (e.g. `".par.tmp"`), sharper than the substring
    /// filter when artifact families share infixes.
    path_suffix: Option<String>,
    /// Clean calls to let through before the rule becomes eligible.
    skip: u32,
    /// How many times the rule may fire (`None` = unlimited).
    times: Option<u32>,
    /// Probability of firing once eligible (1.0 = always).
    probability: f64,
    action: FaultAction,
}

impl FaultRule {
    /// Rule failing `op` with errno `err` on every eligible call.
    pub fn fail(op: FaultOp, err: FsError) -> Self {
        FaultRule {
            op,
            path_substr: None,
            path_suffix: None,
            skip: 0,
            times: None,
            probability: 1.0,
            action: FaultAction::Fail(err),
        }
    }

    /// Torn write: persist `keep` bytes then fail with EIO.
    pub fn torn_write(keep: u64) -> Self {
        FaultRule {
            op: FaultOp::WriteAt,
            path_substr: None,
            path_suffix: None,
            skip: 0,
            times: None,
            probability: 1.0,
            action: FaultAction::TornWrite { keep },
        }
    }

    /// Crash point on `op` (no partial persistence unless [`Self::torn`]).
    pub fn crash(op: FaultOp) -> Self {
        FaultRule {
            op,
            path_substr: None,
            path_suffix: None,
            skip: 0,
            times: None,
            probability: 1.0,
            action: FaultAction::Crash { torn_keep: None },
        }
    }

    /// Silent corruption on `op` (see [`FaultAction::Corrupt`]). For
    /// committed-at-rest damage, prefer
    /// [`crate::FileSystem::corrupt_at_rest`], which needs no armed rule.
    pub fn corrupt(op: FaultOp, kind: CorruptKind) -> Self {
        FaultRule {
            op,
            path_substr: None,
            path_suffix: None,
            skip: 0,
            times: None,
            probability: 1.0,
            action: FaultAction::Corrupt(kind),
        }
    }

    /// Shorthand for [`Self::corrupt`] on the read path: returned bytes are
    /// damaged, the media stays intact.
    pub fn corrupt_reads(kind: CorruptKind) -> Self {
        FaultRule::corrupt(FaultOp::ReadAt, kind)
    }

    /// Latency fault: stall `op` for `ns` virtual nanoseconds, then let it
    /// succeed (see [`FaultAction::Delay`]).
    pub fn delay(op: FaultOp, ns: u64) -> Self {
        FaultRule {
            op,
            path_substr: None,
            path_suffix: None,
            skip: 0,
            times: None,
            probability: 1.0,
            action: FaultAction::Delay { ns },
        }
    }

    /// For a crash rule: also persist a `keep`-byte prefix of the buffer.
    pub fn torn(mut self, keep: u64) -> Self {
        if let FaultAction::Crash { torn_keep } = &mut self.action {
            *torn_keep = Some(keep);
        }
        self
    }

    /// Only fire on paths containing `substr`.
    pub fn on_path(mut self, substr: impl Into<String>) -> Self {
        self.path_substr = Some(substr.into());
        self
    }

    /// Only fire on paths ending in `suffix` — e.g. `".par.tmp"` to damage
    /// a parity seal in flight without touching the store commits whose
    /// paths contain the same infix. Composes with [`Self::on_path`].
    pub fn on_suffix(mut self, suffix: impl Into<String>) -> Self {
        self.path_suffix = Some(suffix.into());
        self
    }

    /// Let `n` matching calls through cleanly before becoming eligible.
    pub fn after(mut self, n: u32) -> Self {
        self.skip = n;
        self
    }

    /// Fire at most `n` times, then disarm — the transient-then-recover
    /// shape: `.times(2)` fails twice, then the operation succeeds.
    pub fn times(mut self, n: u32) -> Self {
        self.times = Some(n);
        self
    }

    /// Fire with probability `p` per eligible call (seeded, deterministic).
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    fn matches(&self, op: FaultOp, path: &str) -> bool {
        self.op == op
            && self
                .path_substr
                .as_deref()
                .is_none_or(|s| path.contains(s))
            && self
                .path_suffix
                .as_deref()
                .is_none_or(|s| path.ends_with(s))
    }
}

#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    skipped: u32,
    fired: u32,
}

/// A deterministic schedule of faults, shared by reference with the
/// file system it is installed on.
#[derive(Debug)]
pub struct FaultPlan {
    rules: Mutex<Vec<RuleState>>,
    rng: Mutex<DetRng>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// An empty plan; all randomness derives from `seed`.
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(FaultPlan {
            rules: Mutex::new(Vec::new()),
            rng: Mutex::new(DetRng::with_stream(seed, FAULT_STREAM)),
            injected: AtomicU64::new(0),
        })
    }

    /// Arm a rule. Rules are consulted in insertion order; the first one
    /// that fires wins.
    pub fn add_rule(&self, rule: FaultRule) {
        self.rules.lock().push(RuleState {
            rule,
            skipped: 0,
            fired: 0,
        });
    }

    /// Builder-style [`Self::add_rule`] for plan construction chains.
    pub fn with_rule(self: Arc<Self>, rule: FaultRule) -> Arc<Self> {
        self.add_rule(rule);
        self
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consult the plan for `op` on `path`. Called by the file system on
    /// every armed operation; returns the action to apply, if any.
    pub fn decide(&self, op: FaultOp, path: &str) -> Option<FaultAction> {
        let mut rules = self.rules.lock();
        for st in rules.iter_mut() {
            if !st.rule.matches(op, path) {
                continue;
            }
            if st.skipped < st.rule.skip {
                st.skipped += 1;
                continue;
            }
            if st.rule.times.is_some_and(|t| st.fired >= t) {
                continue;
            }
            if st.rule.probability < 1.0 {
                let draw = self.rng.lock().f64();
                if draw >= st.rule.probability {
                    continue;
                }
            }
            st.fired += 1;
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(st.rule.action.clone());
        }
        None
    }

    /// Apply a fired [`FaultAction::Corrupt`] to `data` using the plan's
    /// RNG stream, so *where* the damage lands replays from `(seed, rules)`
    /// just like whether it fires. Returns bytes affected.
    pub fn apply_corruption(&self, kind: &CorruptKind, data: &mut Vec<u8>) -> u64 {
        kind.apply(data, &mut self.rng.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_fires_after_skip_then_exhausts() {
        let plan = FaultPlan::new(1);
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).after(2).times(1));
        assert_eq!(plan.decide(FaultOp::WriteAt, "/a"), None);
        assert_eq!(plan.decide(FaultOp::WriteAt, "/a"), None);
        assert_eq!(
            plan.decide(FaultOp::WriteAt, "/a"),
            Some(FaultAction::Fail(FsError::Io))
        );
        assert_eq!(plan.decide(FaultOp::WriteAt, "/a"), None);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn path_filter_narrows_blast_radius() {
        let plan = FaultPlan::new(2);
        plan.add_rule(FaultRule::fail(FaultOp::Rename, FsError::NoSpace).on_path("prov_p3"));
        assert_eq!(plan.decide(FaultOp::Rename, "/provio/prov_p1.nt.tmp"), None);
        assert_eq!(
            plan.decide(FaultOp::Rename, "/provio/prov_p3.nt.tmp"),
            Some(FaultAction::Fail(FsError::NoSpace))
        );
    }

    #[test]
    fn suffix_filter_hits_only_ends_of_paths() {
        let plan = FaultPlan::new(7);
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_suffix(".par.tmp"));
        // The infix appears mid-path: no match.
        assert_eq!(plan.decide(FaultOp::WriteAt, "/p/a.par.tmp.backup"), None);
        // The store commit sharing the directory: no match.
        assert_eq!(plan.decide(FaultOp::WriteAt, "/p/prov_p0.nt.tmp"), None);
        // The in-flight parity seal: match.
        assert_eq!(
            plan.decide(FaultOp::WriteAt, "/p/prov_p0.nt.p000003.par.tmp"),
            Some(FaultAction::Fail(FsError::Io))
        );
    }

    #[test]
    fn wrong_op_never_fires() {
        let plan = FaultPlan::new(3);
        plan.add_rule(FaultRule::crash(FaultOp::Rename));
        assert_eq!(plan.decide(FaultOp::WriteAt, "/x"), None);
        assert_eq!(plan.decide(FaultOp::CreateFile, "/x"), None);
        assert!(matches!(
            plan.decide(FaultOp::Rename, "/x"),
            Some(FaultAction::Crash { torn_keep: None })
        ));
    }

    #[test]
    fn probabilistic_rule_is_seed_deterministic() {
        let draws = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed);
            plan.add_rule(
                FaultRule::fail(FaultOp::WriteAt, FsError::Io).with_probability(0.5),
            );
            (0..64)
                .map(|_| plan.decide(FaultOp::WriteAt, "/x").is_some())
                .collect()
        };
        let a = draws(7);
        assert_eq!(a, draws(7), "same seed, same schedule");
        assert_ne!(a, draws(8), "different seed, different schedule");
        let hits = a.iter().filter(|&&h| h).count();
        assert!(hits > 8 && hits < 56, "p=0.5 should fire sometimes: {hits}");
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new(4);
        plan.add_rule(FaultRule::torn_write(10));
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::NoSpace));
        assert_eq!(
            plan.decide(FaultOp::WriteAt, "/x"),
            Some(FaultAction::TornWrite { keep: 10 })
        );
    }

    #[test]
    fn bit_flips_are_seed_deterministic_and_counted() {
        let damage = |seed: u64| -> Vec<u8> {
            let mut rng = DetRng::with_stream(seed, FAULT_STREAM);
            let mut data = vec![0u8; 64];
            let n = CorruptKind::BitFlips { count: 3 }.apply(&mut data, &mut rng);
            assert_eq!(n, 3);
            data
        };
        assert_eq!(damage(9), damage(9), "same seed, same bits");
        assert_ne!(damage(9), damage(10));
        let flipped: u32 = damage(9).iter().map(|b| b.count_ones()).sum();
        assert!(flipped >= 1 && flipped <= 3, "3 flips may collide: {flipped}");
    }

    #[test]
    fn truncate_strictly_shrinks_nonempty_buffers() {
        let mut rng = DetRng::with_stream(4, FAULT_STREAM);
        for len in [1usize, 2, 17, 400] {
            let mut data = vec![7u8; len];
            let cut = CorruptKind::Truncate.apply(&mut data, &mut rng);
            assert!(data.len() < len, "len {len} not shrunk");
            assert_eq!(cut as usize, len - data.len());
        }
    }

    #[test]
    fn duplicate_block_preserves_length_and_zero_fill_clears() {
        let mut rng = DetRng::with_stream(5, FAULT_STREAM);
        let original: Vec<u8> = (0..100u8).collect();
        let mut data = original.clone();
        CorruptKind::DuplicateBlock { len: 16 }.apply(&mut data, &mut rng);
        assert_eq!(data.len(), 100);
        let mut zeroed = original.clone();
        assert_eq!(CorruptKind::ZeroFill.apply(&mut zeroed, &mut rng), 100);
        assert!(zeroed.iter().all(|&b| b == 0));
        // Empty buffers are a no-op, never a panic.
        let mut empty = Vec::new();
        for kind in [
            CorruptKind::BitFlips { count: 4 },
            CorruptKind::Truncate,
            CorruptKind::DuplicateBlock { len: 8 },
            CorruptKind::ZeroFill,
        ] {
            assert_eq!(kind.apply(&mut empty, &mut rng), 0);
        }
    }

    #[test]
    fn corrupt_rule_fires_on_reads_only_when_armed_there() {
        let plan = FaultPlan::new(6);
        plan.add_rule(FaultRule::corrupt_reads(CorruptKind::BitFlips { count: 1 }));
        assert_eq!(plan.decide(FaultOp::WriteAt, "/x"), None);
        assert_eq!(
            plan.decide(FaultOp::ReadAt, "/x"),
            Some(FaultAction::Corrupt(CorruptKind::BitFlips { count: 1 }))
        );
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn delay_rule_fires_and_is_counted() {
        let plan = FaultPlan::new(11);
        plan.add_rule(FaultRule::delay(FaultOp::WriteAt, 5_000).times(2));
        assert_eq!(
            plan.decide(FaultOp::WriteAt, "/x"),
            Some(FaultAction::Delay { ns: 5_000 })
        );
        assert_eq!(plan.decide(FaultOp::ReadAt, "/x"), None, "op selector holds");
        assert_eq!(
            plan.decide(FaultOp::WriteAt, "/x"),
            Some(FaultAction::Delay { ns: 5_000 })
        );
        assert_eq!(plan.decide(FaultOp::WriteAt, "/x"), None, "exhausted");
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn crash_with_torn_prefix() {
        let plan = FaultPlan::new(5);
        plan.add_rule(FaultRule::crash(FaultOp::WriteAt).torn(32));
        assert_eq!(
            plan.decide(FaultOp::WriteAt, "/x"),
            Some(FaultAction::Crash {
                torn_keep: Some(32)
            })
        );
    }
}
