//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] is installed on a [`crate::FileSystem`] and consulted by
//! the mutating data-path operations (`create_file`, `write_at`, `rename`,
//! `truncate_ino`). Each [`FaultRule`] selects an operation (optionally
//! narrowed to paths containing a substring), waits out a number of clean
//! calls, then fires a [`FaultAction`] — a typed POSIX error, a *torn write*
//! that persists only a prefix of the buffer, or a *crash point* that kills
//! the writing process mid-operation ([`FsError::Crashed`]).
//!
//! Randomized rules draw from a [`DetRng`] stream derived from the plan's
//! seed, so a failing schedule replays bit-for-bit from `(seed, rules)` —
//! the same contract the rest of the simulation keeps for time and data.

use crate::error::FsError;
use parking_lot::Mutex;
use provio_simrt::DetRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Stream id carved out of the run seed for fault decisions, so fault
/// randomness never perturbs workload randomness under the same seed.
const FAULT_STREAM: u64 = 0xFA17;

/// Which file-system operation a rule arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    CreateFile,
    WriteAt,
    Rename,
    TruncateIno,
}

/// What happens when a rule fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the call with a typed errno; nothing is persisted.
    Fail(FsError),
    /// Persist only the first `keep` bytes of the buffer, then report EIO.
    /// Models a torn write: the media holds a prefix, the caller sees an
    /// error. Only meaningful for `WriteAt`; elsewhere it degrades to EIO.
    TornWrite { keep: u64 },
    /// Kill the writer mid-operation: optionally persist a `torn_keep`-byte
    /// prefix (for `WriteAt`), then return [`FsError::Crashed`]. A crashed
    /// process must not retry or clean up — recovery happens at merge time.
    Crash { torn_keep: Option<u64> },
}

/// One armed fault: operation selector, path filter, scheduling, action.
#[derive(Debug, Clone)]
pub struct FaultRule {
    op: FaultOp,
    path_substr: Option<String>,
    /// Clean calls to let through before the rule becomes eligible.
    skip: u32,
    /// How many times the rule may fire (`None` = unlimited).
    times: Option<u32>,
    /// Probability of firing once eligible (1.0 = always).
    probability: f64,
    action: FaultAction,
}

impl FaultRule {
    /// Rule failing `op` with errno `err` on every eligible call.
    pub fn fail(op: FaultOp, err: FsError) -> Self {
        FaultRule {
            op,
            path_substr: None,
            skip: 0,
            times: None,
            probability: 1.0,
            action: FaultAction::Fail(err),
        }
    }

    /// Torn write: persist `keep` bytes then fail with EIO.
    pub fn torn_write(keep: u64) -> Self {
        FaultRule {
            op: FaultOp::WriteAt,
            path_substr: None,
            skip: 0,
            times: None,
            probability: 1.0,
            action: FaultAction::TornWrite { keep },
        }
    }

    /// Crash point on `op` (no partial persistence unless [`Self::torn`]).
    pub fn crash(op: FaultOp) -> Self {
        FaultRule {
            op,
            path_substr: None,
            skip: 0,
            times: None,
            probability: 1.0,
            action: FaultAction::Crash { torn_keep: None },
        }
    }

    /// For a crash rule: also persist a `keep`-byte prefix of the buffer.
    pub fn torn(mut self, keep: u64) -> Self {
        if let FaultAction::Crash { torn_keep } = &mut self.action {
            *torn_keep = Some(keep);
        }
        self
    }

    /// Only fire on paths containing `substr`.
    pub fn on_path(mut self, substr: impl Into<String>) -> Self {
        self.path_substr = Some(substr.into());
        self
    }

    /// Let `n` matching calls through cleanly before becoming eligible.
    pub fn after(mut self, n: u32) -> Self {
        self.skip = n;
        self
    }

    /// Fire at most `n` times, then disarm — the transient-then-recover
    /// shape: `.times(2)` fails twice, then the operation succeeds.
    pub fn times(mut self, n: u32) -> Self {
        self.times = Some(n);
        self
    }

    /// Fire with probability `p` per eligible call (seeded, deterministic).
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    fn matches(&self, op: FaultOp, path: &str) -> bool {
        self.op == op
            && self
                .path_substr
                .as_deref()
                .is_none_or(|s| path.contains(s))
    }
}

#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    skipped: u32,
    fired: u32,
}

/// A deterministic schedule of faults, shared by reference with the
/// file system it is installed on.
#[derive(Debug)]
pub struct FaultPlan {
    rules: Mutex<Vec<RuleState>>,
    rng: Mutex<DetRng>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// An empty plan; all randomness derives from `seed`.
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(FaultPlan {
            rules: Mutex::new(Vec::new()),
            rng: Mutex::new(DetRng::with_stream(seed, FAULT_STREAM)),
            injected: AtomicU64::new(0),
        })
    }

    /// Arm a rule. Rules are consulted in insertion order; the first one
    /// that fires wins.
    pub fn add_rule(&self, rule: FaultRule) {
        self.rules.lock().push(RuleState {
            rule,
            skipped: 0,
            fired: 0,
        });
    }

    /// Builder-style [`Self::add_rule`] for plan construction chains.
    pub fn with_rule(self: Arc<Self>, rule: FaultRule) -> Arc<Self> {
        self.add_rule(rule);
        self
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consult the plan for `op` on `path`. Called by the file system on
    /// every armed operation; returns the action to apply, if any.
    pub fn decide(&self, op: FaultOp, path: &str) -> Option<FaultAction> {
        let mut rules = self.rules.lock();
        for st in rules.iter_mut() {
            if !st.rule.matches(op, path) {
                continue;
            }
            if st.skipped < st.rule.skip {
                st.skipped += 1;
                continue;
            }
            if st.rule.times.is_some_and(|t| st.fired >= t) {
                continue;
            }
            if st.rule.probability < 1.0 {
                let draw = self.rng.lock().f64();
                if draw >= st.rule.probability {
                    continue;
                }
            }
            st.fired += 1;
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(st.rule.action.clone());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_fires_after_skip_then_exhausts() {
        let plan = FaultPlan::new(1);
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).after(2).times(1));
        assert_eq!(plan.decide(FaultOp::WriteAt, "/a"), None);
        assert_eq!(plan.decide(FaultOp::WriteAt, "/a"), None);
        assert_eq!(
            plan.decide(FaultOp::WriteAt, "/a"),
            Some(FaultAction::Fail(FsError::Io))
        );
        assert_eq!(plan.decide(FaultOp::WriteAt, "/a"), None);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn path_filter_narrows_blast_radius() {
        let plan = FaultPlan::new(2);
        plan.add_rule(FaultRule::fail(FaultOp::Rename, FsError::NoSpace).on_path("prov_p3"));
        assert_eq!(plan.decide(FaultOp::Rename, "/provio/prov_p1.nt.tmp"), None);
        assert_eq!(
            plan.decide(FaultOp::Rename, "/provio/prov_p3.nt.tmp"),
            Some(FaultAction::Fail(FsError::NoSpace))
        );
    }

    #[test]
    fn wrong_op_never_fires() {
        let plan = FaultPlan::new(3);
        plan.add_rule(FaultRule::crash(FaultOp::Rename));
        assert_eq!(plan.decide(FaultOp::WriteAt, "/x"), None);
        assert_eq!(plan.decide(FaultOp::CreateFile, "/x"), None);
        assert!(matches!(
            plan.decide(FaultOp::Rename, "/x"),
            Some(FaultAction::Crash { torn_keep: None })
        ));
    }

    #[test]
    fn probabilistic_rule_is_seed_deterministic() {
        let draws = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed);
            plan.add_rule(
                FaultRule::fail(FaultOp::WriteAt, FsError::Io).with_probability(0.5),
            );
            (0..64)
                .map(|_| plan.decide(FaultOp::WriteAt, "/x").is_some())
                .collect()
        };
        let a = draws(7);
        assert_eq!(a, draws(7), "same seed, same schedule");
        assert_ne!(a, draws(8), "different seed, different schedule");
        let hits = a.iter().filter(|&&h| h).count();
        assert!(hits > 8 && hits < 56, "p=0.5 should fire sometimes: {hits}");
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new(4);
        plan.add_rule(FaultRule::torn_write(10));
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::NoSpace));
        assert_eq!(
            plan.decide(FaultOp::WriteAt, "/x"),
            Some(FaultAction::TornWrite { keep: 10 })
        );
    }

    #[test]
    fn crash_with_torn_prefix() {
        let plan = FaultPlan::new(5);
        plan.add_rule(FaultRule::crash(FaultOp::WriteAt).torn(32));
        assert_eq!(
            plan.decide(FaultOp::WriteAt, "/x"),
            Some(FaultAction::Crash {
                torn_keep: Some(32)
            })
        );
    }
}
