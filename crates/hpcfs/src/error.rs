//! POSIX-shaped error codes.

use std::fmt;

/// Errors mirroring the POSIX errno values the workflows can hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsError {
    /// ENOENT — no such file or directory.
    NotFound,
    /// EEXIST — file exists (O_CREAT|O_EXCL, mkdir, link).
    AlreadyExists,
    /// ENOTDIR — a path component is not a directory.
    NotADirectory,
    /// EISDIR — operation on a directory where a file was required.
    IsADirectory,
    /// ENOTEMPTY — directory not empty.
    NotEmpty,
    /// EBADF — bad file descriptor (closed, or wrong access mode).
    BadFd,
    /// EACCES — opened without the required access mode.
    AccessDenied,
    /// EINVAL — invalid argument (bad offset, bad rename, …).
    InvalidArgument,
    /// ENAMETOOLONG / bad path syntax.
    BadPath,
    /// ENOATTR — extended attribute not found.
    NoAttr,
    /// ELOOP — too many levels of symbolic links.
    TooManySymlinks,
    /// ENOSPC — simulated storage capacity exhausted.
    NoSpace,
    /// EXDEV — cross-"device" rename (reserved; single device today).
    CrossDevice,
    /// EIO — injected I/O fault (torn write, media error).
    Io,
    /// Simulation-only: the calling process was killed mid-operation by a
    /// fault-plan crash point. Not a POSIX errno — a crashed process never
    /// observes it; the *recovery* path (merge) is what reacts.
    Crashed,
}

impl FsError {
    /// The errno name, as a GOTCHA-level tracer would log it.
    pub fn errno_name(self) -> &'static str {
        match self {
            FsError::NotFound => "ENOENT",
            FsError::AlreadyExists => "EEXIST",
            FsError::NotADirectory => "ENOTDIR",
            FsError::IsADirectory => "EISDIR",
            FsError::NotEmpty => "ENOTEMPTY",
            FsError::BadFd => "EBADF",
            FsError::AccessDenied => "EACCES",
            FsError::InvalidArgument => "EINVAL",
            FsError::BadPath => "ENAMETOOLONG",
            FsError::NoAttr => "ENOATTR",
            FsError::TooManySymlinks => "ELOOP",
            FsError::NoSpace => "ENOSPC",
            FsError::CrossDevice => "EXDEV",
            FsError::Io => "EIO",
            FsError::Crashed => "ESIMCRASH",
        }
    }

    /// Whether a writer may reasonably retry the operation: media-level
    /// EIO and ENOSPC can clear (transient contention, quota churn);
    /// namespace/argument errors are permanent, and [`FsError::Crashed`]
    /// means there is no process left to retry.
    pub fn is_transient(self) -> bool {
        matches!(self, FsError::Io | FsError::NoSpace)
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.errno_name())
    }
}

impl std::error::Error for FsError {}

pub type FsResult<T> = Result<T, FsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_names_stable() {
        assert_eq!(FsError::NotFound.to_string(), "ENOENT");
        assert_eq!(FsError::BadFd.to_string(), "EBADF");
    }
}
