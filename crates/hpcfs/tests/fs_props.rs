//! Property tests: sparse file content vs. a reference byte-vector model,
//! and namespace operations vs. a reference map model.

use proptest::prelude::*;
use provio_hpcfs::{FileContent, FileSystem, LustreConfig};
use provio_simrt::SimTime;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum ContentOp {
    Write { offset: u16, data: Vec<u8> },
    Synthetic { offset: u16, len: u16 },
    Truncate { size: u16 },
}

fn arb_content_op() -> impl Strategy<Value = ContentOp> {
    prop_oneof![
        (0u16..512, proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(offset, data)| ContentOp::Write { offset, data }),
        (0u16..512, 1u16..256)
            .prop_map(|(offset, len)| ContentOp::Synthetic { offset, len }),
        (0u16..768).prop_map(|size| ContentOp::Truncate { size }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// FileContent behaves exactly like a Vec<u8> with zero-fill semantics.
    #[test]
    fn content_matches_reference_model(ops in proptest::collection::vec(arb_content_op(), 1..40)) {
        let mut sys = FileContent::new();
        let mut model: Vec<u8> = Vec::new();
        for op in &ops {
            match op {
                ContentOp::Write { offset, data } => {
                    let off = *offset as usize;
                    sys.write(*offset as u64, data);
                    if model.len() < off + data.len() {
                        model.resize(off + data.len(), 0);
                    }
                    model[off..off + data.len()].copy_from_slice(data);
                }
                ContentOp::Synthetic { offset, len } => {
                    let end = *offset as usize + *len as usize;
                    sys.write_synthetic(*offset as u64, *len as u64);
                    if model.len() < end {
                        model.resize(end, 0);
                    }
                }
                ContentOp::Truncate { size } => {
                    sys.truncate(*size as u64);
                    model.resize(*size as usize, 0);
                }
            }
            prop_assert_eq!(sys.len(), model.len() as u64);
        }
        // Full read agrees.
        prop_assert_eq!(sys.to_vec(), model.clone());
        // Random window reads agree.
        for start in [0usize, 3, 100, 511] {
            let got = sys.read(start as u64, 64);
            let want: &[u8] = if start >= model.len() {
                &[]
            } else {
                &model[start..model.len().min(start + 64)]
            };
            prop_assert_eq!(&got[..], want, "window at {}", start);
        }
        // Resident bytes never exceed logical size.
        prop_assert!(sys.resident_bytes() <= sys.len());
    }
}

#[derive(Debug, Clone)]
enum NsOp {
    Create(u8),
    Unlink(u8),
    RenameTo(u8, u8),
    WriteBytes(u8, Vec<u8>),
}

fn arb_ns_op() -> impl Strategy<Value = NsOp> {
    prop_oneof![
        (0u8..12).prop_map(NsOp::Create),
        (0u8..12).prop_map(NsOp::Unlink),
        (0u8..12, 0u8..12).prop_map(|(a, b)| NsOp::RenameTo(a, b)),
        ((0u8..12), proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(f, d)| NsOp::WriteBytes(f, d)),
    ]
}

fn path(n: u8) -> String {
    format!("/w/f{n}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Namespace operations agree with a HashMap<name, contents> model.
    #[test]
    fn namespace_matches_reference_model(ops in proptest::collection::vec(arb_ns_op(), 1..50)) {
        let fs = FileSystem::new(LustreConfig::default());
        fs.mkdir("/w", "u", SimTime::ZERO).unwrap();
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        let t = SimTime::ZERO;

        for op in &ops {
            match op {
                NsOp::Create(n) => {
                    let sys = fs.create_file(&path(*n), true, "u", t);
                    if model.contains_key(n) {
                        prop_assert!(sys.is_err());
                    } else {
                        prop_assert!(sys.is_ok());
                        model.insert(*n, Vec::new());
                    }
                }
                NsOp::Unlink(n) => {
                    let sys = fs.unlink(&path(*n));
                    prop_assert_eq!(sys.is_ok(), model.remove(n).is_some());
                }
                NsOp::RenameTo(a, b) => {
                    let sys = fs.rename(&path(*a), &path(*b), t);
                    if let Some(content) = model.get(a).cloned() {
                        prop_assert!(sys.is_ok());
                        model.remove(a);
                        if a != b {
                            model.insert(*b, content);
                        } else {
                            model.insert(*a, content);
                        }
                    } else {
                        prop_assert!(sys.is_err());
                    }
                }
                NsOp::WriteBytes(n, data) => {
                    match fs.lookup(&path(*n)) {
                        Ok(ino) => {
                            prop_assert!(model.contains_key(n));
                            fs.write_at(ino, 0, data, t).unwrap();
                            let entry = model.get_mut(n).unwrap();
                            if entry.len() < data.len() {
                                entry.resize(data.len(), 0);
                            }
                            entry[..data.len()].copy_from_slice(data);
                        }
                        Err(_) => prop_assert!(!model.contains_key(n)),
                    }
                }
            }
        }

        // Directory listing matches the model's keys.
        let mut listed = fs.readdir("/w").unwrap();
        listed.sort();
        let mut expected: Vec<String> = model.keys().map(|n| format!("f{n}")).collect();
        expected.sort();
        prop_assert_eq!(listed, expected);

        // Contents match.
        for (n, want) in &model {
            let ino = fs.lookup(&path(*n)).unwrap();
            let got = fs.read_at(ino, 0, want.len() as u64 + 8).unwrap();
            prop_assert_eq!(&got[..], &want[..]);
        }
    }
}

mod lustre_props {
    use proptest::prelude::*;
    use provio_hpcfs::LustreConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Transfer cost always sits between the perfectly-parallel lower
        /// bound (all stripes share the bytes) and the serial upper bound
        /// (one OST moves everything). Note: cost is deliberately NOT
        /// monotone in bytes at stripe boundaries — a slightly larger
        /// transfer that engages one more OST can finish sooner, which is
        /// real striping behavior.
        #[test]
        fn data_op_bounded_by_parallelism(
            stripe_count in 1u32..256,
            stripe_size in (1u64 << 16)..(1u64 << 26),
            bytes in 1u64..(1 << 40),
        ) {
            let cfg = LustreConfig { stripe_count, stripe_size, ..Default::default() };
            let cost = cfg.data_op(bytes).as_nanos();
            let fixed = cfg.client_overhead_ns + cfg.ost.latency_ns;
            let serial = fixed + cfg.ost.cost(bytes).as_nanos() - cfg.ost.latency_ns;
            // ceil division in the per-OST share can add one element's
            // worth of slack per stripe.
            let parallel_floor = fixed
                + ((bytes / stripe_count as u64) as u128 * 1_000_000_000u128
                    / cfg.ost.bytes_per_sec as u128) as u64;
            prop_assert!(cost <= serial + 1, "{cost} > serial {serial}");
            prop_assert!(cost + 2 >= parallel_floor, "{cost} < floor {parallel_floor}");
        }

        /// Striping never makes a transfer slower than a single-stripe
        /// config, and never faster than perfect stripe_count-way speedup.
        #[test]
        fn striping_speedup_bounded(
            stripe_count in 2u32..128,
            bytes in 1u64..(1 << 38),
        ) {
            let striped = LustreConfig { stripe_count, ..Default::default() };
            let single = LustreConfig { stripe_count: 1, ..Default::default() };
            let s = striped.data_op(bytes).as_nanos();
            let u = single.data_op(bytes).as_nanos();
            prop_assert!(s <= u, "striping can't hurt: {s} > {u}");
            // Perfect speedup bound, modulo the fixed latency term.
            let fixed = striped.client_overhead_ns + striped.ost.latency_ns;
            let s_var = s.saturating_sub(fixed) as u128;
            let u_var = u.saturating_sub(fixed) as u128;
            prop_assert!(
                s_var * (stripe_count as u128) + (stripe_count as u128) >= u_var,
                "super-linear speedup: {s_var} x{stripe_count} < {u_var}"
            );
        }

        /// fsync dominates a metadata op and grows with dirty bytes.
        #[test]
        fn fsync_ordering(dirty in 0u64..(1 << 36)) {
            let cfg = LustreConfig::default();
            prop_assert!(cfg.fsync_op(dirty) >= cfg.meta_op());
            prop_assert!(cfg.fsync_op(dirty) >= cfg.fsync_op(0));
        }
    }
}
