//! Property tests for the fault-injection layer: torn writes persist
//! exactly the promised prefix, crash points never mutate anything beyond
//! their declared prefix, and fault schedules replay deterministically.

use proptest::prelude::*;
use provio_hpcfs::{FaultOp, FaultPlan, FaultRule, FileSystem, FsError, LustreConfig};
use provio_simrt::SimTime;
use std::sync::Arc;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A torn write persists exactly `min(keep, len)` bytes and reports
    /// EIO; the stored prefix is bit-identical to the buffer's prefix.
    #[test]
    fn torn_write_persists_exact_prefix(len in 1usize..2048, keep in 0u64..4096) {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(1);
        plan.add_rule(FaultRule::torn_write(keep).on_path("/victim"));
        fs.install_faults(plan);
        let data = payload(len);
        let ino = fs.create_file("/victim", false, "u", SimTime::ZERO).unwrap();
        prop_assert_eq!(fs.write_at(ino, 0, &data, SimTime::ZERO), Err(FsError::Io));
        let expect = keep.min(len as u64);
        prop_assert_eq!(fs.file_size(ino).unwrap(), expect);
        let stored = fs.read_at(ino, 0, expect).unwrap();
        prop_assert_eq!(&stored[..], &data[..expect as usize]);
    }

    /// A crash point on any armed op returns ESIMCRASH and leaves the
    /// namespace/content exactly as declared: nothing for create/rename/
    /// truncate, at most the torn prefix for write.
    #[test]
    fn crash_points_never_mutate_beyond_declared_prefix(
        op_pick in 0u8..5,
        has_torn in any::<bool>(),
        keep_raw in 0u64..64,
        len in 1usize..256,
    ) {
        let torn_keep = if has_torn { Some(keep_raw) } else { None };
        let op = [
            FaultOp::CreateFile,
            FaultOp::WriteAt,
            FaultOp::Rename,
            FaultOp::TruncateIno,
            FaultOp::Unlink,
        ][op_pick as usize];
        let fs = FileSystem::new(LustreConfig::default());
        let data = payload(len);
        // Pre-existing committed state the crash must not disturb.
        let ino = fs.create_file("/old", false, "u", SimTime::ZERO).unwrap();
        fs.write_at(ino, 0, &data, SimTime::ZERO).unwrap();

        let plan = FaultPlan::new(2);
        let mut rule = FaultRule::crash(op);
        if let Some(k) = torn_keep {
            rule = rule.torn(k);
        }
        plan.add_rule(rule);
        fs.install_faults(plan);

        match op {
            FaultOp::CreateFile => {
                prop_assert_eq!(
                    fs.create_file("/new", false, "u", SimTime::ZERO),
                    Err(FsError::Crashed)
                );
                prop_assert!(!fs.exists("/new"), "no inode materialized");
            }
            FaultOp::WriteAt => {
                let before = data.clone();
                let err = fs.write_at(ino, 0, &[0xAA; 300], SimTime::ZERO);
                prop_assert_eq!(err, Err(FsError::Crashed));
                let kept = torn_keep.unwrap_or(0).min(300);
                let now = fs.read_at(ino, 0, fs.file_size(ino).unwrap()).unwrap();
                // Declared prefix is the new bytes; the rest is untouched.
                for (i, b) in now.iter().enumerate() {
                    if (i as u64) < kept {
                        prop_assert_eq!(*b, 0xAA);
                    } else if i < before.len() {
                        prop_assert_eq!(*b, before[i]);
                    }
                }
            }
            FaultOp::Rename => {
                prop_assert_eq!(
                    fs.rename("/old", "/moved", SimTime::ZERO),
                    Err(FsError::Crashed)
                );
                prop_assert!(fs.exists("/old"), "source still in place");
                prop_assert!(!fs.exists("/moved"));
            }
            FaultOp::TruncateIno => {
                prop_assert_eq!(
                    fs.truncate_ino(ino, 0, SimTime::ZERO),
                    Err(FsError::Crashed)
                );
                prop_assert_eq!(fs.file_size(ino).unwrap(), len as u64, "size unchanged");
            }
            FaultOp::Unlink => {
                prop_assert_eq!(fs.unlink("/old"), Err(FsError::Crashed));
                prop_assert!(fs.exists("/old"), "victim still in place");
            }
            FaultOp::ReadAt => unreachable!("op_pick only draws mutating ops"),
        }
    }

    /// A probabilistic schedule replays identically for the same seed and
    /// rule set, independent of what the workload data looks like.
    #[test]
    fn schedules_replay_deterministically(seed in 0u64..1_000_000, p in 0.05f64..0.95) {
        let run = |seed: u64| -> Vec<bool> {
            let fs = FileSystem::new(LustreConfig::default());
            let plan = FaultPlan::new(seed);
            plan.add_rule(
                FaultRule::fail(FaultOp::WriteAt, FsError::NoSpace).with_probability(p),
            );
            fs.install_faults(plan);
            let ino = fs.create_file("/f", false, "u", SimTime::ZERO).unwrap();
            (0..32)
                .map(|i| fs.write_at(ino, i, b"x", SimTime::ZERO).is_err())
                .collect()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

/// End-to-end integrity property over the checksummed store format (the
/// dev-dependency on `provio-core` is the point: the *filesystem's* bit-rot
/// faults are exercised against the *store's* on-disk framing).
mod bit_rot_integrity {
    use super::*;
    use provio::{merge_directory, ProvenanceStore, RdfFormat};
    use provio_hpcfs::CorruptKind;
    use provio_rdf::{ntriples, Graph, Iri, Subject, Term, Triple};
    use std::collections::BTreeSet;

    fn triples(start: usize, n: usize) -> Vec<Triple> {
        (start..start + n)
            .map(|i| {
                Triple::new(
                    Subject::iri(format!("urn:s{i}")),
                    Iri::new("urn:p"),
                    Term::iri("urn:o"),
                )
            })
            .collect()
    }

    fn lines(g: &Graph) -> BTreeSet<String> {
        ntriples::serialize(g)
            .lines()
            .map(str::to_string)
            .collect()
    }

    /// Build a checksummed store and leave its snapshot + delta segments on
    /// disk (no `finish`, so nothing gets compacted away).
    fn build_store(fs: &Arc<FileSystem>) {
        let st = ProvenanceStore::new(
            Arc::clone(fs),
            "/prov/prov_p0.nt".to_string(),
            RdfFormat::NTriples,
            false,
        )
        .with_checksums(true)
        .with_delta(true, 0);
        for flush in 0..3 {
            st.push(triples(flush * 16, 16), None);
            st.flush(None);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// A single random bit-flip anywhere in any committed checksummed
        /// file is either detected (quarantine, dropped batch, or chain
        /// break — and then only verified triples merge) or harmless (the
        /// merged graph is bit-identical to the fault-free baseline). It
        /// NEVER silently alters or forges a triple.
        #[test]
        fn single_bit_flip_is_detected_or_harmless(
            seed in any::<u64>(),
            file_pick in any::<prop::sample::Index>(),
        ) {
            let fs = FileSystem::new(LustreConfig::default());
            build_store(&fs);
            let (baseline, rb) = merge_directory(&fs, "/prov");
            prop_assert!(rb.corrupt.is_empty() && rb.quarantined.is_empty());
            prop_assert_eq!(rb.chain_breaks, 0);
            let baseline_lines = lines(&baseline);

            let files = fs.walk_files("/prov").unwrap();
            prop_assert_eq!(files.len(), 3, "snapshot + two delta segments");
            let victim = &files[file_pick.index(files.len())];
            let flipped = fs
                .corrupt_at_rest(victim, &CorruptKind::BitFlips { count: 1 }, seed)
                .unwrap();
            prop_assert_eq!(flipped, 1);

            let (merged, report) = merge_directory(&fs, "/prov");
            let merged_lines = lines(&merged);
            prop_assert!(
                merged_lines.is_subset(&baseline_lines),
                "a bit-flip must never put a triple into the merge that the \
                 fault-free run would not have produced (victim {}, seed {})",
                victim,
                seed
            );
            let detected = !report.corrupt.is_empty()
                || !report.quarantined.is_empty()
                || report.chain_breaks > 0;
            if !detected {
                prop_assert_eq!(
                    &merged_lines,
                    &baseline_lines,
                    "an undetected flip must be harmless: identical merge \
                     (victim {}, seed {})",
                    victim,
                    seed
                );
            }
        }
    }
}

/// Adversarial counterpart to `bit_rot_integrity`: the same store is
/// *sealed* (signed manifest + campaign ledger), and the mutations are
/// format-aware forgeries instead of blind rot. The property is the
/// tamper-evidence contract: any single seeded mutation anywhere in the
/// run directory is either detected by `verify` or provably harmless
/// (`affected == 0`, bytes untouched) — and a clean sealed run never
/// yields a false positive.
mod tamper_trust {
    use super::*;
    use provio::verify::seal_run;
    use provio::{verify_directory, FileVerdict, ProvenanceStore, RdfFormat};
    use provio_hpcfs::TamperKind;

    const KEY: &str = "prop-campaign-key";

    fn build_sealed_run(fs: &Arc<FileSystem>) {
        let st = ProvenanceStore::new(
            Arc::clone(fs),
            "/prov/prov_p0.nt".to_string(),
            RdfFormat::NTriples,
            false,
        )
        .with_checksums(true)
        .with_delta(true, 0);
        for flush in 0..3 {
            st.push(
                (flush * 16..flush * 16 + 16)
                    .map(|i| {
                        provio_rdf::Triple::new(
                            provio_rdf::Subject::iri(format!("urn:s{i}")),
                            provio_rdf::Iri::new("urn:p"),
                            provio_rdf::Term::iri("urn:o"),
                        )
                    })
                    .collect(),
                None,
            );
            st.flush(None);
        }
        seal_run(fs, "/prov", KEY, &[]).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Any single tamper mutation — against any file in the run
        /// directory, store files and trust artifacts alike — is detected
        /// or provably harmless, with zero false positives and a verdict
        /// that is stable under re-verify.
        #[test]
        fn any_single_tamper_is_detected_or_provably_harmless(
            seed in any::<u64>(),
            kind_pick in 0u8..4,
            file_pick in any::<prop::sample::Index>(),
        ) {
            let fs = FileSystem::new(LustreConfig::default());
            build_sealed_run(&fs);
            let clean = verify_directory(&fs, "/prov", KEY);
            prop_assert!(clean.is_trusted(), "false positive on a clean run: {}", clean);

            // The adversary may aim any mutation at any file; kinds that
            // find no valid target there must leave the bytes untouched.
            let files = fs.walk_files("/prov").unwrap();
            let victim = files[file_pick.index(files.len())].clone();
            let kind = [
                TamperKind::CrcPatchedRewrite,
                TamperKind::FileSubstitution,
                TamperKind::ManifestEdit,
                TamperKind::LedgerTruncate,
            ][kind_pick as usize];
            let affected = fs.tamper_at_rest(&victim, &kind, seed).unwrap();

            let report = verify_directory(&fs, "/prov", KEY);
            if affected == 0 {
                prop_assert!(
                    report.is_trusted(),
                    "a no-op mutation must not change the verdict \
                     (kind {:?}, victim {}, seed {}): {}",
                    kind, victim, seed, report
                );
            } else {
                // Detected: either the trust tier condemns the run, or the
                // mutation degenerated to rot (e.g. a truncation aimed at
                // a store file) and the CRC tier accounts it as damage —
                // visible either way, never a silent pass.
                let visible = !report.is_trusted()
                    || report.count(FileVerdict::Damaged) > 0
                    || report.count(FileVerdict::Missing) > 0;
                prop_assert!(
                    visible,
                    "undetected tamper (kind {:?}, victim {}, seed {}): {}",
                    kind, victim, seed, report
                );
                // Blast radius: every Tampered row names the mutated file
                // (an edited manifest additionally demotes store rows to
                // Unsigned — unjudgeable, not misattributed).
                for c in &report.checks {
                    if c.verdict == FileVerdict::Tampered {
                        prop_assert_eq!(
                            c.path.as_str(), victim.as_str(),
                            "misattributed blast radius (kind {:?}, seed {})",
                            kind, seed
                        );
                    }
                }
                if matches!(
                    kind,
                    TamperKind::CrcPatchedRewrite | TamperKind::FileSubstitution
                ) {
                    // The CRC-patched kinds never masquerade as rot: every
                    // frame check passes, only the signed root disagrees.
                    prop_assert!(!report.is_trusted(), "{}", report);
                    prop_assert_eq!(report.count(FileVerdict::Damaged), 0, "{}", report);
                }
            }
            // Verifying is read-only, so the verdict is reproducible.
            let again = verify_directory(&fs, "/prov", KEY);
            prop_assert_eq!(report.to_string(), again.to_string());
        }
    }
}

#[test]
fn transient_rule_recovers_after_n_failures() {
    let fs = FileSystem::new(LustreConfig::default());
    let plan = FaultPlan::new(3);
    plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).times(3));
    fs.install_faults(Arc::clone(&plan));
    let ino = fs.create_file("/t", false, "u", SimTime::ZERO).unwrap();
    for _ in 0..3 {
        assert_eq!(fs.write_at(ino, 0, b"abc", SimTime::ZERO), Err(FsError::Io));
    }
    assert!(fs.write_at(ino, 0, b"abc", SimTime::ZERO).is_ok());
    assert_eq!(plan.injected(), 3);
    assert_eq!(fs.file_size(ino).unwrap(), 3);
}

#[test]
fn clearing_faults_restores_clean_operation() {
    let fs = FileSystem::new(LustreConfig::default());
    let plan = FaultPlan::new(4);
    plan.add_rule(FaultRule::fail(FaultOp::CreateFile, FsError::NoSpace));
    fs.install_faults(plan);
    assert_eq!(
        fs.create_file("/x", false, "u", SimTime::ZERO),
        Err(FsError::NoSpace)
    );
    fs.clear_faults();
    assert!(fs.create_file("/x", false, "u", SimTime::ZERO).is_ok());
}

#[test]
fn renamed_files_keep_matching_path_rules() {
    // Path-filtered WriteAt rules must track a file across rename — the
    // store's tmp file becomes the committed path.
    let fs = FileSystem::new(LustreConfig::default());
    let plan = FaultPlan::new(5);
    plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_path("/final"));
    fs.install_faults(plan);
    let ino = fs.create_file("/staging", false, "u", SimTime::ZERO).unwrap();
    assert!(fs.write_at(ino, 0, b"ok", SimTime::ZERO).is_ok(), "no match yet");
    fs.rename("/staging", "/final", SimTime::ZERO).unwrap();
    assert_eq!(
        fs.write_at(ino, 0, b"boom", SimTime::ZERO),
        Err(FsError::Io),
        "rule follows the inode to its new path"
    );
}

/// Self-healing property over the parity-protected store: the filesystem's
/// at-rest damage primitives (rot and deletion) are exercised against the
/// store's XOR parity groups, and `scrub` must restore any single loss per
/// group *byte-identically* — or, beyond tolerance, refuse to guess and
/// report exactly what was lost.
mod parity_scrub {
    use super::*;
    use provio::{merge_directory, repairable_paths, scrub_directory, ProvenanceStore, RdfFormat};
    use provio_hpcfs::CorruptKind;
    use provio_rdf::{ntriples, Graph, Iri, Subject, Term, Triple};
    use std::collections::{BTreeMap, BTreeSet};

    fn triples(start: usize, n: usize) -> Vec<Triple> {
        (start..start + n)
            .map(|i| {
                Triple::new(
                    Subject::iri(format!("urn:s{i}")),
                    Iri::new("urn:p"),
                    Term::iri("urn:o"),
                )
            })
            .collect()
    }

    fn lines(g: &Graph) -> BTreeSet<String> {
        ntriples::serialize(g)
            .lines()
            .map(str::to_string)
            .collect()
    }

    /// A checksummed, parity-protected store left uncompacted: snapshot +
    /// delta segments with their sealed `.par` groups still on disk.
    fn build_parity_store(fs: &Arc<FileSystem>, group: u32) {
        let st = ProvenanceStore::new(
            Arc::clone(fs),
            "/prov/prov_p0.nt".to_string(),
            RdfFormat::NTriples,
            false,
        )
        .with_checksums(true)
        .with_delta(true, 0)
        .with_parity(true, group);
        for flush in 0..4 {
            st.push(triples(flush * 16, 16), None);
            st.flush(None);
        }
    }

    fn image(fs: &Arc<FileSystem>) -> BTreeMap<String, Vec<u8>> {
        fs.walk_files("/prov")
            .unwrap()
            .into_iter()
            .map(|p| {
                let ino = fs.lookup(&p).unwrap();
                let n = fs.stat(&p).unwrap().size;
                let bytes = fs.read_at(ino, 0, n).unwrap().to_vec();
                (p, bytes)
            })
            .collect()
    }

    /// Member paths recorded by one parity file (whole-file members only —
    /// this store has no journal plane).
    fn group_members(fs: &Arc<FileSystem>, par: &str) -> Vec<String> {
        let ino = fs.lookup(par).unwrap();
        let n = fs.stat(par).unwrap().size;
        let text = String::from_utf8(fs.read_at(ino, 0, n).unwrap().to_vec()).unwrap();
        text.lines()
            .filter_map(|l| l.split_once("path=").map(|(_, p)| p.to_string()))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any single covered artifact — snapshot, delta segment, or the
        /// parity file itself — damaged or deleted, is restored to the
        /// exact sealed bytes (a damaged parity file regenerates, a rotted
        /// member reconstructs, and only a destroyed member *batch* may
        /// honestly cost redundancy — never data).
        #[test]
        fn single_loss_per_group_restores_byte_identical(
            seed in any::<u64>(),
            group in 1u32..4,
            pick in any::<prop::sample::Index>(),
            delete in any::<bool>(),
        ) {
            let fs = FileSystem::new(LustreConfig::default());
            build_parity_store(&fs, group);
            let before = image(&fs);
            let (baseline, _) = merge_directory(&fs, "/prov");
            let baseline_lines = lines(&baseline);

            let mut covered: Vec<String> =
                repairable_paths(&fs, "/prov").into_iter().collect();
            covered.sort();
            prop_assert!(!covered.is_empty());
            let victim = covered[pick.index(covered.len())].clone();
            let is_par = victim.ends_with(".par");
            if delete {
                fs.unlink(&victim).unwrap();
            } else {
                fs.corrupt_at_rest(&victim, &CorruptKind::BitFlips { count: 1 }, seed)
                    .unwrap();
            }

            let report = scrub_directory(&fs, "/prov");
            let healed = image(&fs);
            if is_par && delete {
                // A deleted parity file takes its member records with it:
                // the group is no longer discoverable, so nothing can (or
                // should) be rebuilt — and nothing else may be touched.
                prop_assert!(report.is_clean(), "{}", report);
                for (path, bytes) in &before {
                    if path != &victim {
                        prop_assert_eq!(healed.get(path), Some(bytes), "{}", path);
                    }
                }
            } else if is_par {
                // A rotted parity file either regenerates byte-identical
                // (the member records survived) or is honestly declared
                // unusable (the flip landed in the member batch) — and in
                // both cases every data artifact is untouched.
                let regenerated = report.repaired_parity.contains(&victim);
                let written_off = report.unusable_parity.contains(&victim);
                prop_assert!(regenerated || written_off, "{}", report);
                prop_assert!(report.unrecoverable.is_empty(), "{}", report);
                for (path, bytes) in &before {
                    if regenerated || path != &victim {
                        prop_assert_eq!(healed.get(path), Some(bytes), "{}", path);
                    }
                }
            } else {
                // A lost or rotted member reconstructs exactly.
                prop_assert!(
                    report.repaired_files.contains(&victim),
                    "victim {} not repaired (delete={}): {}",
                    victim, delete, report
                );
                for (path, bytes) in &before {
                    prop_assert_eq!(healed.get(path), Some(bytes), "{}", path);
                }
            }

            let (merged, mrep) = merge_directory(&fs, "/prov");
            prop_assert_eq!(lines(&merged), baseline_lines);
            prop_assert!(mrep.corrupt.is_empty() && mrep.quarantined.is_empty());
        }

        /// Two members lost in the *same* group exceed XOR tolerance: scrub
        /// must refuse to fabricate bytes, report exactly the lost pair,
        /// leave every surviving file untouched, and hand the loss to the
        /// merge tier's accounting (missing sub-graphs, never forgeries).
        #[test]
        fn double_loss_in_one_group_is_reported_not_guessed(
            seed in any::<u64>(),
            group in 2u32..4,
            pair in any::<prop::sample::Index>(),
        ) {
            let fs = FileSystem::new(LustreConfig::default());
            build_parity_store(&fs, group);
            let before = image(&fs);
            let (baseline, _) = merge_directory(&fs, "/prov");
            let baseline_lines = lines(&baseline);

            let mut pars: Vec<String> = fs
                .walk_files("/prov")
                .unwrap()
                .into_iter()
                .filter(|p| p.ends_with(".par"))
                .collect();
            pars.sort();
            let full: Vec<(String, Vec<String>)> = pars
                .iter()
                .map(|p| (p.clone(), group_members(&fs, p)))
                .filter(|(_, m)| m.len() >= 2)
                .collect();
            prop_assert!(!full.is_empty(), "a multi-member group exists at width {}", group);
            let (_, members) = &full[pair.index(full.len())];
            let a = members[0].clone();
            let b = members[1].clone();
            fs.unlink(&a).unwrap();
            fs.corrupt_at_rest(&b, &CorruptKind::ZeroFill, seed).unwrap();

            let report = scrub_directory(&fs, "/prov");
            let mut lost = report.unrecoverable.clone();
            lost.sort();
            let mut expect = vec![a.clone(), b.clone()];
            expect.sort();
            prop_assert_eq!(lost, expect, "{}", report);
            prop_assert!(report.repaired_files.is_empty(), "no partial guesses: {}", report);
            let healed = image(&fs);
            for (path, bytes) in &before {
                if path != &a && path != &b {
                    prop_assert_eq!(healed.get(path), Some(bytes), "{}", path);
                }
            }

            // PR 4/5 loss accounting takes over: the merge shrinks (or at
            // worst flags damage); it never invents triples.
            let (merged, _) = merge_directory(&fs, "/prov");
            prop_assert!(lines(&merged).is_subset(&baseline_lines));
        }
    }
}
