//! Property tests: property-path closure vs. naive reachability, and
//! consistency between full-relation and from-source path evaluation.

use proptest::prelude::*;
use provio_rdf::{Graph, Iri, Subject, Term, Triple};
use provio_sparql::path::{eval_path, eval_path_from};
use provio_sparql::PathExpr;
use std::collections::HashSet;

/// Random small digraph over nodes 0..n via predicate urn:d.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u8, u8)>)> {
    (2usize..10).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as u8, 0..n as u8),
            0..(n * 2),
        );
        (Just(n), edges)
    })
}

fn build(edges: &[(u8, u8)]) -> Graph {
    let mut g = Graph::new();
    for &(a, b) in edges {
        g.insert(&Triple::new(
            Subject::iri(format!("urn:n{a}")),
            Iri::new("urn:d"),
            Term::iri(format!("urn:n{b}")),
        ));
    }
    g
}

/// Naive transitive closure by iterated matrix "squaring".
fn naive_closure(edges: &[(u8, u8)]) -> HashSet<(u8, u8)> {
    let mut closure: HashSet<(u8, u8)> = edges.iter().copied().collect();
    loop {
        let mut grew = false;
        let snapshot: Vec<(u8, u8)> = closure.iter().copied().collect();
        for &(a, b) in &snapshot {
            for &(c, d) in &snapshot {
                if b == c && closure.insert((a, d)) {
                    grew = true;
                }
            }
        }
        if !grew {
            return closure;
        }
    }
}

fn term_to_node(t: &Term) -> u8 {
    let s = t.as_iri().unwrap().as_str();
    s.strip_prefix("urn:n").unwrap().parse().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn one_or_more_equals_naive_closure((_, edges) in arb_edges()) {
        let g = build(&edges);
        let p = PathExpr::OneOrMore(Box::new(PathExpr::Iri(Iri::new("urn:d"))));
        let got: HashSet<(u8, u8)> = eval_path(&g, &p)
            .iter()
            .map(|(a, b)| (term_to_node(a), term_to_node(b)))
            .collect();
        let want = naive_closure(&edges);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn from_source_agrees_with_full_relation((n, edges) in arb_edges()) {
        let g = build(&edges);
        let p = PathExpr::OneOrMore(Box::new(PathExpr::Iri(Iri::new("urn:d"))));
        let full = eval_path(&g, &p);
        for node in 0..n as u8 {
            let start = Term::iri(format!("urn:n{node}"));
            let mut from: Vec<String> = eval_path_from(&g, &p, &start)
                .iter().map(|t| t.to_string()).collect();
            from.sort();
            let mut expect: Vec<String> = full.iter()
                .filter(|(s, _)| *s == start)
                .map(|(_, o)| o.to_string())
                .collect();
            expect.sort();
            prop_assert_eq!(from, expect, "node {}", node);
        }
    }

    #[test]
    fn zero_or_more_is_one_or_more_plus_identity((_, edges) in arb_edges()) {
        let g = build(&edges);
        let plus = PathExpr::OneOrMore(Box::new(PathExpr::Iri(Iri::new("urn:d"))));
        let star = PathExpr::ZeroOrMore(Box::new(PathExpr::Iri(Iri::new("urn:d"))));
        let plus_set: HashSet<(Term, Term)> = eval_path(&g, &plus).into_iter().collect();
        let star_set: HashSet<(Term, Term)> = eval_path(&g, &star).into_iter().collect();
        // star ⊇ plus and star \ plus is exactly the identity pairs.
        for pair in &plus_set {
            prop_assert!(star_set.contains(pair));
        }
        for pair in star_set.difference(&plus_set) {
            prop_assert_eq!(&pair.0, &pair.1);
        }
    }

    #[test]
    fn inverse_is_involution((_, edges) in arb_edges()) {
        let g = build(&edges);
        let p = PathExpr::Iri(Iri::new("urn:d"));
        let inv_inv = PathExpr::Inverse(Box::new(PathExpr::Inverse(Box::new(p.clone()))));
        let a: HashSet<(Term, Term)> = eval_path(&g, &p).into_iter().collect();
        let b: HashSet<(Term, Term)> = eval_path(&g, &inv_inv).into_iter().collect();
        prop_assert_eq!(a, b);
    }
}
