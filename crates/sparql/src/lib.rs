//! `provio-sparql` — a SPARQL SELECT engine over [`provio_rdf::Graph`].
//!
//! PROV-IO's user engine answers all provenance needs in the paper with a
//! handful of SELECT statements (paper §6.5, Table 5). This crate implements
//! the subset those queries — and transitive lineage — require:
//!
//! * `PREFIX` declarations, `SELECT [DISTINCT] (?v… | *) WHERE { … }`
//! * Basic graph patterns with `;`/`,` continuations and `a`
//! * Property paths in the predicate position: `iri`, `^p` (inverse),
//!   `p1/p2` (sequence), `p1|p2` (alternative), `p+`, `p*`, `(p)`
//! * `FILTER` with comparisons, `&&`, `||`, `!`, `REGEX` (substring with
//!   optional `^`/`$` anchors), `STRSTARTS`, `STRENDS`, `CONTAINS`, `BOUND`
//! * `(COUNT(?v|*) AS ?alias)` with optional `GROUP BY` (the "total number
//!   of each type of HDF5 I/O operation" question of §3.3)
//! * `ORDER BY`, `LIMIT`, `OFFSET`
//!
//! Unsupported (not needed by the paper's workloads and rejected at parse
//! time): `OPTIONAL`, `UNION`, subqueries, and update forms.
//!
//! ```
//! use provio_rdf::{turtle, Namespaces};
//! use provio_sparql::Query;
//!
//! let (graph, _) = turtle::parse(r#"
//!     @prefix prov: <http://www.w3.org/ns/prov#> .
//!     <urn:decimate.h5> prov:wasAttributedTo <urn:decimate> .
//! "#).unwrap();
//! let q = Query::parse(r#"
//!     PREFIX prov: <http://www.w3.org/ns/prov#>
//!     SELECT ?program WHERE { <urn:decimate.h5> prov:wasAttributedTo ?program . }
//! "#).unwrap();
//! let sols = q.execute(&graph);
//! assert_eq!(sols.len(), 1);
//! ```

pub mod ast;
pub mod eval;
pub mod parse;
pub mod path;

pub use ast::{Aggregate, Expr, PathExpr, Pattern, Query, TermOrVar};
pub use eval::{Binding, Solutions};

/// Errors from parsing or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Syntax error or unsupported construct, rejected at parse time.
    Parse(String),
    /// Evaluation exceeded its step budget ([`Query::execute_with_budget`]).
    /// A runaway join or a closure walk over a dense graph is cut off
    /// instead of monopolizing the engine.
    BudgetExhausted {
        /// The budget the evaluation started with.
        budget: u64,
    },
}

impl QueryError {
    /// A parse-stage error (the historical constructor).
    pub fn new(message: impl Into<String>) -> Self {
        QueryError::Parse(message.into())
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(message) => write!(f, "query error: {message}"),
            QueryError::BudgetExhausted { budget } => {
                write!(f, "query error: evaluation budget of {budget} steps exhausted")
            }
        }
    }
}

impl std::error::Error for QueryError {}
