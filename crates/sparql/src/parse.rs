//! Recursive-descent parser for the supported SELECT subset.

use crate::ast::{CompareOp, Expr, PathExpr, Pattern, Query, TermOrVar};
use crate::QueryError;
use provio_rdf::{ns, Iri, Literal, Namespaces, Term};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Var(String),
    Iri(String),
    PName(String),
    Str(String),
    Number(String),
    Bool(bool),
    Word(String), // keywords and `a`
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Semi,
    Comma,
    Caret,
    Slash,
    Pipe,
    Plus,
    Star,
    Bang,
    AndAnd,
    OrOr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    DoubleCaret,
    Eof,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, QueryError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut toks = Vec::new();
    let err = |m: String| QueryError::new(m);
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'?' | b'$' => {
                i += 1;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                if i == start {
                    return Err(err("empty variable name".into()));
                }
                toks.push(Tok::Var(src[start..i].to_string()));
            }
            b'<' => {
                // `<` could be an IRI or a comparison; IRIs never contain
                // spaces and must close with '>'.
                if let Some(end) = src[i + 1..].find('>') {
                    let body = &src[i + 1..i + 1 + end];
                    if !body.contains(char::is_whitespace) && !body.is_empty() {
                        toks.push(Tok::Iri(body.to_string()));
                        i += end + 2;
                        continue;
                    }
                }
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            b'"' => {
                i += 1;
                let start = i;
                loop {
                    if i >= b.len() {
                        return Err(err("unterminated string".into()));
                    }
                    match b[i] {
                        b'"' => break,
                        b'\\' => {
                            if i + 1 >= b.len() {
                                return Err(err("unterminated escape".into()));
                            }
                            i += 2;
                        }
                        _ => i += 1,
                    }
                }
                let raw = &src[start..i];
                i += 1;
                let unescaped = provio_rdf::term::unescape_literal(raw)
                    .ok_or_else(|| err("bad escape in string".into()))?;
                toks.push(Tok::Str(unescaped));
            }
            b'{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            b'}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            b'(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            b'.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            b';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            b',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            b'^' => {
                if i + 1 < b.len() && b[i + 1] == b'^' {
                    toks.push(Tok::DoubleCaret);
                    i += 2;
                } else {
                    toks.push(Tok::Caret);
                    i += 1;
                }
            }
            b'/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            b'|' => {
                if i + 1 < b.len() && b[i + 1] == b'|' {
                    toks.push(Tok::OrOr);
                    i += 2;
                } else {
                    toks.push(Tok::Pipe);
                    i += 1;
                }
            }
            b'&' => {
                if i + 1 < b.len() && b[i + 1] == b'&' {
                    toks.push(Tok::AndAnd);
                    i += 2;
                } else {
                    return Err(err("stray '&'".into()));
                }
            }
            b'+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            b'*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            b'!' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    toks.push(Tok::Bang);
                    i += 1;
                }
            }
            b'=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            b'0'..=b'9' | b'-' => {
                let start = i;
                i += 1;
                while i < b.len()
                    && (b[i].is_ascii_digit() || b[i] == b'.' || b[i] == b'e' || b[i] == b'E')
                {
                    i += 1;
                }
                toks.push(Tok::Number(src[start..i].to_string()));
            }
            _ => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || b[i] == b':'
                        || b[i] == b'-'
                        || b[i] == b'%'
                        // '.' is legal inside a prefixed-name local part
                        // (e.g. ex:decimate.h5) but not as the last char —
                        // a trailing '.' is the statement terminator.
                        || (b[i] == b'.'
                            && i + 1 < b.len()
                            && (b[i + 1].is_ascii_alphanumeric()
                                || b[i + 1] == b'_'
                                || b[i + 1] == b'-')))
                {
                    i += 1;
                }
                if i == start {
                    return Err(err(format!("unexpected character '{}'", c as char)));
                }
                let word = &src[start..i];
                if word == "true" {
                    toks.push(Tok::Bool(true));
                } else if word == "false" {
                    toks.push(Tok::Bool(false));
                } else if word.contains(':') {
                    toks.push(Tok::PName(word.to_string()));
                } else {
                    toks.push(Tok::Word(word.to_string()));
                }
            }
        }
    }
    toks.push(Tok::Eof);
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    nss: Namespaces,
    statement_count: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_word(&mut self, kw: &str) -> bool {
        if let Tok::Word(w) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.next();
                return true;
            }
        }
        false
    }

    fn expect_word(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_word(kw) {
            Ok(())
        } else {
            Err(QueryError::new(format!(
                "expected '{kw}', got {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), QueryError> {
        if *self.peek() == t {
            self.next();
            Ok(())
        } else {
            Err(QueryError::new(format!(
                "expected {t:?}, got {:?}",
                self.peek()
            )))
        }
    }

    fn resolve(&self, pname: &str) -> Result<Iri, QueryError> {
        self.nss
            .expand(pname)
            .ok_or_else(|| QueryError::new(format!("unknown prefix in '{pname}'")))
    }

    fn parse_query(&mut self) -> Result<Query, QueryError> {
        // Prologue.
        while self.eat_word("PREFIX") {
            let Tok::PName(pn) = self.next() else {
                return Err(QueryError::new("expected prefix name after PREFIX"));
            };
            let prefix = pn
                .strip_suffix(':')
                .ok_or_else(|| QueryError::new("prefix must end with ':'"))?
                .to_string();
            let Tok::Iri(iri) = self.next() else {
                return Err(QueryError::new("expected IRI after prefix name"));
            };
            self.nss.bind(prefix, iri);
        }

        self.expect_word("SELECT")?;
        let distinct = self.eat_word("DISTINCT");

        let mut projection = Vec::new();
        let mut aggregate = None;
        loop {
            match self.peek().clone() {
                Tok::Star if projection.is_empty() && aggregate.is_none() => {
                    self.next();
                    break;
                }
                Tok::Var(_) => {
                    let Tok::Var(v) = self.next() else {
                        unreachable!()
                    };
                    projection.push(v);
                }
                Tok::LParen => {
                    // ( COUNT ( [DISTINCT] ?v | * ) AS ?alias )
                    self.next();
                    self.expect_word("COUNT")?;
                    self.expect(Tok::LParen)?;
                    let agg_distinct = self.eat_word("DISTINCT");
                    let var = match self.next() {
                        Tok::Star => None,
                        Tok::Var(v) => Some(v),
                        t => {
                            return Err(QueryError::new(format!(
                                "COUNT takes '*' or a variable, got {t:?}"
                            )))
                        }
                    };
                    self.expect(Tok::RParen)?;
                    self.expect_word("AS")?;
                    let Tok::Var(alias) = self.next() else {
                        return Err(QueryError::new("expected alias variable after AS"));
                    };
                    self.expect(Tok::RParen)?;
                    if aggregate.is_some() {
                        return Err(QueryError::new("at most one COUNT aggregate"));
                    }
                    aggregate = Some(crate::ast::Aggregate {
                        var,
                        distinct: agg_distinct,
                        alias,
                    });
                }
                _ => break,
            }
        }
        if projection.is_empty() && aggregate.is_none() {
            // `SELECT *` consumed above leaves both empty legitimately only
            // when Star matched; detect bare SELECT here.
            if !matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case("WHERE")) {
                return Err(QueryError::new("SELECT needs '*', variables or COUNT"));
            }
        }

        self.expect_word("WHERE")?;
        self.expect(Tok::LBrace)?;
        let mut patterns = Vec::new();
        loop {
            match self.peek() {
                Tok::RBrace => {
                    self.next();
                    break;
                }
                Tok::Word(w)
                    if w.eq_ignore_ascii_case("OPTIONAL")
                        || w.eq_ignore_ascii_case("UNION")
                        || w.eq_ignore_ascii_case("GRAPH") =>
                {
                    return Err(QueryError::new(format!("unsupported keyword '{w}'")));
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.next();
                    self.expect(Tok::LParen)?;
                    let e = self.parse_or_expr()?;
                    self.expect(Tok::RParen)?;
                    patterns.push(Pattern::Filter(e));
                    // Optional '.' after a filter.
                    if *self.peek() == Tok::Dot {
                        self.next();
                    }
                }
                Tok::Eof => return Err(QueryError::new("unterminated WHERE block")),
                _ => self.parse_triple_block(&mut patterns)?,
            }
        }

        // GROUP BY.
        let mut group_by = Vec::new();
        if self.eat_word("GROUP") {
            self.expect_word("BY")?;
            while let Tok::Var(_) = self.peek() {
                let Tok::Var(v) = self.next() else { unreachable!() };
                group_by.push(v);
            }
            if group_by.is_empty() {
                return Err(QueryError::new("empty GROUP BY"));
            }
            if aggregate.is_none() {
                return Err(QueryError::new("GROUP BY requires a COUNT aggregate"));
            }
        }

        // Solution modifiers.
        let mut order_by = Vec::new();
        if self.eat_word("ORDER") {
            self.expect_word("BY")?;
            loop {
                match self.peek().clone() {
                    Tok::Var(v) => {
                        self.next();
                        order_by.push((v, false));
                    }
                    Tok::Word(w)
                        if w.eq_ignore_ascii_case("ASC") || w.eq_ignore_ascii_case("DESC") =>
                    {
                        let desc = w.eq_ignore_ascii_case("DESC");
                        self.next();
                        self.expect(Tok::LParen)?;
                        let Tok::Var(v) = self.next() else {
                            return Err(QueryError::new("expected variable in ORDER BY"));
                        };
                        self.expect(Tok::RParen)?;
                        order_by.push((v, desc));
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(QueryError::new("empty ORDER BY"));
            }
        }
        let mut limit = None;
        let mut offset = 0;
        loop {
            if self.eat_word("LIMIT") {
                let Tok::Number(n) = self.next() else {
                    return Err(QueryError::new("expected number after LIMIT"));
                };
                limit = Some(
                    n.parse()
                        .map_err(|_| QueryError::new("bad LIMIT value"))?,
                );
            } else if self.eat_word("OFFSET") {
                let Tok::Number(n) = self.next() else {
                    return Err(QueryError::new("expected number after OFFSET"));
                };
                offset = n
                    .parse()
                    .map_err(|_| QueryError::new("bad OFFSET value"))?;
            } else {
                break;
            }
        }

        if *self.peek() != Tok::Eof {
            return Err(QueryError::new(format!(
                "trailing tokens after query: {:?}",
                self.peek()
            )));
        }

        Ok(Query {
            projection,
            aggregate,
            group_by,
            distinct,
            patterns,
            order_by,
            limit,
            offset,
            statement_count: self.statement_count,
        })
    }

    /// subject (path object (',' object)*) (';' path object…)* '.'
    fn parse_triple_block(&mut self, out: &mut Vec<Pattern>) -> Result<(), QueryError> {
        let subject = self.parse_term_or_var("subject")?;
        loop {
            let path = self.parse_path()?;
            loop {
                let object = self.parse_term_or_var("object")?;
                self.statement_count += 1;
                out.push(Pattern::Triple {
                    subject: subject.clone(),
                    path: path.clone(),
                    object,
                });
                if *self.peek() == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
            match self.peek() {
                Tok::Semi => {
                    self.next();
                    // allow trailing ';' before '.' or '}'
                    if matches!(self.peek(), Tok::Dot) {
                        self.next();
                        return Ok(());
                    }
                    if matches!(self.peek(), Tok::RBrace) {
                        return Ok(());
                    }
                }
                Tok::Dot => {
                    self.next();
                    return Ok(());
                }
                Tok::RBrace => return Ok(()),
                other => {
                    return Err(QueryError::new(format!(
                        "expected ';', '.' or '}}' after triple, got {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_term_or_var(&mut self, what: &str) -> Result<TermOrVar, QueryError> {
        match self.next() {
            Tok::Var(v) => Ok(TermOrVar::Var(v)),
            Tok::Iri(i) => Ok(TermOrVar::Term(Term::iri(i))),
            Tok::PName(p) => Ok(TermOrVar::Term(Term::Iri(self.resolve(&p)?))),
            Tok::Str(s) => {
                // Optional datatype / lang suffix.
                match self.peek().clone() {
                    Tok::DoubleCaret => {
                        self.next();
                        let dt = match self.next() {
                            Tok::Iri(i) => Iri::new(i),
                            Tok::PName(p) => self.resolve(&p)?,
                            t => {
                                return Err(QueryError::new(format!(
                                    "expected datatype after ^^, got {t:?}"
                                )))
                            }
                        };
                        Ok(TermOrVar::Term(Term::Literal(Literal::typed(s, dt))))
                    }
                    _ => Ok(TermOrVar::Term(Term::Literal(Literal::plain(s)))),
                }
            }
            Tok::Number(n) => {
                let dt = if n.contains('.') || n.contains('e') || n.contains('E') {
                    ns::XSD_DOUBLE
                } else {
                    ns::XSD_INTEGER
                };
                Ok(TermOrVar::Term(Term::Literal(Literal::typed(
                    n,
                    Iri::new(dt),
                ))))
            }
            Tok::Bool(v) => Ok(TermOrVar::Term(Term::Literal(Literal::boolean(v)))),
            t => Err(QueryError::new(format!("expected {what}, got {t:?}"))),
        }
    }

    // Path grammar: alt := seq ('|' seq)* ; seq := step ('/' step)* ;
    // step := ('^')? primary ('+'|'*')? ; primary := iri | '(' alt ')' | 'a'
    fn parse_path(&mut self) -> Result<PathExpr, QueryError> {
        let mut left = self.parse_path_seq()?;
        while *self.peek() == Tok::Pipe {
            self.next();
            let right = self.parse_path_seq()?;
            left = PathExpr::Alternative(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_path_seq(&mut self) -> Result<PathExpr, QueryError> {
        let mut left = self.parse_path_step()?;
        while *self.peek() == Tok::Slash {
            self.next();
            let right = self.parse_path_step()?;
            left = PathExpr::Sequence(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_path_step(&mut self) -> Result<PathExpr, QueryError> {
        let inverse = if *self.peek() == Tok::Caret {
            self.next();
            true
        } else {
            false
        };
        let mut p = match self.next() {
            Tok::Iri(i) => PathExpr::Iri(Iri::new(i)),
            Tok::PName(pn) => PathExpr::Iri(self.resolve(&pn)?),
            Tok::Word(w) if w == "a" => PathExpr::Iri(Iri::new(ns::RDF_TYPE)),
            Tok::LParen => {
                let inner = self.parse_path()?;
                self.expect(Tok::RParen)?;
                inner
            }
            t => return Err(QueryError::new(format!("expected predicate, got {t:?}"))),
        };
        match self.peek() {
            Tok::Plus => {
                self.next();
                p = PathExpr::OneOrMore(Box::new(p));
            }
            Tok::Star => {
                self.next();
                p = PathExpr::ZeroOrMore(Box::new(p));
            }
            _ => {}
        }
        if inverse {
            p = PathExpr::Inverse(Box::new(p));
        }
        Ok(p)
    }

    // Expression grammar: or := and ('||' and)* ; and := unary ('&&' unary)* ;
    // unary := '!' unary | cmp ; cmp := primary (op primary)? ;
    fn parse_or_expr(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_and_expr()?;
        while *self.peek() == Tok::OrOr {
            self.next();
            let right = self.parse_and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and_expr(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.parse_unary_expr()?;
        while *self.peek() == Tok::AndAnd {
            self.next();
            let right = self.parse_unary_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary_expr(&mut self) -> Result<Expr, QueryError> {
        if *self.peek() == Tok::Bang {
            self.next();
            let inner = self.parse_unary_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        let left = self.parse_primary_expr()?;
        let op = match self.peek() {
            Tok::Eq => CompareOp::Eq,
            Tok::Ne => CompareOp::Ne,
            Tok::Lt => CompareOp::Lt,
            Tok::Le => CompareOp::Le,
            Tok::Gt => CompareOp::Gt,
            Tok::Ge => CompareOp::Ge,
            _ => return Ok(left),
        };
        self.next();
        let right = self.parse_primary_expr()?;
        Ok(Expr::Compare(op, Box::new(left), Box::new(right)))
    }

    fn parse_primary_expr(&mut self) -> Result<Expr, QueryError> {
        match self.next() {
            Tok::Var(v) => Ok(Expr::Var(v)),
            Tok::Iri(i) => Ok(Expr::Const(Term::iri(i))),
            Tok::PName(p) => Ok(Expr::Const(Term::Iri(self.resolve(&p)?))),
            Tok::Str(s) => Ok(Expr::Const(Term::Literal(Literal::plain(s)))),
            Tok::Number(n) => {
                let dt = if n.contains('.') || n.contains('e') || n.contains('E') {
                    ns::XSD_DOUBLE
                } else {
                    ns::XSD_INTEGER
                };
                Ok(Expr::Const(Term::Literal(Literal::typed(n, Iri::new(dt)))))
            }
            Tok::Bool(v) => Ok(Expr::Const(Term::Literal(Literal::boolean(v)))),
            Tok::LParen => {
                let inner = self.parse_or_expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("REGEX") => {
                self.expect(Tok::LParen)?;
                let target = self.parse_or_expr()?;
                self.expect(Tok::Comma)?;
                let Tok::Str(pat) = self.next() else {
                    return Err(QueryError::new("REGEX pattern must be a string"));
                };
                self.expect(Tok::RParen)?;
                Ok(Expr::Regex(Box::new(target), pat))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("BOUND") => {
                self.expect(Tok::LParen)?;
                let Tok::Var(v) = self.next() else {
                    return Err(QueryError::new("BOUND takes a variable"));
                };
                self.expect(Tok::RParen)?;
                Ok(Expr::Bound(v))
            }
            Tok::Word(w)
                if w.eq_ignore_ascii_case("STRSTARTS")
                    || w.eq_ignore_ascii_case("STRENDS")
                    || w.eq_ignore_ascii_case("CONTAINS") =>
            {
                self.expect(Tok::LParen)?;
                let a = self.parse_or_expr()?;
                self.expect(Tok::Comma)?;
                let b = self.parse_or_expr()?;
                self.expect(Tok::RParen)?;
                let (a, b) = (Box::new(a), Box::new(b));
                Ok(if w.eq_ignore_ascii_case("STRSTARTS") {
                    Expr::StrStarts(a, b)
                } else if w.eq_ignore_ascii_case("STRENDS") {
                    Expr::StrEnds(a, b)
                } else {
                    Expr::Contains(a, b)
                })
            }
            t => Err(QueryError::new(format!("unexpected token in FILTER: {t:?}"))),
        }
    }
}

impl Query {
    /// Parse a SELECT query.
    pub fn parse(src: &str) -> Result<Query, QueryError> {
        let toks = tokenize(src)?;
        let mut p = Parser {
            toks,
            pos: 0,
            nss: Namespaces::standard(),
            statement_count: 0,
        };
        p.parse_query()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_select() {
        let q = Query::parse(
            "PREFIX prov: <http://www.w3.org/ns/prov#>\n\
             SELECT ?p WHERE { <urn:x> prov:wasAttributedTo ?p . }",
        )
        .unwrap();
        assert_eq!(q.projection, vec!["p"]);
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.statement_count, 1);
    }

    #[test]
    fn parse_semicolon_and_comma_lists() {
        let q = Query::parse(
            "SELECT * WHERE { ?x <urn:p> ?y ; <urn:q> ?z , ?w . }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 3);
        assert_eq!(q.statement_count, 3);
    }

    #[test]
    fn parse_property_paths() {
        let q = Query::parse(
            "SELECT ?a WHERE { ?a (<urn:d>)+ <urn:root> . ?a ^<urn:p>/<urn:q>* ?b . }",
        )
        .unwrap();
        let Pattern::Triple { path, .. } = &q.patterns[0] else {
            panic!()
        };
        assert!(matches!(path, PathExpr::OneOrMore(_)));
        let Pattern::Triple { path, .. } = &q.patterns[1] else {
            panic!()
        };
        // `^<urn:p>/<urn:q>*` parses as Sequence(Inverse(p), ZeroOrMore(q)).
        assert!(matches!(path, PathExpr::Sequence(_, _)));
    }

    #[test]
    fn parse_filter_expressions() {
        let q = Query::parse(
            "SELECT ?x WHERE { ?x <urn:v> ?v . FILTER(?v >= 3 && (?v < 10 || !(?v = 7))) }",
        )
        .unwrap();
        assert!(matches!(q.patterns[1], Pattern::Filter(_)));
    }

    #[test]
    fn parse_builtin_functions() {
        let q = Query::parse(
            "SELECT ?x WHERE { ?x <urn:l> ?l . FILTER(REGEX(?l, \"^dec\") && STRSTARTS(?l, \"d\") && BOUND(?x)) }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 2);
    }

    #[test]
    fn parse_modifiers() {
        let q = Query::parse(
            "SELECT DISTINCT ?x WHERE { ?x <urn:p> ?y . } ORDER BY DESC(?x) ?y LIMIT 5 OFFSET 2",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.order_by, vec![("x".into(), true), ("y".into(), false)]);
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.offset, 2);
    }

    #[test]
    fn a_keyword_is_rdf_type() {
        let q = Query::parse("SELECT ?x WHERE { ?x a <urn:C> . }").unwrap();
        let Pattern::Triple { path, .. } = &q.patterns[0] else {
            panic!()
        };
        assert_eq!(path.as_plain().unwrap().as_str(), ns::RDF_TYPE);
    }

    #[test]
    fn unsupported_keywords_rejected() {
        assert!(Query::parse("SELECT ?x WHERE { OPTIONAL { ?x <urn:p> ?y . } }").is_err());
    }

    #[test]
    fn unknown_prefix_rejected() {
        let e = Query::parse("SELECT ?x WHERE { ?x zzz:p ?y . }").unwrap_err();
        assert!(e.to_string().contains("unknown prefix"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(Query::parse("SELECT ?x WHERE { ?x <urn:p> ?y . } banana").is_err());
    }

    #[test]
    fn comparison_vs_iri_disambiguation() {
        // `<` as comparison inside FILTER must still work though IRIs use '<'.
        let q = Query::parse("SELECT ?v WHERE { ?x <urn:p> ?v . FILTER(?v < 10) }").unwrap();
        assert_eq!(q.patterns.len(), 2);
    }

    #[test]
    fn standard_prefixes_preloaded() {
        // prov:/provio:/rdf:/xsd: work without PREFIX declarations.
        let q = Query::parse("SELECT ?x WHERE { ?x prov:wasAttributedTo ?p . }").unwrap();
        let Pattern::Triple { path, .. } = &q.patterns[0] else {
            panic!()
        };
        assert_eq!(
            path.as_plain().unwrap().as_str(),
            "http://www.w3.org/ns/prov#wasAttributedTo"
        );
    }
}
