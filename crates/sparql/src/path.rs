//! Property-path evaluation.
//!
//! Backward lineage in PROV-IO is a transitive walk over relations such as
//! `prov:wasDerivedFrom` / `prov:wasAttributedTo` (paper §6.5: "the same
//! procedure can be repeated as needed"). Property paths make that walk a
//! single query. Evaluation is relational: a path denotes a set of
//! `(subject, object)` term pairs, computed bottom-up with BFS for the
//! closure operators.

use crate::ast::PathExpr;
use crate::eval::Budget;
use crate::QueryError;
use provio_rdf::{Graph, Term, TriplePattern};
use std::collections::{HashSet, VecDeque};

/// All `(s, o)` pairs connected by `path` in `graph`, with no step limit.
///
/// `ZeroOrMore` contributes the identity pair for every node that occurs in
/// the graph (SPARQL's semantics restrict to terms in the graph).
pub fn eval_path(graph: &Graph, path: &PathExpr) -> Vec<(Term, Term)> {
    eval_path_budgeted(graph, path, &mut Budget::unlimited())
        .expect("an unlimited budget cannot be exhausted")
}

/// Terms reachable from a fixed start term through `path`, with no step
/// limit.
pub fn eval_path_from(graph: &Graph, path: &PathExpr, start: &Term) -> Vec<Term> {
    eval_path_from_budgeted(graph, path, start, &mut Budget::unlimited())
        .expect("an unlimited budget cannot be exhausted")
}

/// Budgeted [`eval_path`]: every produced pair and every BFS edge expansion
/// costs a step.
pub(crate) fn eval_path_budgeted(
    graph: &Graph,
    path: &PathExpr,
    budget: &mut Budget,
) -> Result<Vec<(Term, Term)>, QueryError> {
    match path {
        PathExpr::Iri(p) => {
            let pairs: Vec<(Term, Term)> = graph
                .match_pattern(&TriplePattern::any().with_predicate(p.clone()))
                .into_iter()
                .map(|t| (Term::from(t.subject), t.object))
                .collect();
            budget.charge(pairs.len() as u64 + 1)?;
            Ok(pairs)
        }
        PathExpr::Inverse(inner) => Ok(eval_path_budgeted(graph, inner, budget)?
            .into_iter()
            .map(|(s, o)| (o, s))
            .collect()),
        PathExpr::Sequence(a, b) => {
            let left = eval_path_budgeted(graph, a, budget)?;
            let right = eval_path_budgeted(graph, b, budget)?;
            // Hash-join on the middle term.
            let mut by_mid: std::collections::HashMap<&Term, Vec<&Term>> =
                std::collections::HashMap::new();
            for (m, o) in &right {
                by_mid.entry(m).or_default().push(o);
            }
            let mut out = HashSet::new();
            for (s, m) in &left {
                if let Some(objects) = by_mid.get(m) {
                    budget.charge(objects.len() as u64)?;
                    for o in objects {
                        out.insert((s.clone(), (*o).clone()));
                    }
                }
            }
            Ok(out.into_iter().collect())
        }
        PathExpr::Alternative(a, b) => {
            let mut out: HashSet<(Term, Term)> =
                eval_path_budgeted(graph, a, budget)?.into_iter().collect();
            out.extend(eval_path_budgeted(graph, b, budget)?);
            Ok(out.into_iter().collect())
        }
        PathExpr::OneOrMore(inner) => closure(graph, inner, false, budget),
        PathExpr::ZeroOrMore(inner) => closure(graph, inner, true, budget),
    }
}

/// Budgeted [`eval_path_from`] (forward evaluation used when the subject is
/// already bound — avoids materializing the whole relation for closures).
pub(crate) fn eval_path_from_budgeted(
    graph: &Graph,
    path: &PathExpr,
    start: &Term,
    budget: &mut Budget,
) -> Result<Vec<Term>, QueryError> {
    match path {
        PathExpr::OneOrMore(inner) | PathExpr::ZeroOrMore(inner) => {
            let include_start = matches!(path, PathExpr::ZeroOrMore(_));
            let mut seen: HashSet<Term> = HashSet::new();
            let mut queue = VecDeque::new();
            queue.push_back(start.clone());
            let mut out = Vec::new();
            if include_start {
                seen.insert(start.clone());
                out.push(start.clone());
            }
            while let Some(cur) = queue.pop_front() {
                for next in eval_path_from_budgeted(graph, inner, &cur, budget)? {
                    budget.charge(1)?;
                    if seen.insert(next.clone()) {
                        out.push(next.clone());
                        queue.push_back(next);
                    }
                }
            }
            // For OneOrMore the start itself is reachable only via a cycle;
            // `seen` never contained it unless inserted by a step.
            Ok(out)
        }
        PathExpr::Sequence(a, b) => {
            let mut out = HashSet::new();
            for mid in eval_path_from_budgeted(graph, a, start, budget)? {
                out.extend(eval_path_from_budgeted(graph, b, &mid, budget)?);
            }
            Ok(out.into_iter().collect())
        }
        PathExpr::Alternative(a, b) => {
            let mut out: HashSet<Term> = eval_path_from_budgeted(graph, a, start, budget)?
                .into_iter()
                .collect();
            out.extend(eval_path_from_budgeted(graph, b, start, budget)?);
            Ok(out.into_iter().collect())
        }
        PathExpr::Inverse(inner) => match inner.as_ref() {
            PathExpr::Iri(p) => {
                let subjects: Vec<Term> = graph
                    .subjects_with(p, start)
                    .into_iter()
                    .map(Term::from)
                    .collect();
                budget.charge(subjects.len() as u64 + 1)?;
                Ok(subjects)
            }
            other => {
                // General case: fall back to the full relation.
                Ok(eval_path_budgeted(graph, other, budget)?
                    .into_iter()
                    .filter(|(_, o)| o == start)
                    .map(|(s, _)| s)
                    .collect())
            }
        },
        PathExpr::Iri(p) => {
            let Some(subject) = start.as_subject() else {
                return Ok(Vec::new()); // literals have no outgoing edges
            };
            let objects = graph.objects(&subject, p);
            budget.charge(objects.len() as u64 + 1)?;
            Ok(objects)
        }
    }
}

fn closure(
    graph: &Graph,
    inner: &PathExpr,
    reflexive: bool,
    budget: &mut Budget,
) -> Result<Vec<(Term, Term)>, QueryError> {
    let base = eval_path_budgeted(graph, inner, budget)?;
    // Adjacency over the base relation.
    let mut adj: std::collections::HashMap<&Term, Vec<&Term>> =
        std::collections::HashMap::new();
    for (s, o) in &base {
        adj.entry(s).or_default().push(o);
    }

    let mut out: HashSet<(Term, Term)> = HashSet::new();
    if reflexive {
        // Identity on all graph nodes (subjects and objects of any triple).
        let mut nodes: HashSet<Term> = HashSet::new();
        for t in graph.iter() {
            nodes.insert(Term::from(t.subject));
            nodes.insert(t.object);
        }
        budget.charge(nodes.len() as u64)?;
        for n in nodes {
            out.insert((n.clone(), n));
        }
    }

    // BFS from every source in the base relation.
    for src in adj.keys() {
        let mut seen: HashSet<&Term> = HashSet::new();
        let mut queue: VecDeque<&Term> = VecDeque::new();
        queue.push_back(src);
        while let Some(cur) = queue.pop_front() {
            if let Some(nexts) = adj.get(cur) {
                budget.charge(nexts.len() as u64)?;
                for &n in nexts {
                    if seen.insert(n) {
                        out.insert(((*src).clone(), n.clone()));
                        queue.push_back(n);
                    }
                }
            }
        }
    }
    Ok(out.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_rdf::{Iri, Subject, Triple};

    fn chain_graph() -> Graph {
        // a -d-> b -d-> c -d-> d ; x -d-> b (diamond-ish)
        let mut g = Graph::new();
        for (s, o) in [("a", "b"), ("b", "c"), ("c", "d"), ("x", "b")] {
            g.insert(&Triple::new(
                Subject::iri(format!("urn:{s}")),
                Iri::new("urn:d"),
                Term::iri(format!("urn:{o}")),
            ));
        }
        g
    }

    fn pairs_sorted(mut v: Vec<(Term, Term)>) -> Vec<(String, String)> {
        v.sort();
        v.iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn plain_iri_path() {
        let g = chain_graph();
        let p = PathExpr::Iri(Iri::new("urn:d"));
        assert_eq!(eval_path(&g, &p).len(), 4);
    }

    #[test]
    fn inverse_swaps() {
        let g = chain_graph();
        let p = PathExpr::Inverse(Box::new(PathExpr::Iri(Iri::new("urn:d"))));
        let pairs = pairs_sorted(eval_path(&g, &p));
        assert!(pairs.contains(&("<urn:b>".into(), "<urn:a>".into())));
    }

    #[test]
    fn sequence_composes() {
        let g = chain_graph();
        let p = PathExpr::Sequence(
            Box::new(PathExpr::Iri(Iri::new("urn:d"))),
            Box::new(PathExpr::Iri(Iri::new("urn:d"))),
        );
        let pairs = pairs_sorted(eval_path(&g, &p));
        assert!(pairs.contains(&("<urn:a>".into(), "<urn:c>".into())));
        assert!(pairs.contains(&("<urn:b>".into(), "<urn:d>".into())));
        assert!(pairs.contains(&("<urn:x>".into(), "<urn:c>".into())));
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn one_or_more_is_transitive_closure() {
        let g = chain_graph();
        let p = PathExpr::OneOrMore(Box::new(PathExpr::Iri(Iri::new("urn:d"))));
        let pairs = pairs_sorted(eval_path(&g, &p));
        // a reaches b,c,d ; b reaches c,d ; c reaches d ; x reaches b,c,d
        assert_eq!(pairs.len(), 3 + 2 + 1 + 3);
        assert!(pairs.contains(&("<urn:a>".into(), "<urn:d>".into())));
    }

    #[test]
    fn zero_or_more_includes_identity() {
        let g = chain_graph();
        let p = PathExpr::ZeroOrMore(Box::new(PathExpr::Iri(Iri::new("urn:d"))));
        let pairs = pairs_sorted(eval_path(&g, &p));
        assert!(pairs.contains(&("<urn:a>".into(), "<urn:a>".into())));
        assert!(pairs.contains(&("<urn:d>".into(), "<urn:d>".into())));
        assert!(pairs.contains(&("<urn:a>".into(), "<urn:d>".into())));
    }

    #[test]
    fn alternative_unions() {
        let mut g = chain_graph();
        g.insert(&Triple::new(
            Subject::iri("urn:a"),
            Iri::new("urn:e"),
            Term::iri("urn:z"),
        ));
        let p = PathExpr::Alternative(
            Box::new(PathExpr::Iri(Iri::new("urn:d"))),
            Box::new(PathExpr::Iri(Iri::new("urn:e"))),
        );
        assert_eq!(eval_path(&g, &p).len(), 5);
    }

    #[test]
    fn cycles_terminate() {
        let mut g = Graph::new();
        for (s, o) in [("a", "b"), ("b", "a")] {
            g.insert(&Triple::new(
                Subject::iri(format!("urn:{s}")),
                Iri::new("urn:d"),
                Term::iri(format!("urn:{o}")),
            ));
        }
        let p = PathExpr::OneOrMore(Box::new(PathExpr::Iri(Iri::new("urn:d"))));
        let pairs = pairs_sorted(eval_path(&g, &p));
        // a→b, a→a (via cycle), b→a, b→b
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn eval_from_matches_full_relation() {
        let g = chain_graph();
        let p = PathExpr::OneOrMore(Box::new(PathExpr::Iri(Iri::new("urn:d"))));
        let full = eval_path(&g, &p);
        let start = Term::iri("urn:a");
        let mut from: Vec<Term> = eval_path_from(&g, &p, &start);
        from.sort();
        let mut expect: Vec<Term> = full
            .into_iter()
            .filter(|(s, _)| *s == start)
            .map(|(_, o)| o)
            .collect();
        expect.sort();
        assert_eq!(from, expect);
    }

    #[test]
    fn eval_from_literal_start_is_empty_for_iri_path() {
        let g = chain_graph();
        let p = PathExpr::Iri(Iri::new("urn:d"));
        let lit = Term::Literal(provio_rdf::Literal::plain("x"));
        assert!(eval_path_from(&g, &p, &lit).is_empty());
    }
}
