//! Query evaluation: greedy join ordering over the graph indexes, path
//! delegation, filter application, and solution modifiers.

use crate::ast::{CompareOp, Expr, PathExpr, Pattern, Query, TermOrVar};
use crate::path::{eval_path_budgeted, eval_path_from_budgeted};
use crate::QueryError;
use provio_rdf::{Graph, Term, TriplePattern};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashSet};

/// A step budget for one evaluation. Every candidate binding produced by a
/// join and every edge expanded by a path walk costs one step; exhausting
/// the budget aborts the query with [`QueryError::BudgetExhausted`] instead
/// of letting a pathological join or closure spin unbounded.
pub(crate) struct Budget {
    limit: u64,
    remaining: u64,
}

impl Budget {
    pub(crate) fn new(limit: u64) -> Self {
        Budget {
            limit,
            remaining: limit,
        }
    }

    pub(crate) fn unlimited() -> Self {
        Budget::new(u64::MAX)
    }

    /// Spend `steps`; errors once the budget runs dry.
    pub(crate) fn charge(&mut self, steps: u64) -> Result<(), QueryError> {
        if steps > self.remaining {
            self.remaining = 0;
            return Err(QueryError::BudgetExhausted { budget: self.limit });
        }
        self.remaining -= steps;
        Ok(())
    }
}

/// One solution row: variable name → bound term.
pub type Binding = BTreeMap<String, Term>;

/// The result of executing a query.
#[derive(Debug, Clone)]
pub struct Solutions {
    /// Projected variable names, in projection order.
    pub vars: Vec<String>,
    /// One binding per solution.
    pub rows: Vec<Binding>,
}

impl Solutions {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The values bound to `var` across all rows.
    pub fn column(&self, var: &str) -> Vec<&Term> {
        self.rows.iter().filter_map(|r| r.get(var)).collect()
    }

    /// Render as an aligned text table (used by the experiment harness).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.vars.iter().map(|v| v.len() + 1).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                self.vars
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = r.get(v).map(|t| t.to_string()).unwrap_or_default();
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, v) in self.vars.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", format!("?{v}"), w = widths[i]));
        }
        out.push('\n');
        for row in cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl Query {
    /// Execute against `graph` with no step limit.
    pub fn execute(&self, graph: &Graph) -> Solutions {
        self.execute_with_budget(graph, u64::MAX)
            .expect("an unlimited budget cannot be exhausted")
    }

    /// Execute against `graph`, aborting with
    /// [`QueryError::BudgetExhausted`] once evaluation has taken more than
    /// `budget` steps (joined candidate rows + path-walk edge expansions).
    pub fn execute_with_budget(
        &self,
        graph: &Graph,
        budget: u64,
    ) -> Result<Solutions, QueryError> {
        let mut budget = Budget::new(budget);
        let mut triples: Vec<(TermOrVar, PathExpr, TermOrVar)> = Vec::new();
        let mut filters: Vec<Expr> = Vec::new();
        for p in &self.patterns {
            match p {
                Pattern::Triple {
                    subject,
                    path,
                    object,
                } => triples.push((subject.clone(), path.clone(), object.clone())),
                Pattern::Filter(e) => filters.push(e.clone()),
            }
        }

        let mut pending_filters: Vec<(HashSet<String>, Expr)> = filters
            .into_iter()
            .map(|e| (expr_vars(&e), e))
            .collect();

        let mut rows: Vec<Binding> = vec![Binding::new()];
        let mut remaining = triples;
        let mut bound_vars: HashSet<String> = HashSet::new();

        while !remaining.is_empty() {
            // Greedy: next pattern = most bound positions (terms or already
            // bound vars), tie-broken by index cardinality when fully
            // concrete.
            let idx = (0..remaining.len())
                .max_by_key(|&i| {
                    let (s, _, o) = &remaining[i];
                    let score = |t: &TermOrVar| match t {
                        TermOrVar::Term(_) => 2usize,
                        TermOrVar::Var(v) if bound_vars.contains(v) => 2,
                        TermOrVar::Var(_) => 0,
                    };
                    score(s) + score(o)
                })
                .expect("non-empty");
            let (subject, path, object) = remaining.swap_remove(idx);

            let mut next_rows: Vec<Binding> = Vec::new();
            for row in &rows {
                extend_row(
                    graph,
                    row,
                    &subject,
                    &path,
                    &object,
                    &mut next_rows,
                    &mut budget,
                )?;
            }
            rows = next_rows;

            if let Some(v) = subject.var() {
                bound_vars.insert(v.to_string());
            }
            if let Some(v) = object.var() {
                bound_vars.insert(v.to_string());
            }

            // Apply every filter whose variables are now all bound.
            pending_filters.retain(|(vars, expr)| {
                if vars.is_subset(&bound_vars) {
                    rows.retain(|row| eval_expr(expr, row).unwrap_or(false));
                    false
                } else {
                    true
                }
            });

            if rows.is_empty() {
                break;
            }
        }

        // Any filter never applied (unbound vars): SPARQL says unbound ⇒
        // type error ⇒ row dropped.
        if !pending_filters.is_empty() {
            rows.retain(|row| {
                pending_filters
                    .iter()
                    .all(|(_, e)| eval_expr(e, row).unwrap_or(false))
            });
        }

        // Aggregation (COUNT with optional GROUP BY) or plain projection.
        let (vars, mut rows): (Vec<String>, Vec<Binding>) = if let Some(agg) = &self.aggregate {
            let mut groups: BTreeMap<Vec<String>, Vec<&Binding>> = BTreeMap::new();
            for row in &rows {
                let key: Vec<String> = self
                    .group_by
                    .iter()
                    .map(|v| row.get(v).map(|t| t.to_string()).unwrap_or_default())
                    .collect();
                groups.entry(key).or_default().push(row);
            }
            let mut out = Vec::with_capacity(groups.len());
            for members in groups.into_values() {
                let count = match &agg.var {
                    None => members.len(),
                    Some(v) if agg.distinct => members
                        .iter()
                        .filter_map(|r| r.get(v))
                        .map(|t| t.to_string())
                        .collect::<HashSet<String>>()
                        .len(),
                    Some(v) => members.iter().filter(|r| r.contains_key(v)).count(),
                };
                let mut b = Binding::new();
                for gv in &self.group_by {
                    if let Some(t) = members[0].get(gv) {
                        b.insert(gv.clone(), t.clone());
                    }
                }
                b.insert(
                    agg.alias.clone(),
                    Term::Literal(provio_rdf::Literal::integer(count as i64)),
                );
                out.push(b);
            }
            let mut vars: Vec<String> = if self.projection.is_empty() {
                self.group_by.clone()
            } else {
                self.projection.clone()
            };
            vars.push(agg.alias.clone());
            (vars, out)
        } else {
            let vars: Vec<String> = if self.projection.is_empty() {
                let mut vs: Vec<String> = bound_vars.into_iter().collect();
                vs.sort();
                vs
            } else {
                self.projection.clone()
            };
            let rows = rows
                .into_iter()
                .map(|row| {
                    vars.iter()
                        .filter_map(|v| row.get(v).map(|t| (v.clone(), t.clone())))
                        .collect()
                })
                .collect();
            (vars, rows)
        };

        if self.distinct {
            let mut seen = HashSet::new();
            rows.retain(|r| {
                let key: Vec<(String, String)> = r
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_string()))
                    .collect();
                seen.insert(key)
            });
        }

        if !self.order_by.is_empty() {
            rows.sort_by(|a, b| {
                for (var, desc) in &self.order_by {
                    let ord = compare_terms(a.get(var), b.get(var));
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
        } else {
            // Deterministic output even without ORDER BY.
            rows.sort_by_key(|r| {
                r.iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join("|")
            });
        }

        let rows: Vec<Binding> = rows
            .into_iter()
            .skip(self.offset)
            .take(self.limit.unwrap_or(usize::MAX))
            .collect();

        Ok(Solutions { vars, rows })
    }
}

/// Extend one partial binding through one (possibly path-) triple pattern.
#[allow(clippy::too_many_arguments)]
fn extend_row(
    graph: &Graph,
    row: &Binding,
    subject: &TermOrVar,
    path: &PathExpr,
    object: &TermOrVar,
    out: &mut Vec<Binding>,
    budget: &mut Budget,
) -> Result<(), QueryError> {
    let s_term = resolve(row, subject);
    let o_term = resolve(row, object);

    if let Some(pred) = path.as_plain() {
        // Plain predicate: one index lookup.
        let s_sub = match &s_term {
            Some(t) => match t.as_subject() {
                Some(s) => Some(s),
                None => return Ok(()), // literal subject can never match
            },
            None => None,
        };
        let mut pat = TriplePattern::any().with_predicate(pred.clone());
        if let Some(s) = s_sub {
            pat = pat.with_subject(s);
        }
        if let Some(o) = &o_term {
            pat = pat.with_object(o.clone());
        }
        let matches = graph.match_pattern(&pat);
        budget.charge(matches.len() as u64 + 1)?;
        for m in matches {
            push_binding(
                row,
                subject,
                &Term::from(m.subject),
                object,
                &m.object,
                out,
            );
        }
        return Ok(());
    }

    // Property path.
    match (&s_term, &o_term) {
        (Some(s), _) => {
            for reached in eval_path_from_budgeted(graph, path, s, budget)? {
                if let Some(o) = &o_term {
                    if *o != reached {
                        continue;
                    }
                }
                budget.charge(1)?;
                push_binding(row, subject, s, object, &reached, out);
            }
        }
        (None, Some(o)) => {
            // Evaluate the inverse path from the object.
            let inv = PathExpr::Inverse(Box::new(path.clone()));
            for reached in eval_path_from_budgeted(graph, &inv, o, budget)? {
                budget.charge(1)?;
                push_binding(row, subject, &reached, object, o, out);
            }
        }
        (None, None) => {
            for (s, o) in eval_path_budgeted(graph, path, budget)? {
                budget.charge(1)?;
                push_binding(row, subject, &s, object, &o, out);
            }
        }
    }
    Ok(())
}

fn resolve(row: &Binding, tv: &TermOrVar) -> Option<Term> {
    match tv {
        TermOrVar::Term(t) => Some(t.clone()),
        TermOrVar::Var(v) => row.get(v).cloned(),
    }
}

fn push_binding(
    row: &Binding,
    subject: &TermOrVar,
    s_val: &Term,
    object: &TermOrVar,
    o_val: &Term,
    out: &mut Vec<Binding>,
) {
    let mut new = row.clone();
    if let TermOrVar::Var(v) = subject {
        if let Some(existing) = new.get(v) {
            if existing != s_val {
                return;
            }
        }
        new.insert(v.clone(), s_val.clone());
    }
    if let TermOrVar::Var(v) = object {
        if let Some(existing) = new.get(v) {
            if existing != o_val {
                return;
            }
        }
        new.insert(v.clone(), o_val.clone());
    }
    out.push(new);
}

fn expr_vars(e: &Expr) -> HashSet<String> {
    let mut vars = HashSet::new();
    collect_vars(e, &mut vars);
    vars
}

fn collect_vars(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Var(v) | Expr::Bound(v) => {
            out.insert(v.clone());
        }
        Expr::Const(_) => {}
        Expr::Compare(_, a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::StrStarts(a, b)
        | Expr::StrEnds(a, b)
        | Expr::Contains(a, b) => {
            collect_vars(a, out);
            collect_vars(b, out);
        }
        Expr::Not(a) | Expr::Regex(a, _) => collect_vars(a, out),
    }
}

/// Evaluate a filter expression to a boolean. `None` = SPARQL type error
/// (e.g. unbound variable), which drops the row.
fn eval_expr(e: &Expr, row: &Binding) -> Option<bool> {
    match e {
        Expr::Bound(v) => Some(row.contains_key(v)),
        Expr::And(a, b) => Some(eval_expr(a, row)? && eval_expr(b, row)?),
        Expr::Or(a, b) => Some(eval_expr(a, row)? || eval_expr(b, row)?),
        Expr::Not(a) => Some(!eval_expr(a, row)?),
        Expr::Compare(op, a, b) => {
            let ta = eval_value(a, row)?;
            let tb = eval_value(b, row)?;
            let ord = value_compare(&ta, &tb)?;
            Some(match op {
                CompareOp::Eq => ord == Ordering::Equal,
                CompareOp::Ne => ord != Ordering::Equal,
                CompareOp::Lt => ord == Ordering::Less,
                CompareOp::Le => ord != Ordering::Greater,
                CompareOp::Gt => ord == Ordering::Greater,
                CompareOp::Ge => ord != Ordering::Less,
            })
        }
        Expr::Regex(target, pattern) => {
            let s = string_value(&eval_value(target, row)?)?;
            Some(regex_lite(&s, pattern))
        }
        Expr::StrStarts(a, b) => {
            let sa = string_value(&eval_value(a, row)?)?;
            let sb = string_value(&eval_value(b, row)?)?;
            Some(sa.starts_with(&sb))
        }
        Expr::StrEnds(a, b) => {
            let sa = string_value(&eval_value(a, row)?)?;
            let sb = string_value(&eval_value(b, row)?)?;
            Some(sa.ends_with(&sb))
        }
        Expr::Contains(a, b) => {
            let sa = string_value(&eval_value(a, row)?)?;
            let sb = string_value(&eval_value(b, row)?)?;
            Some(sa.contains(&sb))
        }
        Expr::Var(_) | Expr::Const(_) => {
            // Effective boolean value of a bare term.
            let t = eval_value(e, row)?;
            match &t {
                Term::Literal(l) => Some(l.lexical() == "true" || l.as_f64().is_some_and(|v| v != 0.0)),
                _ => None,
            }
        }
    }
}

fn eval_value(e: &Expr, row: &Binding) -> Option<Term> {
    match e {
        Expr::Var(v) => row.get(v).cloned(),
        Expr::Const(t) => Some(t.clone()),
        _ => None,
    }
}

fn string_value(t: &Term) -> Option<String> {
    match t {
        Term::Literal(l) => Some(l.lexical().to_string()),
        Term::Iri(i) => Some(i.as_str().to_string()),
        Term::Blank(_) => None,
    }
}

/// SPARQL-ish value comparison: numeric when both sides parse as numbers,
/// otherwise lexical string comparison within the same term kind.
fn value_compare(a: &Term, b: &Term) -> Option<Ordering> {
    if let (Term::Literal(la), Term::Literal(lb)) = (a, b) {
        if let (Some(na), Some(nb)) = (la.as_f64(), lb.as_f64()) {
            return na.partial_cmp(&nb);
        }
        return Some(la.lexical().cmp(lb.lexical()));
    }
    match (a, b) {
        (Term::Iri(x), Term::Iri(y)) => Some(x.as_str().cmp(y.as_str())),
        _ => {
            if a == b {
                Some(Ordering::Equal)
            } else {
                None
            }
        }
    }
}

fn compare_terms(a: Option<&Term>, b: Option<&Term>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => value_compare(x, y).unwrap_or_else(|| {
            x.to_string().cmp(&y.to_string())
        }),
    }
}

/// Tiny regex: supports `^`/`$` anchors around a literal pattern; anything
/// else is substring search. Enough for the paper's query shapes.
fn regex_lite(s: &str, pattern: &str) -> bool {
    let starts = pattern.starts_with('^');
    let ends = pattern.ends_with('$') && pattern.len() > 1;
    let body = &pattern[starts as usize..pattern.len() - (ends as usize)];
    match (starts, ends) {
        (true, true) => s == body,
        (true, false) => s.starts_with(body),
        (false, true) => s.ends_with(body),
        (false, false) => s.contains(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_rdf::{turtle, Literal};

    fn graph() -> Graph {
        let (g, _) = turtle::parse(
            r#"
            @prefix ex: <http://e/> .
            @prefix prov: <http://www.w3.org/ns/prov#> .
            ex:decimate.h5 prov:wasAttributedTo ex:decimate .
            ex:WestSac.h5 prov:wasAttributedTo ex:tdms2h5 .
            ex:decimate.h5 prov:wasDerivedFrom ex:WestSac.h5 .
            ex:WestSac.h5 prov:wasDerivedFrom ex:WestSac.tdms .
            ex:decimate ex:ran_on ex:node1 .
            ex:api1 ex:elapsed 5 .
            ex:api2 ex:elapsed 12 .
            ex:api3 ex:elapsed 7 .
            ex:api1 a ex:Read .
            ex:api2 a ex:Read .
            ex:api3 a ex:Write .
        "#,
        )
        .unwrap();
        g
    }

    fn run(q: &str) -> Solutions {
        Query::parse(q).unwrap().execute(&graph())
    }

    #[test]
    fn single_pattern_bound_subject() {
        let s = run(
            "PREFIX ex: <http://e/> PREFIX prov: <http://www.w3.org/ns/prov#> \
             SELECT ?p WHERE { ex:decimate.h5 prov:wasAttributedTo ?p . }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0]["p"].to_string(), "<http://e/decimate>");
    }

    #[test]
    fn join_two_patterns() {
        let s = run(
            "PREFIX ex: <http://e/> PREFIX prov: <http://www.w3.org/ns/prov#> \
             SELECT ?file ?node WHERE { ?file prov:wasAttributedTo ?prog . ?prog ex:ran_on ?node . }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0]["file"].to_string(), "<http://e/decimate.h5>");
        assert_eq!(s.rows[0]["node"].to_string(), "<http://e/node1>");
    }

    #[test]
    fn transitive_lineage_via_path() {
        let s = run(
            "PREFIX ex: <http://e/> PREFIX prov: <http://www.w3.org/ns/prov#> \
             SELECT ?origin WHERE { ex:decimate.h5 prov:wasDerivedFrom+ ?origin . }",
        );
        let mut names: Vec<String> = s.rows.iter().map(|r| r["origin"].to_string()).collect();
        names.sort();
        assert_eq!(
            names,
            vec!["<http://e/WestSac.h5>", "<http://e/WestSac.tdms>"]
        );
    }

    #[test]
    fn inverse_path_from_object() {
        let s = run(
            "PREFIX ex: <http://e/> PREFIX prov: <http://www.w3.org/ns/prov#> \
             SELECT ?product WHERE { ?product prov:wasDerivedFrom+ ex:WestSac.tdms . }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn filter_numeric_comparison() {
        let s = run(
            "PREFIX ex: <http://e/> \
             SELECT ?api WHERE { ?api ex:elapsed ?d . FILTER(?d > 6) } ORDER BY ?api",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows[0]["api"].to_string(), "<http://e/api2>");
        assert_eq!(s.rows[1]["api"].to_string(), "<http://e/api3>");
    }

    #[test]
    fn filter_boolean_combinators() {
        let s = run(
            "PREFIX ex: <http://e/> \
             SELECT ?api WHERE { ?api ex:elapsed ?d . FILTER(?d > 6 && !(?d >= 12)) }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0]["api"].to_string(), "<http://e/api3>");
    }

    #[test]
    fn type_pattern_with_a() {
        let s = run(
            "PREFIX ex: <http://e/> SELECT ?x WHERE { ?x a ex:Read . } ORDER BY ?x",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn distinct_and_limit() {
        let s = run(
            "PREFIX ex: <http://e/> PREFIX prov: <http://www.w3.org/ns/prov#> \
             SELECT DISTINCT ?p WHERE { ?s prov:wasAttributedTo ?p . } LIMIT 1",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn order_by_desc_numeric() {
        let s = run(
            "PREFIX ex: <http://e/> \
             SELECT ?api ?d WHERE { ?api ex:elapsed ?d . } ORDER BY DESC(?d)",
        );
        let ds: Vec<i64> = s
            .rows
            .iter()
            .map(|r| r["d"].as_literal().unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(ds, vec![12, 7, 5]);
    }

    #[test]
    fn select_star_binds_all() {
        let s = run("PREFIX ex: <http://e/> SELECT * WHERE { ?api ex:elapsed ?d . }");
        assert_eq!(s.vars, vec!["api", "d"]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn shared_variable_join_consistency() {
        // ?x must bind consistently across both patterns.
        let s = run(
            "PREFIX ex: <http://e/> PREFIX prov: <http://www.w3.org/ns/prov#> \
             SELECT ?x WHERE { ?x prov:wasDerivedFrom ?y . ?x prov:wasAttributedTo ex:decimate . }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0]["x"].to_string(), "<http://e/decimate.h5>");
    }

    #[test]
    fn no_match_is_empty() {
        let s = run("PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:nothere ?y . }");
        assert!(s.is_empty());
    }

    #[test]
    fn strstarts_on_literal() {
        let mut g = graph();
        g.insert(&provio_rdf::Triple::new(
            provio_rdf::Subject::iri("http://e/f1"),
            provio_rdf::Iri::new("http://e/name"),
            Literal::plain("decimate.h5"),
        ));
        let q = Query::parse(
            "PREFIX ex: <http://e/> \
             SELECT ?f WHERE { ?f ex:name ?n . FILTER(STRSTARTS(?n, \"dec\")) }",
        )
        .unwrap();
        assert_eq!(q.execute(&g).len(), 1);
    }

    #[test]
    fn regex_anchors() {
        assert!(regex_lite("decimate.h5", "^dec"));
        assert!(regex_lite("decimate.h5", "h5$"));
        assert!(regex_lite("decimate.h5", "^decimate.h5$"));
        assert!(regex_lite("decimate.h5", "mate"));
        assert!(!regex_lite("decimate.h5", "^h5"));
    }

    #[test]
    fn to_table_renders() {
        let s = run("PREFIX ex: <http://e/> SELECT ?api ?d WHERE { ?api ex:elapsed ?d . }");
        let t = s.to_table();
        assert!(t.contains("?api"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn count_star() {
        let s = run("SELECT (COUNT(*) AS ?n) WHERE { ?x a ?t . }");
        assert_eq!(s.vars, vec!["n"]);
        assert_eq!(s.rows[0]["n"].as_literal().unwrap().as_i64(), Some(3));
    }

    #[test]
    fn count_group_by_type() {
        // The H5bench scenario-1 question: how many of each API class?
        let s = run(
            "PREFIX ex: <http://e/>              SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x a ?t . } GROUP BY ?t ORDER BY ?t",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows[0]["t"].to_string(), "<http://e/Read>");
        assert_eq!(s.rows[0]["n"].as_literal().unwrap().as_i64(), Some(2));
        assert_eq!(s.rows[1]["t"].to_string(), "<http://e/Write>");
        assert_eq!(s.rows[1]["n"].as_literal().unwrap().as_i64(), Some(1));
    }

    #[test]
    fn count_distinct() {
        // Three elapsed triples but two distinct subjects > 5.
        let s = run(
            "PREFIX ex: <http://e/>              SELECT (COUNT(DISTINCT ?x) AS ?n) WHERE { ?x ex:elapsed ?d . FILTER(?d > 5) }",
        );
        assert_eq!(s.rows[0]["n"].as_literal().unwrap().as_i64(), Some(2));
    }

    #[test]
    fn count_with_order_and_limit() {
        let s = run(
            "PREFIX ex: <http://e/>              SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x a ?t . } GROUP BY ?t              ORDER BY DESC(?n) LIMIT 1",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0]["n"].as_literal().unwrap().as_i64(), Some(2));
    }

    #[test]
    fn group_by_without_count_rejected() {
        assert!(Query::parse("SELECT ?t WHERE { ?x a ?t . } GROUP BY ?t").is_err());
    }

    #[test]
    fn budget_cuts_off_a_wide_join() {
        // Two fully unbound patterns: |elapsed| × |type| candidate rows.
        let q = Query::parse(
            "PREFIX ex: <http://e/> \
             SELECT ?x ?y WHERE { ?x ex:elapsed ?d . ?y a ?t . }",
        )
        .unwrap();
        let g = graph();
        let err = q.execute_with_budget(&g, 3).unwrap_err();
        assert_eq!(err, QueryError::BudgetExhausted { budget: 3 });
        assert!(err.to_string().contains("budget of 3 steps"));

        // A generous budget returns exactly what the unlimited path does.
        let ok = q.execute_with_budget(&g, 10_000).unwrap();
        assert_eq!(ok.len(), q.execute(&g).len());
    }

    #[test]
    fn budget_cuts_off_a_closure_walk() {
        // Dense cyclic graph: every node derives from every other, so the
        // transitive closure is quadratic.
        let mut g = Graph::new();
        for i in 0..20 {
            for j in 0..20 {
                if i != j {
                    g.insert(&provio_rdf::Triple::new(
                        provio_rdf::Subject::iri(format!("urn:n{i}")),
                        provio_rdf::Iri::new("urn:d"),
                        Term::iri(format!("urn:n{j}")),
                    ));
                }
            }
        }
        let q = Query::parse("SELECT ?a ?b WHERE { ?a <urn:d>+ ?b . }").unwrap();
        assert!(matches!(
            q.execute_with_budget(&g, 50),
            Err(QueryError::BudgetExhausted { budget: 50 })
        ));
        let full = q.execute_with_budget(&g, u64::MAX).unwrap();
        assert_eq!(full.len(), 20 * 20); // cycles make every node reach all
    }

    #[test]
    fn results_are_deterministic_without_order_by() {
        let a = run("PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:elapsed ?d . }");
        let b = run("PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:elapsed ?d . }");
        let ra: Vec<String> = a.rows.iter().map(|r| r["x"].to_string()).collect();
        let rb: Vec<String> = b.rows.iter().map(|r| r["x"].to_string()).collect();
        assert_eq!(ra, rb);
    }
}
