//! Query AST.

use provio_rdf::Term;

/// An aggregate in the projection: `(COUNT(?v) AS ?alias)` /
/// `(COUNT(*) AS ?alias)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Variable counted; `None` = `*` (count rows).
    pub var: Option<String>,
    /// Count only distinct values.
    pub distinct: bool,
    /// The output variable name.
    pub alias: String,
}

/// A parsed SELECT query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Projected variable names (without `?`); empty means `SELECT *`.
    pub projection: Vec<String>,
    /// COUNT aggregate, if present (grouped by `group_by`).
    pub aggregate: Option<Aggregate>,
    /// `GROUP BY` variables.
    pub group_by: Vec<String>,
    pub distinct: bool,
    /// Graph patterns (triple patterns and filters) in syntactic order.
    pub patterns: Vec<Pattern>,
    /// `ORDER BY` keys: (variable, descending).
    pub order_by: Vec<(String, bool)>,
    pub limit: Option<usize>,
    pub offset: usize,
    /// Number of triple-pattern statements in the query text, the metric
    /// reported in the paper's Table 5 ("# of Statements in Query").
    pub statement_count: usize,
}

/// One element of the WHERE clause.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// A triple pattern whose predicate may be a property path.
    Triple {
        subject: TermOrVar,
        path: PathExpr,
        object: TermOrVar,
    },
    /// A FILTER constraint.
    Filter(Expr),
}

/// A term position: a concrete RDF term or a variable.
#[derive(Debug, Clone, PartialEq)]
pub enum TermOrVar {
    Term(Term),
    Var(String),
}

impl TermOrVar {
    pub fn var(&self) -> Option<&str> {
        match self {
            TermOrVar::Var(v) => Some(v),
            TermOrVar::Term(_) => None,
        }
    }
}

/// A SPARQL 1.1 property path (the subset PROV-IO queries use).
#[derive(Debug, Clone, PartialEq)]
pub enum PathExpr {
    /// A single predicate IRI.
    Iri(provio_rdf::Iri),
    /// `^p` — inverse.
    Inverse(Box<PathExpr>),
    /// `p1/p2` — sequence.
    Sequence(Box<PathExpr>, Box<PathExpr>),
    /// `p1|p2` — alternative.
    Alternative(Box<PathExpr>, Box<PathExpr>),
    /// `p+` — one or more.
    OneOrMore(Box<PathExpr>),
    /// `p*` — zero or more.
    ZeroOrMore(Box<PathExpr>),
}

impl PathExpr {
    /// True when the path is a plain predicate (evaluable via one index
    /// lookup rather than the path machinery).
    pub fn as_plain(&self) -> Option<&provio_rdf::Iri> {
        match self {
            PathExpr::Iri(i) => Some(i),
            _ => None,
        }
    }
}

/// FILTER expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Var(String),
    Const(Term),
    Compare(CompareOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    /// REGEX(str, pattern) — substring semantics with optional ^/$ anchors.
    Regex(Box<Expr>, String),
    StrStarts(Box<Expr>, Box<Expr>),
    StrEnds(Box<Expr>, Box<Expr>),
    Contains(Box<Expr>, Box<Expr>),
    Bound(String),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_path_detection() {
        let p = PathExpr::Iri(provio_rdf::Iri::new("urn:p"));
        assert!(p.as_plain().is_some());
        assert!(PathExpr::OneOrMore(Box::new(p)).as_plain().is_none());
    }

    #[test]
    fn term_or_var_accessor() {
        assert_eq!(TermOrVar::Var("x".into()).var(), Some("x"));
        assert_eq!(TermOrVar::Term(Term::iri("urn:a")).var(), None);
    }
}
