//! Crashcheck — systematic crash-state exploration of the full commit
//! protocol, with machine-checked recovery invariants (DESIGN.md §15).
//!
//! The seeded fault sweeps elsewhere in the suite *sample* crash points;
//! this module *enumerates* them. A deterministic workload with every
//! durability knob armed (checksums + WAL + parity + delta segments +
//! manifest/ledger) runs once against a traced file system
//! ([`provio_hpcfs::OpTrace`]); the recorded operation sequence then
//! defines the complete crash-state space — every operation prefix,
//! torn-tail variants of the write at each crash point, and reorder
//! variants inside rename-barrier-free windows. Each state reconstructs
//! into a fresh simulated disk, the full recovery pipeline
//! ([`crate::recover::recover_all`]) runs over it **twice**, and an
//! invariant set is checked mechanically:
//!
//! | id | invariant |
//! |----|-----------|
//! | I1 | **durability** — every record acked by a successful flush before the crash point is in the merged graph |
//! | I2 | **no phantom / no double count** — the merged graph contains only records the workload pushed (the graph is a set, so replay can never double-count) |
//! | I3 | **bounded loss** — each rank loses at most `wal_group` unflushed records (plus, for a dropped journal append, the records journaled behind the hole) |
//! | I4 | **no innocent quarantine** — a pure crash never quarantines a file or reports unrecoverable/ unusable parity members |
//! | I5 | **atomic trust artifacts** — the manifest and ledger are old-or-new: any `Tampered` verdict, or a present-but-unverifiable manifest, is a protocol bug |
//! | I6 | **idempotent recovery** — a second recovery pass yields a byte-identical directory, an equal `RunReport`, and the same graph |
//! | I7 | **non-destructive** — recovery of a pure crash state leaves the disk byte-identical (repair and quarantine exist for rot and tamper, which a crash cannot produce) |
//!
//! A violation carries the failing [`CrashState`]; the report's
//! minimizer picks the smallest one and [`repro_text`] renders the
//! deterministic repro (a [`provio_hpcfs::FaultPlan`] for plannable
//! states, the trace-window spec for reorder states).

use std::collections::HashMap;
use std::sync::Arc;

use provio_hpcfs::{
    describe_state, enumerate_crash_states, reconstruct, repro_plan, CrashState, CrashVariant,
    FileSystem, LustreConfig, OpTrace, TraceOp,
};
use provio_rdf::{Iri, Subject, Term, Triple};

use crate::config::RdfFormat;
use crate::frame;
use crate::recover::recover_all;
use crate::store::ProvenanceStore;
use crate::verify::{seal_run_with_roots, FileVerdict, RankEntry, RootCache};

/// The run directory every crashcheck workload writes under.
pub const CRASHCHECK_DIR: &str = "/provio";

/// Shape of the recorded workload and the exploration budget.
#[derive(Debug, Clone)]
pub struct CrashcheckConfig {
    /// Simulated ranks, each with its own store.
    pub ranks: u32,
    /// Pushes per rank (one record each — the finest ack granularity).
    pub pushes: usize,
    /// Force a flush every this many pushes per rank.
    pub flush_every: usize,
    /// WAL group-commit size (`wal_group` knob).
    pub wal_group: u32,
    /// Parity group size (`parity_group` knob).
    pub parity_group: u32,
    /// Compact segments into a snapshot every this many delta appends.
    pub compact_every: u32,
    /// Campaign key; `Some` arms manifest + ledger sealing and the
    /// post-recovery verify stage.
    pub manifest_key: Option<String>,
    /// Budget for reorder (dropped-write) variants; they grow
    /// quadratically with the trace. `usize::MAX` = exhaustive.
    pub max_dropped: usize,
    /// Overall cap on explored states (0 = all). When capped, states are
    /// kept at an even stride so coverage stays spread over the trace.
    pub max_states: usize,
    /// Seed for emitted repro plans.
    pub seed: u64,
}

impl Default for CrashcheckConfig {
    fn default() -> Self {
        CrashcheckConfig {
            ranks: 2,
            pushes: 6,
            flush_every: 2,
            wal_group: 2,
            parity_group: 2,
            compact_every: 2,
            manifest_key: Some("crashcheck-key".to_string()),
            max_dropped: 256,
            max_states: 0,
            seed: 0xC4A5,
        }
    }
}

/// The record pushed as rank `rank`'s `seq`-th push — globally unique,
/// so graph membership identifies exactly which records survived.
pub fn crashcheck_triple(rank: u32, seq: usize) -> Triple {
    Triple::new(
        Subject::iri(format!("urn:crashcheck:r{rank}")),
        Iri::new("urn:crashcheck:pushed"),
        Term::iri(format!("urn:crashcheck:v{seq}")),
    )
}

/// One push, tied to its position in the operation trace.
#[derive(Debug, Clone, Copy)]
pub struct PushMark {
    /// Trace length when the push returned: a crash state with
    /// `prefix >= op_end` has this record journaled (or buffered).
    pub op_end: usize,
    pub rank: u32,
    pub seq: usize,
}

/// One successful flush acknowledgement: everything `rank` pushed before
/// this point is durably committed. Acks are strictly per rank — rank
/// 0's flush returning says nothing about rank 1's still-buffered data.
#[derive(Debug, Clone, Copy)]
pub struct AckMark {
    /// Trace length when the flush returned.
    pub op_end: usize,
    pub rank: u32,
    /// Count of this rank's records covered by the ack.
    pub acked: usize,
}

/// The traced workload: the operation sequence plus the ack/push marks
/// the invariants are checked against.
#[derive(Debug)]
pub struct RecordedWorkload {
    pub config: CrashcheckConfig,
    pub ops: Vec<TraceOp>,
    pub pushes: Vec<PushMark>,
    pub acks: Vec<AckMark>,
}

/// Run the all-knobs-armed workload once, recording its complete
/// syscall trace. Deterministic: same config, same trace.
pub fn record_workload(config: &CrashcheckConfig) -> RecordedWorkload {
    let fs = FileSystem::new(LustreConfig::default());
    let trace = OpTrace::new();
    fs.attach_tracer(Arc::clone(&trace));

    let stores: Vec<ProvenanceStore> = (0..config.ranks)
        .map(|r| {
            ProvenanceStore::new(
                Arc::clone(&fs),
                format!("{CRASHCHECK_DIR}/rank{r}.nt"),
                RdfFormat::NTriples,
                false,
            )
            .with_checksums(true)
            .with_wal(true, config.wal_group)
            .with_parity(true, config.parity_group)
            .with_delta(true, config.compact_every)
        })
        .collect();

    let mut pushes = Vec::new();
    let mut acks = Vec::new();
    let mut counts = vec![0usize; config.ranks as usize];
    for seq in 0..config.pushes {
        for (r, store) in stores.iter().enumerate() {
            store.push(vec![crashcheck_triple(r as u32, seq)], None);
            counts[r] = seq + 1;
            pushes.push(PushMark {
                op_end: trace.len(),
                rank: r as u32,
                seq,
            });
        }
        if config.flush_every > 0 && (seq + 1) % config.flush_every == 0 {
            for (r, store) in stores.iter().enumerate() {
                store.flush(None);
                debug_assert!(!store.degraded(), "recording runs are fault-free");
                acks.push(AckMark {
                    op_end: trace.len(),
                    rank: r as u32,
                    acked: counts[r],
                });
            }
        }
    }
    for (r, store) in stores.iter().enumerate() {
        store.finish(None);
        acks.push(AckMark {
            op_end: trace.len(),
            rank: r as u32,
            acked: counts[r],
        });
    }

    // Seal manifest + ledger exactly as `TrackerRegistry::finish_all`
    // does, so the trace covers the trust tier's commit windows too.
    if let Some(key) = &config.manifest_key {
        let mut roots = RootCache::new();
        let mut ranks = Vec::new();
        for (r, store) in stores.iter().enumerate() {
            for (path, ord, root) in store.committed_roots() {
                roots.insert(path, (ord, root));
            }
            ranks.push(RankEntry {
                pid: r as u32,
                degraded: store.degraded(),
                triples: counts[r] as u64,
            });
        }
        let _ = seal_run_with_roots(&fs, CRASHCHECK_DIR, key, &ranks, &roots);
    }

    fs.detach_tracer();
    RecordedWorkload {
        config: config.clone(),
        ops: trace.snapshot(),
        pushes,
        acks,
    }
}

/// One invariant breach at one crash state.
#[derive(Debug, Clone)]
pub struct Violation {
    pub state: CrashState,
    /// Invariant id from the table above (`durability`, `no-phantom`,
    /// `bounded-loss`, `no-innocent-quarantine`, `atomic-trust`,
    /// `idempotent-recovery`, `no-spurious-mutation`).
    pub invariant: &'static str,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] at {}: {}", self.invariant, self.state, self.detail)
    }
}

/// What one exploration found.
#[derive(Debug, Default)]
pub struct CrashcheckReport {
    /// Length of the recorded operation trace.
    pub trace_len: usize,
    /// States the enumeration produced.
    pub states: usize,
    /// States actually reconstructed and recovered (≤ `states` under a
    /// `max_states` budget).
    pub checked: usize,
    pub violations: Vec<Violation>,
}

impl CrashcheckReport {
    /// Did every checked state satisfy every invariant?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The minimal failing state: smallest prefix, simplest variant.
    pub fn minimized(&self) -> Option<&Violation> {
        self.violations.iter().min_by_key(|v| v.state.sort_key())
    }
}

impl std::fmt::Display for CrashcheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crashcheck: {} trace ops, {}/{} states checked, {} violation(s)",
            self.trace_len, self.checked, self.states, self.violations.len()
        )
    }
}

/// Byte-exact image of every file under `dir`, for idempotence checks.
fn dir_snapshot(fs: &Arc<FileSystem>, dir: &str) -> Vec<(String, Vec<u8>)> {
    let Ok(files) = fs.walk_files(dir) else {
        return Vec::new();
    };
    files
        .into_iter()
        .filter_map(|path| {
            let ino = fs.lookup(&path).ok()?;
            let size = fs.file_size(ino).ok()?;
            let bytes = fs.read_at(ino, 0, size).ok()?.to_vec();
            Some((path, bytes))
        })
        .collect()
}

/// First path where two directory images differ, for violation details.
fn first_divergence(a: &[(String, Vec<u8>)], b: &[(String, Vec<u8>)]) -> String {
    let index: HashMap<&str, &[u8]> = b.iter().map(|(p, d)| (p.as_str(), d.as_slice())).collect();
    for (p, d) in a {
        match index.get(p.as_str()) {
            None => return format!("{p} present only after the first pass"),
            Some(other) if *other != d.as_slice() => return format!("{p} differs between passes"),
            _ => {}
        }
    }
    for (p, _) in b {
        if !a.iter().any(|(q, _)| q == p) {
            return format!("{p} appeared in the second pass");
        }
    }
    "directory listings diverge".to_string()
}

/// Run recovery twice over an already-reconstructed crash disk and check
/// the full invariant set against the workload's marks at `state`.
/// Exposed so the double-crash test can re-check a disk that crashed
/// *during* recovery under the same invariants.
pub fn check_recovered(
    w: &RecordedWorkload,
    state: CrashState,
    fs: &Arc<FileSystem>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut fail = |invariant: &'static str, detail: String| {
        violations.push(Violation {
            state,
            invariant,
            detail,
        });
    };
    let key = w.config.manifest_key.as_deref();

    let d0 = dir_snapshot(fs, CRASHCHECK_DIR);
    let out1 = recover_all(fs, CRASHCHECK_DIR, key);
    let d1 = dir_snapshot(fs, CRASHCHECK_DIR);
    let out2 = recover_all(fs, CRASHCHECK_DIR, key);
    let d2 = dir_snapshot(fs, CRASHCHECK_DIR);

    // --- I7: non-destructive on pure crashes -------------------------------
    // Every mutation recovery can make (parity repair, quarantine) exists
    // to answer rot or tamper; a crash produces neither, so recovering a
    // pure crash state must leave the disk byte-identical. This is the
    // regression guard for the wal_recycle unlink-ordering bug, where a
    // single-member journal parity group "repaired" the retired WAL
    // generation back into existence.
    if d0 != d1 {
        fail("no-spurious-mutation", first_divergence(&d0, &d1));
    }

    // --- I6: idempotence --------------------------------------------------
    // The first pass must reach a fixpoint: the second pass changes no
    // byte and performs no repair or quarantine. When the first pass
    // itself changed nothing (every pure crash state, by I7), the two
    // reports must also agree exactly — when it legitimately mutated
    // (e.g. repairing rot on a disk the double-crash harness damaged),
    // the repair counters honestly differ and only the no-op contract
    // applies to the second pass.
    if d1 != d2 {
        fail("idempotent-recovery", first_divergence(&d1, &d2));
    }
    if !out2.scrub.repaired_files.is_empty()
        || !out2.merge.quarantined.is_empty()
        || !out2.quarantined.is_empty()
    {
        fail(
            "idempotent-recovery",
            format!(
                "second pass was not a no-op: repaired {:?}, quarantined {:?}/{:?}",
                out2.scrub.repaired_files, out2.merge.quarantined, out2.quarantined
            ),
        );
    }
    if d0 == d1 && out1.report != out2.report {
        fail(
            "idempotent-recovery",
            format!(
                "RunReport changed between passes over an unchanged disk:\n  \
                 pass 1: {:?}\n  pass 2: {:?}",
                out1.report, out2.report
            ),
        );
    }

    // --- I1: durability of acked records ----------------------------------
    for r in 0..w.config.ranks {
        let n = w
            .acks
            .iter()
            .filter(|a| a.rank == r && a.op_end <= state.prefix)
            .map(|a| a.acked)
            .max()
            .unwrap_or(0);
        for seq in 0..n {
            let t = crashcheck_triple(r, seq);
            if !out1.graph.contains(&t) {
                fail(
                    "durability",
                    format!("rank {r} record {seq} was acked before the crash but is absent after recovery"),
                );
            }
        }
    }

    // --- I2: no phantom records (and, since the graph is a set, no
    // double count) --------------------------------------------------------
    let mut matched = 0usize;
    let mut membership = Vec::new();
    for r in 0..w.config.ranks {
        for seq in 0..w.config.pushes {
            let present = out1.graph.contains(&crashcheck_triple(r, seq));
            let present2 = out2.graph.contains(&crashcheck_triple(r, seq));
            if present != present2 {
                fail(
                    "idempotent-recovery",
                    format!("rank {r} record {seq} present after one pass but not the other"),
                );
            }
            membership.push(present);
            matched += usize::from(present);
        }
    }
    if out1.graph.len() > matched {
        fail(
            "no-phantom",
            format!(
                "merged graph holds {} triples but only {} correspond to pushed records",
                out1.graph.len(),
                matched
            ),
        );
    }
    drop(membership);

    // --- I3: bounded loss --------------------------------------------------
    // A dropped journal append leaves a hole mid-generation: every chunk
    // journaled behind it in the same generation is honestly lost too
    // (merge truncates at the hole). Widen that rank's bound by the
    // records it pushed after the dropped write.
    let mut wal_drop = None;
    if let CrashVariant::DroppedWrite { op } = state.variant {
        if let Some(o) = w.ops.get(op) {
            if frame::is_wal_path(o.path()) {
                wal_drop = Some((o.path().to_string(), op));
            }
        }
    }
    for r in 0..w.config.ranks as usize {
        let issued: Vec<usize> = w
            .pushes
            .iter()
            .filter(|p| p.rank == r as u32 && p.op_end <= state.prefix)
            .map(|p| p.seq)
            .collect();
        let lost = issued
            .iter()
            .filter(|&&seq| !out1.graph.contains(&crashcheck_triple(r as u32, seq)))
            .count();
        let mut bound = w.config.wal_group as usize;
        if let Some((path, op)) = &wal_drop {
            if path.starts_with(&format!("{CRASHCHECK_DIR}/rank{r}.nt.")) {
                bound += w
                    .pushes
                    .iter()
                    .filter(|p| p.rank == r as u32 && p.op_end > *op && p.op_end <= state.prefix)
                    .count();
            }
        }
        if lost > bound {
            fail(
                "bounded-loss",
                format!(
                    "rank {r} lost {lost} of {} issued records; bound is {bound} (wal_group {})",
                    issued.len(),
                    w.config.wal_group
                ),
            );
        }
    }

    // --- I4: no innocent quarantine or phantom loss ------------------------
    for out in [&out1, &out2] {
        if !out.merge.quarantined.is_empty() {
            fail(
                "no-innocent-quarantine",
                format!("merge quarantined {:?} in a pure-crash state", out.merge.quarantined),
            );
        }
        if !out.quarantined.is_empty() {
            fail(
                "no-innocent-quarantine",
                format!("verify quarantined {:?} in a pure-crash state", out.quarantined),
            );
        }
        if !out.scrub.unrecoverable.is_empty() {
            fail(
                "no-innocent-quarantine",
                format!(
                    "scrub reported {:?} unrecoverable in a pure-crash state",
                    out.scrub.unrecoverable
                ),
            );
        }
        if !out.scrub.unusable_parity.is_empty() {
            fail(
                "no-innocent-quarantine",
                format!(
                    "scrub reported parity {:?} unusable: a crash can only leave parity absent or whole",
                    out.scrub.unusable_parity
                ),
            );
        }
    }

    // --- I5: atomic manifest/ledger — old-or-new, never torn-and-trusted ---
    if let Some(audit) = &out1.verify {
        for check in &audit.checks {
            if check.verdict == FileVerdict::Tampered {
                fail(
                    "atomic-trust",
                    format!("{} judged Tampered in a pure-crash state: {}", check.path, check.detail),
                );
            }
        }
        if audit.manifest_present && !audit.manifest_ok {
            fail(
                "atomic-trust",
                "a manifest is present on disk but does not verify — the manifest commit tore"
                    .to_string(),
            );
        }
    }

    violations
}

/// Reconstruct `state` from the recorded trace and check it.
pub fn check_state(w: &RecordedWorkload, state: CrashState) -> Vec<Violation> {
    let fs = reconstruct(&w.ops, &state);
    check_recovered(w, state, &fs)
}

/// Record the workload and explore its crash-state space under the
/// configured budget.
pub fn crashcheck(config: &CrashcheckConfig) -> (RecordedWorkload, CrashcheckReport) {
    let w = record_workload(config);
    let mut states = enumerate_crash_states(&w.ops, config.max_dropped);
    let total = states.len();
    if config.max_states > 0 && states.len() > config.max_states {
        let stride = states.len().div_ceil(config.max_states);
        states = states.into_iter().step_by(stride).collect();
    }
    let mut report = CrashcheckReport {
        trace_len: w.ops.len(),
        states: total,
        checked: 0,
        violations: Vec::new(),
    };
    for state in states {
        report.violations.extend(check_state(&w, state));
        report.checked += 1;
    }
    (w, report)
}

/// The deterministic repro artifact for a violation: the trace window
/// around the crash point, plus a [`provio_hpcfs::FaultPlan`] when a
/// single crash rule expresses the state (reorder states reproduce via
/// [`provio_hpcfs::reconstruct`] instead).
pub fn repro_text(w: &RecordedWorkload, violation: &Violation) -> String {
    let mut out = format!("{violation}\n\n");
    out.push_str(&describe_state(&w.ops, &violation.state));
    match repro_plan(&w.ops, &violation.state, w.config.seed) {
        Some(plan) => {
            out.push_str("\nfault plan (install on the workload fs to reproduce live):\n");
            out.push_str(&format!("{plan:?}\n"));
        }
        None => {
            out.push_str(
                "\nno single-rule fault plan expresses this state; reproduce by\n\
                 replaying the trace prefix via provio_hpcfs::reconstruct.\n",
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_records_trace_and_marks() {
        let cfg = CrashcheckConfig {
            ranks: 1,
            pushes: 4,
            ..CrashcheckConfig::default()
        };
        let w = record_workload(&cfg);
        assert!(!w.ops.is_empty());
        assert_eq!(w.pushes.len(), 4);
        assert!(!w.acks.is_empty());
        // Marks are monotone in the trace.
        let mut last = 0;
        for p in &w.pushes {
            assert!(p.op_end >= last);
            last = p.op_end;
        }
        // The final ack covers every push.
        assert_eq!(w.acks.last().unwrap().acked, 4);
        // Recording is deterministic.
        let w2 = record_workload(&cfg);
        assert_eq!(w.ops, w2.ops);
    }

    #[test]
    fn full_prefix_state_recovers_everything() {
        let cfg = CrashcheckConfig {
            ranks: 2,
            pushes: 4,
            ..CrashcheckConfig::default()
        };
        let w = record_workload(&cfg);
        let state = CrashState {
            prefix: w.ops.len(),
            variant: CrashVariant::Clean,
        };
        let violations = check_state(&w, state);
        assert!(violations.is_empty(), "crash-free run must be invariant-clean: {violations:?}");
    }

    #[test]
    fn empty_prefix_state_is_trivially_clean() {
        let cfg = CrashcheckConfig {
            ranks: 1,
            pushes: 2,
            ..CrashcheckConfig::default()
        };
        let w = record_workload(&cfg);
        let state = CrashState {
            prefix: 0,
            variant: CrashVariant::Clean,
        };
        assert!(check_state(&w, state).is_empty());
    }

    #[test]
    fn state_budget_caps_work() {
        let cfg = CrashcheckConfig {
            ranks: 1,
            pushes: 2,
            flush_every: 1,
            max_dropped: 4,
            max_states: 10,
            ..CrashcheckConfig::default()
        };
        let (_, report) = crashcheck(&cfg);
        assert!(report.checked <= 10);
        assert!(report.states >= report.checked);
    }
}
