//! `recover_all` — the full recovery pipeline as one auditable pass.
//!
//! Every consumer of a run directory so far composed the tiers by hand:
//! scrub, then merge (with WAL replay), then verify, then quarantine.
//! Crashcheck (DESIGN.md §15) checks invariants of *the composition* —
//! e.g. that recovering twice equals recovering once — so the
//! composition itself has to be a named, fixed-order operation. This is
//! that operation, and the one the upcoming streaming-merge daemon will
//! call on every watched directory.
//!
//! Order matters and is part of the contract:
//!
//! 1. **Scrub** first — parity repair restores rotted or lost members
//!    byte-identical, so the merge and the verify that follow see the
//!    healed bytes and quarantine stays the over-tolerance fallback.
//! 2. **Merge** — salvage, WAL replay above the committed watermark,
//!    identity quarantine.
//! 3. **Verify** (when a campaign key is supplied) — audit the signed
//!    manifest and ledger over the post-repair directory, then move
//!    provably tampered files aside.
//!
//! Every mutation any stage performs goes through the same simulated,
//! fault-injectable file system with tmp+rename discipline, so a crash
//! *during* recovery is itself one of crashcheck's explored states.

use std::sync::Arc;

use provio_hpcfs::FileSystem;
use provio_rdf::Graph;

use crate::merge::{merge_directory, MergeReport};
use crate::report::RunReport;
use crate::scrub::{scrub_directory, ScrubReport};
use crate::verify::{quarantine_tampered, verify_directory, VerifyReport};

/// Everything one recovery pass produced: the merged graph plus every
/// tier's report, folded into one [`RunReport`].
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The merged provenance graph.
    pub graph: Graph,
    /// What parity repair found and fixed (stage 1).
    pub scrub: ScrubReport,
    /// What the merge recovered, salvaged, replayed and quarantined
    /// (stage 2).
    pub merge: MergeReport,
    /// The trust audit (stage 3); `None` when no key was supplied.
    pub verify: Option<VerifyReport>,
    /// Files moved to `.quarantine` by the post-verify sweep.
    pub quarantined: Vec<String>,
    /// The joined accounting across all stages.
    pub report: RunReport,
}

/// Run the full recovery pipeline over `dir`: scrub, merge, and — when
/// `key` is given — verify plus tamper quarantine. Idempotent: a second
/// pass over the same directory yields a byte-identical directory and
/// an equal [`RunReport`] (enforced by crashcheck's invariant I6).
pub fn recover_all(fs: &Arc<FileSystem>, dir: &str, key: Option<&str>) -> RecoveryOutcome {
    let scrub = scrub_directory(fs, dir);
    let (graph, merge) = merge_directory(fs, dir);
    let (verify, quarantined) = match key {
        Some(key) => {
            let audit = verify_directory(fs, dir, key);
            let moved = quarantine_tampered(fs, &audit);
            (Some(audit), moved)
        }
        None => (None, Vec::new()),
    };
    let mut report = RunReport::default();
    report.attach_scrub(&scrub);
    report.attach_merge(merge.files, &merge);
    if let Some(audit) = &verify {
        report.attach_verify(audit);
    }
    RecoveryOutcome {
        graph,
        scrub,
        merge,
        verify,
        quarantined,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RdfFormat;
    use crate::store::ProvenanceStore;
    use provio_hpcfs::LustreConfig;
    use provio_rdf::{Iri, Subject, Term, Triple};

    fn triples(n: usize) -> Vec<Triple> {
        (0..n)
            .map(|i| {
                Triple::new(
                    Subject::iri(format!("urn:s{i}")),
                    Iri::new("urn:p"),
                    Term::iri("urn:o"),
                )
            })
            .collect()
    }

    #[test]
    fn recover_all_composes_all_tiers() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/r0.nt", RdfFormat::NTriples, false)
            .with_checksums(true);
        st.push(triples(5), None);
        st.finish(None);

        let out = recover_all(&fs, "/prov", None);
        assert_eq!(out.graph.len(), 5);
        assert_eq!(out.merge.files, 1);
        assert!(out.scrub.is_clean());
        assert!(out.verify.is_none());
        assert!(out.quarantined.is_empty());
        assert_eq!(out.report.merged_triples, 5);
        assert!(out.report.is_complete());
    }

    #[test]
    fn recover_all_is_idempotent_on_a_clean_directory() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/r1.nt", RdfFormat::NTriples, false)
            .with_checksums(true);
        st.push(triples(3), None);
        st.finish(None);

        let first = recover_all(&fs, "/prov", None);
        let second = recover_all(&fs, "/prov", None);
        assert_eq!(first.report, second.report);
        assert_eq!(first.graph.len(), second.graph.len());
    }
}
