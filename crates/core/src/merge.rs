//! Post-run merging of per-process sub-graphs.
//!
//! "The sub-graph files are then parsed and merged into a complete
//! provenance graph. Since every node in the graph has a globally unique ID
//! (GUID), merging the sub-graphs does not cause unnecessary duplication."
//! (paper §5). Merging happens after workflow execution, so it costs the
//! workflow nothing.

use provio_hpcfs::FileSystem;
use provio_rdf::{ntriples, turtle, Graph};
use std::sync::Arc;

/// Result of a merge.
#[derive(Debug)]
pub struct MergeReport {
    pub files: usize,
    pub triples: usize,
    /// Files that failed to parse (e.g. a process died mid-write); the
    /// merge proceeds without them.
    pub corrupt: Vec<String>,
}

/// Parse and merge every sub-graph file under `dir` (recursively) into one
/// graph. `.ttl` files parse as Turtle, `.nt` as N-Triples; unknown
/// extensions try both.
pub fn merge_directory(fs: &Arc<FileSystem>, dir: &str) -> (Graph, MergeReport) {
    let mut graph = Graph::new();
    let mut report = MergeReport {
        files: 0,
        triples: 0,
        corrupt: Vec::new(),
    };
    let files = match fs.walk_files(dir) {
        Ok(f) => f,
        Err(_) => return (graph, report),
    };
    for path in files {
        let Ok(ino) = fs.lookup(&path) else {
            continue;
        };
        let Ok(md) = fs.stat(&path) else { continue };
        let Ok(bytes) = fs.read_at(ino, 0, md.size) else {
            continue;
        };
        let Ok(text) = String::from_utf8(bytes.to_vec()) else {
            report.corrupt.push(path);
            continue;
        };
        let parsed = if path.ends_with(".nt") {
            ntriples::parse_into(&text, &mut graph).is_ok()
        } else if path.ends_with(".ttl") {
            turtle::parse_into(&text, &mut graph).is_ok()
        } else {
            turtle::parse_into(&text, &mut graph).is_ok()
                || ntriples::parse_into(&text, &mut graph).is_ok()
        };
        if parsed {
            report.files += 1;
        } else {
            report.corrupt.push(path);
        }
    }
    report.triples = graph.len();
    (graph, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProvIoConfig, RdfFormat};
    use crate::tracker::{IoEvent, ObjectDesc, ProvTracker};
    use provio_hpcfs::LustreConfig;
    use provio_model::ontology::nodes_of_class;
    use provio_model::{ActivityClass, EntityClass};
    use provio_simrt::{SimTime, VirtualClock};

    fn event(path: &str) -> IoEvent {
        IoEvent {
            activity: ActivityClass::Write,
            api_name: "H5Dwrite".into(),
            object: Some(ObjectDesc::hdf5(EntityClass::Dataset, "/shared.h5", path)),
            bytes: 1,
            duration_ns: 1,
            timestamp_ns: 1,
            ok: true,
        }
    }

    #[test]
    fn merge_dedups_shared_guids() {
        let fs = FileSystem::new(LustreConfig::default());
        // Three processes all touch the same dataset: the merged graph must
        // contain ONE dataset node but three Write activities.
        for pid in 0..3 {
            let t = ProvTracker::new(
                ProvIoConfig::default().shared(),
                Arc::clone(&fs),
                pid,
                "Bob",
                "vpicio",
                VirtualClock::new(),
            );
            t.track_io(&event("/Timestep_0/x"));
            t.finish();
        }
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 3);
        assert!(report.corrupt.is_empty());
        assert_eq!(nodes_of_class(&g, EntityClass::Dataset.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, ActivityClass::Write.into()).len(), 3);
        // Shared agents dedup too (same program name across ranks).
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::Program.into()).len(),
            1
        );
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::User.into()).len(),
            1
        );
        // But each rank is its own Thread agent.
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::Thread.into()).len(),
            3
        );
    }

    #[test]
    fn corrupt_files_skipped_not_fatal() {
        let fs = FileSystem::new(LustreConfig::default());
        let t = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            0,
            "B",
            "p",
            VirtualClock::new(),
        );
        t.track_io(&event("/d"));
        t.finish();
        // A truncated/corrupt sub-graph from a crashed process.
        let ino = fs
            .create_file("/provio/prov_p99.ttl", false, "provio", SimTime::ZERO)
            .unwrap();
        fs.write_at(ino, 0, b"@prefix broken <oops", SimTime::ZERO).unwrap();
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(report.corrupt, vec!["/provio/prov_p99.ttl"]);
        assert!(g.len() > 0);
    }

    #[test]
    fn missing_dir_is_empty_merge() {
        let fs = FileSystem::new(LustreConfig::default());
        let (g, report) = merge_directory(&fs, "/nowhere");
        assert!(g.is_empty());
        assert_eq!(report.files, 0);
    }

    #[test]
    fn mixed_formats_merge() {
        let fs = FileSystem::new(LustreConfig::default());
        for (pid, fmt) in [(0u32, RdfFormat::Turtle), (1, RdfFormat::NTriples)] {
            let cfg = ProvIoConfig::default().with_format(fmt).shared();
            let t = ProvTracker::new(cfg, Arc::clone(&fs), pid, "B", "p", VirtualClock::new());
            t.track_io(&event("/d"));
            t.finish();
        }
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 2);
        assert_eq!(nodes_of_class(&g, EntityClass::Dataset.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, ActivityClass::Write.into()).len(), 2);
    }
}
