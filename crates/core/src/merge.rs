//! Post-run merging of per-process sub-graphs.
//!
//! "The sub-graph files are then parsed and merged into a complete
//! provenance graph. Since every node in the graph has a globally unique ID
//! (GUID), merging the sub-graphs does not cause unnecessary duplication."
//! (paper §5). Merging happens after workflow execution, so it costs the
//! workflow nothing.

use provio_hpcfs::FileSystem;
use provio_rdf::{ntriples, turtle, Graph};
use std::collections::HashSet;
use std::sync::Arc;

/// Result of a merge.
#[derive(Debug)]
pub struct MergeReport {
    /// Files that contributed triples (fully parsed or salvaged).
    pub files: usize,
    pub triples: usize,
    /// Files from which nothing could be recovered; the merge proceeds
    /// without them.
    pub corrupt: Vec<String>,
    /// Orphan `<p>.tmp` files adopted because no committed `<p>` exists —
    /// the writer crashed between serialization and its atomic rename.
    pub recovered: Vec<String>,
    /// Triples recovered from the valid prefix of torn files.
    pub salvaged_triples: usize,
}

#[derive(Clone, Copy)]
enum Format {
    NTriples,
    Turtle,
    Unknown,
}

fn format_of(effective_path: &str) -> Format {
    if effective_path.ends_with(".nt") {
        Format::NTriples
    } else if effective_path.ends_with(".ttl") {
        Format::Turtle
    } else {
        Format::Unknown
    }
}

/// Full parse of `text` into a fresh graph, or `None` on any error. The
/// scratch graph keeps a half-parsed file from partially polluting the
/// merged graph.
fn parse_full(format: Format, text: &str) -> Option<Graph> {
    let mut scratch = Graph::new();
    let ok = match format {
        Format::NTriples => ntriples::parse_into(text, &mut scratch).is_ok(),
        Format::Turtle => turtle::parse_into(text, &mut scratch).is_ok(),
        Format::Unknown => {
            turtle::parse_into(text, &mut scratch).is_ok() || {
                scratch = Graph::new();
                ntriples::parse_into(text, &mut scratch).is_ok()
            }
        }
    };
    ok.then_some(scratch)
}

/// Longest valid prefix of a torn Turtle document: cut at statement
/// boundaries (lines ending `.`), longest candidate first.
fn salvage_turtle(text: &str) -> Graph {
    let lines: Vec<&str> = text.lines().collect();
    let cuts: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.trim_end().ends_with('.'))
        .map(|(i, _)| i)
        .collect();
    for &cut in cuts.iter().rev() {
        let prefix = lines[..=cut].join("\n");
        if let Ok((g, _)) = turtle::parse(&prefix) {
            return g;
        }
    }
    Graph::new()
}

/// Salvage whatever prefix of `text` is valid.
fn salvage(format: Format, text: &str) -> Graph {
    match format {
        Format::NTriples => {
            let mut scratch = Graph::new();
            ntriples::parse_lenient_prefix(text, &mut scratch);
            scratch
        }
        Format::Turtle => salvage_turtle(text),
        Format::Unknown => {
            let mut scratch = Graph::new();
            if ntriples::parse_lenient_prefix(text, &mut scratch) > 0 {
                scratch
            } else {
                salvage_turtle(text)
            }
        }
    }
}

/// Parse and merge every sub-graph file under `dir` (recursively) into one
/// graph. `.ttl` files parse as Turtle, `.nt` as N-Triples; unknown
/// extensions try both.
///
/// Crash recovery: a `<p>.tmp` left by the store's atomic-rename protocol
/// is skipped when the committed `<p>` exists (it is a stale or torn
/// in-progress flush — the committed file wins), and adopted when it does
/// not (the writer crashed after serializing but before renaming). Files
/// that fail a full parse get their valid prefix salvaged line-by-line
/// (N-Triples) or at statement boundaries (Turtle); only files yielding
/// nothing at all are reported corrupt.
pub fn merge_directory(fs: &Arc<FileSystem>, dir: &str) -> (Graph, MergeReport) {
    let mut graph = Graph::new();
    let mut report = MergeReport {
        files: 0,
        triples: 0,
        corrupt: Vec::new(),
        recovered: Vec::new(),
        salvaged_triples: 0,
    };
    let files = match fs.walk_files(dir) {
        Ok(f) => f,
        Err(_) => return (graph, report),
    };
    let committed: HashSet<&str> = files.iter().map(String::as_str).collect();
    for path in &files {
        let adopted_tmp = match path.strip_suffix(".tmp") {
            Some(base) if committed.contains(base) => continue, // commit wins
            Some(_) => true,
            None => false,
        };
        let Ok(ino) = fs.lookup(path) else {
            continue;
        };
        let Ok(md) = fs.stat(path) else { continue };
        let Ok(bytes) = fs.read_at(ino, 0, md.size) else {
            continue;
        };
        let Ok(text) = String::from_utf8(bytes.to_vec()) else {
            report.corrupt.push(path.clone());
            continue;
        };
        let format = format_of(path.strip_suffix(".tmp").unwrap_or(path));
        if let Some(sub) = parse_full(format, &text) {
            for t in sub.iter() {
                graph.insert(&t);
            }
            report.files += 1;
            if adopted_tmp {
                report.recovered.push(path.clone());
            }
            continue;
        }
        let sub = salvage(format, &text);
        if sub.is_empty() {
            report.corrupt.push(path.clone());
            continue;
        }
        report.salvaged_triples += sub.len();
        for t in sub.iter() {
            graph.insert(&t);
        }
        report.files += 1;
        if adopted_tmp {
            report.recovered.push(path.clone());
        }
    }
    report.triples = graph.len();
    (graph, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProvIoConfig, RdfFormat};
    use crate::tracker::{IoEvent, ObjectDesc, ProvTracker};
    use provio_hpcfs::LustreConfig;
    use provio_model::ontology::nodes_of_class;
    use provio_model::{ActivityClass, EntityClass};
    use provio_simrt::{SimTime, VirtualClock};

    fn event(path: &str) -> IoEvent {
        IoEvent {
            activity: ActivityClass::Write,
            api_name: "H5Dwrite".into(),
            object: Some(ObjectDesc::hdf5(EntityClass::Dataset, "/shared.h5", path)),
            bytes: 1,
            duration_ns: 1,
            timestamp_ns: 1,
            ok: true,
        }
    }

    #[test]
    fn merge_dedups_shared_guids() {
        let fs = FileSystem::new(LustreConfig::default());
        // Three processes all touch the same dataset: the merged graph must
        // contain ONE dataset node but three Write activities.
        for pid in 0..3 {
            let t = ProvTracker::new(
                ProvIoConfig::default().shared(),
                Arc::clone(&fs),
                pid,
                "Bob",
                "vpicio",
                VirtualClock::new(),
            );
            t.track_io(&event("/Timestep_0/x"));
            t.finish();
        }
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 3);
        assert!(report.corrupt.is_empty());
        assert_eq!(nodes_of_class(&g, EntityClass::Dataset.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, ActivityClass::Write.into()).len(), 3);
        // Shared agents dedup too (same program name across ranks).
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::Program.into()).len(),
            1
        );
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::User.into()).len(),
            1
        );
        // But each rank is its own Thread agent.
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::Thread.into()).len(),
            3
        );
    }

    #[test]
    fn corrupt_files_skipped_not_fatal() {
        let fs = FileSystem::new(LustreConfig::default());
        let t = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            0,
            "B",
            "p",
            VirtualClock::new(),
        );
        t.track_io(&event("/d"));
        t.finish();
        // A truncated/corrupt sub-graph from a crashed process.
        let ino = fs
            .create_file("/provio/prov_p99.ttl", false, "provio", SimTime::ZERO)
            .unwrap();
        fs.write_at(ino, 0, b"@prefix broken <oops", SimTime::ZERO).unwrap();
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(report.corrupt, vec!["/provio/prov_p99.ttl"]);
        assert!(g.len() > 0);
    }

    fn write_file(fs: &Arc<FileSystem>, path: &str, body: &[u8]) {
        if let Some((dir, _)) = path.rsplit_once('/') {
            fs.mkdir_all(dir, "provio", SimTime::ZERO).unwrap();
        }
        let ino = fs.create_file(path, false, "provio", SimTime::ZERO).unwrap();
        fs.write_at(ino, 0, body, SimTime::ZERO).unwrap();
    }

    #[test]
    fn stale_tmp_is_shadowed_by_committed_file() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(&fs, "/provio/prov_p0.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        // A torn in-progress flush next to a good committed file: ignored.
        write_file(&fs, "/provio/prov_p0.nt.tmp", b"<urn:a> <urn:p> \"tor");
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(g.len(), 1);
        assert!(report.corrupt.is_empty());
        assert!(report.recovered.is_empty());
        assert_eq!(report.salvaged_triples, 0);
    }

    #[test]
    fn orphan_tmp_is_adopted() {
        let fs = FileSystem::new(LustreConfig::default());
        // Writer crashed after serializing, before the rename: no committed
        // file, a complete tmp. The merge adopts it.
        write_file(
            &fs,
            "/provio/prov_p1.nt.tmp",
            b"<urn:a> <urn:p> <urn:b> .\n<urn:c> <urn:p> <urn:d> .\n",
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(g.len(), 2);
        assert_eq!(report.recovered, vec!["/provio/prov_p1.nt.tmp"]);
    }

    #[test]
    fn torn_ntriples_prefix_is_salvaged() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(
            &fs,
            "/provio/prov_p2.nt",
            b"<urn:a> <urn:p> <urn:b> .\n<urn:c> <urn:p> <urn:d> .\n<urn:e> <urn:p> \"to",
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert!(report.corrupt.is_empty());
        assert_eq!(report.salvaged_triples, 2);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn failed_full_parse_does_not_pollute_merged_graph() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(&fs, "/provio/good.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        // Unknown extension, first line valid Turtle-and-NT, second line
        // garbage: the old code parsed line 1 straight into the merged
        // graph before failing. Now nothing of a failed full parse leaks
        // unless the salvage pass owns it (and then it is *reported*).
        write_file(
            &fs,
            "/provio/mystery.dat",
            b"<urn:x> <urn:p> <urn:y> .\n%%%not rdf%%%\n",
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 2);
        assert_eq!(report.salvaged_triples, 1, "prefix salvage is accounted");
        assert_eq!(g.len(), 2);
        assert!(report.corrupt.is_empty());
    }

    #[test]
    fn missing_dir_is_empty_merge() {
        let fs = FileSystem::new(LustreConfig::default());
        let (g, report) = merge_directory(&fs, "/nowhere");
        assert!(g.is_empty());
        assert_eq!(report.files, 0);
    }

    #[test]
    fn mixed_formats_merge() {
        let fs = FileSystem::new(LustreConfig::default());
        for (pid, fmt) in [(0u32, RdfFormat::Turtle), (1, RdfFormat::NTriples)] {
            let cfg = ProvIoConfig::default().with_format(fmt).shared();
            let t = ProvTracker::new(cfg, Arc::clone(&fs), pid, "B", "p", VirtualClock::new());
            t.track_io(&event("/d"));
            t.finish();
        }
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 2);
        assert_eq!(nodes_of_class(&g, EntityClass::Dataset.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, ActivityClass::Write.into()).len(), 2);
    }
}
