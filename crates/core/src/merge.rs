//! Post-run merging of per-process sub-graphs.
//!
//! "The sub-graph files are then parsed and merged into a complete
//! provenance graph. Since every node in the graph has a globally unique ID
//! (GUID), merging the sub-graphs does not cause unnecessary duplication."
//! (paper §5). Merging happens after workflow execution, so it costs the
//! workflow nothing.

use crate::frame::{self, FrameKind};
use provio_hpcfs::FileSystem;
use provio_rdf::{ntriples, turtle, Graph};
use provio_simrt::{catch_quiet, SimTime};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Test hook: paths containing this marker panic inside [`process_file`],
/// standing in for a parser bug on hostile input.
#[cfg(test)]
static PANIC_ON: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);

/// Result of a merge.
#[derive(Debug)]
pub struct MergeReport {
    /// Files that contributed triples (fully parsed or salvaged).
    pub files: usize,
    pub triples: usize,
    /// Files from which at least some records could not be recovered —
    /// nothing at all for legacy files, one or more failed CRC batches for
    /// framed files. The merge proceeds with whatever verified.
    pub corrupt: Vec<String>,
    /// Orphan `<p>.tmp` files adopted because no committed `<p>` exists —
    /// the writer crashed between serialization and its atomic rename.
    /// Each path appears at most once.
    pub recovered: Vec<String>,
    /// Triples recovered from the valid prefix of torn files or from the
    /// verified batches of partially corrupt framed files.
    pub salvaged_triples: usize,
    /// Framed files whose identity could not be verified (damaged header
    /// or footer, broken chain value, or a GUID claiming another store):
    /// renamed to `<file>.quarantine` and never parsed into the merged
    /// graph. A later merge over the same directory ignores them.
    pub quarantined: Vec<String>,
    /// Intact CRC batches salvaged out of partially corrupt framed files.
    pub salvaged_batches: u64,
    /// Discontinuities in the per-store frame chains: a substituted file
    /// (GUID mismatch), a missing or duplicated ordinal, or a `prev` value
    /// that does not match the predecessor's chain — each evidence that
    /// committed history was lost, reordered, or replaced.
    pub chain_breaks: u64,
    /// Triples recovered from write-ahead journals: records journaled by a
    /// store but never covered by a committed snapshot or delta segment
    /// (the writer crashed or its flushes were dropped), replayed into the
    /// merged graph. Counted only when the replay actually added a triple,
    /// so re-merging the same directory never double-counts.
    pub replayed_triples: usize,
    /// Journal generation files whose tail was torn or bit-rotted: the
    /// damaged suffix is truncated at the last verified chunk boundary and
    /// never parsed, while the intact prefix still replays.
    pub wal_tails_truncated: u64,
}

impl std::fmt::Display for MergeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "merge: {} files, {} triples, {} salvaged ({} batches), \
             {} replayed from journals, {} files lost, {} recovered, \
             {} quarantined, {} chain breaks, {} journal tails truncated",
            self.files,
            self.triples,
            self.salvaged_triples,
            self.salvaged_batches,
            self.replayed_triples,
            self.corrupt.len(),
            self.recovered.len(),
            self.quarantined.len(),
            self.chain_breaks,
            self.wal_tails_truncated,
        )
    }
}

#[derive(Clone, Copy)]
enum Format {
    NTriples,
    Turtle,
    Unknown,
}

fn format_of(effective_path: &str) -> Format {
    if effective_path.ends_with(".nt") {
        Format::NTriples
    } else if effective_path.ends_with(".ttl") {
        Format::Turtle
    } else {
        Format::Unknown
    }
}

/// Full parse of `text` into a fresh graph, or `None` on any error. The
/// scratch graph keeps a half-parsed file from partially polluting the
/// merged graph.
fn parse_full(format: Format, text: &str) -> Option<Graph> {
    let mut scratch = Graph::new();
    let ok = match format {
        Format::NTriples => ntriples::parse_into(text, &mut scratch).is_ok(),
        Format::Turtle => turtle::parse_into(text, &mut scratch).is_ok(),
        Format::Unknown => {
            turtle::parse_into(text, &mut scratch).is_ok() || {
                scratch = Graph::new();
                ntriples::parse_into(text, &mut scratch).is_ok()
            }
        }
    };
    ok.then_some(scratch)
}

/// Longest valid prefix of a torn Turtle document: cut at statement
/// boundaries (lines ending `.`), longest candidate first.
fn salvage_turtle(text: &str) -> Graph {
    let lines: Vec<&str> = text.lines().collect();
    let cuts: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.trim_end().ends_with('.'))
        .map(|(i, _)| i)
        .collect();
    for &cut in cuts.iter().rev() {
        let prefix = lines[..=cut].join("\n");
        if let Ok((g, _)) = turtle::parse(&prefix) {
            return g;
        }
    }
    Graph::new()
}

/// Salvage whatever prefix of `text` is valid.
fn salvage(format: Format, text: &str) -> Graph {
    match format {
        Format::NTriples => {
            let mut scratch = Graph::new();
            ntriples::parse_lenient_prefix(text, &mut scratch);
            scratch
        }
        Format::Turtle => salvage_turtle(text),
        Format::Unknown => {
            let mut scratch = Graph::new();
            if ntriples::parse_lenient_prefix(text, &mut scratch) > 0 {
                scratch
            } else {
                salvage_turtle(text)
            }
        }
    }
}

/// Frame header/footer facts carried out of a verified framed file, for
/// the post-fold chain check.
#[derive(Debug, Clone, Copy)]
struct FrameMeta {
    kind: FrameKind,
    guid: u64,
    ordinal: u64,
    prev: u32,
    chain: u32,
    batches_total: usize,
    batches_corrupt: usize,
}

/// What one sub-graph file contributed, computed independently per file so
/// the read/parse/salvage work parallelizes.
enum Outcome {
    /// Shadowed tmp or unreadable path — contributes nothing, not an error.
    Skipped,
    /// Nothing recoverable at all.
    Corrupt,
    /// Fully parsed scratch graph.
    Parsed { sub: Graph, adopted_tmp: bool },
    /// Valid-prefix salvage of a torn file.
    Salvaged { sub: Graph, adopted_tmp: bool },
    /// A checksummed file whose identity verified; `sub` holds the triples
    /// of its CRC-intact batches (all of them, when `batches_corrupt` is 0).
    Framed {
        sub: Graph,
        adopted_tmp: bool,
        meta: FrameMeta,
    },
    /// A checksummed file whose identity could NOT be verified: quarantine
    /// it, never parse it. `substituted` marks a GUID claiming a different
    /// store (counted as a chain break on top of the quarantine).
    Quarantine { substituted: bool },
    /// A write-ahead journal generation file: the verified records of its
    /// intact prefix, to be replayed above the store's committed watermark
    /// once every committed file has folded.
    Wal {
        records: Vec<(u64, String)>,
        truncated: bool,
    },
}

/// Read and parse (or salvage) one file into a scratch graph. Pure function
/// of the file: no shared mutable state, so files process in parallel.
fn process_file(fs: &Arc<FileSystem>, path: &str, committed: &HashSet<&str>) -> Outcome {
    #[cfg(test)]
    {
        // Clone out of the guard: panicking while holding a std Mutex
        // would poison it for every other merge test in the process.
        let marker = PANIC_ON.lock().unwrap().clone();
        if marker.is_some_and(|m| path.contains(&m)) {
            panic!("injected parse panic on {path}");
        }
    }
    // Quarantined files were condemned by an earlier merge: never re-read,
    // never re-renamed.
    if path.ends_with(".quarantine") {
        return Outcome::Skipped;
    }
    // Trust-layer artifacts (the signed run manifest and the campaign
    // ledger) are not sub-graph files: `verify` owns them, the merge never
    // parses them — and never adopts a manifest tmp as an orphan store.
    if crate::verify::is_trust_artifact(path) {
        return Outcome::Skipped;
    }
    // Parity files are redundancy, not sub-graph data: the scrub pass
    // (`crate::scrub`) owns them, the merge never parses one — their
    // frames sit outside the commit chain (prev is always CHAIN_START),
    // so folding them in would only manufacture chain breaks. The suffix
    // check sees through `.tmp` and `.quarantine`, so an interrupted
    // parity seal is never adopted as an orphan store either.
    if frame::is_parity_path(path) {
        return Outcome::Skipped;
    }
    let is_wal = frame::is_wal_path(path);
    if is_wal && path.ends_with(".tmp") {
        // A journal generation tmp left by an interrupted create: it was
        // never promoted to a named generation, so it holds no records.
        return Outcome::Skipped;
    }
    let adopted_tmp = match path.strip_suffix(".tmp") {
        Some(base) if committed.contains(base) => return Outcome::Skipped, // commit wins
        Some(_) => true,
        None => false,
    };
    let Ok(ino) = fs.lookup(path) else {
        return Outcome::Skipped;
    };
    let Ok(md) = fs.stat(path) else {
        return Outcome::Skipped;
    };
    let Ok(bytes) = fs.read_at(ino, 0, md.size) else {
        return Outcome::Skipped;
    };
    let Ok(text) = String::from_utf8(bytes.to_vec()) else {
        if is_wal {
            // Rot severe enough to break UTF-8: the whole journal tail is
            // condemned, nothing is ever parsed out of it.
            return Outcome::Wal {
                records: Vec::new(),
                truncated: true,
            };
        }
        if adopted_tmp {
            return Outcome::Skipped; // crash debris, see below
        }
        return Outcome::Corrupt;
    };
    if is_wal {
        let wal = frame::decode_wal(&text, frame::store_guid(path));
        return Outcome::Wal {
            records: wal.records,
            truncated: wal.truncated,
        };
    }
    let format = format_of(path.strip_suffix(".tmp").unwrap_or(path));
    match frame::decode(&text) {
        Ok(framed) => {
            if framed.guid != frame::store_guid(path) {
                if adopted_tmp {
                    return Outcome::Skipped; // crash debris, see below
                }
                // The file's own checksums verify, but it belongs to a
                // different store: substituted or misplaced.
                return Outcome::Quarantine { substituted: true };
            }
            let meta = FrameMeta {
                kind: framed.kind,
                guid: framed.guid,
                ordinal: framed.ordinal,
                prev: framed.prev,
                chain: framed.chain,
                batches_total: framed.batches_total,
                batches_corrupt: framed.batches_corrupt,
            };
            // The payload is CRC-verified, so parsing it can only fail at
            // format level; salvage of verified bytes never forges triples.
            let sub = parse_full(format, &framed.payload)
                .unwrap_or_else(|| salvage(format, &framed.payload));
            return Outcome::Framed {
                sub,
                adopted_tmp,
                meta,
            };
        }
        Err(frame::FrameError::Quarantine(_)) => {
            if adopted_tmp {
                // An orphan tmp that fails identity is crash debris, not
                // tamper evidence: the rename that would have committed it
                // never ran, so it was never acknowledged and the frames it
                // tore are still covered by the journal. Quarantining it
                // would brand a pure crash as corruption — and mutate the
                // directory, breaking recovery idempotence (found by
                // crashcheck, tests/crashcheck.rs). Leave it in place,
                // unparsed; every later merge skips it the same way.
                return Outcome::Skipped;
            }
            return Outcome::Quarantine { substituted: false };
        }
        Err(frame::FrameError::NotFramed) => {} // legacy file: fall through
    }
    if let Some(sub) = parse_full(format, &text) {
        return Outcome::Parsed { sub, adopted_tmp };
    }
    let sub = salvage(format, &text);
    if sub.is_empty() {
        if adopted_tmp {
            return Outcome::Skipped; // crash debris, see above
        }
        return Outcome::Corrupt;
    }
    Outcome::Salvaged { sub, adopted_tmp }
}

/// The store a file belongs to, for journal-replay bookkeeping: the base
/// store path with any tmp, segment, or journal-generation suffix removed.
fn base_of(path: &str) -> &str {
    frame::base_store_path(path.strip_suffix(".tmp").unwrap_or(path))
}

/// What one committed file contributed to its store: the frame facts
/// (kind, ordinal) when framed, and the triple count it parsed to.
type CommittedEntry = (Option<(FrameKind, u64)>, usize);

/// Committed watermark of one store: how many records its committed files
/// cover, so journal records below that count are already durable and must
/// not replay. With framed files the newest snapshot plus the segments
/// above it are counted (stale pre-snapshot segments overlap the snapshot
/// and would inflate the watermark); legacy files simply sum.
fn committed_watermark(entries: &[CommittedEntry]) -> u64 {
    let snap = entries
        .iter()
        .filter_map(|(m, n)| match m {
            Some((FrameKind::Snapshot, ordinal)) => Some((*ordinal, *n)),
            _ => None,
        })
        .max_by_key(|(ordinal, _)| *ordinal);
    match snap {
        Some((snap_ordinal, snap_count)) => {
            snap_count as u64
                + entries
                    .iter()
                    .filter_map(|(m, n)| match m {
                        Some((kind, ordinal))
                            if *kind != FrameKind::Snapshot && *ordinal > snap_ordinal =>
                        {
                            Some(*n as u64)
                        }
                        _ => None,
                    })
                    .sum::<u64>()
        }
        None => entries.iter().map(|(_, n)| *n as u64).sum(),
    }
}

/// Count chain discontinuities among the verified framed files of one
/// store, ordered by ordinal. Continuity is checked from the newest
/// snapshot onward — files before it are stale leftovers that compaction
/// failed to unlink, harmless and expected to have gaps. A store with no
/// snapshot must start its chain at ordinal 0.
fn chain_breaks_in(metas: &mut [(u64, FrameMeta)]) -> u64 {
    metas.sort_by_key(|(ordinal, _)| *ordinal);
    let mut breaks = 0u64;
    // Duplicate ordinals: two files claiming the same slot in the commit
    // sequence can't both be canonical history.
    for pair in metas.windows(2) {
        if pair[0].0 == pair[1].0 {
            breaks += 1;
        }
    }
    let start = metas
        .iter()
        .rposition(|(_, m)| m.kind == FrameKind::Snapshot)
        .unwrap_or(0);
    if metas[start].1.kind != FrameKind::Snapshot
        && (metas[start].1.ordinal != 0 || metas[start].1.prev != frame::CHAIN_START)
    {
        // No snapshot survived and the earliest segment is not the chain's
        // origin: whatever preceded it is gone.
        breaks += 1;
    }
    for pair in metas[start..].windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.0 == b.0 {
            continue; // already counted as a duplicate
        }
        if b.1.ordinal != a.1.ordinal + 1 || b.1.prev != a.1.chain {
            breaks += 1;
        }
    }
    breaks
}

/// Parse and merge every sub-graph file under `dir` (recursively) into one
/// graph. `.ttl` files parse as Turtle, `.nt` as N-Triples (this includes
/// the store's `.dNNNNNN.nt` delta segments — a snapshot plus its segments
/// merges back into the full sub-graph, duplicates collapsing); unknown
/// extensions try both.
///
/// Files parse into scratch graphs on worker threads (I/O and parsing
/// dominate merge time at rank scale), then fold into the final graph
/// sequentially in directory order via the interner's bulk id-mapped merge
/// — output is identical to [`merge_directory_sequential`].
///
/// Crash recovery: a `<p>.tmp` left by the store's atomic-rename protocol
/// is skipped when the committed `<p>` exists (it is a stale or torn
/// in-progress flush — the committed file wins), and adopted when it does
/// not (the writer crashed after serializing but before renaming). Files
/// that fail a full parse get their valid prefix salvaged line-by-line
/// (N-Triples) or at statement boundaries (Turtle); only files yielding
/// nothing at all are reported corrupt.
///
/// Integrity: files written with the store's checksummed framing
/// ([`crate::frame`]) are CRC-verified batch by batch — corrupt batches are
/// dropped (and counted) while intact siblings still merge, files whose
/// header, footer, or GUID cannot be verified are renamed to
/// `<file>.quarantine` and never parsed (a later merge over the same
/// directory leaves them untouched), and each store's header/footer hash
/// chain is checked for missing, duplicated, or substituted commits
/// ([`MergeReport::chain_breaks`]).
pub fn merge_directory(fs: &Arc<FileSystem>, dir: &str) -> (Graph, MergeReport) {
    merge_directory_impl(fs, dir, true)
}

/// Single-threaded reference implementation of [`merge_directory`], for
/// ablation benchmarks and output-equivalence tests.
pub fn merge_directory_sequential(fs: &Arc<FileSystem>, dir: &str) -> (Graph, MergeReport) {
    merge_directory_impl(fs, dir, false)
}

/// [`merge_directory`] with an explicit worker-pool size (the
/// `merge_threads` config knob). `threads = 0` keeps the automatic sizing
/// from `available_parallelism` — which on hosts that report a single
/// core silently degenerates the parallel path to a sequential loop, even
/// though the per-file work is I/O-and-parse bound and still overlaps.
/// Callers that know their target can force a real pool; the override is
/// cleared before returning. Output is identical at any pool size.
pub fn merge_directory_with_threads(
    fs: &Arc<FileSystem>,
    dir: &str,
    threads: u32,
) -> (Graph, MergeReport) {
    rayon::set_thread_count(threads as usize);
    let out = merge_directory_impl(fs, dir, true);
    rayon::set_thread_count(0);
    out
}

fn merge_directory_impl(
    fs: &Arc<FileSystem>,
    dir: &str,
    parallel: bool,
) -> (Graph, MergeReport) {
    let mut graph = Graph::new();
    let mut report = MergeReport {
        files: 0,
        triples: 0,
        corrupt: Vec::new(),
        recovered: Vec::new(),
        salvaged_triples: 0,
        quarantined: Vec::new(),
        salvaged_batches: 0,
        chain_breaks: 0,
        replayed_triples: 0,
        wal_tails_truncated: 0,
    };
    let files = match fs.walk_files(dir) {
        Ok(f) => f,
        Err(_) => return (graph, report),
    };
    let committed: HashSet<&str> = files.iter().map(String::as_str).collect();
    // A panic while parsing one file (a parser bug on hostile input) is
    // contained to that file and reported like any other unreadable input —
    // uncaught, a single panicking rayon task would abort the whole merge.
    let guarded = |path: &String| {
        catch_quiet(|| process_file(fs, path, &committed)).unwrap_or(Outcome::Corrupt)
    };
    let outcomes: Vec<Outcome> = if parallel {
        files.par_iter().map(guarded).collect()
    } else {
        files.iter().map(guarded).collect()
    };
    // Deterministic sequential fold in directory order; the merge itself is
    // the bulk id-mapped path (one intern per distinct term per file).
    let mut recovered_seen: HashSet<&str> = HashSet::new();
    let mut chains: HashMap<u64, Vec<(u64, FrameMeta)>> = HashMap::new();
    // Per-store bookkeeping for journal replay: what each committed file
    // contributed (with its frame facts, when framed) and the journal
    // records awaiting the post-fold watermark check. Keyed by the base
    // store path so segments, tmps, and journal generations all land on
    // the same store.
    let mut committed_counts: HashMap<&str, Vec<CommittedEntry>> = HashMap::new();
    let mut wal_records: HashMap<&str, Vec<(u64, String)>> = HashMap::new();
    for (path, outcome) in files.iter().zip(outcomes) {
        let mut recover = |report: &mut MergeReport| {
            if recovered_seen.insert(path.as_str()) {
                report.recovered.push(path.clone());
            }
        };
        match outcome {
            Outcome::Skipped => {}
            Outcome::Corrupt => report.corrupt.push(path.clone()),
            Outcome::Parsed { sub, adopted_tmp } => {
                committed_counts.entry(base_of(path)).or_default().push((None, sub.len()));
                graph.merge(&sub);
                report.files += 1;
                if adopted_tmp {
                    recover(&mut report);
                }
            }
            Outcome::Salvaged { sub, adopted_tmp } => {
                committed_counts.entry(base_of(path)).or_default().push((None, sub.len()));
                report.salvaged_triples += sub.len();
                graph.merge(&sub);
                report.files += 1;
                if adopted_tmp {
                    recover(&mut report);
                }
            }
            Outcome::Framed {
                sub,
                adopted_tmp,
                meta,
            } => {
                if meta.batches_corrupt > 0 {
                    // Partial recovery: the dropped batches are corruption,
                    // the surviving ones are salvage.
                    report.corrupt.push(path.clone());
                    report.salvaged_batches +=
                        (meta.batches_total - meta.batches_corrupt) as u64;
                    report.salvaged_triples += sub.len();
                }
                committed_counts
                    .entry(base_of(path))
                    .or_default()
                    .push((Some((meta.kind, meta.ordinal)), sub.len()));
                graph.merge(&sub);
                report.files += 1;
                if adopted_tmp {
                    recover(&mut report);
                }
                chains.entry(meta.guid).or_default().push((meta.ordinal, meta));
            }
            Outcome::Wal { records, truncated } => {
                if truncated {
                    report.wal_tails_truncated += 1;
                }
                wal_records.entry(base_of(path)).or_default().extend(records);
            }
            Outcome::Quarantine { substituted } => {
                // Condemn the file on disk so later merges skip it without
                // re-parsing; the rename is best-effort (a read-only or
                // failing filesystem still gets the in-report verdict).
                let _ = fs.rename(path, &format!("{path}.quarantine"), SimTime::ZERO);
                report.quarantined.push(path.clone());
                if substituted {
                    // A verified file claiming another store's GUID means
                    // this store's real history was displaced.
                    report.chain_breaks += 1;
                }
            }
        }
    }
    for metas in chains.values_mut() {
        report.chain_breaks += chain_breaks_in(metas);
    }
    // Journal replay, after every committed file has folded: records a
    // store journaled but never committed — those at or above its committed
    // watermark — parse back into the merged graph. Records *below* the
    // watermark are already in a snapshot or segment (a crash between
    // segment commit and journal recycle leaves a stale generation behind),
    // so the ordinal filter makes double-counting impossible and re-merges
    // over the same directory idempotent.
    let mut stores: Vec<&str> = wal_records.keys().copied().collect();
    stores.sort_unstable();
    for base in stores {
        let mut records = wal_records.remove(base).unwrap_or_default();
        let watermark = committed_counts
            .get(base)
            .map(|entries| committed_watermark(entries))
            .unwrap_or(0);
        // Stale and current generations never overlap in ordinal space, but
        // sorting and deduplicating costs little and holds even if a crashed
        // recycle left both behind.
        records.sort_unstable_by_key(|r| r.0);
        records.dedup_by_key(|(ordinal, _)| *ordinal);
        let pending: String = records
            .iter()
            .filter(|(ordinal, _)| *ordinal >= watermark)
            .map(|(_, line)| format!("{line}\n"))
            .collect();
        if pending.is_empty() {
            continue;
        }
        // Journal payloads are CRC-verified, so a full parse succeeds on
        // anything the store actually wrote; salvage is belt and braces.
        let sub = parse_full(Format::NTriples, &pending)
            .unwrap_or_else(|| salvage(Format::NTriples, &pending));
        let before = graph.len();
        graph.merge(&sub);
        report.replayed_triples += graph.len() - before;
    }
    report.triples = graph.len();
    (graph, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProvIoConfig, RdfFormat};
    use crate::tracker::{IoEvent, ObjectDesc, ProvTracker};
    use provio_hpcfs::LustreConfig;
    use provio_model::ontology::nodes_of_class;
    use provio_model::{ActivityClass, EntityClass};
    use provio_simrt::{SimTime, VirtualClock};

    fn event(path: &str) -> IoEvent {
        IoEvent {
            activity: ActivityClass::Write,
            api_name: "H5Dwrite".into(),
            object: Some(ObjectDesc::hdf5(EntityClass::Dataset, "/shared.h5", path)),
            bytes: 1,
            duration_ns: 1,
            timestamp_ns: 1,
            ok: true,
        }
    }

    #[test]
    fn merge_dedups_shared_guids() {
        let fs = FileSystem::new(LustreConfig::default());
        // Three processes all touch the same dataset: the merged graph must
        // contain ONE dataset node but three Write activities.
        for pid in 0..3 {
            let t = ProvTracker::new(
                ProvIoConfig::default().shared(),
                Arc::clone(&fs),
                pid,
                "Bob",
                "vpicio",
                VirtualClock::new(),
            );
            t.track_io(&event("/Timestep_0/x"));
            t.finish();
        }
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 3);
        assert!(report.corrupt.is_empty());
        assert_eq!(nodes_of_class(&g, EntityClass::Dataset.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, ActivityClass::Write.into()).len(), 3);
        // Shared agents dedup too (same program name across ranks).
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::Program.into()).len(),
            1
        );
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::User.into()).len(),
            1
        );
        // But each rank is its own Thread agent.
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::Thread.into()).len(),
            3
        );
    }

    #[test]
    fn corrupt_files_skipped_not_fatal() {
        let fs = FileSystem::new(LustreConfig::default());
        let t = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            0,
            "B",
            "p",
            VirtualClock::new(),
        );
        t.track_io(&event("/d"));
        t.finish();
        // A truncated/corrupt sub-graph from a crashed process.
        let ino = fs
            .create_file("/provio/prov_p99.ttl", false, "provio", SimTime::ZERO)
            .unwrap();
        fs.write_at(ino, 0, b"@prefix broken <oops", SimTime::ZERO).unwrap();
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(report.corrupt, vec!["/provio/prov_p99.ttl"]);
        assert!(g.len() > 0);
    }

    fn write_file(fs: &Arc<FileSystem>, path: &str, body: &[u8]) {
        if let Some((dir, _)) = path.rsplit_once('/') {
            fs.mkdir_all(dir, "provio", SimTime::ZERO).unwrap();
        }
        let ino = fs.create_file(path, false, "provio", SimTime::ZERO).unwrap();
        fs.write_at(ino, 0, body, SimTime::ZERO).unwrap();
    }

    #[test]
    fn stale_tmp_is_shadowed_by_committed_file() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(&fs, "/provio/prov_p0.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        // A torn in-progress flush next to a good committed file: ignored.
        write_file(&fs, "/provio/prov_p0.nt.tmp", b"<urn:a> <urn:p> \"tor");
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(g.len(), 1);
        assert!(report.corrupt.is_empty());
        assert!(report.recovered.is_empty());
        assert_eq!(report.salvaged_triples, 0);
    }

    #[test]
    fn parity_files_are_skipped_not_merged() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(&fs, "/provio/prov_p0.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        // A sealed parity file, an interrupted parity tmp, and a condemned
        // copy: redundancy, not data — none may fold, quarantine, count as
        // corrupt, or adopt as an orphan, and none may break the chain.
        let guid = frame::store_guid("/provio/prov_p0.nt");
        let mut enc = frame::Encoder::new(FrameKind::Parity, guid, 0, frame::CHAIN_START);
        enc.batch(&["member crc=00000000 offset=0 len=0 ord=- path=/provio/prov_p0.nt"]);
        enc.batch(&["data len=0 b64="]);
        let (par, _chain, _root) = enc.finish_with_root();
        write_file(&fs, "/provio/prov_p0.nt.p000000.par", &par);
        write_file(&fs, "/provio/prov_p0.nt.p000001.par.tmp", &par);
        write_file(&fs, "/provio/prov_p0.nt.p000002.par.quarantine", &par);
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(g.len(), 1);
        assert!(report.corrupt.is_empty());
        assert!(report.quarantined.is_empty());
        assert!(report.recovered.is_empty());
        assert_eq!(report.chain_breaks, 0);
    }

    #[test]
    fn forced_thread_pool_matches_sequential_output() {
        let fs = FileSystem::new(LustreConfig::default());
        for pid in 0..6 {
            write_file(
                &fs,
                &format!("/provio/prov_p{pid}.nt"),
                format!("<urn:s{pid}> <urn:p> <urn:o{pid}> .\n<urn:shared> <urn:p> <urn:o> .\n")
                    .as_bytes(),
            );
        }
        let (seq_g, seq_r) = merge_directory_sequential(&fs, "/provio");
        let (par_g, par_r) = merge_directory_with_threads(&fs, "/provio", 4);
        assert_eq!(par_r.files, seq_r.files);
        assert_eq!(par_r.triples, seq_r.triples);
        assert_eq!(
            ntriples::serialize(&par_g),
            ntriples::serialize(&seq_g),
            "pool size must never change merge output"
        );
    }

    #[test]
    fn orphan_tmp_is_adopted() {
        let fs = FileSystem::new(LustreConfig::default());
        // Writer crashed after serializing, before the rename: no committed
        // file, a complete tmp. The merge adopts it.
        write_file(
            &fs,
            "/provio/prov_p1.nt.tmp",
            b"<urn:a> <urn:p> <urn:b> .\n<urn:c> <urn:p> <urn:d> .\n",
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(g.len(), 2);
        assert_eq!(report.recovered, vec!["/provio/prov_p1.nt.tmp"]);
    }

    #[test]
    fn torn_ntriples_prefix_is_salvaged() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(
            &fs,
            "/provio/prov_p2.nt",
            b"<urn:a> <urn:p> <urn:b> .\n<urn:c> <urn:p> <urn:d> .\n<urn:e> <urn:p> \"to",
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert!(report.corrupt.is_empty());
        assert_eq!(report.salvaged_triples, 2);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn failed_full_parse_does_not_pollute_merged_graph() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(&fs, "/provio/good.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        // Unknown extension, first line valid Turtle-and-NT, second line
        // garbage: the old code parsed line 1 straight into the merged
        // graph before failing. Now nothing of a failed full parse leaks
        // unless the salvage pass owns it (and then it is *reported*).
        write_file(
            &fs,
            "/provio/mystery.dat",
            b"<urn:x> <urn:p> <urn:y> .\n%%%not rdf%%%\n",
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 2);
        assert_eq!(report.salvaged_triples, 1, "prefix salvage is accounted");
        assert_eq!(g.len(), 2);
        assert!(report.corrupt.is_empty());
    }

    #[test]
    fn panicking_parse_task_is_contained_per_file() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(&fs, "/provio/prov_p0.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        write_file(&fs, "/provio/prov_p1.nt", b"<urn:c> <urn:p> <urn:d> .\n");
        // Perfectly valid content — the panic models a parser bug, not bad
        // data, so only the injected hook distinguishes this file.
        write_file(&fs, "/provio/prov_panicme.nt", b"<urn:e> <urn:p> <urn:f> .\n");
        *PANIC_ON.lock().unwrap() = Some("panicme".into());
        let (gp, rp) = merge_directory(&fs, "/provio");
        let (gs, rs) = merge_directory_sequential(&fs, "/provio");
        *PANIC_ON.lock().unwrap() = None;
        for (g, r) in [(&gp, &rp), (&gs, &rs)] {
            assert_eq!(
                r.corrupt,
                vec!["/provio/prov_panicme.nt".to_string()],
                "the panicking file is reported like unreadable input"
            );
            assert_eq!(r.files, 2, "the other files still contribute");
            assert_eq!(g.len(), 2);
        }
        // With the hook cleared, the same directory merges fully.
        let (g, r) = merge_directory(&fs, "/provio");
        assert!(r.corrupt.is_empty());
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn missing_dir_is_empty_merge() {
        let fs = FileSystem::new(LustreConfig::default());
        let (g, report) = merge_directory(&fs, "/nowhere");
        assert!(g.is_empty());
        assert_eq!(report.files, 0);
    }

    #[test]
    fn parallel_and_sequential_merges_are_identical() {
        let fs = FileSystem::new(LustreConfig::default());
        // A messy directory: committed files, a shadowed tmp, an orphan
        // tmp, a torn file, and a corrupt file.
        for i in 0..20 {
            write_file(
                &fs,
                &format!("/provio/prov_p{i}.nt"),
                format!("<urn:s{i}> <urn:p> <urn:o{i}> .\n<urn:shared> <urn:p> <urn:o> .\n")
                    .as_bytes(),
            );
        }
        write_file(&fs, "/provio/prov_p0.nt.tmp", b"<urn:x> <urn:p> \"tor");
        write_file(&fs, "/provio/orphan.nt.tmp", b"<urn:orphan> <urn:p> <urn:o> .\n");
        write_file(&fs, "/provio/torn.nt", b"<urn:t> <urn:p> <urn:o> .\n<urn:u> <urn:p> \"x");
        write_file(&fs, "/provio/bad.nt", b"%%% nothing valid %%%\n");
        // Framed files too: one clean, one with a rotten batch (batch
        // corruption is reported in place, not renamed, so the directory is
        // byte-identical for the second merge).
        write_framed(
            &fs,
            "/provio/framed.nt",
            FrameKind::Snapshot,
            0,
            frame::CHAIN_START,
            "<urn:f> <urn:p> <urn:o> .\n",
            64,
        );
        let (text, _) = frame::encode(
            FrameKind::Snapshot,
            frame::store_guid("/provio/rotten.nt"),
            0,
            frame::CHAIN_START,
            "<urn:r1> <urn:p> <urn:o> .\n<urn:r2> <urn:p> <urn:o> .\n",
            1,
        );
        write_file(
            &fs,
            "/provio/rotten.nt",
            text.replace("<urn:r1>", "<urn:RX>").as_bytes(),
        );
        let (gp, rp) = merge_directory(&fs, "/provio");
        let (gs, rs) = merge_directory_sequential(&fs, "/provio");
        assert_eq!(
            ntriples::serialize(&gp),
            ntriples::serialize(&gs),
            "identical triple set, byte for byte in canonical form"
        );
        assert_eq!(rp.files, rs.files);
        assert_eq!(rp.triples, rs.triples);
        assert_eq!(rp.corrupt, rs.corrupt);
        assert_eq!(rp.recovered, rs.recovered);
        assert_eq!(rp.salvaged_triples, rs.salvaged_triples);
        assert_eq!(rp.quarantined, rs.quarantined);
        assert_eq!(rp.salvaged_batches, rs.salvaged_batches);
        assert_eq!(rp.chain_breaks, rs.chain_breaks);
        assert_eq!(rp.replayed_triples, rs.replayed_triples);
        assert_eq!(rp.wal_tails_truncated, rs.wal_tails_truncated);
        assert_eq!(rp.recovered, vec!["/provio/orphan.nt.tmp".to_string()]);
        assert_eq!(
            rp.corrupt,
            vec!["/provio/bad.nt".to_string(), "/provio/rotten.nt".to_string()]
        );
        assert_eq!(rp.salvaged_batches, 1);
        assert_eq!(rp.chain_breaks, 0);
    }

    #[test]
    fn snapshot_plus_delta_segments_merge_to_full_subgraph() {
        let fs = FileSystem::new(LustreConfig::default());
        // What a periodically-flushing store leaves mid-run: a snapshot
        // plus two uncompacted delta segments (overlap with the snapshot is
        // deliberate — compaction may race a crash, duplicates must
        // collapse).
        write_file(
            &fs,
            "/provio/prov_p0.nt",
            b"<urn:a> <urn:p> <urn:1> .\n<urn:a> <urn:p> <urn:2> .\n",
        );
        write_file(
            &fs,
            "/provio/prov_p0.nt.d000000.nt",
            b"<urn:a> <urn:p> <urn:2> .\n<urn:a> <urn:p> <urn:3> .\n",
        );
        write_file(&fs, "/provio/prov_p0.nt.d000001.nt", b"<urn:a> <urn:p> <urn:4> .\n");
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 3, "snapshot and both segments contribute");
        assert_eq!(g.len(), 4, "duplicate triples collapse");
        assert!(report.corrupt.is_empty());
    }

    /// Encode `payload` in the checksummed framing under `path`'s own store
    /// GUID and write it; returns the chain value for the store's next file.
    fn write_framed(
        fs: &Arc<FileSystem>,
        path: &str,
        kind: FrameKind,
        ordinal: u64,
        prev: u32,
        payload: &str,
        batch_lines: usize,
    ) -> u32 {
        let (text, chain) =
            frame::encode(kind, frame::store_guid(path), ordinal, prev, payload, batch_lines);
        write_file(fs, path, text.as_bytes());
        chain
    }

    #[test]
    fn framed_snapshot_and_segments_merge_with_unbroken_chain() {
        let fs = FileSystem::new(LustreConfig::default());
        let c0 = write_framed(
            &fs,
            "/provio/prov_p9.nt",
            FrameKind::Snapshot,
            0,
            frame::CHAIN_START,
            "<urn:a> <urn:p> <urn:1> .\n",
            64,
        );
        let c1 = write_framed(
            &fs,
            "/provio/prov_p9.nt.d000000.nt",
            FrameKind::Delta,
            1,
            c0,
            "<urn:a> <urn:p> <urn:2> .\n",
            64,
        );
        write_framed(
            &fs,
            "/provio/prov_p9.nt.d000001.nt",
            FrameKind::Delta,
            2,
            c1,
            "<urn:a> <urn:p> <urn:3> .\n",
            64,
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 3);
        assert_eq!(g.len(), 3);
        assert!(report.corrupt.is_empty());
        assert!(report.quarantined.is_empty());
        assert_eq!(report.chain_breaks, 0);
        assert_eq!(report.salvaged_batches, 0);
        assert_eq!(report.salvaged_triples, 0);
    }

    #[test]
    fn corrupt_batch_is_dropped_and_intact_siblings_salvaged() {
        let fs = FileSystem::new(LustreConfig::default());
        let payload =
            "<urn:a> <urn:p> <urn:1> .\n<urn:b> <urn:p> <urn:2> .\n<urn:c> <urn:p> <urn:3> .\n";
        let (text, _) = frame::encode(
            FrameKind::Snapshot,
            frame::store_guid("/provio/prov_p7.nt"),
            0,
            frame::CHAIN_START,
            payload,
            1, // one line per batch: damage stays contained
        );
        // Bit rot lands inside the middle batch's payload.
        let rotten = text.replace("<urn:b>", "<urn:X>");
        write_file(&fs, "/provio/prov_p7.nt", rotten.as_bytes());
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(g.len(), 2, "intact batches still contribute");
        assert_eq!(report.corrupt, vec!["/provio/prov_p7.nt".to_string()]);
        assert_eq!(report.salvaged_batches, 2);
        assert_eq!(report.salvaged_triples, 2);
        assert!(report.quarantined.is_empty());
        assert_eq!(report.chain_breaks, 0, "identity still verifies");
        let merged = ntriples::serialize(&g);
        assert!(!merged.contains("urn:X"), "the forged value must not merge");
        assert!(!merged.contains("urn:2"), "the damaged batch is dropped whole");
    }

    #[test]
    fn unverifiable_header_quarantines_the_file() {
        let fs = FileSystem::new(LustreConfig::default());
        let (text, _) = frame::encode(
            FrameKind::Snapshot,
            frame::store_guid("/provio/prov_p6.nt"),
            3,
            0x1234_5678,
            "<urn:evil> <urn:p> <urn:o> .\n",
            64,
        );
        // Header tampering: the footer's chain value no longer matches.
        let tampered = text.replace("ordinal=3", "ordinal=4");
        write_file(&fs, "/provio/prov_p6.nt", tampered.as_bytes());
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 0);
        assert!(g.is_empty(), "nothing from a quarantined file merges");
        assert_eq!(report.quarantined, vec!["/provio/prov_p6.nt".to_string()]);
        assert!(report.corrupt.is_empty());
        assert!(
            fs.lookup("/provio/prov_p6.nt").is_err(),
            "the original path is gone"
        );
        assert!(
            fs.lookup("/provio/prov_p6.nt.quarantine").is_ok(),
            "condemned under the .quarantine suffix"
        );
    }

    #[test]
    fn quarantine_is_idempotent_across_remerges() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(&fs, "/provio/prov_p0.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        let (text, _) = frame::encode(
            FrameKind::Snapshot,
            frame::store_guid("/provio/prov_p8.nt"),
            0,
            frame::CHAIN_START,
            "<urn:q> <urn:p> <urn:o> .\n",
            64,
        );
        write_file(
            &fs,
            "/provio/prov_p8.nt",
            text.replace("kind=snapshot", "kind=delta").as_bytes(),
        );
        let (g1, r1) = merge_directory(&fs, "/provio");
        assert_eq!(r1.quarantined, vec!["/provio/prov_p8.nt".to_string()]);
        // Second merge over the same directory: the .quarantine file is
        // neither re-parsed nor re-renamed, and the verdict is not
        // re-reported — the damage was already accounted once.
        let (g2, r2) = merge_directory(&fs, "/provio");
        assert!(r2.quarantined.is_empty());
        assert!(r2.corrupt.is_empty());
        assert_eq!(r2.files, r1.files);
        assert_eq!(g2.len(), g1.len());
        assert!(fs.lookup("/provio/prov_p8.nt.quarantine").is_ok());
        assert!(
            fs.lookup("/provio/prov_p8.nt.quarantine.quarantine").is_err(),
            "no double rename"
        );
    }

    #[test]
    fn substituted_guid_is_quarantined_and_breaks_the_chain() {
        let fs = FileSystem::new(LustreConfig::default());
        // A perfectly valid framed file... for a different store. Dropping
        // it over prov_p1's snapshot is substitution: its checksums verify
        // but its identity is wrong.
        let (text, _) = frame::encode(
            FrameKind::Snapshot,
            frame::store_guid("/provio/prov_p2.nt"),
            0,
            frame::CHAIN_START,
            "<urn:forged> <urn:p> <urn:o> .\n",
            64,
        );
        write_file(&fs, "/provio/prov_p1.nt", text.as_bytes());
        let (g, report) = merge_directory(&fs, "/provio");
        assert!(g.is_empty());
        assert_eq!(report.quarantined, vec!["/provio/prov_p1.nt".to_string()]);
        assert_eq!(report.chain_breaks, 1, "displaced history is a chain break");
    }

    #[test]
    fn missing_segment_is_a_chain_break_but_survivors_merge() {
        let fs = FileSystem::new(LustreConfig::default());
        let c0 = write_framed(
            &fs,
            "/provio/prov_p5.nt",
            FrameKind::Snapshot,
            0,
            frame::CHAIN_START,
            "<urn:a> <urn:p> <urn:1> .\n",
            64,
        );
        // Segment ordinal 1 was lost; ordinal 2 carries a prev no survivor
        // can produce.
        let (lost_seg, c1) = frame::encode(
            FrameKind::Delta,
            frame::store_guid("/provio/prov_p5.nt.d000000.nt"),
            1,
            c0,
            "<urn:a> <urn:p> <urn:2> .\n",
            64,
        );
        let _ = lost_seg; // never written: this is the hole in history
        write_framed(
            &fs,
            "/provio/prov_p5.nt.d000001.nt",
            FrameKind::Delta,
            2,
            c1,
            "<urn:a> <urn:p> <urn:3> .\n",
            64,
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 2, "both surviving files merge");
        assert_eq!(g.len(), 2);
        assert_eq!(report.chain_breaks, 1, "the gap is evidence of loss");
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn stale_pre_snapshot_segments_are_not_chain_breaks() {
        let fs = FileSystem::new(LustreConfig::default());
        // Compaction wrote a fresh snapshot at ordinal 2 but crashed before
        // unlinking the segments it folded in. The gap *below* the newest
        // snapshot is normal operation, not damage.
        let c0 = write_framed(
            &fs,
            "/provio/prov_p4.nt.d000000.nt",
            FrameKind::Delta,
            0,
            frame::CHAIN_START,
            "<urn:a> <urn:p> <urn:1> .\n",
            64,
        );
        let _c1 = write_framed(
            &fs,
            "/provio/prov_p4.nt.d000001.nt",
            FrameKind::Delta,
            1,
            c0,
            "<urn:a> <urn:p> <urn:2> .\n",
            64,
        );
        let c2 = write_framed(
            &fs,
            "/provio/prov_p4.nt",
            FrameKind::Snapshot,
            2,
            0xDEAD_BEEF, // prev of a snapshot is unchecked history
            "<urn:a> <urn:p> <urn:1> .\n<urn:a> <urn:p> <urn:2> .\n",
            64,
        );
        write_framed(
            &fs,
            "/provio/prov_p4.nt.d000002.nt",
            FrameKind::Delta,
            3,
            c2,
            "<urn:a> <urn:p> <urn:3> .\n",
            64,
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 4);
        assert_eq!(g.len(), 3, "duplicates collapse");
        assert_eq!(report.chain_breaks, 0);
    }

    #[test]
    fn torn_orphan_tmp_is_recovered_exactly_once() {
        let fs = FileSystem::new(LustreConfig::default());
        // One file that is BOTH an orphan tmp (no committed base) and torn
        // (salvage path): it must appear in `recovered` exactly once, not
        // once per condition.
        write_file(
            &fs,
            "/provio/prov_p3.nt.tmp",
            b"<urn:a> <urn:p> <urn:b> .\n<urn:c> <urn:p> \"to",
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.recovered, vec!["/provio/prov_p3.nt.tmp".to_string()]);
        assert_eq!(report.salvaged_triples, 1);
        assert_eq!(report.files, 1);
        assert_eq!(g.len(), 1);
    }

    /// Append journal chunks under `path`'s store GUID: each group is
    /// `(first record ordinal, lines)`, chained like the store's own
    /// group commits. Returns the file body for further tampering.
    fn write_wal(fs: &Arc<FileSystem>, path: &str, groups: &[(u64, &[&str])]) -> Vec<u8> {
        let guid = frame::store_guid(path);
        let mut chain = frame::CHAIN_START;
        let mut bytes = Vec::new();
        for (ordinal, lines) in groups {
            let mut enc = frame::Encoder::new(FrameKind::Wal, guid, *ordinal, chain);
            enc.batch(lines);
            let (chunk, c) = enc.finish();
            bytes.extend_from_slice(&chunk);
            chain = c;
        }
        write_file(fs, path, &bytes);
        bytes
    }

    #[test]
    fn wal_replays_only_records_above_the_committed_watermark() {
        let fs = FileSystem::new(LustreConfig::default());
        // Committed history covers records 0 and 1...
        write_framed(
            &fs,
            "/provio/prov_p0.nt",
            FrameKind::Snapshot,
            0,
            frame::CHAIN_START,
            "<urn:s0> <urn:p> <urn:o> .\n<urn:s1> <urn:p> <urn:o> .\n",
            64,
        );
        // ...but the store crashed between the snapshot commit and the
        // journal recycle: the stale generation still holds records 0..4.
        write_wal(
            &fs,
            "/provio/prov_p0.nt.w000000.nt",
            &[
                (0, &["<urn:s0> <urn:p> <urn:o> .", "<urn:s1> <urn:p> <urn:o> ."][..]),
                (2, &["<urn:s2> <urn:p> <urn:o> .", "<urn:s3> <urn:p> <urn:o> ."][..]),
            ],
        );
        let (g, r) = merge_directory(&fs, "/provio");
        assert_eq!(g.len(), 4, "nothing lost, nothing double-counted");
        assert_eq!(r.replayed_triples, 2, "only the uncommitted records replay");
        assert_eq!(r.wal_tails_truncated, 0);
        assert_eq!(r.files, 1, "the journal is not a sub-graph file");
        assert_eq!(r.chain_breaks, 0);
        assert!(r.corrupt.is_empty());
        // Re-merging the same directory is idempotent: the journal is
        // re-read, the same records filtered, the same counts reported.
        let (g2, r2) = merge_directory(&fs, "/provio");
        assert_eq!(g2.len(), g.len());
        assert_eq!(r2.replayed_triples, r.replayed_triples);
    }

    #[test]
    fn journal_alone_recovers_a_rank_that_never_flushed() {
        let fs = FileSystem::new(LustreConfig::default());
        // The rank crashed before its first flush: no snapshot, no
        // segments — only the journal survives.
        write_wal(
            &fs,
            "/provio/prov_p3.nt.w000000.nt",
            &[
                (0, &["<urn:a> <urn:p> <urn:1> ."][..]),
                (1, &["<urn:a> <urn:p> <urn:2> ."][..]),
            ],
        );
        let (g, r) = merge_directory(&fs, "/provio");
        assert_eq!(g.len(), 2);
        assert_eq!(r.replayed_triples, 2);
        assert_eq!(r.files, 0);
        assert!(r.corrupt.is_empty());
    }

    #[test]
    fn rotted_journal_tail_is_truncated_and_counted_never_parsed() {
        let fs = FileSystem::new(LustreConfig::default());
        let path = "/provio/prov_p4.nt.w000000.nt";
        let guid = frame::store_guid(path);
        let mut enc = frame::Encoder::new(FrameKind::Wal, guid, 0, frame::CHAIN_START);
        enc.batch(&["<urn:kept> <urn:p> <urn:o> ."]);
        let (mut bytes, chain) = enc.finish();
        let mut enc = frame::Encoder::new(FrameKind::Wal, guid, 1, chain);
        enc.batch(&["<urn:dropped> <urn:p> <urn:o> ."]);
        let (tail, _) = enc.finish();
        bytes.extend_from_slice(&tail);
        // Rot lands in the second chunk's payload: its CRC no longer
        // verifies, so the chunk and everything after it are cut off.
        let rotted = String::from_utf8(bytes)
            .unwrap()
            .replace("urn:dropped", "urn:forged!");
        write_file(&fs, path, rotted.as_bytes());
        let (g, r) = merge_directory(&fs, "/provio");
        assert_eq!(r.wal_tails_truncated, 1);
        assert_eq!(r.replayed_triples, 1, "the verified prefix still replays");
        let merged = ntriples::serialize(&g);
        assert!(merged.contains("urn:kept"));
        assert!(!merged.contains("forged"), "rotted records never parse");
        assert!(r.quarantined.is_empty(), "journals are truncated, not quarantined");
    }

    #[test]
    fn journal_generation_tmp_is_never_adopted() {
        let fs = FileSystem::new(LustreConfig::default());
        // A crash inside journal-generation creation leaves `<gen>.tmp`
        // behind; unlike a store tmp it must not be adopted as a sub-graph.
        write_file(
            &fs,
            "/provio/prov_p5.nt.w000002.nt.tmp",
            b"<urn:x> <urn:p> <urn:o> .\n",
        );
        let (g, r) = merge_directory(&fs, "/provio");
        assert!(g.is_empty());
        assert_eq!(r.files, 0);
        assert_eq!(r.replayed_triples, 0);
        assert!(r.recovered.is_empty());
        assert!(r.corrupt.is_empty());
    }

    #[test]
    fn display_carries_every_counter() {
        let report = MergeReport {
            files: 5,
            triples: 420,
            corrupt: vec!["/provio/a.nt".into()],
            recovered: vec!["/provio/b.nt.tmp".into()],
            salvaged_triples: 7,
            quarantined: vec!["/provio/c.nt".into()],
            salvaged_batches: 3,
            chain_breaks: 2,
            replayed_triples: 9,
            wal_tails_truncated: 1,
        };
        let line = report.to_string();
        for needle in [
            "5 files",
            "420 triples",
            "7 salvaged (3 batches)",
            "9 replayed",
            "1 files lost",
            "1 recovered",
            "1 quarantined",
            "2 chain breaks",
            "1 journal tails truncated",
        ] {
            assert!(line.contains(needle), "missing {needle:?} in {line}");
        }
    }

    #[test]
    fn trust_artifacts_are_never_merged_or_adopted() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(&fs, "/provio/prov_p0.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        // Neither the manifest, the ledger, nor a torn manifest tmp is a
        // sub-graph: none may merge, none may be reported corrupt, and the
        // orphan-tmp adoption path must not claim the tmp.
        write_file(&fs, "/provio/MANIFEST.provio", b"# PROVIO-MANIFEST1 not rdf\n");
        write_file(&fs, "/provio/MANIFEST.provio.tmp", b"# torn manife");
        write_file(&fs, "/provio/CAMPAIGN.provio", b"# PROVIO1 kind=wal ledger\n");
        let (g, r) = merge_directory(&fs, "/provio");
        assert_eq!(r.files, 1);
        assert_eq!(g.len(), 1);
        assert!(r.corrupt.is_empty(), "corrupt: {:?}", r.corrupt);
        assert!(r.recovered.is_empty(), "recovered: {:?}", r.recovered);
        assert!(r.quarantined.is_empty());
    }

    #[test]
    fn mixed_formats_merge() {
        let fs = FileSystem::new(LustreConfig::default());
        for (pid, fmt) in [(0u32, RdfFormat::Turtle), (1, RdfFormat::NTriples)] {
            let cfg = ProvIoConfig::default().with_format(fmt).shared();
            let t = ProvTracker::new(cfg, Arc::clone(&fs), pid, "B", "p", VirtualClock::new());
            t.track_io(&event("/d"));
            t.finish();
        }
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 2);
        assert_eq!(nodes_of_class(&g, EntityClass::Dataset.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, ActivityClass::Write.into()).len(), 2);
    }
}
