//! Post-run merging of per-process sub-graphs.
//!
//! "The sub-graph files are then parsed and merged into a complete
//! provenance graph. Since every node in the graph has a globally unique ID
//! (GUID), merging the sub-graphs does not cause unnecessary duplication."
//! (paper §5). Merging happens after workflow execution, so it costs the
//! workflow nothing.

use provio_hpcfs::FileSystem;
use provio_rdf::{ntriples, turtle, Graph};
use provio_simrt::catch_quiet;
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Test hook: paths containing this marker panic inside [`process_file`],
/// standing in for a parser bug on hostile input.
#[cfg(test)]
static PANIC_ON: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);

/// Result of a merge.
#[derive(Debug)]
pub struct MergeReport {
    /// Files that contributed triples (fully parsed or salvaged).
    pub files: usize,
    pub triples: usize,
    /// Files from which nothing could be recovered; the merge proceeds
    /// without them.
    pub corrupt: Vec<String>,
    /// Orphan `<p>.tmp` files adopted because no committed `<p>` exists —
    /// the writer crashed between serialization and its atomic rename.
    pub recovered: Vec<String>,
    /// Triples recovered from the valid prefix of torn files.
    pub salvaged_triples: usize,
}

#[derive(Clone, Copy)]
enum Format {
    NTriples,
    Turtle,
    Unknown,
}

fn format_of(effective_path: &str) -> Format {
    if effective_path.ends_with(".nt") {
        Format::NTriples
    } else if effective_path.ends_with(".ttl") {
        Format::Turtle
    } else {
        Format::Unknown
    }
}

/// Full parse of `text` into a fresh graph, or `None` on any error. The
/// scratch graph keeps a half-parsed file from partially polluting the
/// merged graph.
fn parse_full(format: Format, text: &str) -> Option<Graph> {
    let mut scratch = Graph::new();
    let ok = match format {
        Format::NTriples => ntriples::parse_into(text, &mut scratch).is_ok(),
        Format::Turtle => turtle::parse_into(text, &mut scratch).is_ok(),
        Format::Unknown => {
            turtle::parse_into(text, &mut scratch).is_ok() || {
                scratch = Graph::new();
                ntriples::parse_into(text, &mut scratch).is_ok()
            }
        }
    };
    ok.then_some(scratch)
}

/// Longest valid prefix of a torn Turtle document: cut at statement
/// boundaries (lines ending `.`), longest candidate first.
fn salvage_turtle(text: &str) -> Graph {
    let lines: Vec<&str> = text.lines().collect();
    let cuts: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.trim_end().ends_with('.'))
        .map(|(i, _)| i)
        .collect();
    for &cut in cuts.iter().rev() {
        let prefix = lines[..=cut].join("\n");
        if let Ok((g, _)) = turtle::parse(&prefix) {
            return g;
        }
    }
    Graph::new()
}

/// Salvage whatever prefix of `text` is valid.
fn salvage(format: Format, text: &str) -> Graph {
    match format {
        Format::NTriples => {
            let mut scratch = Graph::new();
            ntriples::parse_lenient_prefix(text, &mut scratch);
            scratch
        }
        Format::Turtle => salvage_turtle(text),
        Format::Unknown => {
            let mut scratch = Graph::new();
            if ntriples::parse_lenient_prefix(text, &mut scratch) > 0 {
                scratch
            } else {
                salvage_turtle(text)
            }
        }
    }
}

/// What one sub-graph file contributed, computed independently per file so
/// the read/parse/salvage work parallelizes.
enum Outcome {
    /// Shadowed tmp or unreadable path — contributes nothing, not an error.
    Skipped,
    /// Nothing recoverable at all.
    Corrupt,
    /// Fully parsed scratch graph.
    Parsed { sub: Graph, adopted_tmp: bool },
    /// Valid-prefix salvage of a torn file.
    Salvaged { sub: Graph, adopted_tmp: bool },
}

/// Read and parse (or salvage) one file into a scratch graph. Pure function
/// of the file: no shared mutable state, so files process in parallel.
fn process_file(fs: &Arc<FileSystem>, path: &str, committed: &HashSet<&str>) -> Outcome {
    #[cfg(test)]
    {
        // Clone out of the guard: panicking while holding a std Mutex
        // would poison it for every other merge test in the process.
        let marker = PANIC_ON.lock().unwrap().clone();
        if marker.is_some_and(|m| path.contains(&m)) {
            panic!("injected parse panic on {path}");
        }
    }
    let adopted_tmp = match path.strip_suffix(".tmp") {
        Some(base) if committed.contains(base) => return Outcome::Skipped, // commit wins
        Some(_) => true,
        None => false,
    };
    let Ok(ino) = fs.lookup(path) else {
        return Outcome::Skipped;
    };
    let Ok(md) = fs.stat(path) else {
        return Outcome::Skipped;
    };
    let Ok(bytes) = fs.read_at(ino, 0, md.size) else {
        return Outcome::Skipped;
    };
    let Ok(text) = String::from_utf8(bytes.to_vec()) else {
        return Outcome::Corrupt;
    };
    let format = format_of(path.strip_suffix(".tmp").unwrap_or(path));
    if let Some(sub) = parse_full(format, &text) {
        return Outcome::Parsed { sub, adopted_tmp };
    }
    let sub = salvage(format, &text);
    if sub.is_empty() {
        return Outcome::Corrupt;
    }
    Outcome::Salvaged { sub, adopted_tmp }
}

/// Parse and merge every sub-graph file under `dir` (recursively) into one
/// graph. `.ttl` files parse as Turtle, `.nt` as N-Triples (this includes
/// the store's `.dNNNNNN.nt` delta segments — a snapshot plus its segments
/// merges back into the full sub-graph, duplicates collapsing); unknown
/// extensions try both.
///
/// Files parse into scratch graphs on worker threads (I/O and parsing
/// dominate merge time at rank scale), then fold into the final graph
/// sequentially in directory order via the interner's bulk id-mapped merge
/// — output is identical to [`merge_directory_sequential`].
///
/// Crash recovery: a `<p>.tmp` left by the store's atomic-rename protocol
/// is skipped when the committed `<p>` exists (it is a stale or torn
/// in-progress flush — the committed file wins), and adopted when it does
/// not (the writer crashed after serializing but before renaming). Files
/// that fail a full parse get their valid prefix salvaged line-by-line
/// (N-Triples) or at statement boundaries (Turtle); only files yielding
/// nothing at all are reported corrupt.
pub fn merge_directory(fs: &Arc<FileSystem>, dir: &str) -> (Graph, MergeReport) {
    merge_directory_impl(fs, dir, true)
}

/// Single-threaded reference implementation of [`merge_directory`], for
/// ablation benchmarks and output-equivalence tests.
pub fn merge_directory_sequential(fs: &Arc<FileSystem>, dir: &str) -> (Graph, MergeReport) {
    merge_directory_impl(fs, dir, false)
}

fn merge_directory_impl(
    fs: &Arc<FileSystem>,
    dir: &str,
    parallel: bool,
) -> (Graph, MergeReport) {
    let mut graph = Graph::new();
    let mut report = MergeReport {
        files: 0,
        triples: 0,
        corrupt: Vec::new(),
        recovered: Vec::new(),
        salvaged_triples: 0,
    };
    let files = match fs.walk_files(dir) {
        Ok(f) => f,
        Err(_) => return (graph, report),
    };
    let committed: HashSet<&str> = files.iter().map(String::as_str).collect();
    // A panic while parsing one file (a parser bug on hostile input) is
    // contained to that file and reported like any other unreadable input —
    // uncaught, a single panicking rayon task would abort the whole merge.
    let guarded = |path: &String| {
        catch_quiet(|| process_file(fs, path, &committed)).unwrap_or(Outcome::Corrupt)
    };
    let outcomes: Vec<Outcome> = if parallel {
        files.par_iter().map(guarded).collect()
    } else {
        files.iter().map(guarded).collect()
    };
    // Deterministic sequential fold in directory order; the merge itself is
    // the bulk id-mapped path (one intern per distinct term per file).
    for (path, outcome) in files.iter().zip(outcomes) {
        match outcome {
            Outcome::Skipped => {}
            Outcome::Corrupt => report.corrupt.push(path.clone()),
            Outcome::Parsed { sub, adopted_tmp } => {
                graph.merge(&sub);
                report.files += 1;
                if adopted_tmp {
                    report.recovered.push(path.clone());
                }
            }
            Outcome::Salvaged { sub, adopted_tmp } => {
                report.salvaged_triples += sub.len();
                graph.merge(&sub);
                report.files += 1;
                if adopted_tmp {
                    report.recovered.push(path.clone());
                }
            }
        }
    }
    report.triples = graph.len();
    (graph, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProvIoConfig, RdfFormat};
    use crate::tracker::{IoEvent, ObjectDesc, ProvTracker};
    use provio_hpcfs::LustreConfig;
    use provio_model::ontology::nodes_of_class;
    use provio_model::{ActivityClass, EntityClass};
    use provio_simrt::{SimTime, VirtualClock};

    fn event(path: &str) -> IoEvent {
        IoEvent {
            activity: ActivityClass::Write,
            api_name: "H5Dwrite".into(),
            object: Some(ObjectDesc::hdf5(EntityClass::Dataset, "/shared.h5", path)),
            bytes: 1,
            duration_ns: 1,
            timestamp_ns: 1,
            ok: true,
        }
    }

    #[test]
    fn merge_dedups_shared_guids() {
        let fs = FileSystem::new(LustreConfig::default());
        // Three processes all touch the same dataset: the merged graph must
        // contain ONE dataset node but three Write activities.
        for pid in 0..3 {
            let t = ProvTracker::new(
                ProvIoConfig::default().shared(),
                Arc::clone(&fs),
                pid,
                "Bob",
                "vpicio",
                VirtualClock::new(),
            );
            t.track_io(&event("/Timestep_0/x"));
            t.finish();
        }
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 3);
        assert!(report.corrupt.is_empty());
        assert_eq!(nodes_of_class(&g, EntityClass::Dataset.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, ActivityClass::Write.into()).len(), 3);
        // Shared agents dedup too (same program name across ranks).
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::Program.into()).len(),
            1
        );
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::User.into()).len(),
            1
        );
        // But each rank is its own Thread agent.
        assert_eq!(
            nodes_of_class(&g, provio_model::AgentClass::Thread.into()).len(),
            3
        );
    }

    #[test]
    fn corrupt_files_skipped_not_fatal() {
        let fs = FileSystem::new(LustreConfig::default());
        let t = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            0,
            "B",
            "p",
            VirtualClock::new(),
        );
        t.track_io(&event("/d"));
        t.finish();
        // A truncated/corrupt sub-graph from a crashed process.
        let ino = fs
            .create_file("/provio/prov_p99.ttl", false, "provio", SimTime::ZERO)
            .unwrap();
        fs.write_at(ino, 0, b"@prefix broken <oops", SimTime::ZERO).unwrap();
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(report.corrupt, vec!["/provio/prov_p99.ttl"]);
        assert!(g.len() > 0);
    }

    fn write_file(fs: &Arc<FileSystem>, path: &str, body: &[u8]) {
        if let Some((dir, _)) = path.rsplit_once('/') {
            fs.mkdir_all(dir, "provio", SimTime::ZERO).unwrap();
        }
        let ino = fs.create_file(path, false, "provio", SimTime::ZERO).unwrap();
        fs.write_at(ino, 0, body, SimTime::ZERO).unwrap();
    }

    #[test]
    fn stale_tmp_is_shadowed_by_committed_file() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(&fs, "/provio/prov_p0.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        // A torn in-progress flush next to a good committed file: ignored.
        write_file(&fs, "/provio/prov_p0.nt.tmp", b"<urn:a> <urn:p> \"tor");
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(g.len(), 1);
        assert!(report.corrupt.is_empty());
        assert!(report.recovered.is_empty());
        assert_eq!(report.salvaged_triples, 0);
    }

    #[test]
    fn orphan_tmp_is_adopted() {
        let fs = FileSystem::new(LustreConfig::default());
        // Writer crashed after serializing, before the rename: no committed
        // file, a complete tmp. The merge adopts it.
        write_file(
            &fs,
            "/provio/prov_p1.nt.tmp",
            b"<urn:a> <urn:p> <urn:b> .\n<urn:c> <urn:p> <urn:d> .\n",
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert_eq!(g.len(), 2);
        assert_eq!(report.recovered, vec!["/provio/prov_p1.nt.tmp"]);
    }

    #[test]
    fn torn_ntriples_prefix_is_salvaged() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(
            &fs,
            "/provio/prov_p2.nt",
            b"<urn:a> <urn:p> <urn:b> .\n<urn:c> <urn:p> <urn:d> .\n<urn:e> <urn:p> \"to",
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 1);
        assert!(report.corrupt.is_empty());
        assert_eq!(report.salvaged_triples, 2);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn failed_full_parse_does_not_pollute_merged_graph() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(&fs, "/provio/good.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        // Unknown extension, first line valid Turtle-and-NT, second line
        // garbage: the old code parsed line 1 straight into the merged
        // graph before failing. Now nothing of a failed full parse leaks
        // unless the salvage pass owns it (and then it is *reported*).
        write_file(
            &fs,
            "/provio/mystery.dat",
            b"<urn:x> <urn:p> <urn:y> .\n%%%not rdf%%%\n",
        );
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 2);
        assert_eq!(report.salvaged_triples, 1, "prefix salvage is accounted");
        assert_eq!(g.len(), 2);
        assert!(report.corrupt.is_empty());
    }

    #[test]
    fn panicking_parse_task_is_contained_per_file() {
        let fs = FileSystem::new(LustreConfig::default());
        write_file(&fs, "/provio/prov_p0.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        write_file(&fs, "/provio/prov_p1.nt", b"<urn:c> <urn:p> <urn:d> .\n");
        // Perfectly valid content — the panic models a parser bug, not bad
        // data, so only the injected hook distinguishes this file.
        write_file(&fs, "/provio/prov_panicme.nt", b"<urn:e> <urn:p> <urn:f> .\n");
        *PANIC_ON.lock().unwrap() = Some("panicme".into());
        let (gp, rp) = merge_directory(&fs, "/provio");
        let (gs, rs) = merge_directory_sequential(&fs, "/provio");
        *PANIC_ON.lock().unwrap() = None;
        for (g, r) in [(&gp, &rp), (&gs, &rs)] {
            assert_eq!(
                r.corrupt,
                vec!["/provio/prov_panicme.nt".to_string()],
                "the panicking file is reported like unreadable input"
            );
            assert_eq!(r.files, 2, "the other files still contribute");
            assert_eq!(g.len(), 2);
        }
        // With the hook cleared, the same directory merges fully.
        let (g, r) = merge_directory(&fs, "/provio");
        assert!(r.corrupt.is_empty());
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn missing_dir_is_empty_merge() {
        let fs = FileSystem::new(LustreConfig::default());
        let (g, report) = merge_directory(&fs, "/nowhere");
        assert!(g.is_empty());
        assert_eq!(report.files, 0);
    }

    #[test]
    fn parallel_and_sequential_merges_are_identical() {
        let fs = FileSystem::new(LustreConfig::default());
        // A messy directory: committed files, a shadowed tmp, an orphan
        // tmp, a torn file, and a corrupt file.
        for i in 0..20 {
            write_file(
                &fs,
                &format!("/provio/prov_p{i}.nt"),
                format!("<urn:s{i}> <urn:p> <urn:o{i}> .\n<urn:shared> <urn:p> <urn:o> .\n")
                    .as_bytes(),
            );
        }
        write_file(&fs, "/provio/prov_p0.nt.tmp", b"<urn:x> <urn:p> \"tor");
        write_file(&fs, "/provio/orphan.nt.tmp", b"<urn:orphan> <urn:p> <urn:o> .\n");
        write_file(&fs, "/provio/torn.nt", b"<urn:t> <urn:p> <urn:o> .\n<urn:u> <urn:p> \"x");
        write_file(&fs, "/provio/bad.nt", b"%%% nothing valid %%%\n");
        let (gp, rp) = merge_directory(&fs, "/provio");
        let (gs, rs) = merge_directory_sequential(&fs, "/provio");
        assert_eq!(
            ntriples::serialize(&gp),
            ntriples::serialize(&gs),
            "identical triple set, byte for byte in canonical form"
        );
        assert_eq!(rp.files, rs.files);
        assert_eq!(rp.triples, rs.triples);
        assert_eq!(rp.corrupt, rs.corrupt);
        assert_eq!(rp.recovered, rs.recovered);
        assert_eq!(rp.salvaged_triples, rs.salvaged_triples);
        assert_eq!(rp.recovered, vec!["/provio/orphan.nt.tmp".to_string()]);
        assert_eq!(rp.corrupt, vec!["/provio/bad.nt".to_string()]);
    }

    #[test]
    fn snapshot_plus_delta_segments_merge_to_full_subgraph() {
        let fs = FileSystem::new(LustreConfig::default());
        // What a periodically-flushing store leaves mid-run: a snapshot
        // plus two uncompacted delta segments (overlap with the snapshot is
        // deliberate — compaction may race a crash, duplicates must
        // collapse).
        write_file(
            &fs,
            "/provio/prov_p0.nt",
            b"<urn:a> <urn:p> <urn:1> .\n<urn:a> <urn:p> <urn:2> .\n",
        );
        write_file(
            &fs,
            "/provio/prov_p0.nt.d000000.nt",
            b"<urn:a> <urn:p> <urn:2> .\n<urn:a> <urn:p> <urn:3> .\n",
        );
        write_file(&fs, "/provio/prov_p0.nt.d000001.nt", b"<urn:a> <urn:p> <urn:4> .\n");
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 3, "snapshot and both segments contribute");
        assert_eq!(g.len(), 4, "duplicate triples collapse");
        assert!(report.corrupt.is_empty());
    }

    #[test]
    fn mixed_formats_merge() {
        let fs = FileSystem::new(LustreConfig::default());
        for (pid, fmt) in [(0u32, RdfFormat::Turtle), (1, RdfFormat::NTriples)] {
            let cfg = ProvIoConfig::default().with_format(fmt).shared();
            let t = ProvTracker::new(cfg, Arc::clone(&fs), pid, "B", "p", VirtualClock::new());
            t.track_io(&event("/d"));
            t.finish();
        }
        let (g, report) = merge_directory(&fs, "/provio");
        assert_eq!(report.files, 2);
        assert_eq!(nodes_of_class(&g, EntityClass::Dataset.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, ActivityClass::Write.into()).len(), 2);
    }
}
