//! Versioned, checksummed on-disk framing for store files.
//!
//! A framed snapshot or delta segment is still a *textual* RDF file — every
//! frame line begins with `#`, which both the N-Triples and Turtle parsers
//! treat as a comment — but carries enough integrity metadata to detect any
//! single corrupted region and to localize the damage to one record batch:
//!
//! ```text
//! # PROVIO1 kind=delta guid=00a1b2c3d4e5f607 ordinal=3 prev=89abcdef
//! #~B lines=2 crc=0011aabb
//! <urn:s> <urn:p> <urn:o> .
//! <urn:s> <urn:p> <urn:o2> .
//! #~B lines=1 crc=22cc33dd
//! <urn:s2> <urn:p> <urn:o> .
//! #~F batches=2 chain=deadbeef root=9f86d081884c7d65…
//! ```
//!
//! * **Header** — magic + format version (`PROVIO1`), the frame kind, the
//!   store's GUID (so a segment substituted from another store is caught),
//!   the segment ordinal within this store (so reordering is caught), and
//!   `prev`, the previous committed file's chain value (so a *missing* or
//!   replayed file breaks the chain).
//! * **Batches** — the payload in fixed-size line batches, each with its
//!   line count and the CRC-32 of its exact bytes. CRC-32 detects every
//!   single-bit error and every burst up to 32 bits, so a seeded bit flip
//!   inside a batch can never verify; the batch is skipped and its intact
//!   siblings salvaged.
//! * **Footer** — the batch count; `chain`, the CRC-32 of the header line
//!   (since the header embeds `guid`/`ordinal`/`prev`, the chain value
//!   commits to the file's identity and position, and the *next* file's
//!   header must carry it as `prev`); and `root`, the SHA-256 Merkle root
//!   folding the batch CRCs ([`merkle_root`]). The root is what a signed
//!   run manifest anchors: CRC-32 frames catch *accidental* damage, but an
//!   adversary can rewrite a batch and patch its CRC — only a digest they
//!   cannot forge, compared against a copy they cannot re-sign, catches
//!   that. [`decode`] reports but never *enforces* the root (bit-rot
//!   salvage semantics are unchanged); enforcement lives in `verify`.
//!
//! Batch payload lines must not begin with the reserved `#~` sigil — RDF
//! serializations never do. Decoding never trusts a marker's `lines=` field
//! for framing: batches are delimited by scanning for the next marker, so a
//! flipped digit only fails that one batch's verification.
//!
//! Version negotiation with the legacy format is by the first line: a file
//! that does not open with the magic and contains no frame markers is
//! legacy and parsed as before; one that *looks* framed but fails header or
//! footer verification is quarantined, never parsed.

use crc32fast::hash as crc32;
use std::io::Write as _;

/// First-line magic; the trailing digit is the format version.
pub const MAGIC: &str = "# PROVIO1";

/// Reserved sigil opening every batch marker line.
pub const BATCH_SIGIL: &str = "#~B";

/// Reserved sigil opening the footer line.
pub const FOOTER_SIGIL: &str = "#~F";

/// `prev` value for the first file of a store's chain (ordinal 0).
pub const CHAIN_START: u32 = 0;

/// What a framed file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    Snapshot,
    Delta,
    /// One group commit of the write-ahead journal. WAL chunks are framed
    /// like segments but live outside the snapshot/segment commit chain:
    /// their `ordinal` is the *record* ordinal of the chunk's first journal
    /// record, and `prev` chains chunks within one journal generation file.
    Wal,
    /// One sealed parity group (`<snapshot>.pNNNNNN.par`): XOR redundancy
    /// over committed artifacts. Parity files live outside the commit chain
    /// like WAL generations — their `ordinal` is a store-wide parity
    /// sequence and `prev` is always [`CHAIN_START`]. The payload is member
    /// descriptor lines plus a base64 XOR block (see `scrub`).
    Parity,
}

impl FrameKind {
    fn as_str(&self) -> &'static str {
        match self {
            FrameKind::Snapshot => "snapshot",
            FrameKind::Delta => "delta",
            FrameKind::Wal => "wal",
            FrameKind::Parity => "parity",
        }
    }

    fn parse(s: &str) -> Option<FrameKind> {
        match s {
            "snapshot" => Some(FrameKind::Snapshot),
            "delta" => Some(FrameKind::Delta),
            "wal" => Some(FrameKind::Wal),
            "parity" => Some(FrameKind::Parity),
            _ => None,
        }
    }
}

/// A successfully decoded (possibly partially corrupt) framed file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramedFile {
    pub kind: FrameKind,
    /// Store GUID claimed by the header.
    pub guid: u64,
    /// Position of this file in the store's commit sequence.
    pub ordinal: u64,
    /// Chain value of the previous committed file ([`CHAIN_START`] for the
    /// first).
    pub prev: u32,
    /// This file's own chain value (CRC-32 of its header line), which the
    /// next file's `prev` must equal.
    pub chain: u32,
    /// Concatenated payload of every batch that verified.
    pub payload: String,
    /// Batches the file was declared/observed to hold.
    pub batches_total: usize,
    /// Batches that failed verification and were dropped from `payload`.
    pub batches_corrupt: usize,
    /// Merkle root the footer claims (None on pre-root footers).
    pub declared_root: Option<[u8; 32]>,
    /// Merkle root recomputed from the batch bodies as found on disk.
    /// [`decode`] reports the mismatch but does not act on it: a root-only
    /// mismatch (every CRC verifies, identity verifies) is *tamper*, not
    /// rot, and is judged against the signed manifest by `verify`, not
    /// against the (equally rewritable) footer.
    pub computed_root: [u8; 32],
}

impl FramedFile {
    /// Did every batch verify?
    pub fn intact(&self) -> bool {
        self.batches_corrupt == 0
    }
}

/// Why a file could not be decoded as a framed file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// No magic, no frame markers: a legacy-format file, parse it as such.
    NotFramed,
    /// The file is framed but its header/footer/chain cannot be trusted;
    /// it must be quarantined, never parsed into the merged graph.
    Quarantine(&'static str),
}

/// FNV-1a 64-bit, used for store GUIDs (deterministic, dependency-free).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The GUID of the store a file at `path` belongs to: the FNV-1a hash of
/// the snapshot path, with `.tmp`/`.quarantine` wrappers and the delta
/// segment (`.dNNNNNN.nt`) or WAL generation (`.wNNNNNN.nt`) suffix
/// stripped, so a snapshot, all of its segments, and its journal claim the
/// same GUID.
pub fn store_guid(path: &str) -> u64 {
    fnv1a64(base_store_path(path).as_bytes())
}

/// Strip commit-protocol suffixes down to the snapshot path.
pub fn base_store_path(path: &str) -> &str {
    let mut p = path;
    loop {
        if let Some(rest) = p.strip_suffix(".tmp") {
            p = rest;
        } else if let Some(rest) = p.strip_suffix(".quarantine") {
            p = rest;
        } else {
            break;
        }
    }
    // `<snapshot>.dNNNNNN.nt` / `<snapshot>.wNNNNNN.nt` → `<snapshot>`
    if let Some(rest) = p.strip_suffix(".nt") {
        if rest.len() >= 8 {
            let (head, seq) = rest.split_at(rest.len() - 7);
            if head.ends_with('.')
                && (seq.starts_with('d') || seq.starts_with('w'))
                && seq[1..].bytes().all(|b| b.is_ascii_digit())
            {
                return &head[..head.len() - 1];
            }
        }
    }
    // `<snapshot>.pNNNNNN.par` → `<snapshot>`
    if let Some(rest) = p.strip_suffix(".par") {
        if rest.len() >= 8 {
            let (head, seq) = rest.split_at(rest.len() - 7);
            if head.ends_with('.')
                && seq.starts_with('p')
                && seq[1..].bytes().all(|b| b.is_ascii_digit())
            {
                return &head[..head.len() - 1];
            }
        }
    }
    p
}

/// Is `path` a WAL generation file (`<snapshot>.wNNNNNN.nt`, possibly
/// wrapped in commit-protocol suffixes)?
pub fn is_wal_path(path: &str) -> bool {
    let mut p = path;
    loop {
        if let Some(rest) = p.strip_suffix(".tmp") {
            p = rest;
        } else if let Some(rest) = p.strip_suffix(".quarantine") {
            p = rest;
        } else {
            break;
        }
    }
    if let Some(rest) = p.strip_suffix(".nt") {
        if rest.len() >= 8 {
            let (head, seq) = rest.split_at(rest.len() - 7);
            return head.ends_with('.')
                && seq.starts_with('w')
                && seq[1..].bytes().all(|b| b.is_ascii_digit());
        }
    }
    false
}

/// Is `path` a sealed parity file (`<snapshot>.pNNNNNN.par`, possibly
/// wrapped in commit-protocol suffixes)?
pub fn is_parity_path(path: &str) -> bool {
    let mut p = path;
    loop {
        if let Some(rest) = p.strip_suffix(".tmp") {
            p = rest;
        } else if let Some(rest) = p.strip_suffix(".quarantine") {
            p = rest;
        } else {
            break;
        }
    }
    if let Some(rest) = p.strip_suffix(".par") {
        if rest.len() >= 8 {
            let (head, seq) = rest.split_at(rest.len() - 7);
            return head.ends_with('.')
                && seq.starts_with('p')
                && seq[1..].bytes().all(|b| b.is_ascii_digit());
        }
    }
    false
}

/// Frame `payload` (a complete RDF serialization) into the checksummed
/// format. Returns the framed text and its chain value, which the caller
/// passes as `prev` when encoding the store's next file. `batch_lines`
/// bounds how many payload lines share one CRC frame — smaller batches mean
/// finer-grained salvage at higher overhead.
pub fn encode(
    kind: FrameKind,
    guid: u64,
    ordinal: u64,
    prev: u32,
    payload: &str,
    batch_lines: usize,
) -> (String, u32) {
    let (out, chain, _) = encode_with_root(kind, guid, ordinal, prev, payload, batch_lines);
    (out, chain)
}

/// [`encode`], additionally returning the frame's Merkle root — what
/// [`file_root`] would recompute from the committed bytes. Writers cache
/// it per committed path so sealing a run does not have to re-read and
/// re-CRC files the store itself just wrote.
pub fn encode_with_root(
    kind: FrameKind,
    guid: u64,
    ordinal: u64,
    prev: u32,
    payload: &str,
    batch_lines: usize,
) -> (String, u32, [u8; 32]) {
    use std::fmt::Write as _;
    let header = format!(
        "{MAGIC} kind={} guid={guid:016x} ordinal={ordinal} prev={prev:08x}",
        kind.as_str()
    );
    let chain = crc32(header.as_bytes());
    let batch_lines = batch_lines.max(1);
    let mut out = String::with_capacity(payload.len() + payload.len() / 16 + 128);
    out.push_str(&header);
    out.push('\n');
    // One pass over the payload bytes: walk `batch_lines` line boundaries,
    // CRC the covered slice in place, and copy it into the output exactly
    // once (the CRC is over each line's bytes *with* a trailing '\n', so a
    // payload whose last line lacks one checksums as if it were there).
    let bytes = payload.as_bytes();
    let mut batches = 0usize;
    let mut leaves: Vec<u32> = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let start = pos;
        let mut lines = 0usize;
        let mut missing_final_newline = false;
        while pos < bytes.len() && lines < batch_lines {
            debug_assert!(
                !bytes[pos..].starts_with(b"#~"),
                "payload line collides with the reserved frame sigil"
            );
            match bytes[pos..].iter().position(|&b| b == b'\n') {
                Some(nl) => pos += nl + 1,
                None => {
                    pos = bytes.len();
                    missing_final_newline = true;
                }
            }
            lines += 1;
        }
        let body = &payload[start..pos];
        let crc = if missing_final_newline {
            let mut h = crc32fast::Hasher::new();
            h.update(body.as_bytes());
            h.update(b"\n");
            h.finalize()
        } else {
            crc32(body.as_bytes())
        };
        let _ = writeln!(out, "{BATCH_SIGIL} lines={lines} crc={crc:08x}");
        out.push_str(body);
        if missing_final_newline {
            out.push('\n');
        }
        leaves.push(crc);
        batches += 1;
    }
    let root = merkle_root(&leaves);
    let _ = writeln!(
        out,
        "{FOOTER_SIGIL} batches={batches} chain={chain:08x} root={}",
        sha2::hex(&root)
    );
    (out, chain, root)
}

/// Fold per-batch CRC-32 values into a SHA-256 Merkle root: each leaf is
/// the SHA-256 of the CRC's 4 big-endian bytes, interior nodes hash the
/// concatenation of their children, and an odd node is promoted unchanged.
/// Zero leaves root at `SHA-256("")`. CRC leaves keep the hot flush path at
/// CRC speed — the (few) interior hashes are the only SHA-256 work — while
/// the root still commits to every batch's content and order strongly
/// enough to anchor in a signed manifest.
pub fn merkle_root(leaves: &[u32]) -> [u8; 32] {
    let mut level: Vec<[u8; 32]> = leaves
        .iter()
        .map(|&crc| sha2::sha256(&crc.to_be_bytes()))
        .collect();
    if level.is_empty() {
        return sha2::sha256(b"");
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if let [l, r] = pair {
                let mut h = sha2::Sha256::new();
                h.update(l);
                h.update(r);
                next.push(h.finalize());
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// Recompute a framed file's Merkle root straight from its on-disk text in
/// one pass — batch bodies are CRC'd as contiguous slices, no payload
/// reassembly. Works on single frames and on WAL generation files (a
/// concatenation of frames: leaves accumulate across every chunk in
/// order). Returns `None` for files that do not open with the magic —
/// legacy stores have no root to recompute.
///
/// This is the manifest writer's and verifier's view of a file: the root
/// of *what is actually on disk*, regardless of what any (rewritable)
/// footer claims.
pub fn file_root(text: &str) -> Option<[u8; 32]> {
    let bytes = text.as_bytes();
    let header_end = match bytes.iter().position(|&b| b == b'\n') {
        Some(nl) => nl + 1,
        None => bytes.len(),
    };
    if !text[..header_end].starts_with(MAGIC) {
        return None;
    }
    let mut leaves: Vec<u32> = Vec::new();
    let mut body_start: Option<usize> = None;
    let mut pos = header_end;
    while pos < bytes.len() {
        let line_end = match bytes[pos..].iter().position(|&b| b == b'\n') {
            Some(nl) => pos + nl + 1,
            None => bytes.len(),
        };
        let line = &bytes[pos..line_end];
        if line.starts_with(BATCH_SIGIL.as_bytes()) || line.starts_with(FOOTER_SIGIL.as_bytes()) {
            if let Some(s) = body_start.take() {
                leaves.push(crc32(&bytes[s..pos]));
            }
            if line.starts_with(BATCH_SIGIL.as_bytes()) {
                body_start = Some(line_end);
            }
        }
        pos = line_end;
    }
    if let Some(s) = body_start {
        // Torn tail: no closing marker, fold what is there.
        leaves.push(crc32(&bytes[s..]));
    }
    Some(merkle_root(&leaves))
}

/// Streaming framer for the store's hot write path. Where [`encode`] takes
/// a fully rendered payload and re-scans it (an extra validation pass, a
/// newline scan, a CRC pass, and a copy — all over a cold megabyte blob),
/// the encoder takes payload *lines* batch-by-batch while the serializer
/// just produced them: the CRC and the copy run over cache-hot strings, and
/// the framed bytes are assembled exactly once. Output is byte-identical to
/// [`encode`] for the same payload and batching.
pub struct Encoder {
    out: Vec<u8>,
    chain: u32,
    batches: usize,
    leaves: Vec<u32>,
}

impl Encoder {
    pub fn new(kind: FrameKind, guid: u64, ordinal: u64, prev: u32) -> Encoder {
        let header = format!(
            "{MAGIC} kind={} guid={guid:016x} ordinal={ordinal} prev={prev:08x}",
            kind.as_str()
        );
        let chain = crc32(header.as_bytes());
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(header.as_bytes());
        out.push(b'\n');
        Encoder {
            out,
            chain,
            batches: 0,
            leaves: Vec::new(),
        }
    }

    /// Pre-size the output for the payload to come (sum of line lengths).
    pub fn reserve(&mut self, payload_bytes: usize) {
        self.out.reserve(payload_bytes + payload_bytes / 16 + 64);
    }

    /// Append one batch of payload lines (no trailing newlines; lines must
    /// not begin with the reserved `#~` sigil). An empty batch is a no-op.
    ///
    /// The marker is written with a placeholder CRC, the body copied behind
    /// it, and the CRC then computed over the contiguous just-written bytes
    /// and patched into place: one table-driven pass over L1-hot memory per
    /// batch instead of two small `Hasher` calls per line.
    pub fn batch<S: AsRef<str>>(&mut self, lines: &[S]) {
        if lines.is_empty() {
            return;
        }
        let _ = write!(self.out, "{BATCH_SIGIL} lines={} crc=", lines.len());
        let crc_at = self.out.len();
        self.out.extend_from_slice(b"00000000\n");
        let body_at = self.out.len();
        for l in lines {
            debug_assert!(
                !l.as_ref().starts_with("#~"),
                "payload line collides with the reserved frame sigil"
            );
            self.out.extend_from_slice(l.as_ref().as_bytes());
            self.out.push(b'\n');
        }
        let crc = crc32(&self.out[body_at..]);
        let mut hex = [0u8; 8];
        for (i, b) in hex.iter_mut().enumerate() {
            *b = b"0123456789abcdef"[((crc >> (28 - 4 * i)) & 0xF) as usize];
        }
        self.out[crc_at..crc_at + 8].copy_from_slice(&hex);
        self.leaves.push(crc);
        self.batches += 1;
    }

    /// Append one batch whose payload is already a newline-terminated
    /// block of `lines` lines: byte-identical to [`Encoder::batch`] over
    /// the split lines, but CRC'd and copied in a single pass with no
    /// per-line walk — the write-ahead journal's track-path shape.
    pub fn batch_block(&mut self, block: &str, lines: usize) {
        if lines == 0 {
            return;
        }
        debug_assert_eq!(block.lines().count(), lines);
        debug_assert!(block.ends_with('\n'), "block lines are newline-terminated");
        debug_assert!(
            !block.lines().any(|l| l.starts_with("#~")),
            "payload line collides with the reserved frame sigil"
        );
        let _ = write!(self.out, "{BATCH_SIGIL} lines={lines} crc=");
        let crc_at = self.out.len();
        self.out.extend_from_slice(b"00000000\n");
        let body_at = self.out.len();
        self.out.extend_from_slice(block.as_bytes());
        let crc = crc32(&self.out[body_at..]);
        let mut hex = [0u8; 8];
        for (i, b) in hex.iter_mut().enumerate() {
            *b = b"0123456789abcdef"[((crc >> (28 - 4 * i)) & 0xF) as usize];
        }
        self.out[crc_at..crc_at + 8].copy_from_slice(&hex);
        self.leaves.push(crc);
        self.batches += 1;
    }

    /// Seal the file with its footer; returns the framed bytes and the
    /// chain value the store's next file must carry as `prev`.
    pub fn finish(self) -> (Vec<u8>, u32) {
        let (out, chain, _) = self.finish_with_root();
        (out, chain)
    }

    /// [`Self::finish`], additionally returning the frame's Merkle root
    /// (see [`encode_with_root`]) for the writer's commit-time root cache.
    pub fn finish_with_root(mut self) -> (Vec<u8>, u32, [u8; 32]) {
        let root = merkle_root(&self.leaves);
        let _ = writeln!(
            self.out,
            "{FOOTER_SIGIL} batches={} chain={:08x} root={}",
            self.batches,
            self.chain,
            sha2::hex(&root)
        );
        (self.out, self.chain, root)
    }
}

/// Does `text` carry any sign of the framed format? Used to keep a file
/// whose magic line was itself corrupted from being misread as legacy.
pub fn looks_framed(text: &str) -> bool {
    text.lines().next().is_some_and(|l| l.starts_with("# PROVIO"))
        || text
            .lines()
            .any(|l| l.starts_with(BATCH_SIGIL) || l.starts_with(FOOTER_SIGIL))
}

fn field<'a>(token: &'a str, key: &str) -> Option<&'a str> {
    token.strip_prefix(key)
}

fn parse_header(line: &str) -> Option<(FrameKind, u64, u64, u32)> {
    let rest = line.strip_prefix(MAGIC)?;
    let mut kind = None;
    let mut guid = None;
    let mut ordinal = None;
    let mut prev = None;
    for tok in rest.split_ascii_whitespace() {
        if let Some(v) = field(tok, "kind=") {
            kind = FrameKind::parse(v);
        } else if let Some(v) = field(tok, "guid=") {
            guid = u64::from_str_radix(v, 16).ok();
        } else if let Some(v) = field(tok, "ordinal=") {
            ordinal = v.parse::<u64>().ok();
        } else if let Some(v) = field(tok, "prev=") {
            prev = u32::from_str_radix(v, 16).ok();
        } else {
            return None;
        }
    }
    Some((kind?, guid?, ordinal?, prev?))
}

fn parse_batch_marker(line: &str) -> Option<(usize, u32)> {
    let rest = line.strip_prefix(BATCH_SIGIL)?;
    let mut lines = None;
    let mut crc = None;
    for tok in rest.split_ascii_whitespace() {
        if let Some(v) = field(tok, "lines=") {
            lines = v.parse::<usize>().ok();
        } else if let Some(v) = field(tok, "crc=") {
            crc = u32::from_str_radix(v, 16).ok();
        } else {
            return None;
        }
    }
    Some((lines?, crc?))
}

pub(crate) fn parse_hex32(s: &str) -> Option<[u8; 32]> {
    if s.len() != 64 {
        return None;
    }
    let mut out = [0u8; 32];
    for (i, pair) in s.as_bytes().chunks(2).enumerate() {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out[i] = ((hi << 4) | lo) as u8;
    }
    Some(out)
}

/// `root=` is optional — PR 4–5 footers predate it and must keep decoding
/// (such stores verify as `Unsigned`, never error) — but when present it
/// must parse, and unknown tokens still condemn the line.
fn parse_footer(line: &str) -> Option<(usize, u32, Option<[u8; 32]>)> {
    let rest = line.strip_prefix(FOOTER_SIGIL)?;
    let mut batches = None;
    let mut chain = None;
    let mut root = None;
    for tok in rest.split_ascii_whitespace() {
        if let Some(v) = field(tok, "batches=") {
            batches = v.parse::<usize>().ok();
        } else if let Some(v) = field(tok, "chain=") {
            chain = u32::from_str_radix(v, 16).ok();
        } else if let Some(v) = field(tok, "root=") {
            root = Some(parse_hex32(v)?);
        } else {
            return None;
        }
    }
    Some((batches?, chain?, root))
}

/// Decode a framed file, verifying header, batches, footer, and chain
/// value. Batch-level corruption is tolerated (the damaged batch is dropped
/// from `payload` and counted); anything that undermines the file's
/// *identity* — bad magic on a file bearing frame markers, a malformed or
/// missing footer, a chain value that does not match the header — is a
/// [`FrameError::Quarantine`].
pub fn decode(text: &str) -> Result<FramedFile, FrameError> {
    let mut lines = text.lines();
    let Some(header_line) = lines.next() else {
        return Err(FrameError::NotFramed); // empty file: legacy torn case
    };
    let Some((kind, guid, ordinal, prev)) = parse_header(header_line) else {
        return if looks_framed(text) {
            Err(FrameError::Quarantine("unverifiable header"))
        } else {
            Err(FrameError::NotFramed)
        };
    };
    let chain = crc32(header_line.as_bytes());

    // Collect batches by scanning for marker lines; `lines=` is only used
    // for verification, never for framing.
    struct Batch<'a> {
        spec: Option<(usize, u32)>,
        body: Vec<&'a str>,
    }
    let mut batches: Vec<Batch> = Vec::new();
    let mut footer: Option<(usize, u32, Option<[u8; 32]>)> = None;
    for line in lines {
        if footer.is_some() {
            if !line.trim().is_empty() {
                return Err(FrameError::Quarantine("data after footer"));
            }
            continue;
        }
        if line.starts_with(BATCH_SIGIL) {
            batches.push(Batch {
                spec: parse_batch_marker(line),
                body: Vec::new(),
            });
        } else if line.starts_with(FOOTER_SIGIL) {
            match parse_footer(line) {
                Some(f) => footer = Some(f),
                None => return Err(FrameError::Quarantine("malformed footer")),
            }
        } else {
            match batches.last_mut() {
                Some(b) => b.body.push(line),
                // Payload before any marker: a destroyed first marker.
                None => batches.push(Batch {
                    spec: None,
                    body: vec![line],
                }),
            }
        }
    }
    let Some((declared, footer_chain, declared_root)) = footer else {
        return Err(FrameError::Quarantine("missing footer"));
    };
    if footer_chain != chain {
        return Err(FrameError::Quarantine("chain mismatch"));
    }

    let mut payload = String::new();
    let mut intact = 0usize;
    let mut leaves: Vec<u32> = Vec::with_capacity(batches.len());
    for b in &batches {
        let body: String = b.body.iter().flat_map(|l| [l, "\n"]).collect();
        let body_crc = crc32(body.as_bytes());
        leaves.push(body_crc);
        let ok = b
            .spec
            .is_some_and(|(n, crc)| b.body.len() == n && body_crc == crc);
        if ok {
            payload.push_str(&body);
            intact += 1;
        }
    }
    // A destroyed marker folds its batch into a neighbor, so fewer batches
    // are *seen* than declared; the honest corrupt count is everything that
    // did not verify out of the larger of the two tallies.
    let batches_total = declared.max(batches.len());
    Ok(FramedFile {
        kind,
        guid,
        ordinal,
        prev,
        chain,
        payload,
        batches_total,
        batches_corrupt: batches_total - intact,
        declared_root,
        computed_root: merkle_root(&leaves),
    })
}

/// A decoded WAL generation file: the verified prefix of its group-commit
/// chunks, and whether a damaged or torn tail was cut off.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalFile {
    /// Journal records from every chunk that verified, in append order:
    /// `(record ordinal, N-Triples line)`.
    pub records: Vec<(u64, String)>,
    /// Chunks that decoded and chained cleanly.
    pub chunks: usize,
    /// True when a torn, bit-rotted, mis-chained, or foreign-guid tail was
    /// truncated (everything from the first bad chunk on is dropped).
    pub truncated: bool,
}

/// Decode a WAL generation file: a concatenation of [`FrameKind::Wal`]
/// frames, each one group commit appended in place. Unlike [`decode`],
/// damage never quarantines the whole file — the journal's value is its
/// verified *prefix*. Chunks are accepted until the first one that fails to
/// decode, fails batch verification, claims a foreign `guid`, is not
/// [`FrameKind::Wal`], breaks the intra-file chain (`prev` must equal the
/// previous chunk's `chain`, [`CHAIN_START`] for the first), or regresses
/// the record ordinal; that chunk and everything after it are truncated and
/// reported, never parsed.
pub fn decode_wal(text: &str, guid: u64) -> WalFile {
    let mut out = WalFile::default();
    let mut chain = CHAIN_START;
    let mut next_record = 0u64;
    let mut rest = text;
    while !rest.trim().is_empty() {
        // One chunk runs through its footer line; a remainder with no
        // footer is a torn tail.
        let mut end = None;
        let mut offset = 0usize;
        for line in rest.split_inclusive('\n') {
            offset += line.len();
            if line.trim_end().starts_with(FOOTER_SIGIL) {
                end = Some(offset);
                break;
            }
        }
        let Some(end) = end else {
            out.truncated = true;
            break;
        };
        let chunk = match decode(&rest[..end]) {
            Ok(f) => f,
            Err(_) => {
                out.truncated = true;
                break;
            }
        };
        let continuous = chunk.intact()
            && chunk.kind == FrameKind::Wal
            && chunk.guid == guid
            && chunk.prev == chain
            && chunk.ordinal >= next_record;
        if !continuous {
            out.truncated = true;
            break;
        }
        for (i, line) in chunk.payload.lines().enumerate() {
            out.records.push((chunk.ordinal + i as u64, line.to_string()));
        }
        next_record = chunk
            .ordinal
            .saturating_add(chunk.payload.lines().count() as u64);
        chain = chunk.chain;
        out.chunks += 1;
        rest = &rest[end..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAYLOAD: &str = "<urn:a> <urn:p> <urn:b> .\n<urn:a> <urn:p> <urn:c> .\n<urn:b> <urn:p> <urn:c> .\n";

    #[test]
    fn round_trip_preserves_payload_and_identity() {
        let guid = store_guid("/provio/prov_p1.nt");
        let (text, chain) = encode(FrameKind::Snapshot, guid, 0, CHAIN_START, PAYLOAD, 2);
        let f = decode(&text).unwrap();
        assert_eq!(f.kind, FrameKind::Snapshot);
        assert_eq!(f.guid, guid);
        assert_eq!(f.ordinal, 0);
        assert_eq!(f.prev, CHAIN_START);
        assert_eq!(f.chain, chain);
        assert_eq!(f.payload, PAYLOAD);
        assert_eq!(f.batches_total, 2); // 3 lines in batches of 2
        assert!(f.intact());
    }

    #[test]
    fn empty_payload_frames_to_zero_batches() {
        let (text, _) = encode(FrameKind::Delta, 1, 4, 0xAB, "", 64);
        let f = decode(&text).unwrap();
        assert_eq!(f.batches_total, 0);
        assert_eq!(f.payload, "");
        assert!(f.intact());
    }

    #[test]
    fn legacy_text_is_not_framed() {
        assert_eq!(decode(PAYLOAD), Err(FrameError::NotFramed));
        assert_eq!(decode(""), Err(FrameError::NotFramed));
        // A legacy Turtle file opening with an ordinary comment.
        assert_eq!(
            decode("# plain comment\n<urn:a> <urn:p> <urn:b> .\n"),
            Err(FrameError::NotFramed)
        );
    }

    #[test]
    fn corrupt_batch_is_dropped_and_counted() {
        let (text, _) = encode(FrameKind::Snapshot, 7, 0, 0, PAYLOAD, 1);
        // Damage the middle payload line.
        let bad = text.replace("<urn:a> <urn:p> <urn:c> .", "<urn:X> <urn:p> <urn:c> .");
        let f = decode(&bad).unwrap();
        assert_eq!(f.batches_total, 3);
        assert_eq!(f.batches_corrupt, 1);
        assert!(f.payload.contains("<urn:b> <urn:p> <urn:c>"));
        assert!(!f.payload.contains("<urn:X>"));
    }

    #[test]
    fn destroyed_marker_folds_into_neighbor_without_silent_admission() {
        let (text, _) = encode(FrameKind::Snapshot, 7, 0, 0, PAYLOAD, 1);
        // Wreck the second batch marker so its line no longer parses as one.
        let marker = text
            .lines()
            .filter(|l| l.starts_with(BATCH_SIGIL))
            .nth(1)
            .unwrap()
            .to_string();
        let bad = text.replace(&marker, "~corrupted~");
        let f = decode(&bad).unwrap();
        // Batch 1 swallowed the wreckage + batch 2's line: it fails. Batch 3
        // still verifies. Declared=3, seen=2 → 2 corrupt.
        assert_eq!(f.batches_total, 3);
        assert_eq!(f.batches_corrupt, 2);
        assert_eq!(f.payload, "<urn:b> <urn:p> <urn:c> .\n");
    }

    #[test]
    fn header_or_footer_damage_quarantines() {
        let (text, _) = encode(FrameKind::Delta, 9, 2, 0x55, PAYLOAD, 64);
        // Flip one character inside the header's guid field.
        let bad_header = text.replacen("guid=", "guid=f", 1);
        assert!(matches!(
            decode(&bad_header),
            Err(FrameError::Quarantine(_))
        ));
        // Drop the footer line entirely (mid-file truncation).
        let no_footer: String = text
            .lines()
            .filter(|l| !l.starts_with(FOOTER_SIGIL))
            .flat_map(|l| [l, "\n"])
            .collect();
        assert_eq!(
            decode(&no_footer),
            Err(FrameError::Quarantine("missing footer"))
        );
        // Trailing garbage after the footer (block duplication).
        let trailing = format!("{text}<urn:dup> <urn:p> <urn:o> .\n");
        assert_eq!(
            decode(&trailing),
            Err(FrameError::Quarantine("data after footer"))
        );
    }

    #[test]
    fn flipped_magic_never_reads_as_legacy() {
        let (text, _) = encode(FrameKind::Snapshot, 3, 0, 0, PAYLOAD, 64);
        let bad = text.replacen("# PROVIO1", "# PROVIO!", 1);
        assert!(matches!(decode(&bad), Err(FrameError::Quarantine(_))));
    }

    #[test]
    fn chain_links_files_and_breaks_on_substitution() {
        let guid = store_guid("/provio/prov_p1.nt");
        let (_, c0) = encode(FrameKind::Snapshot, guid, 0, CHAIN_START, PAYLOAD, 64);
        let (seg1, c1) = encode(FrameKind::Delta, guid, 1, c0, "x\n", 64);
        let f1 = decode(&seg1).unwrap();
        assert_eq!(f1.prev, c0);
        assert_eq!(f1.chain, c1);
        // The same ordinal written by a different store chains differently.
        let (other, _) = encode(FrameKind::Delta, store_guid("/provio/prov_p2.nt"), 1, c0, "x\n", 64);
        let g = decode(&other).unwrap();
        assert_ne!(g.chain, c1, "chain commits to guid");
        assert_ne!(g.guid, guid);
    }

    #[test]
    fn guid_is_stable_across_commit_suffixes() {
        let base = store_guid("/provio/prov_p1.nt");
        for p in [
            "/provio/prov_p1.nt.tmp",
            "/provio/prov_p1.nt.d000003.nt",
            "/provio/prov_p1.nt.d000003.nt.tmp",
            "/provio/prov_p1.nt.quarantine",
            "/provio/prov_p1.nt.d000011.nt.quarantine",
            "/provio/prov_p1.nt.w000000.nt",
            "/provio/prov_p1.nt.w000002.nt.tmp",
            "/provio/prov_p1.nt.w000002.nt.quarantine",
            "/provio/prov_p1.nt.p000000.par",
            "/provio/prov_p1.nt.p000004.par.tmp",
            "/provio/prov_p1.nt.p000004.par.quarantine",
        ] {
            assert_eq!(store_guid(p), base, "{p}");
        }
        assert_ne!(store_guid("/provio/prov_p2.nt"), base);
        // A name that merely resembles a segment suffix is left alone.
        assert_ne!(store_guid("/provio/d000001.nt"), base);
        // Turtle stores journal too: `prov_p1.ttl.w000000.nt` → `prov_p1.ttl`.
        assert_eq!(
            store_guid("/provio/prov_p1.ttl.w000001.nt"),
            store_guid("/provio/prov_p1.ttl")
        );
    }

    #[test]
    fn wal_paths_are_recognized() {
        assert!(is_wal_path("/provio/prov_p1.nt.w000000.nt"));
        assert!(is_wal_path("/provio/prov_p1.ttl.w000123.nt"));
        assert!(is_wal_path("/provio/prov_p1.nt.w000000.nt.tmp"));
        assert!(!is_wal_path("/provio/prov_p1.nt"));
        assert!(!is_wal_path("/provio/prov_p1.nt.d000001.nt"));
        assert!(!is_wal_path("/provio/w000001.nt"));
    }

    #[test]
    fn parity_paths_are_recognized() {
        assert!(is_parity_path("/provio/prov_p1.nt.p000000.par"));
        assert!(is_parity_path("/provio/prov_p1.ttl.p000123.par"));
        assert!(is_parity_path("/provio/prov_p1.nt.p000000.par.tmp"));
        assert!(!is_parity_path("/provio/prov_p1.nt"));
        assert!(!is_parity_path("/provio/prov_p1.nt.d000001.nt"));
        assert!(!is_parity_path("/provio/prov_p1.nt.w000001.nt"));
        assert!(!is_parity_path("/provio/p000001.par"));
        let (text, _) = encode(
            FrameKind::Parity,
            store_guid("/provio/prov_p1.nt"),
            0,
            CHAIN_START,
            "member crc=00000000 offset=0 len=0 ord=- path=/x\n",
            64,
        );
        let f = decode(&text).unwrap();
        assert_eq!(f.kind, FrameKind::Parity);
        assert!(f.intact());
    }

    fn wal_chunk(guid: u64, ordinal: u64, prev: u32, lines: &[&str]) -> (Vec<u8>, u32) {
        let mut enc = Encoder::new(FrameKind::Wal, guid, ordinal, prev);
        enc.batch(lines);
        enc.finish()
    }

    #[test]
    fn wal_round_trip_across_chunks() {
        let guid = store_guid("/provio/prov_p1.nt");
        let (c0, ch0) = wal_chunk(guid, 0, CHAIN_START, &["<urn:s0> <urn:p> <urn:o> .", "<urn:s1> <urn:p> <urn:o> ."]);
        let (c1, _) = wal_chunk(guid, 2, ch0, &["<urn:s2> <urn:p> <urn:o> ."]);
        let mut text = c0.clone();
        text.extend_from_slice(&c1);
        let wal = decode_wal(std::str::from_utf8(&text).unwrap(), guid);
        assert!(!wal.truncated);
        assert_eq!(wal.chunks, 2);
        assert_eq!(
            wal.records,
            vec![
                (0, "<urn:s0> <urn:p> <urn:o> .".to_string()),
                (1, "<urn:s1> <urn:p> <urn:o> .".to_string()),
                (2, "<urn:s2> <urn:p> <urn:o> .".to_string()),
            ]
        );
        // An empty journal decodes to nothing, cleanly.
        let empty = decode_wal("", guid);
        assert_eq!(empty.chunks, 0);
        assert!(!empty.truncated);
    }

    #[test]
    fn wal_torn_and_bit_rotted_tails_are_truncated_never_parsed() {
        let guid = store_guid("/provio/prov_p1.nt");
        let (c0, ch0) = wal_chunk(guid, 0, CHAIN_START, &["<urn:s0> <urn:p> <urn:o> ."]);
        let (c1, _) = wal_chunk(guid, 1, ch0, &["<urn:s1> <urn:p> <urn:o> ."]);

        // Torn tail: the second append only partially persisted.
        let mut torn = c0.clone();
        torn.extend_from_slice(&c1[..c1.len() / 2]);
        let wal = decode_wal(&String::from_utf8_lossy(&torn), guid);
        assert!(wal.truncated);
        assert_eq!(wal.chunks, 1);
        assert_eq!(wal.records.len(), 1);

        // Bit-rotted tail: every single-bit flip in the last chunk either
        // leaves the verified prefix intact or truncates — no flip ever
        // admits an altered record.
        let mut full = c0.clone();
        full.extend_from_slice(&c1);
        for i in c0.len()..full.len() {
            for bit in 0..8 {
                let mut copy = full.clone();
                copy[i] ^= 1 << bit;
                let wal = decode_wal(&String::from_utf8_lossy(&copy), guid);
                for (_, line) in &wal.records {
                    assert!(
                        line == "<urn:s0> <urn:p> <urn:o> ." || line == "<urn:s1> <urn:p> <urn:o> .",
                        "flip {i}:{bit} admitted forged record {line:?}"
                    );
                }
                assert!(
                    wal.truncated || wal.records.len() == 2,
                    "flip {i}:{bit} silently dropped a record"
                );
            }
        }

        // A chunk from another store's journal truncates the replay there.
        let foreign = store_guid("/provio/prov_p2.nt");
        let (evil, _) = wal_chunk(foreign, 1, ch0, &["<urn:evil> <urn:p> <urn:o> ."]);
        let mut sub = c0.clone();
        sub.extend_from_slice(&evil);
        let wal = decode_wal(&String::from_utf8_lossy(&sub), guid);
        assert!(wal.truncated);
        assert_eq!(wal.records.len(), 1);

        // A chain break (replayed/reordered chunk) truncates too.
        let (stale, _) = wal_chunk(guid, 1, 0xdead_beef, &["<urn:s1> <urn:p> <urn:o> ."]);
        let mut reordered = c0.clone();
        reordered.extend_from_slice(&stale);
        let wal = decode_wal(&String::from_utf8_lossy(&reordered), guid);
        assert!(wal.truncated);
        assert_eq!(wal.chunks, 1);
    }

    #[test]
    fn streaming_encoder_is_byte_identical_to_encode() {
        let guid = store_guid("/provio/prov_p3.nt");
        for batch_lines in [1, 2, 64] {
            let (blob, blob_chain) =
                encode(FrameKind::Delta, guid, 5, 0x1234_5678, PAYLOAD, batch_lines);
            let lines: Vec<&str> = PAYLOAD.lines().collect();
            let mut enc = Encoder::new(FrameKind::Delta, guid, 5, 0x1234_5678);
            enc.reserve(PAYLOAD.len());
            for chunk in lines.chunks(batch_lines) {
                enc.batch(chunk);
            }
            let (streamed, chain) = enc.finish();
            assert_eq!(streamed, blob.into_bytes(), "batch_lines={batch_lines}");
            assert_eq!(chain, blob_chain);
        }
        // Zero batches (empty payload) also matches.
        let (empty, _) = encode(FrameKind::Snapshot, guid, 0, CHAIN_START, "", 64);
        let (streamed, _) = Encoder::new(FrameKind::Snapshot, guid, 0, CHAIN_START).finish();
        assert_eq!(streamed, empty.into_bytes());
    }

    #[test]
    fn batch_block_is_byte_identical_to_batch() {
        let guid = store_guid("/provio/prov_p3.nt");
        let lines: Vec<&str> = PAYLOAD.lines().collect();
        let mut by_lines = Encoder::new(FrameKind::Wal, guid, 7, CHAIN_START);
        by_lines.batch(&lines);
        let (split, split_chain) = by_lines.finish();
        let mut by_block = Encoder::new(FrameKind::Wal, guid, 7, CHAIN_START);
        let block = format!("{}\n", PAYLOAD.trim_end_matches('\n'));
        by_block.batch_block(&block, lines.len());
        let (blocked, block_chain) = by_block.finish();
        assert_eq!(blocked, split);
        assert_eq!(block_chain, split_chain);
    }

    #[test]
    fn footer_root_round_trips_and_matches_every_recomputation() {
        let guid = store_guid("/provio/prov_p1.nt");
        for batch_lines in [1, 2, 64] {
            let (text, _) = encode(FrameKind::Snapshot, guid, 0, CHAIN_START, PAYLOAD, batch_lines);
            let f = decode(&text).unwrap();
            let declared = f.declared_root.expect("encode writes a root");
            assert_eq!(declared, f.computed_root, "intact file roots agree");
            assert_eq!(file_root(&text), Some(declared), "one-pass scan agrees");
            // The root is exactly the Merkle fold of the marker CRCs.
            let crcs: Vec<u32> = text
                .lines()
                .filter_map(parse_batch_marker)
                .map(|(_, crc)| crc)
                .collect();
            assert_eq!(crcs.len(), f.batches_total);
            assert_eq!(merkle_root(&crcs), declared);
        }
        // Roots commit to content, order, and batching.
        let (a, _) = encode(FrameKind::Snapshot, guid, 0, CHAIN_START, PAYLOAD, 1);
        let (b, _) = encode(FrameKind::Snapshot, guid, 0, CHAIN_START, PAYLOAD, 2);
        assert_ne!(file_root(&a), file_root(&b));
        let swapped = "<urn:a> <urn:p> <urn:c> .\n<urn:a> <urn:p> <urn:b> .\n<urn:b> <urn:p> <urn:c> .\n";
        let (c, _) = encode(FrameKind::Snapshot, guid, 0, CHAIN_START, swapped, 1);
        assert_ne!(file_root(&a), file_root(&c));
    }

    #[test]
    fn legacy_rootless_footers_still_decode() {
        // A PR 4–5 era file: same format minus the footer root.
        let guid = store_guid("/provio/prov_p1.nt");
        let (text, chain) = encode(FrameKind::Delta, guid, 3, 0xAB, PAYLOAD, 2);
        let rootless: String = text
            .lines()
            .map(|l| {
                if let Some(at) = l.find(" root=") {
                    &l[..at]
                } else {
                    l
                }
            })
            .flat_map(|l| [l, "\n"])
            .collect();
        let f = decode(&rootless).unwrap();
        assert!(f.intact());
        assert_eq!(f.chain, chain);
        assert_eq!(f.declared_root, None, "no root claimed");
        assert_eq!(f.payload, PAYLOAD);
    }

    #[test]
    fn root_mismatch_is_reported_not_enforced() {
        // An adversary rewrites a batch and patches its CRC: every batch
        // verifies, identity verifies — decode must accept (this tier only
        // proves internal consistency) while exposing the root mismatch
        // for the manifest tier to judge.
        let guid = store_guid("/provio/prov_p1.nt");
        let (text, _) = encode(FrameKind::Snapshot, guid, 0, CHAIN_START, PAYLOAD, 1);
        let victim = "<urn:a> <urn:p> <urn:c> .";
        let forged = "<urn:a> <urn:p> <urn:F> .";
        let mut crc = crc32fast::Hasher::new();
        crc.update(forged.as_bytes());
        crc.update(b"\n");
        let mut old = crc32fast::Hasher::new();
        old.update(victim.as_bytes());
        old.update(b"\n");
        let tampered = text
            .replace(victim, forged)
            .replace(
                &format!("crc={:08x}", old.finalize()),
                &format!("crc={:08x}", crc.finalize()),
            );
        let f = decode(&tampered).unwrap();
        assert!(f.intact(), "patched CRC verifies — that is the attack");
        assert!(f.payload.contains("<urn:F>"));
        assert_ne!(
            Some(f.computed_root),
            f.declared_root,
            "the footer root still convicts (until the adversary patches it too — then only the manifest can)"
        );
        // Footer-root damage that stays hex is likewise reported, not
        // enforced; non-hex damage condemns the footer line itself.
        let root_at = text.find(" root=").unwrap() + " root=".len();
        let mut hexflip = text.clone().into_bytes();
        hexflip[root_at] = if hexflip[root_at] == b'0' { b'1' } else { b'0' };
        let g = decode(std::str::from_utf8(&hexflip).unwrap()).unwrap();
        assert!(g.intact());
        assert_ne!(Some(g.computed_root), g.declared_root);
        let mut nonhex = text.into_bytes();
        nonhex[root_at] = b'z';
        assert_eq!(
            decode(std::str::from_utf8(&nonhex).unwrap()),
            Err(FrameError::Quarantine("malformed footer"))
        );
    }

    #[test]
    fn wal_generation_files_carry_a_recomputable_root() {
        let guid = store_guid("/provio/prov_p1.nt");
        let (c0, ch0) = wal_chunk(guid, 0, CHAIN_START, &["<urn:s0> <urn:p> <urn:o> ."]);
        let (c1, _) = wal_chunk(guid, 1, ch0, &["<urn:s1> <urn:p> <urn:o> ."]);
        let mut text = c0.clone();
        text.extend_from_slice(&c1);
        let whole = String::from_utf8(text).unwrap();
        let root = file_root(&whole).expect("wal generations are framed");
        // The root covers both chunks: reordering or dropping one changes it.
        let first_only = String::from_utf8(c0).unwrap();
        assert_ne!(file_root(&first_only), Some(root));
        // Legacy text has no root.
        assert_eq!(file_root(PAYLOAD), None);
        assert_eq!(file_root(""), None);
    }

    #[test]
    fn single_bit_flips_anywhere_are_never_silent() {
        let guid = store_guid("/provio/prov_p9.nt");
        let (text, _) = encode(FrameKind::Snapshot, guid, 0, CHAIN_START, PAYLOAD, 2);
        let clean = decode(&text).unwrap();
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut copy = bytes.to_vec();
                copy[i] ^= 1 << bit;
                // Flips may produce invalid UTF-8; lossy conversion models
                // what a text parser would see.
                let s = String::from_utf8_lossy(&copy).into_owned();
                match decode(&s) {
                    Err(FrameError::Quarantine(_)) => {}
                    Err(FrameError::NotFramed) => {
                        panic!("flip {i}:{bit} demoted a framed file to legacy")
                    }
                    Ok(f) => {
                        assert!(
                            f.batches_corrupt > 0
                                || (f.payload == clean.payload
                                    && f.guid == guid
                                    && f.ordinal == 0
                                    && f.chain == clean.chain),
                            "flip {i}:{bit} verified with altered content"
                        );
                        // Any payload that does verify is a subset of the
                        // clean batches, never altered data.
                        for line in f.payload.lines() {
                            assert!(
                                clean.payload.lines().any(|c| c == line),
                                "flip {i}:{bit} admitted forged line {line:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}
