//! The PROV-IO Syscall Wrapper: POSIX capture via interposition.
//!
//! Registered as a [`SyscallHook`] on the file-system dispatcher (the
//! GOTCHA stand-in), so POSIX-level workflows (Top Reco, DASSA's `.tdms`
//! side) are tracked without source changes. The wrapper maps syscalls to
//! the model's six `<<I/O API>>` classes and names the touched data object
//! (File / Directory / Link / inode-xattr Attribute).

use crate::tracker::{IoEvent, ObjectDesc, TrackerRegistry};
use provio_hpcfs::{SyscallEvent, SyscallHook, SyscallKind};
use provio_model::{ActivityClass, EntityClass};
use provio_simrt::VirtualClock;
use std::sync::Arc;

/// The syscall hook. Register with
/// `session.dispatcher().register(Arc::new(PosixWrapper::new(registry)))`.
pub struct PosixWrapper {
    registry: Arc<TrackerRegistry>,
}

impl PosixWrapper {
    pub fn new(registry: Arc<TrackerRegistry>) -> Self {
        PosixWrapper { registry }
    }

    /// Map a syscall to (activity class, tracked object), or `None` for
    /// calls outside the model (close, lseek, stat, readdir, listxattr).
    fn classify(event: &SyscallEvent) -> Option<(ActivityClass, Option<ObjectDesc>)> {
        let file_obj = || {
            event
                .path
                .as_ref()
                .map(|p| ObjectDesc::posix(EntityClass::File, p.clone()))
        };
        Some(match event.kind {
            SyscallKind::Creat => (ActivityClass::Create, file_obj()),
            SyscallKind::Open => (ActivityClass::Open, file_obj()),
            SyscallKind::Read | SyscallKind::Pread => (ActivityClass::Read, file_obj()),
            SyscallKind::Write | SyscallKind::Pwrite | SyscallKind::Truncate => {
                (ActivityClass::Write, file_obj())
            }
            SyscallKind::Fsync => (ActivityClass::Fsync, file_obj()),
            SyscallKind::Rename => (
                ActivityClass::Rename,
                // The object is the *destination* name — that is what
                // subsequent lineage refers to.
                event
                    .path2
                    .as_ref()
                    .map(|p| ObjectDesc::posix(EntityClass::File, p.clone())),
            ),
            SyscallKind::Unlink => (ActivityClass::Rename, file_obj()),
            SyscallKind::Mkdir => (
                ActivityClass::Create,
                event
                    .path
                    .as_ref()
                    .map(|p| ObjectDesc::posix(EntityClass::Directory, p.clone())),
            ),
            SyscallKind::Rmdir => (
                ActivityClass::Rename,
                event
                    .path
                    .as_ref()
                    .map(|p| ObjectDesc::posix(EntityClass::Directory, p.clone())),
            ),
            SyscallKind::Link | SyscallKind::Symlink => (
                ActivityClass::Create,
                event
                    .path2
                    .as_ref()
                    .map(|p| ObjectDesc::posix(EntityClass::Link, p.clone())),
            ),
            SyscallKind::SetXattr => (
                ActivityClass::Write,
                xattr_obj(event),
            ),
            SyscallKind::GetXattr => (ActivityClass::Read, xattr_obj(event)),
            SyscallKind::Close
            | SyscallKind::Lseek
            | SyscallKind::Stat
            | SyscallKind::Readdir
            | SyscallKind::ListXattr => return None,
        })
    }
}

fn xattr_obj(event: &SyscallEvent) -> Option<ObjectDesc> {
    match (&event.path, &event.attr_name) {
        (Some(p), Some(a)) => Some(ObjectDesc::hdf5(EntityClass::Attribute, p.clone(), format!("#{a}"))),
        (Some(p), None) => Some(ObjectDesc::posix(EntityClass::Attribute, p.clone())),
        _ => None,
    }
}

impl SyscallHook for PosixWrapper {
    fn on_syscall(&self, event: &SyscallEvent, _clock: &VirtualClock) {
        let Some(tracker) = self.registry.get(event.pid) else {
            return;
        };
        let Some((activity, object)) = Self::classify(event) else {
            return;
        };
        // The tracker charges its own measured time to the process clock.
        tracker.track_io(&IoEvent {
            activity,
            api_name: event.kind.name().to_string(),
            object,
            bytes: event.bytes,
            duration_ns: event.duration.as_nanos(),
            timestamp_ns: event.timestamp.as_nanos(),
            ok: event.ok,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProvIoConfig;
    use crate::tracker::ProvTracker;
    use provio_hpcfs::{Dispatcher, FileSystem, FsSession, LustreConfig, OpenFlags};
    use provio_model::ontology::nodes_of_class;
    use provio_rdf::turtle;

    fn rig() -> (Arc<FileSystem>, FsSession, Arc<ProvTracker>) {
        let fs = FileSystem::new(LustreConfig::default());
        let registry = TrackerRegistry::new();
        let clock = VirtualClock::new();
        let tracker = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            11,
            "Alice",
            "topreco",
            clock.clone(),
        );
        registry.register(11, Arc::clone(&tracker));
        let dispatcher = Dispatcher::new();
        dispatcher.register(Arc::new(PosixWrapper::new(registry)));
        let session = FsSession::new(Arc::clone(&fs), 11, "Alice", "topreco", clock, dispatcher);
        (fs, session, tracker)
    }

    fn graph_of(fs: &Arc<FileSystem>, tracker: &Arc<ProvTracker>) -> provio_rdf::Graph {
        let summary = tracker.finish();
        let ino = fs.lookup(&summary.store_path).unwrap();
        let size = fs.stat(&summary.store_path).unwrap().size;
        let text = String::from_utf8(fs.read_at(ino, 0, size).unwrap().to_vec()).unwrap();
        turtle::parse(&text).unwrap().0
    }

    #[test]
    fn posix_workflow_captured_transparently() {
        let (fs, s, tracker) = rig();
        s.mkdir("/data").unwrap();
        s.write_file("/data/events.root", b"events").unwrap();
        let data = s.read_file("/data/events.root").unwrap();
        assert_eq!(data, b"events");
        s.rename("/data/events.root", "/data/events.v2.root").unwrap();

        let g = graph_of(&fs, &tracker);
        use provio_model::{ActivityClass as A, EntityClass as E};
        assert!(!nodes_of_class(&g, A::Create.into()).is_empty());
        assert!(!nodes_of_class(&g, A::Read.into()).is_empty());
        assert!(!nodes_of_class(&g, A::Write.into()).is_empty());
        assert!(!nodes_of_class(&g, A::Rename.into()).is_empty());
        assert!(!nodes_of_class(&g, E::Directory.into()).is_empty());
        assert!(nodes_of_class(&g, E::File.into()).len() >= 2);
    }

    #[test]
    fn xattr_calls_become_attribute_entities() {
        let (fs, s, tracker) = rig();
        s.write_file("/f.h5", b"").unwrap();
        s.setxattr("/f.h5", "user.sample_rate", b"500").unwrap();
        s.getxattr("/f.h5", "user.sample_rate").unwrap();
        let g = graph_of(&fs, &tracker);
        let attrs = nodes_of_class(&g, EntityClass::Attribute.into());
        assert_eq!(attrs.len(), 1);
    }

    #[test]
    fn untracked_syscalls_ignored() {
        let (_, s, tracker) = rig();
        s.write_file("/x", b"1").unwrap();
        let before = tracker.event_count();
        s.stat("/x").unwrap();
        s.readdir("/").unwrap();
        let fd = s.open("/x", OpenFlags::rdonly()).unwrap();
        s.lseek(fd, 0, provio_hpcfs::Whence::Set).unwrap();
        s.close(fd).unwrap();
        // stat/readdir/lseek/close are outside the six I/O API classes; only
        // the `open` counts.
        assert_eq!(tracker.event_count(), before + 1);
    }

    #[test]
    fn failed_syscalls_leave_no_provenance() {
        let (_, s, tracker) = rig();
        assert!(s.open("/missing", OpenFlags::rdonly()).is_err());
        assert_eq!(tracker.event_count(), 0);
    }

    #[test]
    fn wrapper_charges_tracking_time_to_process() {
        let (_, s, _tracker) = rig();
        // Baseline: identical session without the wrapper.
        let fs2 = FileSystem::new(LustreConfig::default());
        let bare = FsSession::new(
            fs2,
            12,
            "Alice",
            "topreco",
            VirtualClock::new(),
            Dispatcher::new(),
        );
        for i in 0..50 {
            s.write_file(&format!("/t{i}"), b"x").unwrap();
            bare.write_file(&format!("/t{i}"), b"x").unwrap();
        }
        assert!(
            s.clock().now() > bare.clock().now(),
            "tracked session pays tracking overhead"
        );
    }
}
