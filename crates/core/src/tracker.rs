//! The core PROV-IO Library: per-process provenance capture.
//!
//! A [`ProvTracker`] is created per tracked process. Agent information is
//! recorded once at initialization; Entity and Activity records are created
//! per I/O event by the two tracking layers (VOL connector, syscall
//! wrapper) or by the explicit APIs. The tracker is real code doing real
//! work, and it bills itself honestly: every public call runs under a
//! [`ChargeGuard`] that adds its measured CPU time to the process's virtual
//! clock — that is the "tracking overhead" the experiments report.

use crate::collect::NetClient;
use crate::config::{ProvIoConfig, SerializationPolicy};
use crate::store::ProvenanceStore;
use parking_lot::Mutex;
use provio_model::{
    ontology, ActivityClass, AgentClass, ClassSelector, EntityClass, ExtensibleClass, Guid,
    GuidGen, PropKey, ProvNode, ProvRecord, Relation, TrackItem,
};
use provio_rdf::{ns, Iri, Term, Triple};
use provio_simrt::{ChargeGuard, VirtualClock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Description of the data object an I/O event touched.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectDesc {
    pub class: EntityClass,
    /// Containing file path for library-interior objects; empty for
    /// POSIX-level objects.
    pub scope: String,
    /// Path/name of the object.
    pub path: String,
}

impl ObjectDesc {
    pub fn posix(class: EntityClass, path: impl Into<String>) -> Self {
        ObjectDesc {
            class,
            scope: String::new(),
            path: path.into(),
        }
    }

    pub fn hdf5(class: EntityClass, file: impl Into<String>, path: impl Into<String>) -> Self {
        ObjectDesc {
            class,
            scope: file.into(),
            path: path.into(),
        }
    }

    /// The object's content-addressed GUID (stable across processes).
    pub fn guid(&self) -> Guid {
        GuidGen::data_object(
            match self.class {
                EntityClass::Directory => "Directory",
                EntityClass::File => "File",
                EntityClass::Group => "Group",
                EntityClass::Dataset => "Dataset",
                EntityClass::Attribute => "Attribute",
                EntityClass::Datatype => "Datatype",
                EntityClass::Link => "Link",
            },
            &self.scope,
            &self.path,
        )
    }

    /// Human-readable label (`file:inner/path` for library objects).
    pub fn label(&self) -> String {
        if self.scope.is_empty() {
            self.path.clone()
        } else {
            format!("{}:{}", self.scope, self.path)
        }
    }
}

/// One observed I/O operation.
#[derive(Debug, Clone)]
pub struct IoEvent {
    pub activity: ActivityClass,
    /// Concrete API name ("H5Dwrite", "pwrite", …).
    pub api_name: String,
    pub object: Option<ObjectDesc>,
    pub bytes: u64,
    pub duration_ns: u64,
    pub timestamp_ns: u64,
    pub ok: bool,
}

/// Summary returned by [`ProvTracker::finish`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrackSummary {
    pub events: u64,
    pub triples: u64,
    pub store_bytes: u64,
    pub store_path: String,
    /// The final flush failed; `store_bytes` is 0 but the sub-graph was
    /// kept in memory, not silently lost.
    pub degraded: bool,
    /// errno name of the most recent store error, if any.
    pub last_error: Option<String>,
    /// Store flushes dropped over the tracker's lifetime.
    pub dropped_flushes: u64,
    /// Push batches dropped by the `Shed` overload policy.
    pub shed_batches: u64,
    /// Triples inside those shed batches (honest loss accounting:
    /// `triples` counts everything offered, this says what never landed).
    pub shed_triples: u64,
    /// Times the store's circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Periodic flushes skipped while the breaker was open (skipped, not
    /// lost — the triples stayed buffered above the watermark).
    pub breaker_skipped: u64,
    /// Final breaker state: `"closed"`, `"open"`, or `"half-open"`.
    pub breaker_state: String,
    /// Records group-committed to the write-ahead journal (0 with the
    /// journal disabled).
    pub wal_records: u64,
    /// Journal group commits performed.
    pub wal_commits: u64,
    /// Journal generations recycled after a successful flush.
    pub wal_recycles: u64,
    /// Store commit attempts retried after a transient failure. Before
    /// this counter a retried flush that recovered was invisible — only
    /// policy exhaustion flipped `degraded`.
    pub flush_retries: u64,
    /// Batches offered to the streaming pipeline (0 when not streaming).
    pub net_sent: u64,
    /// Batches the collector acked.
    pub net_acked: u64,
    /// Retransmissions after timeouts (loss, lost acks, partitions,
    /// collector crashes).
    pub net_retries: u64,
    /// Batches the `Shed` policy dropped from the stream at a full send
    /// buffer (still durable in the store, so not lost from the merge).
    pub net_shed_batches: u64,
    /// Triples inside those shed batches.
    pub net_shed_triples: u64,
    /// Batches still unacked when the rank finished (e.g. the run ended
    /// inside a partition) — the stream's gap, owned by the store.
    pub net_unacked: u64,
}

/// Per-process provenance capture state.
pub struct ProvTracker {
    config: Arc<ProvIoConfig>,
    guids: GuidGen,
    clock: VirtualClock,
    store: ProvenanceStore,
    program_guid: Guid,
    thread_guid: Guid,
    state: Mutex<TrackState>,
    events: std::sync::atomic::AtomicU64,
    /// Cached result of the first `finish()` call, making later calls
    /// idempotent (no re-flush, no double counting).
    finished: Mutex<Option<TrackSummary>>,
    /// Streaming client, when the run collects live (`net` knob + an
    /// armed collector). Batches are offered to it only after
    /// [`ProvenanceStore::wal_sync`], so an ack always references
    /// journal-durable records.
    net: Mutex<Option<Arc<NetClient>>>,
}

/// Pump rounds the final drain gives a struggling fabric before handing
/// the leftovers to the durable store (each round charges at least one
/// full timeout per buffered batch, so bounded partitions heal well
/// within it).
const NET_DRAIN_ROUNDS: u32 = 64;

#[derive(Default)]
struct TrackState {
    /// Node GUIDs whose type/label triples were already emitted.
    emitted_nodes: HashSet<Guid>,
    pending: Vec<Triple>,
    pending_records: usize,
    triples_total: u64,
    /// Configuration version counters by name.
    config_versions: HashMap<String, u64>,
    /// GUIDs of the most recent version of each configuration.
    current_configs: Vec<Guid>,
    /// name → GUID of its latest version (for supersession links).
    config_last_guid: HashMap<String, Guid>,
    /// Last metric (name, value) seen — written onto the current
    /// configuration versions once, at finish.
    last_metric: Option<(String, f64)>,
}

impl ProvTracker {
    /// Initialize tracking for one process. Records the Agent chain
    /// (Program → Thread → User, per Figure 4(b) and Table 5 q7–q9) and
    /// the workflow Type node, subject to the selector.
    pub fn new(
        config: Arc<ProvIoConfig>,
        fs: Arc<provio_hpcfs::FileSystem>,
        pid: u32,
        user: &str,
        program: &str,
        clock: VirtualClock,
    ) -> Arc<Self> {
        let store_path = format!(
            "{}/prov_p{}.{}",
            config.store_dir.trim_end_matches('/'),
            pid,
            config.format.extension()
        );
        let store = ProvenanceStore::new(fs, store_path, config.format, config.async_store)
            .with_retry(config.retry)
            .with_delta(config.delta_segments, config.compact_every)
            .with_queue(config.queue_capacity, config.overload)
            .with_breaker(config.breaker_threshold, config.breaker_backoff_ns)
            .with_checksums(config.checksum_format)
            .with_wal(config.wal, config.wal_group)
            .with_parity(config.parity, config.parity_group)
            .with_clock(clock.clone());
        let program_guid = GuidGen::agent("Program", program);
        let thread_guid = GuidGen::agent("Thread", &format!("{program}-rank{pid}"));
        let tracker = Arc::new(ProvTracker {
            config,
            guids: GuidGen::new(pid),
            clock,
            store,
            program_guid,
            thread_guid,
            state: Mutex::new(TrackState::default()),
            events: std::sync::atomic::AtomicU64::new(0),
            finished: Mutex::new(None),
            net: Mutex::new(None),
        });
        tracker.record_agents(user, program, pid);
        tracker
    }

    fn selector(&self) -> &ClassSelector {
        &self.config.selector
    }

    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    pub fn store(&self) -> &ProvenanceStore {
        &self.store
    }

    /// Arm live streaming: every flushed batch is journal-synced and
    /// then offered to `client`. First attachment wins — a tracker
    /// streams to one collector for its whole life, so sequence numbers
    /// stay meaningful.
    pub fn attach_net(&self, client: Arc<NetClient>) {
        let mut net = self.net.lock();
        if net.is_none() {
            *net = Some(client);
        }
    }

    /// The streaming client, when one is attached.
    pub fn net(&self) -> Option<Arc<NetClient>> {
        self.net.lock().clone()
    }

    pub fn program_guid(&self) -> &Guid {
        &self.program_guid
    }

    fn record_agents(&self, user: &str, program: &str, pid: u32) {
        let _guard = ChargeGuard::new(&self.clock);
        let mut st = self.state.lock();
        let user_guid = GuidGen::agent("User", user);

        if self.selector().is_enabled(AgentClass::User) {
            let rec = ProvRecord::new(ProvNode::new(user_guid.clone(), AgentClass::User, user));
            self.emit_record(&mut st, rec);
        }
        if self.selector().is_enabled(AgentClass::Thread) {
            let mut rec = ProvRecord::new(
                ProvNode::new(
                    self.thread_guid.clone(),
                    AgentClass::Thread,
                    format!("{program}-rank{pid}"),
                )
                .with_prop(PropKey::Rank, pid as u64),
            );
            if self.selector().is_enabled(AgentClass::User) {
                rec = rec.with_relation(Relation::ActedOnBehalfOf, user_guid.clone());
            }
            self.emit_record(&mut st, rec);
        }
        if self.selector().is_enabled(AgentClass::Program) {
            let mut rec = ProvRecord::new(ProvNode::new(
                self.program_guid.clone(),
                AgentClass::Program,
                program,
            ));
            if self.selector().is_enabled(AgentClass::Thread) {
                rec = rec.with_relation(Relation::ActedOnBehalfOf, self.thread_guid.clone());
            } else if self.selector().is_enabled(AgentClass::User) {
                rec = rec.with_relation(Relation::ActedOnBehalfOf, user_guid.clone());
            }
            self.emit_record(&mut st, rec);
        }
        if let Some(wf_type) = &self.config.workflow_type {
            if self.selector().is_enabled(ExtensibleClass::Type) {
                let g = GuidGen::extensible("Type", wf_type);
                let mut rec =
                    ProvRecord::new(ProvNode::new(g, ExtensibleClass::Type, wf_type.clone()));
                if self.selector().is_enabled(AgentClass::Program) {
                    rec = rec.with_relation(Relation::WasAttributedTo, self.program_guid.clone());
                }
                self.emit_record(&mut st, rec);
            }
        }
        drop(st);
        self.maybe_flush();
    }

    /// Emit a record's triples into the pending buffer, writing node
    /// type/label triples only on first sight of the GUID.
    fn emit_record(&self, st: &mut TrackState, rec: ProvRecord) {
        let first_sight = st.emitted_nodes.insert(rec.node.id.clone());
        let subject = rec.node.id.to_subject();
        if first_sight {
            st.pending.push(Triple::new(
                subject.clone(),
                Iri::new(ns::RDF_TYPE),
                Term::iri(rec.node.class.iri()),
            ));
            st.pending.push(Triple::new(
                subject.clone(),
                Iri::new(ns::RDFS_LABEL),
                provio_rdf::Literal::plain(rec.node.label.clone()),
            ));
        }
        // Properties and relations are per-record.
        let mut tmp = Vec::with_capacity(rec.node.properties.len() + rec.relations.len());
        ontology::record_triples_into(&rec, &mut tmp);
        // Skip the first two (type/label) we just handled.
        st.pending.extend(tmp.into_iter().skip(2));
        st.pending_records += 1;
    }

    fn maybe_flush(&self) {
        let drained = {
            let mut st = self.state.lock();
            let should = match self.config.policy {
                SerializationPolicy::AtEnd => st.pending.len() >= 4096,
                SerializationPolicy::EveryRecords(n) => st.pending_records >= n,
            };
            if should || st.pending.len() >= 4096 {
                st.pending_records = 0;
                st.triples_total += st.pending.len() as u64;
                Some(std::mem::take(&mut st.pending))
            } else {
                None
            }
        };
        if let Some(ts) = drained {
            let net = self.net.lock().clone();
            let streamed = net.as_ref().map(|_| ts.clone());
            self.store.push(ts, Some(&self.clock));
            if matches!(self.config.policy, SerializationPolicy::EveryRecords(_)) {
                self.store.flush(if self.config.async_store {
                    None
                } else {
                    Some(&self.clock)
                });
            }
            if let (Some(client), Some(batch)) = (net, streamed) {
                // Journal first, stream second: the collector's ack must
                // never reference records only this process held.
                self.store.wal_sync();
                client.send(batch);
            }
        }
    }

    /// Track one I/O event (called by the connector and the wrapper).
    pub fn track_io(&self, event: &IoEvent) {
        if !event.ok {
            return; // failed native calls leave no provenance
        }
        // Granularity rule (paper §6.2): with entity tracking enabled,
        // events on objects below the enabled granularity are invisible —
        // that is why attribute lineage tracks more operations than file
        // lineage. With no entity class enabled (H5bench scenarios), every
        // I/O API is tracked, object-less.
        if let Some(obj) = &event.object {
            if self.selector().any_entity_enabled() && !self.selector().is_enabled(obj.class) {
                return;
            }
        }
        let activity_on = self.selector().is_enabled(event.activity);
        let entity_on = event
            .object
            .as_ref()
            .is_some_and(|o| self.selector().is_enabled(o.class));
        if !activity_on && !entity_on {
            return;
        }
        let _guard = ChargeGuard::new(&self.clock);
        self.clock.advance(provio_simrt::SimDuration::from_nanos(
            self.config.record_latency_ns,
        ));
        self.events
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

        let mut st = self.state.lock();
        let mut activity_guid = None;
        if activity_on {
            let guid = self.guids.activity(&event.api_name);
            let mut node = ProvNode::new(guid.clone(), event.activity, event.api_name.clone());
            if self.selector().is_enabled(TrackItem::Duration) {
                node = node
                    .with_prop(PropKey::ElapsedNs, event.duration_ns)
                    .with_prop(PropKey::TimestampNs, event.timestamp_ns);
            }
            if self.selector().is_enabled(TrackItem::ByteCounts) && event.bytes > 0 {
                node = node.with_prop(PropKey::Bytes, event.bytes);
            }
            let mut rec = ProvRecord::new(node);
            if self.selector().is_enabled(AgentClass::Program) {
                rec = rec.with_relation(Relation::WasAssociatedWith, self.program_guid.clone());
            } else if self.selector().is_enabled(AgentClass::Thread) {
                rec = rec.with_relation(Relation::WasAssociatedWith, self.thread_guid.clone());
            }
            self.emit_record(&mut st, rec);
            // Membership triple enabling Table 5 q4:
            //   ?IO_API prov:wasMemberOf prov:Activity
            st.pending.push(Triple::new(
                guid.to_subject(),
                Iri::new(Relation::WasMemberOf.iri()),
                Term::iri(format!("{}Activity", ns::PROV)),
            ));
            activity_guid = Some(guid);
        }

        if let Some(obj) = &event.object {
            if self.selector().is_enabled(obj.class) {
                let guid = obj.guid();
                let mut rec =
                    ProvRecord::new(ProvNode::new(guid.clone(), obj.class, obj.label()));
                if let Some(act) = &activity_guid {
                    rec = rec
                        .with_relation(Relation::for_activity(event.activity), act.clone());
                }
                // Write-like operations attribute the object to the program
                // (what DASSA's backward-lineage queries walk, Table 5 q1).
                if matches!(
                    event.activity,
                    ActivityClass::Create
                        | ActivityClass::Write
                        | ActivityClass::Fsync
                        | ActivityClass::Rename
                ) && self.selector().is_enabled(AgentClass::Program)
                {
                    rec = rec.with_relation(Relation::WasAttributedTo, self.program_guid.clone());
                }
                self.emit_record(&mut st, rec);
            }
        }
        drop(st);
        self.maybe_flush();
    }

    /// Explicit API: record a configuration value (Top Reco). Each call
    /// creates a new version node — the "automatic version control" the
    /// paper's ML use case needs.
    pub fn track_configuration(&self, name: &str, value: &str) -> Option<Guid> {
        if !self.selector().is_enabled(ExtensibleClass::Configuration) {
            return None;
        }
        let _guard = ChargeGuard::new(&self.clock);
        self.clock.advance(provio_simrt::SimDuration::from_nanos(
            self.config.record_latency_ns,
        ));
        let mut st = self.state.lock();
        let version = {
            let v = st.config_versions.entry(name.to_string()).or_insert(0);
            *v += 1;
            *v
        };
        // Value-addressed GUID: the same (name, version, value) triple in
        // any run is the same node (multi-run integration merges them);
        // different values never collide.
        let guid = GuidGen::extensible(
            "Configuration",
            &format!(
                "{name}-v{version}-{:08x}",
                provio_model::content_hash(value) as u32
            ),
        );
        let mut rec = ProvRecord::new(
            ProvNode::new(guid.clone(), ExtensibleClass::Configuration, name)
                .with_prop(PropKey::Version, version)
                .with_prop(PropKey::Value, value),
        );
        if self.selector().is_enabled(AgentClass::Program) {
            rec = rec.with_relation(Relation::WasAttributedTo, self.program_guid.clone());
        }
        // New version supersedes the previous one.
        if let Some(prev) = st.config_last_guid.get(name).cloned() {
            rec = rec.with_relation(Relation::WasDerivedFrom, prev.clone());
            st.current_configs.retain(|g| *g != prev);
        }
        self.emit_record(&mut st, rec);
        st.config_last_guid.insert(name.to_string(), guid.clone());
        st.current_configs.push(guid.clone());
        drop(st);
        self.maybe_flush();
        Some(guid)
    }

    /// Explicit API: record a metric (e.g. per-epoch training accuracy) and
    /// attach it to the current configuration versions (paper §6.2: "add
    /// the training accuracy to the provenance graph as a property of
    /// configurations").
    pub fn track_metric(&self, name: &str, value: f64) -> Option<Guid> {
        if !self.selector().is_enabled(ExtensibleClass::Metrics) {
            return None;
        }
        let _guard = ChargeGuard::new(&self.clock);
        self.clock.advance(provio_simrt::SimDuration::from_nanos(
            self.config.record_latency_ns,
        ));
        let mut st = self.state.lock();
        let n = self.guids.activity(name); // unique per call
        let guid = GuidGen::extensible("Metrics", n.local());
        let mut rec = ProvRecord::new(
            ProvNode::new(guid.clone(), ExtensibleClass::Metrics, name)
                .with_prop(PropKey::Accuracy, value),
        );
        if self.selector().is_enabled(AgentClass::Program) {
            rec = rec.with_relation(Relation::WasAttributedTo, self.program_guid.clone());
        }
        self.emit_record(&mut st, rec);
        // The mapping the use case needs — accuracy as a property of the
        // configurations (Table 5 q10/q11) — is written once, at finish,
        // for the final metric value; per-epoch history lives in the
        // Metrics nodes. This keeps storage linear in configs + epochs
        // separately (Figure 8(d-f)).
        st.last_metric = Some((name.to_string(), value));
        drop(st);
        self.maybe_flush();
        Some(guid)
    }

    /// Explicit API: record a direct derivation between two data objects.
    pub fn track_derivation(&self, output: &ObjectDesc, input: &ObjectDesc) {
        if !self.selector().is_enabled(output.class) || !self.selector().is_enabled(input.class) {
            return;
        }
        let _guard = ChargeGuard::new(&self.clock);
        let mut st = self.state.lock();
        let out_rec = ProvRecord::new(ProvNode::new(output.guid(), output.class, output.label()))
            .with_relation(Relation::WasDerivedFrom, input.guid());
        // Make sure the input node exists too.
        let in_rec = ProvRecord::new(ProvNode::new(input.guid(), input.class, input.label()));
        self.emit_record(&mut st, in_rec);
        self.emit_record(&mut st, out_rec);
        drop(st);
        self.maybe_flush();
    }

    /// Number of I/O events tracked.
    pub fn event_count(&self) -> u64 {
        self.events.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Finalize: drain pending triples, flush the store, return a summary.
    ///
    /// Idempotent: the first call does the work, later calls (a registry
    /// sweep after an explicit per-rank finish, a double `finish_all`)
    /// return the cached summary without re-flushing or double-counting.
    pub fn finish(&self) -> TrackSummary {
        let mut finished = self.finished.lock();
        if let Some(summary) = finished.as_ref() {
            return summary.clone();
        }
        let drained = {
            let mut st = self.state.lock();
            if let Some((_, value)) = st.last_metric.take() {
                for cfg in st.current_configs.clone() {
                    st.pending.push(Triple::new(
                        cfg.to_subject(),
                        Iri::new(PropKey::Accuracy.iri()),
                        provio_rdf::Literal::double(value),
                    ));
                }
            }
            st.triples_total += st.pending.len() as u64;
            st.pending_records = 0;
            std::mem::take(&mut st.pending)
        };
        let net = self.net.lock().clone();
        if !drained.is_empty() {
            let streamed = net.as_ref().map(|_| drained.clone());
            self.store.push(drained, Some(&self.clock));
            if let (Some(client), Some(batch)) = (net.as_ref(), streamed) {
                self.store.wal_sync();
                client.send(batch);
            }
        }
        let store_bytes = self.store.finish(if self.config.async_store {
            None
        } else {
            Some(&self.clock)
        });
        // Final drain: give buffered batches a bounded budget to reach
        // the collector. Whatever stays unacked is accounted below and
        // still durable on disk — resync or the post-hoc merge owns it.
        let net_stats = net.map(|client| client.drain(NET_DRAIN_ROUNDS));
        let st = self.state.lock();
        let summary = TrackSummary {
            events: self.event_count(),
            triples: st.triples_total,
            store_bytes,
            store_path: self.store.path().to_string(),
            degraded: self.store.degraded(),
            last_error: self.store.last_error().map(|e| e.errno_name().to_string()),
            dropped_flushes: self.store.dropped_flushes(),
            shed_batches: self.store.shed_batches(),
            shed_triples: self.store.shed_triples(),
            breaker_trips: self.store.breaker_trips(),
            breaker_skipped: self.store.breaker_skipped(),
            breaker_state: self.store.breaker_state().as_str().to_string(),
            wal_records: self.store.wal_records(),
            wal_commits: self.store.wal_commits(),
            wal_recycles: self.store.wal_recycles(),
            flush_retries: self.store.flush_retries(),
            net_sent: net_stats.map_or(0, |s| s.sent_batches),
            net_acked: net_stats.map_or(0, |s| s.acked_batches),
            net_retries: net_stats.map_or(0, |s| s.retries),
            net_shed_batches: net_stats.map_or(0, |s| s.shed_batches),
            net_shed_triples: net_stats.map_or(0, |s| s.shed_triples),
            net_unacked: net_stats.map_or(0, |s| s.unacked_batches),
        };
        *finished = Some(summary.clone());
        summary
    }
}

impl Drop for ProvTracker {
    fn drop(&mut self) {
        // A process that never reached `finish` (crash, replaced tracker)
        // must not lose its buffered records: drain them into the store,
        // whose own Drop performs the final write.
        let drained = {
            let mut st = self.state.lock();
            std::mem::take(&mut st.pending)
        };
        if !drained.is_empty() {
            self.store.push(drained, None);
        }
        self.store.flush(None);
    }
}

/// pid → tracker map shared by the VOL connector and the syscall wrapper,
/// so each process's events land in its own sub-graph.
#[derive(Default)]
pub struct TrackerRegistry {
    trackers: Mutex<HashMap<u32, Arc<ProvTracker>>>,
}

impl TrackerRegistry {
    pub fn new() -> Arc<Self> {
        Arc::new(TrackerRegistry::default())
    }

    pub fn register(&self, pid: u32, tracker: Arc<ProvTracker>) {
        self.trackers.lock().insert(pid, tracker);
    }

    pub fn get(&self, pid: u32) -> Option<Arc<ProvTracker>> {
        self.trackers.lock().get(&pid).cloned()
    }

    pub fn unregister(&self, pid: u32) -> Option<Arc<ProvTracker>> {
        self.trackers.lock().remove(&pid)
    }

    /// Finish every registered tracker, returning per-pid summaries.
    /// Idempotent, because [`ProvTracker::finish`] is: a second sweep
    /// returns the same cached summaries.
    ///
    /// With the `manifest` knob armed, the run is then *sealed*: a signed
    /// manifest of every committed file's content root is committed to the
    /// store directory and its digest chained into the campaign ledger
    /// (see [`crate::verify`]). Sealing is idempotent too — a second
    /// sweep re-signs byte-identical bytes and the ledger skips the
    /// duplicate digest. Ranks that crashed before this sweep still have
    /// their surviving files signed: the manifest walks the directory, not
    /// the registry.
    pub fn finish_all(&self) -> Vec<(u32, TrackSummary)> {
        let trackers: Vec<(u32, Arc<ProvTracker>)> = {
            let map = self.trackers.lock();
            map.iter().map(|(p, t)| (*p, Arc::clone(t))).collect()
        };
        let mut out: Vec<(u32, TrackSummary)> = trackers
            .into_iter()
            .map(|(pid, t)| (pid, t.finish()))
            .collect();
        out.sort_by_key(|(pid, _)| *pid);
        let (signer, roots) = {
            let map = self.trackers.lock();
            let signer = map.values().find(|t| t.config.manifest).cloned();
            // Every surviving store's commit-time roots, so the seal can
            // skip re-reading files the run itself just wrote. Crashed
            // ranks' files simply miss the cache and are read back.
            let mut roots = crate::verify::RootCache::new();
            if signer.is_some() {
                for t in map.values() {
                    for (path, n, root) in t.store.committed_roots() {
                        roots.insert(path, (n, root));
                    }
                }
            }
            (signer, roots)
        };
        if let Some(t) = signer {
            let ranks: Vec<crate::verify::RankEntry> = out
                .iter()
                .map(|(pid, s)| crate::verify::RankEntry {
                    pid: *pid,
                    degraded: s.degraded,
                    triples: s.triples,
                })
                .collect();
            // A failed seal degrades trust, not the run: the summaries and
            // the data files stand either way, and `verify` will report
            // the directory unsigned or unsealed.
            let _ = crate::verify::seal_run_with_roots(
                t.store.fs(),
                t.config.store_dir.trim_end_matches('/'),
                &t.config.manifest_key,
                &ranks,
                &roots,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_hpcfs::{FileSystem, LustreConfig};
    use provio_model::ontology::nodes_of_class;
    use provio_rdf::{turtle, Graph};

    fn fs() -> Arc<FileSystem> {
        FileSystem::new(LustreConfig::default())
    }

    fn read_graph(fs: &Arc<FileSystem>, path: &str) -> Graph {
        let ino = fs.lookup(path).unwrap();
        let size = fs.stat(path).unwrap().size;
        let text = String::from_utf8(fs.read_at(ino, 0, size).unwrap().to_vec()).unwrap();
        turtle::parse(&text).unwrap().0
    }

    fn event(activity: ActivityClass, api: &str, obj: Option<ObjectDesc>) -> IoEvent {
        IoEvent {
            activity,
            api_name: api.to_string(),
            object: obj,
            bytes: 4096,
            duration_ns: 1000,
            timestamp_ns: 5000,
            ok: true,
        }
    }

    #[test]
    fn agents_recorded_with_delegation_chain() {
        let fs = fs();
        let cfg = ProvIoConfig::default().shared();
        let t = ProvTracker::new(
            cfg,
            Arc::clone(&fs),
            0,
            "Bob",
            "vpicio_uni_h5",
            VirtualClock::new(),
        );
        let summary = t.finish();
        let g = read_graph(&fs, &summary.store_path);
        assert_eq!(nodes_of_class(&g, AgentClass::User.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, AgentClass::Thread.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, AgentClass::Program.into()).len(), 1);
        // program actedOnBehalfOf thread actedOnBehalfOf user (Table 5 q8/q9)
        let rels = provio_model::ontology::relations_from_graph(&g, t.program_guid());
        assert!(rels
            .iter()
            .any(|(r, _)| *r == Relation::ActedOnBehalfOf));
    }

    #[test]
    fn io_event_creates_activity_and_entity() {
        let fs = fs();
        let t = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            1,
            "Bob",
            "decimate",
            VirtualClock::new(),
        );
        t.track_io(&event(
            ActivityClass::Write,
            "H5Dwrite",
            Some(ObjectDesc::hdf5(EntityClass::Dataset, "/f.h5", "/Timestep_0/x")),
        ));
        let summary = t.finish();
        assert_eq!(summary.events, 1);
        let g = read_graph(&fs, &summary.store_path);
        let acts = nodes_of_class(&g, ActivityClass::Write.into());
        assert_eq!(acts.len(), 1);
        let ents = nodes_of_class(&g, EntityClass::Dataset.into());
        assert_eq!(ents.len(), 1);
        let rels = provio_model::ontology::relations_from_graph(&g, &ents[0]);
        assert!(rels.iter().any(|(r, g2)| *r == Relation::WasWrittenBy && g2 == &acts[0]));
        assert!(rels.iter().any(|(r, _)| *r == Relation::WasAttributedTo));
    }

    #[test]
    fn selector_gates_tracking() {
        let fs = fs();
        let cfg = ProvIoConfig::default()
            .with_selector(ClassSelector::dassa_file_lineage())
            .shared();
        let t = ProvTracker::new(cfg, Arc::clone(&fs), 2, "Bob", "tdms2h5", VirtualClock::new());
        // Dataset tracking disabled under file-lineage preset.
        t.track_io(&event(
            ActivityClass::Write,
            "H5Dwrite",
            Some(ObjectDesc::hdf5(EntityClass::Dataset, "/f.h5", "/d")),
        ));
        // File tracking enabled.
        t.track_io(&event(
            ActivityClass::Create,
            "H5Fcreate",
            Some(ObjectDesc::posix(EntityClass::File, "/f.h5")),
        ));
        let summary = t.finish();
        let g = read_graph(&fs, &summary.store_path);
        assert!(nodes_of_class(&g, EntityClass::Dataset.into()).is_empty());
        assert_eq!(nodes_of_class(&g, EntityClass::File.into()).len(), 1);
        // User agent disabled in this preset.
        assert!(nodes_of_class(&g, AgentClass::User.into()).is_empty());
    }

    #[test]
    fn duration_property_gated() {
        let fs = fs();
        let cfg = ProvIoConfig::default()
            .with_selector(ClassSelector::h5bench_scenario1())
            .shared();
        let t = ProvTracker::new(cfg, Arc::clone(&fs), 3, "Bob", "h5bench", VirtualClock::new());
        t.track_io(&event(ActivityClass::Read, "H5Dread", None));
        let summary = t.finish();
        let g = read_graph(&fs, &summary.store_path);
        let acts = nodes_of_class(&g, ActivityClass::Read.into());
        assert_eq!(acts.len(), 1);
        let node = provio_model::ontology::node_from_graph(&g, &acts[0]).unwrap();
        assert!(node.prop(PropKey::ElapsedNs).is_none(), "scenario 1 has no durations");

        // Scenario 2 records them.
        let cfg2 = ProvIoConfig::default()
            .with_selector(ClassSelector::h5bench_scenario2())
            .with_store_dir("/provio2")
            .shared();
        let t2 = ProvTracker::new(cfg2, Arc::clone(&fs), 4, "Bob", "h5bench", VirtualClock::new());
        t2.track_io(&event(ActivityClass::Read, "H5Dread", None));
        let s2 = t2.finish();
        let g2 = read_graph(&fs, &s2.store_path);
        let acts2 = nodes_of_class(&g2, ActivityClass::Read.into());
        let node2 = provio_model::ontology::node_from_graph(&g2, &acts2[0]).unwrap();
        assert!(node2.prop(PropKey::ElapsedNs).is_some());
    }

    #[test]
    fn failed_events_not_tracked() {
        let fs = fs();
        let t = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            5,
            "Bob",
            "p",
            VirtualClock::new(),
        );
        let mut ev = event(ActivityClass::Open, "open", None);
        ev.ok = false;
        t.track_io(&ev);
        assert_eq!(t.finish().events, 0);
    }

    #[test]
    fn configuration_versions_and_metrics() {
        let fs = fs();
        let cfg = ProvIoConfig::default()
            .with_selector(ClassSelector::topreco())
            .shared();
        let t = ProvTracker::new(cfg, Arc::clone(&fs), 6, "Alice", "topreco", VirtualClock::new());
        t.track_configuration("learning_rate", "0.01").unwrap();
        t.track_configuration("learning_rate", "0.001").unwrap();
        t.track_configuration("batch_size", "64").unwrap();
        t.track_metric("accuracy", 0.91).unwrap();
        let summary = t.finish();
        let g = read_graph(&fs, &summary.store_path);
        let cfgs = nodes_of_class(&g, ExtensibleClass::Configuration.into());
        assert_eq!(cfgs.len(), 3, "two lr versions + one batch_size");
        let metrics = nodes_of_class(&g, ExtensibleClass::Metrics.into());
        assert_eq!(metrics.len(), 1);
        // v2 of learning_rate derives from v1.
        let v2 = GuidGen::extensible(
            "Configuration",
            &format!("learning_rate-v2-{:08x}", provio_model::content_hash("0.001") as u32),
        );
        let rels = provio_model::ontology::relations_from_graph(&g, &v2);
        assert!(rels.iter().any(|(r, _)| *r == Relation::WasDerivedFrom));
        // Accuracy attached to current configuration nodes.
        let node = provio_model::ontology::node_from_graph(&g, &v2).unwrap();
        assert_eq!(node.prop(PropKey::Accuracy), Some(&provio_model::PropValue::Float(0.91)));
    }

    #[test]
    fn tracking_disabled_apis_return_none() {
        let fs = fs();
        let cfg = ProvIoConfig::default()
            .with_selector(ClassSelector::h5bench_scenario1())
            .shared();
        let t = ProvTracker::new(cfg, Arc::clone(&fs), 7, "A", "p", VirtualClock::new());
        assert!(t.track_configuration("x", "1").is_none());
        assert!(t.track_metric("m", 0.5).is_none());
    }

    #[test]
    fn node_triples_emitted_once_per_process() {
        let fs = fs();
        let t = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            8,
            "B",
            "p",
            VirtualClock::new(),
        );
        let obj = ObjectDesc::posix(EntityClass::File, "/hot.file");
        for _ in 0..50 {
            t.track_io(&event(ActivityClass::Read, "read", Some(obj.clone())));
        }
        let summary = t.finish();
        let g = read_graph(&fs, &summary.store_path);
        // One File node despite 50 touches.
        assert_eq!(nodes_of_class(&g, EntityClass::File.into()).len(), 1);
        // But 50 Read activities.
        assert_eq!(nodes_of_class(&g, ActivityClass::Read.into()).len(), 50);
    }

    #[test]
    fn tracking_charges_the_workflow_clock() {
        let fs = fs();
        let clock = VirtualClock::new();
        let t = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            9,
            "B",
            "p",
            clock.clone(),
        );
        let before = clock.now();
        for i in 0..100 {
            t.track_io(&event(
                ActivityClass::Write,
                "write",
                Some(ObjectDesc::posix(EntityClass::File, format!("/f{i}"))),
            ));
        }
        assert!(clock.now() > before, "tracker bills its real time");
    }

    #[test]
    fn registry_finish_all() {
        let fs = fs();
        let reg = TrackerRegistry::new();
        for pid in 0..3 {
            let cfg = ProvIoConfig::default().shared();
            let t = ProvTracker::new(cfg, Arc::clone(&fs), pid, "B", "p", VirtualClock::new());
            t.track_io(&event(ActivityClass::Read, "read", None));
            reg.register(pid, t);
        }
        let summaries = reg.finish_all();
        assert_eq!(summaries.len(), 3);
        assert!(summaries.iter().all(|(_, s)| s.events == 1));
        // Each process wrote its own sub-graph file.
        assert_eq!(fs.walk_files("/provio").unwrap().len(), 3);
    }

    #[test]
    fn finish_is_idempotent() {
        let fs = fs();
        let t = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            20,
            "B",
            "p",
            VirtualClock::new(),
        );
        t.track_io(&event(
            ActivityClass::Write,
            "write",
            Some(ObjectDesc::posix(EntityClass::File, "/a")),
        ));
        let first = t.finish();
        assert_eq!(first.events, 1);
        // A straggler event after finish must not leak into the summary:
        // the second call returns the cached result, bit for bit.
        t.track_io(&event(
            ActivityClass::Read,
            "read",
            Some(ObjectDesc::posix(EntityClass::File, "/a")),
        ));
        let second = t.finish();
        assert_eq!(first, second, "second finish returns the cached summary");
        assert_eq!(second.events, 1, "straggler not double-counted");
    }

    #[test]
    fn finish_all_is_idempotent() {
        let fs = fs();
        let reg = TrackerRegistry::new();
        for pid in 0..2 {
            let cfg = ProvIoConfig::default().shared();
            let t = ProvTracker::new(cfg, Arc::clone(&fs), pid, "B", "p", VirtualClock::new());
            t.track_io(&event(ActivityClass::Read, "read", None));
            reg.register(pid, t);
        }
        let first = reg.finish_all();
        let second = reg.finish_all();
        assert_eq!(first, second, "a second sweep re-reports, never re-flushes");
    }

    #[test]
    fn summary_reports_breaker_and_shed_stats() {
        use crate::config::RetryPolicy;
        use provio_hpcfs::{FaultOp, FaultPlan, FaultRule, FsError};

        // Healthy run: quiet stats.
        let fs0 = fs();
        let t0 = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs0),
            21,
            "B",
            "p",
            VirtualClock::new(),
        );
        let s0 = t0.finish();
        assert_eq!(s0.breaker_state, "closed");
        assert_eq!(s0.breaker_trips, 0);
        assert_eq!(s0.shed_batches, 0);
        assert_eq!(s0.shed_triples, 0);

        // Persistently failing store with the breaker armed: the summary
        // says so instead of reporting a silent zero.
        let fs1 = fs();
        let plan = FaultPlan::new(41);
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_path("/provbrk/"));
        fs1.install_faults(plan);
        let cfg = ProvIoConfig::default()
            .with_store_dir("/provbrk")
            .synchronous()
            .with_policy(SerializationPolicy::EveryRecords(1))
            .with_retry(RetryPolicy {
                max_attempts: 1,
                backoff_ns: 0,
                ..RetryPolicy::default()
            })
            .with_breaker(1, 1_000_000)
            .shared();
        let t1 = ProvTracker::new(cfg, Arc::clone(&fs1), 22, "B", "p", VirtualClock::new());
        t1.track_io(&event(ActivityClass::Read, "read", None));
        let s1 = t1.finish();
        assert!(s1.degraded);
        assert!(s1.breaker_trips >= 1, "breaker tripped on the failing store");
        assert_eq!(s1.breaker_state, "open");
    }

    #[test]
    fn summary_reports_journal_stats() {
        // Journal off (the default): stats stay quiet.
        let fs0 = fs();
        let t0 = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs0),
            31,
            "B",
            "p",
            VirtualClock::new(),
        );
        t0.track_io(&event(ActivityClass::Read, "read", None));
        let s0 = t0.finish();
        assert_eq!(s0.wal_records, 0, "journal off by default");
        assert_eq!(s0.wal_commits, 0);
        assert_eq!(s0.wal_recycles, 0);

        // Journal on: records group-commit on push and the finishing
        // snapshot recycles the generation.
        let fs1 = fs();
        let cfg = ProvIoConfig::default().with_wal(true, 4).synchronous().shared();
        let t1 = ProvTracker::new(cfg, Arc::clone(&fs1), 32, "B", "p", VirtualClock::new());
        for _ in 0..3 {
            t1.track_io(&event(ActivityClass::Write, "write", None));
        }
        let s1 = t1.finish();
        assert!(s1.wal_records > 0, "pushed records were journaled: {s1:?}");
        assert!(s1.wal_commits >= 1);
        assert!(s1.wal_recycles >= 1, "the finishing snapshot recycles the journal");
        assert!(!s1.degraded);
    }

    #[test]
    fn derivation_api_links_objects() {
        let fs = fs();
        let t = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            10,
            "B",
            "tdms2h5",
            VirtualClock::new(),
        );
        let out = ObjectDesc::posix(EntityClass::File, "/WestSac.h5");
        let inp = ObjectDesc::posix(EntityClass::File, "/WestSac.tdms");
        t.track_derivation(&out, &inp);
        let summary = t.finish();
        let g = read_graph(&fs, &summary.store_path);
        let rels = provio_model::ontology::relations_from_graph(&g, &out.guid());
        assert!(rels.iter().any(|(r, g2)| *r == Relation::WasDerivedFrom && *g2 == inp.guid()));
    }
}
