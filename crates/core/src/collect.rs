//! Streaming provenance collection over an unreliable interconnect.
//!
//! PROV-IO's ranks persist sub-graphs locally and merge post-hoc; this
//! module lets records *flow* off the ranks while the run is in flight
//! (ROADMAP item 2, "always-on provenance service") without giving up a
//! single durability promise. The design splits cleanly in two:
//!
//! * **[`NetClient`]** — one per tracked rank. Flushed batches enter a
//!   bounded send buffer (backpressure via the store's
//!   [`OverloadPolicy`](crate::config::OverloadPolicy)) and are pushed
//!   over a seeded faulty fabric
//!   ([`NetPlan`](provio_simrt::NetPlan)) with **at-least-once**
//!   delivery: per-rank sequence numbers, ack/timeout, and the store's
//!   decorrelated-jitter backoff between retransmissions. Every attempt
//!   — including every retry — charges the rank's virtual clock with
//!   the [`CommModel`](provio_mpi::CommModel) point-to-point cost.
//! * **[`Collector`]** — the aggregator. Dedups by (rank, seq)
//!   watermark so redelivery is idempotent, feeds a live merged
//!   [`Graph`], and on a crash re-syncs from the rank-durable
//!   WAL/segments via [`merge_directory`](crate::merge_directory), so
//!   the streamed view converges to exactly what the post-hoc merge
//!   produces.
//!
//! The durability contract that makes the crash story honest: a rank
//! only offers a batch to the fabric *after*
//! [`ProvenanceStore::wal_sync`](crate::ProvenanceStore::wal_sync), so
//! **acked ⇒ journal-durable on the rank**. An aggregator crash can then
//! lose nothing that was acked — resync replays it from the journal —
//! and anything unacked is still owned (and re-sent or re-merged) by
//! its rank. This is why the `net` config knob requires `wal`.

use crate::config::{OverloadPolicy, ProvIoConfig, RetryPolicy};
use crate::merge::{merge_directory, MergeReport};
use parking_lot::Mutex;
use provio_hpcfs::FileSystem;
use provio_mpi::CommModel;
use provio_rdf::{Graph, Triple};
use provio_simrt::{DetRng, NetLink, NetPlan, SendFate, SimDuration, VirtualClock};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// `DetRng` stream id for client-side retransmission jitter, disjoint
/// from the store's flush-retry jitter stream (`0x4E77`).
const NET_JITTER_STREAM: u64 = 0x4E78;

/// Rough wire size of one streamed triple, for the cost model. Matches
/// the order of a rendered N-Triples line; exactness is irrelevant —
/// only that bigger batches cost proportionally more virtual time.
const BYTES_PER_TRIPLE: u64 = 96;

/// Per-rank receive window: the dedup watermark plus the set of
/// out-of-order sequences already seen above it.
#[derive(Debug, Default)]
struct RankWindow {
    /// All sequences below this are delivered.
    next: u64,
    /// Sequences ≥ `next` seen out of order, awaiting the gap to close.
    pending: BTreeSet<u64>,
}

/// What `RankWindow::admit` decided about a sequence number.
enum Admit {
    /// First sight; `out_of_order` when it arrived above the watermark.
    Fresh { out_of_order: bool },
    /// Already delivered (watermark or pending set): drop, but re-ack.
    Duplicate,
}

impl RankWindow {
    fn admit(&mut self, seq: u64) -> Admit {
        if seq < self.next || self.pending.contains(&seq) {
            return Admit::Duplicate;
        }
        let out_of_order = seq > self.next;
        self.pending.insert(seq);
        while self.pending.remove(&self.next) {
            self.next += 1;
        }
        Admit::Fresh { out_of_order }
    }
}

#[derive(Default)]
struct CollectorInner {
    graph: Graph,
    /// Admitted batches not yet folded into `graph` — the receive path
    /// stages and acks; indexing happens lazily on the first read.
    staged: Vec<Arc<Vec<Triple>>>,
    windows: HashMap<u32, RankWindow>,
    /// A crashed aggregator acks nothing and remembers nothing until
    /// [`Collector::resync`] rebuilds it from the rank-durable stores.
    crashed: bool,
    received: u64,
    duplicates: u64,
    out_of_order: u64,
    refused: u64,
    streamed_triples: u64,
    crashes: u64,
    resyncs: u64,
    resync_triples: u64,
}

/// The aggregator end of the streaming pipeline. Shared by every rank's
/// [`NetClient`]; all state sits behind one mutex, mirroring a single
/// collection endpoint.
pub struct Collector {
    fs: Arc<FileSystem>,
    dir: String,
    plan: NetPlan,
    comm: CommModel,
    inner: Mutex<CollectorInner>,
}

impl Collector {
    /// A collector for the stores under `dir` on `fs`, reached through
    /// the fabric described by `plan`.
    pub fn new(fs: Arc<FileSystem>, dir: impl Into<String>, plan: NetPlan) -> Arc<Self> {
        Arc::new(Collector {
            fs,
            dir: dir.into(),
            plan,
            comm: CommModel::default(),
            inner: Mutex::new(CollectorInner::default()),
        })
    }

    /// Build `rank`'s client, taking delivery knobs from `cfg` (`retry`,
    /// `net_timeout_ns`, `net_buffer`, `overload_policy`).
    pub fn client(self: &Arc<Self>, rank: u32, clock: VirtualClock, cfg: &ProvIoConfig) -> Arc<NetClient> {
        self.client_with(
            rank,
            clock,
            cfg.retry,
            cfg.net_timeout_ns,
            cfg.net_buffer,
            cfg.overload,
        )
    }

    /// Build `rank`'s client with explicit delivery knobs.
    pub fn client_with(
        self: &Arc<Self>,
        rank: u32,
        clock: VirtualClock,
        retry: RetryPolicy,
        timeout_ns: u64,
        buffer: u64,
        overload: OverloadPolicy,
    ) -> Arc<NetClient> {
        Arc::new(NetClient {
            collector: Arc::clone(self),
            rank,
            clock,
            retry,
            timeout: SimDuration::from_nanos(timeout_ns.max(1)),
            capacity: buffer,
            overload,
            state: Mutex::new(ClientState {
                link: self.plan.link(rank),
                jitter_rng: DetRng::with_stream(self.plan.seed, NET_JITTER_STREAM)
                    .child(rank as u64),
                buf: VecDeque::new(),
                next_seq: 0,
                stats: NetStats::default(),
            }),
        })
    }

    /// One batch arriving off the fabric. Returns `true` when the
    /// collector acks it — including for duplicates, whose triples are
    /// dropped by the (rank, seq) watermark before touching the graph.
    /// A crashed collector refuses everything: no ack, sender times out.
    ///
    /// The receive path is O(1) in the batch size: admit the sequence,
    /// stage the (already `Arc`-shared) payload, ack. Folding staged
    /// batches into the live graph happens lazily on the first read
    /// ([`Self::graph`] / [`Self::triples`] / [`Self::report`]) — the
    /// aggregator's indexing work stays off the sender's ack latency,
    /// as on a real collection endpoint.
    fn deliver(&self, rank: u32, seq: u64, batch: &Arc<Vec<Triple>>) -> bool {
        let mut inner = self.inner.lock();
        if inner.crashed {
            inner.refused += 1;
            return false;
        }
        inner.received += 1;
        match inner.windows.entry(rank).or_default().admit(seq) {
            Admit::Duplicate => {
                inner.duplicates += 1;
            }
            Admit::Fresh { out_of_order } => {
                if out_of_order {
                    inner.out_of_order += 1;
                }
                inner.staged.push(Arc::clone(batch));
            }
        }
        true
    }

    /// Fold every staged batch into the live graph. Set semantics make
    /// the fold idempotent with whatever resync already imported.
    fn fold(inner: &mut CollectorInner) {
        for batch in std::mem::take(&mut inner.staged) {
            for t in batch.iter() {
                if inner.graph.insert(t) {
                    inner.streamed_triples += 1;
                }
            }
        }
    }

    /// Kill the aggregator: the live graph, staged arrivals, the dedup
    /// windows — gone. Ranks keep streaming into timeouts until
    /// [`Self::resync`].
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        inner.crashed = true;
        inner.crashes += 1;
        inner.graph = Graph::new();
        inner.staged.clear();
        inner.windows.clear();
    }

    /// Rebuild the live view from the rank-durable stores (snapshot +
    /// delta segments + WAL replay, via [`merge_directory`]) and resume
    /// acking. Call at a barrier — the merge reads rank files, so no
    /// rank may be mid-flush. Dedup windows restart from zero; the
    /// redelivery that follows is absorbed by graph set-semantics, the
    /// same idempotence that absorbs fabric duplicates. Returns the
    /// number of triples the journal replay recovered that streaming
    /// had not yet delivered (plus the merge's own report).
    pub fn resync(&self) -> (usize, MergeReport) {
        let (merged, report) = merge_directory(&self.fs, &self.dir);
        let mut inner = self.inner.lock();
        Self::fold(&mut inner);
        let mut recovered = 0usize;
        for t in merged.iter() {
            if inner.graph.insert(&t) {
                recovered += 1;
            }
        }
        inner.windows.clear();
        inner.crashed = false;
        inner.resyncs += 1;
        inner.resync_triples += recovered as u64;
        (recovered, report)
    }

    /// Snapshot of the live merged graph (staged arrivals folded in).
    pub fn graph(&self) -> Graph {
        let mut inner = self.inner.lock();
        Self::fold(&mut inner);
        inner.graph.clone()
    }

    /// Triples currently in the live view (staged arrivals folded in).
    pub fn triples(&self) -> usize {
        let mut inner = self.inner.lock();
        Self::fold(&mut inner);
        inner.graph.len()
    }

    /// The fabric this collector was built over.
    pub fn plan(&self) -> &NetPlan {
        &self.plan
    }

    /// Delivery accounting so far (staged arrivals folded in).
    pub fn report(&self) -> DeliveryReport {
        let mut inner = self.inner.lock();
        Self::fold(&mut inner);
        DeliveryReport {
            received_batches: inner.received,
            duplicate_batches: inner.duplicates,
            out_of_order_batches: inner.out_of_order,
            refused_batches: inner.refused,
            streamed_triples: inner.streamed_triples,
            live_triples: inner.graph.len() as u64,
            crashes: inner.crashes,
            resyncs: inner.resyncs,
            resync_triples: inner.resync_triples,
        }
    }
}

/// Aggregator-side delivery accounting, the collector sibling of the
/// per-rank [`NetStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryReport {
    /// Batches that arrived off the fabric (every copy counted).
    pub received_batches: u64,
    /// Arrivals dropped by the (rank, seq) watermark — retransmissions
    /// and fabric duplicates, acked but never re-inserted.
    pub duplicate_batches: u64,
    /// Fresh arrivals above the watermark (a predecessor was in flight).
    pub out_of_order_batches: u64,
    /// Arrivals refused (no ack) while the aggregator was crashed.
    pub refused_batches: u64,
    /// Distinct triples the stream itself put in the live graph.
    pub streamed_triples: u64,
    /// Triples in the live view now.
    pub live_triples: u64,
    /// Aggregator crashes injected.
    pub crashes: u64,
    /// Resyncs from the rank-durable stores.
    pub resyncs: u64,
    /// Triples resync recovered that streaming had not yet delivered.
    pub resync_triples: u64,
}

impl fmt::Display for DeliveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delivery: {} batches received ({} duplicates dropped, {} out of order, {} refused), \
             {} triples streamed, {} live",
            self.received_batches,
            self.duplicate_batches,
            self.out_of_order_batches,
            self.refused_batches,
            self.streamed_triples,
            self.live_triples,
        )?;
        if self.crashes > 0 {
            write!(
                f,
                "; {} collector crash(es), {} resync(s) recovering {} triples",
                self.crashes, self.resyncs, self.resync_triples
            )?;
        }
        Ok(())
    }
}

/// Per-rank sender-side delivery counters; folded into
/// [`TrackSummary`](crate::tracker::TrackSummary) at `finish`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Batches accepted into the send buffer (each gets a sequence).
    pub sent_batches: u64,
    /// Batches acked by the collector.
    pub acked_batches: u64,
    /// Retransmissions after a timeout (loss, lost ack, partition, or a
    /// crashed collector).
    pub retries: u64,
    /// Batches dropped by the `Shed` overload policy at a full buffer.
    /// Shed from the *stream only*: the records stay in the durable
    /// store and reach the merged view via resync/post-hoc merge.
    pub shed_batches: u64,
    /// Triples inside those shed batches.
    pub shed_triples: u64,
    /// Batches still unacked in the buffer (e.g. the run ended inside a
    /// partition). Accounted, not lost: the durable store has them.
    pub unacked_batches: u64,
}

struct ClientState {
    link: NetLink,
    jitter_rng: DetRng,
    /// The bounded send buffer: (seq, batch), oldest first. Batches sit
    /// behind an `Arc` so retransmissions never re-clone the payload.
    buf: VecDeque<(u64, Arc<Vec<Triple>>)>,
    next_seq: u64,
    stats: NetStats,
}

/// The rank-side end of the streaming pipeline: a bounded send buffer
/// over a faulty link, with at-least-once retransmission.
pub struct NetClient {
    collector: Arc<Collector>,
    rank: u32,
    /// The owning rank's clock; every attempt, timeout, and backoff is
    /// charged here, so an unreliable fabric costs virtual time exactly
    /// where the paper's overhead question lives.
    clock: VirtualClock,
    retry: RetryPolicy,
    timeout: SimDuration,
    /// Buffer bound in batches (0 = unbounded).
    capacity: u64,
    overload: OverloadPolicy,
    state: Mutex<ClientState>,
}

impl NetClient {
    /// Offer a batch to the stream. The caller must have made it
    /// journal-durable first (see [`crate::ProvenanceStore::wal_sync`]).
    /// With a full buffer, `Block` pumps the fabric until space frees
    /// (virtual time passes, partitions heal); `Shed` drops the batch
    /// from the stream only.
    pub fn send(&self, triples: Vec<Triple>) {
        if triples.is_empty() {
            return;
        }
        {
            let mut st = self.state.lock();
            if self.capacity > 0
                && st.buf.len() as u64 >= self.capacity
                && self.overload == OverloadPolicy::Shed
            {
                st.stats.shed_batches += 1;
                st.stats.shed_triples += triples.len() as u64;
                return;
            }
            let seq = st.next_seq;
            st.next_seq += 1;
            st.stats.sent_batches += 1;
            st.buf.push_back((seq, Arc::new(triples)));
        }
        self.pump();
        if self.capacity > 0 && self.overload == OverloadPolicy::Block {
            // Backpressure: the rank stalls (in virtual time) until the
            // fabric accepts enough of the backlog. Each pump charges at
            // least one timeout, so any bounded partition heals.
            while self.state.lock().buf.len() as u64 > self.capacity {
                self.pump();
            }
        }
    }

    /// Push buffered batches at the collector until the buffer empties
    /// or the head batch exhausts its retry budget (it stays buffered
    /// for the next pump — at-least-once never discards).
    pub fn pump(&self) {
        let mut st = self.state.lock();
        'batches: while let Some((seq, triples)) = st.buf.front().cloned() {
            let bytes = triples.len() as u64 * BYTES_PER_TRIPLE;
            let mut prev_delay = self.retry.backoff_ns;
            let mut attempt = 0u32;
            loop {
                attempt += 1;
                self.clock.advance(self.collector.comm.send(bytes));
                match st.link.fate(self.clock.now()) {
                    SendFate::Delivered {
                        copies,
                        delay,
                        ack_lost,
                        reorder,
                    } => {
                        if reorder && st.buf.len() >= 2 {
                            // The fabric holds this message back; its
                            // successor overtakes it and arrives first.
                            st.buf.swap(0, 1);
                            continue 'batches;
                        }
                        self.clock.advance(delay);
                        let mut acked = false;
                        for _ in 0..copies {
                            acked = self.collector.deliver(self.rank, seq, &triples);
                            if !acked {
                                break;
                            }
                        }
                        if acked && !ack_lost {
                            self.clock.advance(self.collector.comm.recv());
                            st.stats.acked_batches += 1;
                            st.buf.pop_front();
                            continue 'batches;
                        }
                        // Ack dropped, or the collector is down: either
                        // way the sender only sees a timeout. Retrying a
                        // delivered batch is what exercises the dedup
                        // watermark.
                    }
                    SendFate::Partitioned | SendFate::LostRequest => {}
                }
                self.clock.advance(self.timeout);
                if attempt >= self.retry.max_attempts.max(1) {
                    // Budget exhausted this pump; keep the batch for the
                    // next one rather than dropping an in-flight record.
                    break 'batches;
                }
                st.stats.retries += 1;
                let delay = if self.retry.jitter {
                    prev_delay = self.retry.jittered_backoff(prev_delay, &mut st.jitter_rng);
                    prev_delay
                } else {
                    self.retry.backoff_for(attempt)
                };
                self.clock.advance(SimDuration::from_nanos(delay));
            }
        }
        st.stats.unacked_batches = st.buf.len() as u64;
    }

    /// Final drain: pump until the buffer empties, giving up after
    /// `max_rounds` pumps (a fabric in a terminal partition). Returns
    /// the final counters, `unacked_batches` included.
    pub fn drain(&self, max_rounds: u32) -> NetStats {
        for _ in 0..max_rounds {
            if self.state.lock().buf.is_empty() {
                break;
            }
            self.pump();
        }
        self.stats()
    }

    /// Batches waiting in the send buffer.
    pub fn buffered(&self) -> u64 {
        self.state.lock().buf.len() as u64
    }

    /// Counters so far (`unacked_batches` reflects the buffer now).
    pub fn stats(&self) -> NetStats {
        let st = self.state.lock();
        let mut stats = st.stats;
        stats.unacked_batches = st.buf.len() as u64;
        stats
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_hpcfs::LustreConfig;
    use provio_rdf::ntriples;
    use provio_simrt::PartitionEpisode;

    fn fs() -> Arc<FileSystem> {
        FileSystem::new(LustreConfig::default())
    }

    fn triple(n: usize) -> Triple {
        ntriples::parse(&format!(
            "<urn:s{n}> <urn:p> <urn:o{n}> .\n"
        ))
        .unwrap()
        .iter()
        .next()
        .unwrap()
    }

    fn batch(lo: usize, hi: usize) -> Vec<Triple> {
        (lo..hi).map(triple).collect()
    }

    fn quick_client(collector: &Arc<Collector>, rank: u32) -> Arc<NetClient> {
        collector.client_with(
            rank,
            VirtualClock::new(),
            RetryPolicy {
                max_attempts: 8,
                backoff_ns: 10,
                jitter: true,
            },
            1_000,
            0,
            OverloadPolicy::Block,
        )
    }

    #[test]
    fn ideal_fabric_streams_every_triple_once() {
        let collector = Collector::new(fs(), "/provio", NetPlan::ideal(1));
        let client = quick_client(&collector, 0);
        client.send(batch(0, 10));
        client.send(batch(10, 20));
        let stats = client.drain(4);
        assert_eq!(stats.acked_batches, 2);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.unacked_batches, 0);
        assert_eq!(collector.triples(), 20);
        let rep = collector.report();
        assert_eq!(rep.duplicate_batches, 0);
        assert_eq!(rep.streamed_triples, 20);
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let plan = NetPlan::ideal(7).with_duplicate(1.0);
        let collector = Collector::new(fs(), "/provio", plan);
        let client = quick_client(&collector, 0);
        client.send(batch(0, 5));
        client.drain(4);
        assert_eq!(collector.triples(), 5);
        let rep = collector.report();
        assert_eq!(rep.duplicate_batches, rep.received_batches - 1);
    }

    #[test]
    fn lost_acks_retransmit_and_dedup() {
        // Half the acks vanish: the sender retransmits batches the
        // collector already holds; the watermark absorbs every copy.
        let plan = NetPlan::ideal(11).with_ack_loss(0.5);
        let collector = Collector::new(fs(), "/provio", plan);
        let client = quick_client(&collector, 0);
        for i in 0..20 {
            client.send(batch(i * 3, (i + 1) * 3));
        }
        let stats = client.drain(16);
        assert_eq!(stats.unacked_batches, 0);
        assert_eq!(collector.triples(), 60);
        assert!(stats.retries > 0);
        assert!(collector.report().duplicate_batches > 0);
    }

    #[test]
    fn partition_buffers_then_heals() {
        let plan = NetPlan::ideal(3).with_partition(PartitionEpisode::all(0, 50_000));
        let collector = Collector::new(fs(), "/provio", plan);
        let client = quick_client(&collector, 0);
        client.send(batch(0, 4));
        // The partition spans the clock's early life; the first pumps
        // time out, the buffered batch survives, and a later pump (clock
        // past the window) delivers it.
        let stats = client.drain(64);
        assert_eq!(stats.unacked_batches, 0);
        assert!(stats.retries > 0);
        assert_eq!(collector.triples(), 4);
    }

    #[test]
    fn shed_policy_drops_from_stream_only() {
        let collector = Collector::new(
            fs(),
            "/provio",
            // A terminal partition: nothing ever delivers.
            NetPlan::ideal(5).with_partition(PartitionEpisode::all(0, u64::MAX)),
        );
        let client = collector.client_with(
            0,
            VirtualClock::new(),
            RetryPolicy {
                max_attempts: 2,
                backoff_ns: 10,
                jitter: false,
            },
            100,
            1,
            OverloadPolicy::Shed,
        );
        client.send(batch(0, 2));
        client.send(batch(2, 4)); // buffer full → shed
        let stats = client.stats();
        assert_eq!(stats.shed_batches, 1);
        assert_eq!(stats.shed_triples, 2);
        assert_eq!(stats.unacked_batches, 1);
        assert_eq!(collector.triples(), 0);
    }

    #[test]
    fn crashed_collector_refuses_then_resyncs_empty() {
        let collector = Collector::new(fs(), "/provio", NetPlan::ideal(9));
        let client = collector.client_with(
            0,
            VirtualClock::new(),
            RetryPolicy {
                max_attempts: 2,
                backoff_ns: 10,
                jitter: false,
            },
            100,
            0,
            OverloadPolicy::Block,
        );
        client.send(batch(0, 3));
        assert_eq!(collector.triples(), 3);
        collector.crash();
        client.send(batch(3, 6));
        assert_eq!(collector.triples(), 0, "crash wiped the live view");
        assert!(client.stats().unacked_batches > 0);
        assert!(collector.report().refused_batches > 0);
        // Resync against an *empty* dir recovers nothing: the first
        // batch was acked, popped, and wiped — gone, because nothing
        // durable backed the ack. This is precisely the hole the
        // config's net-requires-wal rule closes; the integration tests
        // run the full store+WAL path and lose zero acked records.
        collector.resync();
        let stats = client.drain(8);
        assert_eq!(stats.unacked_batches, 0);
        assert_eq!(collector.triples(), 3, "only the unacked batch survived");
    }

    #[test]
    fn per_rank_watermarks_are_independent() {
        let collector = Collector::new(fs(), "/provio", NetPlan::ideal(2));
        let a = quick_client(&collector, 0);
        let b = quick_client(&collector, 1);
        a.send(batch(0, 3));
        b.send(batch(100, 103));
        a.drain(2);
        b.drain(2);
        assert_eq!(collector.triples(), 6);
        assert_eq!(collector.report().duplicate_batches, 0);
    }

    #[test]
    fn reorder_swaps_arrival_order_but_not_content() {
        let plan = NetPlan::ideal(13).with_reorder(0.6);
        let collector = Collector::new(fs(), "/provio", plan);
        let client = collector.client_with(
            0,
            VirtualClock::new(),
            RetryPolicy {
                max_attempts: 8,
                backoff_ns: 10,
                jitter: false,
            },
            100,
            0,
            OverloadPolicy::Block,
        );
        // Enqueue a window of batches without pumping, so reorder fates
        // have successors to overtake; then drain.
        {
            let mut st = client.state.lock();
            for i in 0..10u64 {
                let seq = st.next_seq;
                st.next_seq += 1;
                st.stats.sent_batches += 1;
                st.buf
                    .push_back((seq, Arc::new(batch(i as usize * 2, i as usize * 2 + 2))));
            }
        }
        let stats = client.drain(8);
        assert_eq!(stats.unacked_batches, 0);
        assert_eq!(collector.triples(), 20);
        assert!(
            collector.report().out_of_order_batches > 0,
            "p=0.6 reorder over 10 queued batches must overtake at least once"
        );
    }

    #[test]
    fn retries_cost_virtual_time() {
        let clock = VirtualClock::new();
        let lossy = Collector::new(fs(), "/provio", NetPlan::ideal(17).with_loss(0.7));
        let client = lossy.client_with(
            0,
            clock.clone(),
            RetryPolicy {
                max_attempts: 16,
                backoff_ns: 100,
                jitter: true,
            },
            1_000,
            0,
            OverloadPolicy::Block,
        );
        client.send(batch(0, 8));
        client.drain(8);
        let lossy_elapsed = clock.now().as_nanos();

        let clock2 = VirtualClock::new();
        let clean = Collector::new(fs(), "/provio", NetPlan::ideal(17));
        let client2 = clean.client_with(
            0,
            clock2.clone(),
            RetryPolicy {
                max_attempts: 16,
                backoff_ns: 100,
                jitter: true,
            },
            1_000,
            0,
            OverloadPolicy::Block,
        );
        client2.send(batch(0, 8));
        client2.drain(8);
        assert!(
            lossy_elapsed > clock2.now().as_nanos(),
            "a lossy fabric must cost more virtual time than a clean one"
        );
    }
}
